// Streaming-ingest equivalence tier: incremental plan extension, incremental
// cube maintenance, and the service's epoch semantics must be
// indistinguishable from tearing everything down and rebuilding.
//
//   * ScanPlan::ExtendFrom vs a fresh Compile over randomized append
//     schedules × query shapes: every scaffold array (FK resolution, packed
//     codes, weights, counting-sort runs, rendered labels) bit-identical,
//     and cold/warm execution of both plans bit-identical.
//   * DataCube::AppendRows vs a fresh sequential Build: totals, marginals
//     and weighted evaluations exactly equal.
//   * QueryService::Ingest: one epoch bump per accepted batch, all-or-nothing
//     batches, answer-cache keys that fold the epoch in (a post-append query
//     is a FRESH DP release and a fresh ε spend), exact ledger accounting.
//   * A concurrent ingest/query/workload hammer over a live HTTP server
//     (run under TSan via the CI TSan configuration): every answer's epoch
//     is a table version that actually existed while the request was in
//     flight, and per-tenant ε accounting stays exact to the last spend.
//
// Registered a second time under DPSTARJ_FORCE_SCALAR=1 (like
// executor_equivalence_test), so the equivalence claims also hold on the
// scalar kernel path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "exec/data_cube.h"
#include "exec/plan_cache.h"
#include "exec/scan_plan.h"
#include "exec/star_join_executor.h"
#include "net/client.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "query/binder.h"
#include "service/query_service.h"
#include "storage/catalog.h"
#include "test_catalog.h"

namespace dpstarj {
namespace {

using exec::PredicateOverrides;
using exec::QueryResult;
using exec::ScanPlan;
using exec::StarJoinExecutor;
using storage::Value;
using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

// ---------------------------------------------------------------------------
// Fixture helpers

query::StarJoinQuery ToyGroupedQuery() {
  query::StarJoinQuery q = ToyCountQuery();
  q.name = "toy_grouped";
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  q.group_by = {{"Cust", "region"}, {"Prod", "cat"}};
  return q;
}

query::StarJoinQuery ToyFactGroupedQuery() {
  query::StarJoinQuery q = ToyCountQuery();
  q.name = "toy_fact_grouped";
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"price", 1.0}};
  q.group_by = {{"Orders", "qty"}};  // fact-side packed field: base 1, 3 bits
  return q;
}

query::StarJoinQuery ToyMultiMeasureQuery() {
  query::StarJoinQuery q = ToyCountQuery();
  q.name = "toy_multi_measure";
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 2.0}, {"price", 0.5}};
  q.group_by = {{"Cust", "tier"}};
  return q;
}

// One random fact row. ck may miss Cust (0 and 7+ are unknown keys) so the
// absent-FK sentinel path is part of every schedule; qty stays within the
// packed field compiled from the fixture's 1..5 range (base 1, mask 7).
std::vector<Value> RandomOrdersRow(Rng* rng) {
  return {Value(rng->UniformInt(0, 8)), Value(rng->UniformInt(1, 5)),
          Value(rng->UniformInt(1, 8)),
          Value(static_cast<double>(rng->UniformInt(0, 400)) * 0.25)};
}

void ExpectBitIdentical(const QueryResult& expected, const QueryResult& got) {
  EXPECT_EQ(expected.grouped, got.grouped);
  EXPECT_EQ(expected.scalar, got.scalar);
  ASSERT_EQ(expected.groups.size(), got.groups.size());
  auto it = got.groups.begin();
  for (const auto& [label, value] : expected.groups) {
    EXPECT_EQ(label, it->first);
    EXPECT_EQ(value, it->second) << "group " << label;
    ++it;
  }
}

// Every public scaffold array of the two plans, field by field. `where`
// identifies the (shape, seed, batch) combination on failure.
void ExpectSamePlan(const ScanPlan& fresh, const ScanPlan& ext,
                    const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(fresh.requires_scalar(), ext.requires_scalar());
  EXPECT_EQ(fresh.fact_rows(), ext.fact_rows());
  EXPECT_EQ(fresh.grouped, ext.grouped);
  EXPECT_EQ(fresh.code_space, ext.code_space);
  EXPECT_EQ(fresh.fact_dim_row, ext.fact_dim_row);
  EXPECT_EQ(fresh.codes, ext.codes);
  EXPECT_EQ(fresh.weights, ext.weights);
  EXPECT_EQ(fresh.has_sorted_runs, ext.has_sorted_runs);
  EXPECT_EQ(fresh.run_offsets, ext.run_offsets);
  EXPECT_EQ(fresh.sorted_dim_row, ext.sorted_dim_row);
  EXPECT_EQ(fresh.sorted_weights, ext.sorted_weights);
  EXPECT_EQ(fresh.group_labels, ext.group_labels);
  EXPECT_EQ(fresh.label_of_code, ext.label_of_code);
  ASSERT_EQ(fresh.dims.size(), ext.dims.size());
  for (size_t i = 0; i < fresh.dims.size(); ++i) {
    EXPECT_EQ(fresh.dims[i].num_rows, ext.dims[i].num_rows);
    EXPECT_EQ(fresh.dims[i].has_absent_fk, ext.dims[i].has_absent_fk);
    EXPECT_EQ(fresh.dims[i].group_ordinal, ext.dims[i].group_ordinal);
    EXPECT_EQ(fresh.dims[i].rep_rows, ext.dims[i].rep_rows);
    EXPECT_EQ(fresh.dims[i].field, ext.dims[i].field);
  }
}

// ---------------------------------------------------------------------------
// ScanPlan::ExtendFrom ≡ fresh Compile

TEST(IngestEquivalenceTest, ExtendMatchesFreshCompileOnRandomSchedules) {
  const std::vector<query::StarJoinQuery> shapes = {
      ToyCountQuery(), ToyGroupedQuery(), ToyFactGroupedQuery(),
      ToyMultiMeasureQuery()};
  for (size_t shape = 0; shape < shapes.size(); ++shape) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      // Fresh instance per schedule: appends mutate the catalog.
      storage::Catalog catalog = MakeToyCatalog();
      query::Binder binder(&catalog);
      StarJoinExecutor executor;
      auto orders = catalog.GetTable("Orders");
      ASSERT_TRUE(orders.ok());

      auto bound = binder.Bind(shapes[shape]);
      ASSERT_TRUE(bound.ok()) << bound.status().ToString();
      auto prev = ScanPlan::Compile(*bound);
      ASSERT_TRUE(prev.ok()) << prev.status().ToString();

      Rng rng(seed * 977 + shape);
      for (int batch = 0; batch < 3; ++batch) {
        const int64_t batch_rows = rng.UniformInt(1, 8);
        for (int64_t r = 0; r < batch_rows; ++r) {
          ASSERT_TRUE((*orders)->AppendRow(RandomOrdersRow(&rng)).ok());
        }
        auto grown = binder.Bind(shapes[shape]);
        ASSERT_TRUE(grown.ok());
        ASSERT_TRUE(ScanPlan::IsAppendExtension(*prev, *grown));

        auto ext = ScanPlan::ExtendFrom(*prev, *grown);
        ASSERT_TRUE(ext.ok()) << ext.status().ToString();
        auto fresh = ScanPlan::Compile(*grown);
        ASSERT_TRUE(fresh.ok());
        ExpectSamePlan(*fresh, *ext,
                       Format("shape=%zu seed=%llu batch=%d rows=%lld", shape,
                              static_cast<unsigned long long>(seed), batch,
                              static_cast<long long>(grown->fact->num_rows())));

        // Execution through both scaffolds agrees with the planless pipeline.
        auto baseline = executor.Execute(*grown);
        ASSERT_TRUE(baseline.ok());
        auto via_ext = executor.Execute(
            *grown, PredicateOverrides(grown->dims.size()), *ext);
        auto via_fresh = executor.Execute(
            *grown, PredicateOverrides(grown->dims.size()), *fresh);
        ASSERT_TRUE(via_ext.ok() && via_fresh.ok());
        ExpectBitIdentical(*baseline, *via_ext);
        ExpectBitIdentical(*via_fresh, *via_ext);

        prev = std::move(ext);  // next batch extends the extension
      }
    }
  }
}

TEST(IngestEquivalenceTest, ExtendDeclinedWhenFactGroupFieldOverflows) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  auto bound = binder.Bind(ToyFactGroupedQuery());
  ASSERT_TRUE(bound.ok());
  auto plan = ScanPlan::Compile(*bound);
  ASSERT_TRUE(plan.ok());

  // qty was compiled from values 1..5: base 1, a 3-bit field, mask 7. An
  // appended qty of 9 has ordinal 8 > mask — packing it would corrupt the
  // neighbouring field, so the extension must refuse (caller recompiles).
  auto orders = catalog.GetTable("Orders");
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE((*orders)
                  ->AppendRow({Value(int64_t{1}), Value(int64_t{1}),
                               Value(int64_t{9}), Value(90.0)})
                  .ok());
  auto grown = binder.Bind(ToyFactGroupedQuery());
  ASSERT_TRUE(grown.ok());
  ASSERT_TRUE(ScanPlan::IsAppendExtension(*plan, *grown));
  auto ext = ScanPlan::ExtendFrom(*plan, *grown);
  ASSERT_FALSE(ext.ok());
  EXPECT_EQ(ext.status().code(), StatusCode::kNotSupported);

  // A value below the compiled base must be refused the same way.
  storage::Catalog catalog2 = MakeToyCatalog();
  query::Binder binder2(&catalog2);
  auto bound2 = binder2.Bind(ToyFactGroupedQuery());
  ASSERT_TRUE(bound2.ok());
  auto plan2 = ScanPlan::Compile(*bound2);
  ASSERT_TRUE(plan2.ok());
  auto orders2 = catalog2.GetTable("Orders");
  ASSERT_TRUE(orders2.ok());
  ASSERT_TRUE((*orders2)
                  ->AppendRow({Value(int64_t{1}), Value(int64_t{1}),
                               Value(int64_t{0}), Value(0.0)})
                  .ok());
  auto grown2 = binder2.Bind(ToyFactGroupedQuery());
  ASSERT_TRUE(grown2.ok());
  auto ext2 = ScanPlan::ExtendFrom(*plan2, *grown2);
  ASSERT_FALSE(ext2.ok());
  EXPECT_EQ(ext2.status().code(), StatusCode::kNotSupported);
}

TEST(IngestEquivalenceTest, ExtendRefusedWhenADimensionGrew) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  auto bound = binder.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto plan = ScanPlan::Compile(*bound);
  ASSERT_TRUE(plan.ok());

  auto cust = catalog.GetTable("Cust");
  ASSERT_TRUE(cust.ok());
  ASSERT_TRUE(
      (*cust)
          ->AppendRow({Value(int64_t{7}), Value("N"), Value(int64_t{1})})
          .ok());
  auto grown = binder.Bind(ToyCountQuery());
  ASSERT_TRUE(grown.ok());
  EXPECT_FALSE(ScanPlan::IsAppendExtension(*plan, *grown));
  auto ext = ScanPlan::ExtendFrom(*plan, *grown);
  ASSERT_FALSE(ext.ok());
  EXPECT_EQ(ext.status().code(), StatusCode::kNotSupported);
}

// ---------------------------------------------------------------------------
// DataCube::AppendRows ≡ fresh Build

TEST(IngestEquivalenceTest, CubeAppendRowsMatchesFreshSequentialBuild) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    storage::Catalog catalog = MakeToyCatalog();
    query::Binder binder(&catalog);
    auto orders = catalog.GetTable("Orders");
    ASSERT_TRUE(orders.ok());

    auto bound = binder.Bind(ToyCountQuery());
    ASSERT_TRUE(bound.ok());
    const std::vector<query::DimensionAttribute> attrs = {
        {"Cust", "region", testing_fixture::RegionDomain()},
        {"Prod", "cat", testing_fixture::CatDomain()}};
    auto cube = exec::DataCube::Build(*bound, attrs);
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();

    Rng rng(seed);
    for (int batch = 0; batch < 3; ++batch) {
      const int64_t first = (*orders)->num_rows();
      const int64_t batch_rows = rng.UniformInt(1, 10);
      for (int64_t r = 0; r < batch_rows; ++r) {
        ASSERT_TRUE((*orders)->AppendRow(RandomOrdersRow(&rng)).ok());
      }
      auto grown = binder.Bind(ToyCountQuery());
      ASSERT_TRUE(grown.ok());
      ASSERT_TRUE(cube->AppendRows(*grown, first).ok());

      auto rebuilt = exec::DataCube::Build(*grown, attrs);
      ASSERT_TRUE(rebuilt.ok());
      EXPECT_EQ(rebuilt->total(), cube->total());
      EXPECT_EQ(rebuilt->dropped_rows(), cube->dropped_rows());
      for (int a = 0; a < 2; ++a) {
        auto m_fresh = rebuilt->Marginal(a);
        auto m_inc = cube->Marginal(a);
        ASSERT_TRUE(m_fresh.ok() && m_inc.ok());
        EXPECT_EQ(*m_fresh, *m_inc) << "axis " << a;
      }
      // Random weighted evaluations probe every cell with exact arithmetic.
      for (int probe = 0; probe < 4; ++probe) {
        std::vector<std::vector<double>> weights;
        for (int a = 0; a < 2; ++a) {
          auto marginal = rebuilt->Marginal(a);
          ASSERT_TRUE(marginal.ok());
          std::vector<double> w(marginal->size());
          for (auto& v : w) v = rng.Bernoulli(0.5) ? 1.0 : -2.0;
          weights.push_back(std::move(w));
        }
        auto e_fresh = rebuilt->EvaluateWeighted(weights);
        auto e_inc = cube->EvaluateWeighted(weights);
        ASSERT_TRUE(e_fresh.ok() && e_inc.ok());
        EXPECT_EQ(*e_fresh, *e_inc);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Service epochs + ledger accounting

TEST(IngestServiceTest, EpochBumpsAndPostAppendAnswersAreFreshReleases) {
  storage::Catalog catalog = MakeToyCatalog();
  service::ServiceOptions opts;
  opts.num_engines = 2;
  service::QueryService svc(&catalog, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 10.0).ok());

  const char* sql =
      "SELECT count(*) FROM Orders, Cust, Prod "
      "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
      "AND Cust.region = 'N' AND Prod.cat = 'a'";
  auto a1 = svc.Answer(sql, 0.5, "t");
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(a1->epoch, 0u);

  // Same key at the same epoch: a cache replay — identical noisy value,
  // nothing spent (post-processing closure of DP).
  auto a2 = svc.Answer(sql, 0.5, "t");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->scalar, a1->scalar);
  auto acct = svc.ledger().Account("t");
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct->spent, 0.5);

  // Accepted batch: one epoch bump, rows visible, counters advance.
  auto out = svc.Ingest(
      "Orders", {{Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{2}),
                  Value(20.0)},
                 {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{1}),
                  Value(10.0)}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->appended, 2);
  EXPECT_EQ(out->rows_total, 14);
  EXPECT_EQ(out->version, 1u);

  // Same query, new epoch: the canonical key differs, so this is a fresh
  // release — computed at epoch 1 and paid for again.
  auto a3 = svc.Answer(sql, 0.5, "t");
  ASSERT_TRUE(a3.ok());
  EXPECT_EQ(a3->epoch, 1u);
  acct = svc.ledger().Account("t");
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct->spent, 1.0);

  // And the new epoch's answer replays like any other.
  auto a4 = svc.Answer(sql, 0.5, "t");
  ASSERT_TRUE(a4.ok());
  EXPECT_EQ(a4->scalar, a3->scalar);
  EXPECT_EQ(a4->epoch, 1u);
  EXPECT_EQ(svc.ledger().Account("t")->spent, 1.0);

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.ingest_batches, 1u);
  EXPECT_EQ(stats.ingest_rows, 2u);
  // The post-append execution reused the compiled scaffold by extension.
  EXPECT_EQ(stats.plan_cache.extends, 1u);
  EXPECT_EQ(stats.plan_cache.invalidations, 0u);
}

TEST(IngestServiceTest, BatchesAreAllOrNothing) {
  storage::Catalog catalog = MakeToyCatalog();
  service::QueryService svc(&catalog, {});
  auto orders = catalog.GetTable("Orders");
  ASSERT_TRUE(orders.ok());
  const int64_t before = (*orders)->num_rows();

  // Unknown table.
  auto missing = svc.Ingest("Nope", {{Value(int64_t{1})}});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Empty batch.
  auto empty = svc.Ingest("Orders", {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  // A good row ahead of a bad one: nothing lands, the epoch does not move.
  auto mixed = svc.Ingest(
      "Orders", {{Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{2}),
                  Value(20.0)},
                 {Value(int64_t{1}), Value(int64_t{1})}});
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*orders)->num_rows(), before);
  EXPECT_EQ((*orders)->version(), 0u);
  EXPECT_EQ(svc.Stats().ingest_batches, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent ingest/query/workload over the wire (TSan target)

TEST(IngestServiceTest, ConcurrentIngestQueryWorkloadOverTheWire) {
  storage::Catalog catalog = MakeToyCatalog();
  service::ServiceOptions service_options;
  service_options.num_engines = 2;
  service_options.queue_capacity = 256;
  service::QueryService service(&catalog, service_options);

  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 24;
  constexpr int kIngestBatches = 16;
  constexpr int kWorkloadBatches = 8;
  for (int t = 0; t < kReaders; ++t) {
    ASSERT_TRUE(service.RegisterTenant(Format("reader-%d", t), 1e6).ok());
  }
  ASSERT_TRUE(service.RegisterTenant("batcher", 1e6).ok());

  net::ServerOptions server_options;
  server_options.handler_threads = kReaders + 3;
  net::HttpServer server(net::MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  const std::string sql =
      "SELECT count(*) FROM Orders, Cust, Prod "
      "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
      "AND Cust.region = 'N' AND Prod.cat = 'a'";

  // Version floor/ceiling observed over the wire: `acked` only advances
  // after an ingest 200 is read back, `attempted` before the POST goes out.
  // For any answer, acked-at-send ≤ epoch ≤ attempted-at-receive.
  std::atomic<uint64_t> acked{0}, attempted{0};
  std::atomic<int> failures{0};

  std::thread ingester([&] {
    net::Client client("127.0.0.1", server.port());
    Rng rng(42);
    for (int b = 0; b < kIngestBatches; ++b) {
      net::Json body = net::Json::Object();
      body.Set("table", net::Json::Str("Orders"));
      net::Json rows = net::Json::Array();
      const int64_t n = rng.UniformInt(1, 4);
      for (int64_t r = 0; r < n; ++r) {
        net::Json row = net::Json::Array();
        row.Append(net::Json::Number(
            static_cast<double>(rng.UniformInt(1, 6))));
        row.Append(net::Json::Number(
            static_cast<double>(rng.UniformInt(1, 4))));
        row.Append(net::Json::Number(
            static_cast<double>(rng.UniformInt(1, 5))));
        row.Append(net::Json::Number(10.0 * static_cast<double>(b + 1)));
        rows.Append(std::move(row));
      }
      body.Set("rows", std::move(rows));
      attempted.fetch_add(1, std::memory_order_seq_cst);
      auto resp = client.Post("/v1/ingest", body.Dump());
      if (!resp.ok() || resp->status != 200) {
        ++failures;
        return;
      }
      auto parsed = net::Client::ParseBody(*resp);
      if (!parsed.ok() || parsed->Find("version") == nullptr ||
          parsed->Find("version")->AsNumber() !=
              static_cast<double>(b + 1)) {
        ++failures;
        return;
      }
      acked.store(static_cast<uint64_t>(b) + 1, std::memory_order_seq_cst);
    }
  });

  std::vector<std::thread> readers;
  std::vector<double> reader_spent(kReaders, 0.0);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      net::Client client("127.0.0.1", server.port());
      const std::string tenant = Format("reader-%d", t);
      for (int i = 0; i < kQueriesPerReader; ++i) {
        // A unique ε per request keeps every canonical key distinct, so no
        // answer is ever a replay: each 200 is exactly one ledger spend.
        const double epsilon = 0.001 * (1 + t * kQueriesPerReader + i);
        net::Json body = net::Json::Object();
        body.Set("sql", net::Json::Str(sql));
        body.Set("epsilon", net::Json::Number(epsilon));
        body.Set("tenant", net::Json::Str(tenant));
        const uint64_t lo = acked.load(std::memory_order_seq_cst);
        auto resp = client.Post("/v1/query", body.Dump());
        const uint64_t hi = attempted.load(std::memory_order_seq_cst);
        if (!resp.ok() || resp->status != 200) {
          ++failures;
          continue;
        }
        auto parsed = net::Client::ParseBody(*resp);
        if (!parsed.ok() || parsed->Find("epoch") == nullptr) {
          ++failures;
          continue;
        }
        const double epoch = parsed->Find("epoch")->AsNumber();
        if (epoch < static_cast<double>(lo) ||
            epoch > static_cast<double>(hi)) {
          ++failures;  // an answer from a version that never existed
          continue;
        }
        reader_spent[static_cast<size_t>(t)] += epsilon;
      }
    });
  }

  double batcher_spent = 0.0;
  std::thread workloads([&] {
    net::Client client("127.0.0.1", server.port());
    for (int b = 0; b < kWorkloadBatches; ++b) {
      net::Json body = net::Json::Object();
      body.Set("tenant", net::Json::Str("batcher"));
      net::Json queries = net::Json::Array();
      double batch_eps = 0.0;
      for (int k = 0; k < 2; ++k) {
        const double epsilon = 0.001 * (1000 + b * 2 + k);
        net::Json entry = net::Json::Object();
        entry.Set("sql", net::Json::Str(sql));
        entry.Set("epsilon", net::Json::Number(epsilon));
        queries.Append(std::move(entry));
        batch_eps += epsilon;
      }
      body.Set("queries", std::move(queries));
      auto resp = client.Post("/v1/workload", body.Dump());
      if (!resp.ok() || resp->status != 200) {
        ++failures;
        continue;
      }
      auto parsed = net::Client::ParseBody(*resp);
      if (!parsed.ok() || parsed->Find("queries") == nullptr ||
          parsed->Find("queries")->items().size() != 2) {
        ++failures;
        continue;
      }
      for (const net::Json& entry : parsed->Find("queries")->items()) {
        const net::Json* ok = entry.Find("ok");
        if (ok == nullptr || !ok->AsBool()) ++failures;
      }
      batcher_spent += batch_eps;
    }
  });

  ingester.join();
  for (auto& r : readers) r.join();
  workloads.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);

  // Exact per-tenant accounting: distinct ε per request means no replays —
  // the ledger must hold exactly the sum of what each tenant's 200s cost.
  for (int t = 0; t < kReaders; ++t) {
    auto acct = service.ledger().Account(Format("reader-%d", t));
    ASSERT_TRUE(acct.ok());
    EXPECT_DOUBLE_EQ(acct->spent, reader_spent[static_cast<size_t>(t)]);
  }
  auto batcher = service.ledger().Account("batcher");
  ASSERT_TRUE(batcher.ok());
  EXPECT_DOUBLE_EQ(batcher->spent, batcher_spent);

  service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.ingest_batches, static_cast<uint64_t>(kIngestBatches));
  // Every recompile the hammer needed was either the first compile or a
  // declined/raced extension; extends + misses covers all fresh scaffolds.
  EXPECT_GE(stats.plan_cache.extends + stats.plan_cache.misses, 1u);
}

}  // namespace
}  // namespace dpstarj
