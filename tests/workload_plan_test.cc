// Tests for the workload-level shared-scan compiler (exec/workload_plan.h)
// and the layers above it: batched execution is bit-identical to one-at-a-time
// warm execution on the paper's SSB counting queries under randomized
// predicate overrides, the predicate CSE actually dedupes bitmap builds (the
// stats receipts prove it), multithreaded batch execution is deterministic
// across thread counts and repetitions, PredicateMechanism::AnswerBatch
// consumes the RNG exactly like sequential Answer calls, and the service's
// SubmitWorkload handles cache skips, partial failure and budget refunds.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/predicate_mechanism.h"
#include "exec/plan_cache.h"
#include "exec/scan_plan.h"
#include "exec/star_join_executor.h"
#include "exec/workload_plan.h"
#include "query/binder.h"
#include "service/query_service.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "test_catalog.h"

namespace dpstarj {
namespace {

using exec::ExecutorOptions;
using exec::QueryResult;
using exec::StarJoinExecutor;
using exec::WorkloadItem;
using exec::WorkloadPlan;

void ExpectBitIdentical(const QueryResult& expected, const QueryResult& got,
                        const std::string& what) {
  EXPECT_EQ(expected.grouped, got.grouped) << what;
  EXPECT_EQ(expected.scalar, got.scalar) << what;
  ASSERT_EQ(expected.groups.size(), got.groups.size()) << what;
  auto it = got.groups.begin();
  for (const auto& [label, value] : expected.groups) {
    EXPECT_EQ(label, it->first) << what;
    EXPECT_EQ(value, it->second) << what << " group " << label;
    ++it;
  }
}

// For double-SUM aggregates the single-query path (run-sorted sweep) and the
// batch path (probe-order accumulation) add the same terms in different
// orders, so only near-equality at double precision can be promised.
void ExpectNearIdentical(const QueryResult& expected, const QueryResult& got,
                         const std::string& what) {
  EXPECT_EQ(expected.grouped, got.grouped) << what;
  EXPECT_NEAR(expected.scalar, got.scalar,
              1e-9 * (1.0 + std::abs(expected.scalar)))
      << what;
  ASSERT_EQ(expected.groups.size(), got.groups.size()) << what;
  auto it = got.groups.begin();
  for (const auto& [label, value] : expected.groups) {
    EXPECT_EQ(label, it->first) << what;
    EXPECT_NEAR(value, it->second, 1e-9 * (1.0 + std::abs(value)))
        << what << " group " << label;
    ++it;
  }
}

int64_t RandInt(std::mt19937& rng, int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}

// Random per-dimension predicate replacements in domain-index space — the
// shape the Predicate Mechanism feeds every noisy run.
exec::PredicateOverrides MakeRandomOverrides(std::mt19937& rng,
                                             const query::BoundQuery& bound) {
  exec::PredicateOverrides overrides(bound.dims.size());
  for (size_t i = 0; i < bound.dims.size(); ++i) {
    if (bound.dims[i].predicates.empty()) continue;
    std::vector<query::BoundPredicate> noisy = bound.dims[i].predicates;
    for (auto& p : noisy) {
      int64_t m = p.domain.size();
      p.lo_index = RandInt(rng, 0, m - 1);
      p.hi_index = RandInt(rng, p.lo_index, m - 1);
      p.kind = p.lo_index == p.hi_index ? query::PredicateKind::kPoint
                                        : query::PredicateKind::kRange;
    }
    overrides[i] = std::move(noisy);
  }
  return overrides;
}

// ------------------------------------------ SSB batch ≡ sequential warm ----

// The paper's SSB queries (scalar counts Qc1–Qc4 and grouped sums Qg2/Qg4),
// answered two ways under the same randomized overrides: one at a time
// through the warm cached-plan path, and all together through one shared
// scan. Counting aggregates are exact, so they must match bit-for-bit at
// every thread count; the double-SUM queries must agree to within summation-
// reordering rounding (the two paths visit matching rows in different
// orders).
TEST(WorkloadPlanTest, SsbBatchMatchesSequentialWarmExecutionBitForBit) {
  ssb::SsbOptions gen;
  gen.scale_factor = 0.002;
  auto catalog = ssb::GenerateSsb(gen);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  query::Binder binder(&*catalog);

  std::vector<query::BoundQuery> bound;
  std::vector<std::shared_ptr<const exec::ScanPlan>> plans;
  for (const char* name : {"Qc1", "Qc2", "Qc3", "Qc4", "Qg2", "Qg4"}) {
    auto q = ssb::GetQuery(name);
    ASSERT_TRUE(q.ok()) << name;
    auto b = binder.Bind(*q);
    ASSERT_TRUE(b.ok()) << name << ": " << b.status().ToString();
    auto plan = exec::ScanPlan::Compile(*b);
    ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
    ASSERT_FALSE(plan->requires_scalar()) << name;
    bound.push_back(std::move(*b));
    plans.push_back(std::make_shared<exec::ScanPlan>(std::move(*plan)));
  }

  for (uint32_t seed = 1; seed <= 5; ++seed) {
    std::mt19937 rng(seed);
    std::vector<exec::PredicateOverrides> overrides;
    overrides.reserve(bound.size());
    for (const auto& b : bound) overrides.push_back(MakeRandomOverrides(rng, b));

    std::vector<WorkloadItem> items;
    for (size_t i = 0; i < bound.size(); ++i) {
      WorkloadItem item;
      item.query = &bound[i];
      item.overrides = &overrides[i];
      item.plan = plans[i];
      items.push_back(std::move(item));
    }
    auto wplan = WorkloadPlan::Compile(std::move(items));
    ASSERT_TRUE(wplan.ok()) << wplan.status().ToString();
    // One fact table, six queries, one sweep.
    EXPECT_EQ(wplan->stats().queries, 6);
    EXPECT_EQ(wplan->stats().scans, 1);

    for (int threads : {1, 4}) {
      ExecutorOptions options;
      options.exec_threads = threads;
      options.morsel_size = 257;  // dozens of morsels: real partial merging
      StarJoinExecutor executor(options);
      auto batched = wplan->Execute(options);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      ASSERT_EQ(batched->size(), bound.size());
      for (size_t i = 0; i < bound.size(); ++i) {
        auto sequential = executor.Execute(bound[i], overrides[i], *plans[i]);
        ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
        const std::string what = "seed " + std::to_string(seed) + " query " +
                                 std::to_string(i) + " threads " +
                                 std::to_string(threads);
        if (i < 4) {  // Qc1–Qc4: exact counts
          ExpectBitIdentical(*sequential, (*batched)[i], what);
        } else {  // Qg2/Qg4: double sums
          ExpectNearIdentical(*sequential, (*batched)[i], what);
        }
      }
    }
  }
}

// --------------------------------------------------------- predicate CSE ----

// Three queries over the toy schema: two share BOTH predicate lists verbatim,
// the third shares the customer predicate and joins Prod without filtering
// it. The compiler must build one bitmap per distinct (slot, predicate-list)
// node — 3 nodes for 6 references — and gather each dimension's FK column
// once (2 slots).
TEST(WorkloadPlanTest, CseDedupesIdenticalPredicateNodes) {
  auto catalog = testing_fixture::MakeToyCatalog();
  query::Binder binder(&catalog);

  query::StarJoinQuery a = testing_fixture::ToyCountQuery();
  query::StarJoinQuery b = testing_fixture::ToyCountQuery();  // A's twin
  query::StarJoinQuery c = testing_fixture::ToyCountQuery();
  c.predicates.pop_back();  // keep region='N', drop the Prod filter

  std::vector<query::BoundQuery> bound;
  std::vector<std::shared_ptr<const exec::ScanPlan>> plans;
  for (const auto& q : {a, b, c}) {
    auto bq = binder.Bind(q);
    ASSERT_TRUE(bq.ok()) << bq.status().ToString();
    auto plan = exec::ScanPlan::Compile(*bq);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    bound.push_back(std::move(*bq));
    plans.push_back(std::make_shared<exec::ScanPlan>(std::move(*plan)));
  }

  std::vector<WorkloadItem> items;
  for (size_t i = 0; i < bound.size(); ++i) {
    WorkloadItem item;
    item.query = &bound[i];
    item.plan = plans[i];
    items.push_back(std::move(item));
  }
  auto wplan = WorkloadPlan::Compile(std::move(items));
  ASSERT_TRUE(wplan.ok()) << wplan.status().ToString();

  const exec::WorkloadExecStats& stats = wplan->stats();
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.scans, 1);
  EXPECT_EQ(stats.predicate_refs, 6);   // 3 queries × 2 dims
  EXPECT_EQ(stats.predicate_nodes, 3);  // Cust[N], Prod[a], Prod[join-only]
  EXPECT_EQ(stats.shared_dim_slots, 2);

  // The deduped plan still answers correctly: region-N ∧ cat-a twice (= 2 on
  // the fixture), region-N unfiltered once (= 4 orders by ck ∈ {1,2}).
  auto results = wplan->Execute(ExecutorOptions{});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].scalar, 2.0);
  EXPECT_EQ((*results)[1].scalar, 2.0);
  EXPECT_EQ((*results)[2].scalar, 4.0);
}

// ------------------------------------------------ determinism / threads ----

// The merged result must not depend on the worker count or on which worker
// claimed which morsel: repeated executions at 1 and 4 threads all agree
// bit-for-bit. (Run under TSan, this is also the batch path's race check.)
TEST(WorkloadPlanTest, BatchExecutionIsDeterministicAcrossThreadCounts) {
  ssb::SsbOptions gen;
  gen.scale_factor = 0.002;
  auto catalog = ssb::GenerateSsb(gen);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  query::Binder binder(&*catalog);

  std::vector<query::BoundQuery> bound;
  std::vector<std::shared_ptr<const exec::ScanPlan>> plans;
  for (const char* name : {"Qc2", "Qg2", "Qg4"}) {
    auto q = ssb::GetQuery(name);
    ASSERT_TRUE(q.ok());
    auto b = binder.Bind(*q);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    auto plan = exec::ScanPlan::Compile(*b);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    bound.push_back(std::move(*b));
    plans.push_back(std::make_shared<exec::ScanPlan>(std::move(*plan)));
  }
  std::vector<WorkloadItem> items;
  for (size_t i = 0; i < bound.size(); ++i) {
    WorkloadItem item;
    item.query = &bound[i];
    item.plan = plans[i];
    items.push_back(std::move(item));
  }
  auto wplan = WorkloadPlan::Compile(std::move(items));
  ASSERT_TRUE(wplan.ok()) << wplan.status().ToString();

  ExecutorOptions reference_options;
  reference_options.exec_threads = 1;
  reference_options.morsel_size = 257;
  auto reference = wplan->Execute(reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (int threads : {1, 4}) {
    for (int rep = 0; rep < 3; ++rep) {
      ExecutorOptions options;
      options.exec_threads = threads;
      options.morsel_size = 257;
      auto got = wplan->Execute(options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->size(), reference->size());
      for (size_t i = 0; i < reference->size(); ++i) {
        ExpectBitIdentical((*reference)[i], (*got)[i],
                           "threads " + std::to_string(threads) + " rep " +
                               std::to_string(rep) + " query " +
                               std::to_string(i));
      }
    }
  }
}

// ------------------------------------------- mechanism RNG equivalence ----

// AnswerBatch perturbs queries in batch order with the same draws sequential
// Answer calls would make: two mechanisms seeded identically must produce
// bit-identical answers either way. This is the distribution-equivalence
// guarantee (batching is post-processing) made concrete for one seed.
TEST(WorkloadPlanTest, AnswerBatchMatchesSequentialAnswersOnSameSeed) {
  auto catalog = testing_fixture::MakeToyCatalog();
  query::Binder binder(&catalog);

  query::StarJoinQuery qa = testing_fixture::ToyCountQuery();
  query::StarJoinQuery qb = testing_fixture::ToyCountQuery();
  qb.predicates[0] =
      query::Predicate::Point("Cust", "region", storage::Value("S"));
  query::StarJoinQuery qc = testing_fixture::ToyCountQuery();
  qc.group_by.push_back({"Cust", "region"});

  std::vector<query::BoundQuery> bound;
  for (const auto& q : {qa, qb, qc}) {
    auto b = binder.Bind(q);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    bound.push_back(std::move(*b));
  }
  const double eps[3] = {0.8, 1.2, 2.0};

  core::PredicateMechanism mechanism;
  Rng seq_rng(42);
  std::vector<QueryResult> sequential;
  for (size_t i = 0; i < bound.size(); ++i) {
    auto r = mechanism.Answer(bound[i], eps[i], &seq_rng);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    sequential.push_back(std::move(*r));
  }

  Rng batch_rng(42);
  std::vector<core::BatchQueryRef> batch;
  for (size_t i = 0; i < bound.size(); ++i) batch.push_back({&bound[i], eps[i]});
  exec::WorkloadExecStats stats;
  auto results = mechanism.AnswerBatch(batch, &batch_rng, nullptr, &stats);
  ASSERT_EQ(results.size(), bound.size());
  for (size_t i = 0; i < bound.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].status().ToString();
    ExpectBitIdentical(sequential[i], *results[i],
                       "query " + std::to_string(i));
  }
  // All three rode one shared sweep.
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.scans, 1);

  // A null query inside the batch fails alone, without failing the batch.
  // (Its skipped draw shifts the neighbors' noise relative to the full
  // batch — only the error isolation is being checked here.)
  std::vector<core::BatchQueryRef> with_null = batch;
  with_null[1].query = nullptr;
  Rng rng3(42);
  auto partial = mechanism.AnswerBatch(with_null, &rng3);
  ASSERT_EQ(partial.size(), 3u);
  EXPECT_TRUE(partial[0].ok());
  EXPECT_FALSE(partial[1].ok());
  EXPECT_TRUE(partial[2].ok());
}

// ----------------------------------------------- service SubmitWorkload ----

const char* kSqlNA =
    "SELECT count(*) FROM Orders, Cust, Prod "
    "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
    "AND Cust.region = 'N' AND Prod.cat = 'a'";
const char* kSqlSB =
    "SELECT count(*) FROM Orders, Cust, Prod "
    "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
    "AND Cust.region = 'S' AND Prod.cat = 'b'";

TEST(ServiceWorkloadTest, BatchAnswersWithCacheSkipsAndPartialFailure) {
  auto catalog = testing_fixture::MakeToyCatalog();
  service::ServiceOptions opts;
  opts.num_engines = 1;
  service::QueryService svc(&catalog, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 10.0).ok());

  // Warm the answer cache with one paid single-query answer.
  auto warm = svc.Answer(kSqlNA, 0.5, "t");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  std::vector<service::WorkloadQuerySpec> specs = {
      {kSqlNA, 0.5},            // cache hit: replayed, ε refunded
      {kSqlSB, 0.25},           // fresh: rides the shared scan
      {"SELECT nope", 0.25},    // bind failure: its ε refunded, rest answer
  };
  auto outcome = svc.SubmitWorkload(specs, "t").get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->queries.size(), 3u);

  EXPECT_TRUE(outcome->queries[0].status.ok());
  EXPECT_TRUE(outcome->queries[0].cached);
  EXPECT_EQ(outcome->queries[0].result.scalar, warm->scalar);
  EXPECT_TRUE(outcome->queries[1].status.ok());
  EXPECT_FALSE(outcome->queries[1].cached);
  EXPECT_FALSE(outcome->queries[2].status.ok());

  // The tenant paid for the warm answer and the one fresh workload query;
  // the cached replay and the bind failure flowed back.
  EXPECT_NEAR(*svc.ledger().Spent("t"), 0.75, 1e-12);

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.workload_batches, 1u);
  EXPECT_EQ(stats.workload_queries_fresh, 1u);
  EXPECT_EQ(stats.workload_queries_cached, 1u);
  EXPECT_EQ(stats.workload_queries_failed, 1u);
  EXPECT_EQ(stats.workload_cache_skips, 1u);
  // The batch's queries also count into the regular lifecycle series.
  EXPECT_EQ(stats.submitted, 4u);   // 1 single + 3 batch
  EXPECT_EQ(stats.completed, 3u);   // warm + cached + fresh
  EXPECT_EQ(stats.failed, 1u);

  // A second identical batch replays both answers entirely from cache.
  auto again = svc.SubmitWorkload({{kSqlNA, 0.5}, {kSqlSB, 0.25}}, "t").get();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->queries[0].cached);
  EXPECT_TRUE(again->queries[1].cached);
  EXPECT_NEAR(*svc.ledger().Spent("t"), 0.75, 1e-12);
  EXPECT_EQ(svc.Stats().workload_cache_skips, 3u);
}

TEST(ServiceWorkloadTest, UnderfundedBatchIsRefusedWholeWithNoPartialSpend) {
  auto catalog = testing_fixture::MakeToyCatalog();
  service::QueryService svc(&catalog, service::ServiceOptions{});
  ASSERT_TRUE(svc.RegisterTenant("poor", 0.6).ok());

  auto refused =
      svc.SubmitWorkload({{kSqlNA, 0.5}, {kSqlSB, 0.5}}, "poor").get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_NEAR(*svc.ledger().Spent("poor"), 0.0, 1e-12);
  EXPECT_EQ(svc.Stats().workload_batches, 0u);
  EXPECT_EQ(svc.Stats().rejected_budget, 2u);

  // The in-flight slots flowed back: a fundable batch still goes through.
  auto ok = svc.SubmitWorkload({{kSqlNA, 0.3}, {kSqlSB, 0.3}}, "poor").get();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->queries[0].status.ok());
  EXPECT_TRUE(ok->queries[1].status.ok());
}

}  // namespace
}  // namespace dpstarj
