// Tests for query canonicalization — the cache-key normalization that lets
// the service's AnswerCache recognize re-submissions of the same query.

#include <gtest/gtest.h>

#include "query/binder.h"
#include "query/canonical.h"
#include "test_catalog.h"

namespace dpstarj::query {
namespace {

class CanonicalTest : public ::testing::Test {
 protected:
  CanonicalTest() : catalog_(testing_fixture::MakeToyCatalog()), binder_(&catalog_) {}

  std::string KeyOf(const std::string& sql) {
    auto bound = binder_.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << sql << " -> " << bound.status().ToString();
    return CanonicalKey(*bound);
  }

  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(CanonicalTest, FormattingAndOrderInvariant) {
  std::string a = KeyOf(
      "SELECT count(*) FROM Orders, Cust, Prod "
      "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
      "AND Cust.region = 'N' AND Prod.cat = 'a'");
  // Different join-list order, predicate order, and whitespace.
  std::string b = KeyOf(
      "SELECT   count(*)  FROM Prod, Orders, Cust "
      "WHERE Prod.cat = 'a' AND Orders.pk = Prod.pk "
      "AND Cust.region = 'N' AND Orders.ck = Cust.ck");
  EXPECT_EQ(a, b);
}

TEST_F(CanonicalTest, RangeSpellingsCollapseInIndexSpace) {
  // tier domain is IntRange(1, 4): `tier <= 2` and `tier < 3` both bind to
  // index range [0, 1].
  std::string le = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.tier <= 2");
  std::string lt = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.tier < 3");
  std::string between = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.tier BETWEEN 1 AND 2");
  EXPECT_EQ(le, lt);
  EXPECT_EQ(le, between);
}

TEST_F(CanonicalTest, DifferentConstantsDiffer) {
  std::string n = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.region = 'N'");
  std::string s = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.region = 'S'");
  EXPECT_NE(n, s);
}

TEST_F(CanonicalTest, AggregateAndMeasureMatter) {
  std::string count = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.region = 'N'");
  std::string sum = KeyOf(
      "SELECT sum(qty) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.region = 'N'");
  std::string price = KeyOf(
      "SELECT sum(price) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.region = 'N'");
  EXPECT_NE(count, sum);
  EXPECT_NE(sum, price);
}

TEST_F(CanonicalTest, GroupByOrderIsPreserved) {
  // Group-key order fixes the rendered group labels, so it is part of the key.
  std::string rt = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.tier <= 4 GROUP BY Cust.region, Cust.tier");
  std::string tr = KeyOf(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.tier <= 4 GROUP BY Cust.tier, Cust.region");
  EXPECT_NE(rt, tr);
}

TEST_F(CanonicalTest, EpsilonExtendsTheKey) {
  auto bound = binder_.BindSql(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.region = 'N'");
  ASSERT_TRUE(bound.ok());
  EXPECT_NE(CanonicalKey(*bound, 0.5), CanonicalKey(*bound, 1.0));
  EXPECT_EQ(CanonicalKey(*bound, 0.5), CanonicalKey(*bound, 0.5));
  EXPECT_NE(CanonicalKey(*bound), CanonicalKey(*bound, 0.5));
}

}  // namespace
}  // namespace dpstarj::query
