// Tests for the Catalog (foreign keys, referential integrity) and CSV I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/catalog.h"
#include "storage/csv.h"

namespace dpstarj::storage {
namespace {

std::shared_ptr<Table> MakeDim() {
  Schema schema({Field("id", ValueType::kInt64), Field("attr", ValueType::kString)});
  auto t = *Table::Create("Dim", schema, "id");
  EXPECT_TRUE(t->AppendRow({Value(int64_t{1}), Value("a")}).ok());
  EXPECT_TRUE(t->AppendRow({Value(int64_t{2}), Value("b")}).ok());
  return t;
}

std::shared_ptr<Table> MakeFact(std::vector<int64_t> fks) {
  Schema schema({Field("fk", ValueType::kInt64), Field("w", ValueType::kDouble)});
  auto t = *Table::Create("Fact", schema);
  for (int64_t k : fks) {
    EXPECT_TRUE(t->AppendRow({Value(k), Value(1.0)}).ok());
  }
  return t;
}

TEST(CatalogTest, AddAndLookup) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(MakeDim()).ok());
  EXPECT_TRUE(cat.HasTable("Dim"));
  EXPECT_FALSE(cat.HasTable("Nope"));
  EXPECT_TRUE(cat.GetTable("Dim").ok());
  EXPECT_FALSE(cat.GetTable("Nope").ok());
  EXPECT_FALSE(cat.AddTable(MakeDim()).ok());  // duplicate name
  EXPECT_FALSE(cat.AddTable(nullptr).ok());
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(MakeDim()).ok());
  ASSERT_TRUE(cat.AddTable(MakeFact({1, 2, 1})).ok());
  // References a non-pk column.
  EXPECT_FALSE(cat.AddForeignKey({"Fact", "fk", "Dim", "attr"}).ok());
  // Bad column names.
  EXPECT_FALSE(cat.AddForeignKey({"Fact", "nope", "Dim", "id"}).ok());
  EXPECT_FALSE(cat.AddForeignKey({"Fact", "fk", "Dim", "nope"}).ok());
  // Good.
  ASSERT_TRUE(cat.AddForeignKey({"Fact", "fk", "Dim", "id"}).ok());
  EXPECT_EQ(cat.foreign_keys().size(), 1u);
  EXPECT_TRUE(cat.ForeignKeyBetween("Fact", "Dim").ok());
  EXPECT_FALSE(cat.ForeignKeyBetween("Dim", "Fact").ok());
  EXPECT_EQ(cat.ForeignKeysFrom("Fact").size(), 1u);
}

TEST(CatalogTest, IntegrityPassesAndFails) {
  {
    Catalog cat;
    ASSERT_TRUE(cat.AddTable(MakeDim()).ok());
    ASSERT_TRUE(cat.AddTable(MakeFact({1, 2})).ok());
    ASSERT_TRUE(cat.AddForeignKey({"Fact", "fk", "Dim", "id"}).ok());
    EXPECT_TRUE(cat.ValidateIntegrity().ok());
  }
  {
    Catalog cat;
    ASSERT_TRUE(cat.AddTable(MakeDim()).ok());
    ASSERT_TRUE(cat.AddTable(MakeFact({1, 99})).ok());  // dangling key 99
    ASSERT_TRUE(cat.AddForeignKey({"Fact", "fk", "Dim", "id"}).ok());
    Status st = cat.ValidateIntegrity();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST(CatalogTest, TableNamesInOrder) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(MakeDim()).ok());
  ASSERT_TRUE(cat.AddTable(MakeFact({1})).ok());
  auto names = cat.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "Dim");
  EXPECT_EQ(names[1], "Fact");
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() / "dpstarj_csv_test.csv";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTrip) {
  Schema schema({Field("id", ValueType::kInt64), Field("name", ValueType::kString),
                 Field("score", ValueType::kDouble)});
  auto t = *Table::Create("T", schema, "id");
  ASSERT_TRUE(t->AppendRow({Value(int64_t{1}), Value("plain"), Value(1.5)}).ok());
  ASSERT_TRUE(
      t->AppendRow({Value(int64_t{2}), Value("with,comma"), Value(-2.25)}).ok());
  ASSERT_TRUE(
      t->AppendRow({Value(int64_t{3}), Value("with\"quote"), Value(0.0)}).ok());
  ASSERT_TRUE(WriteCsv(*t, path_.string()).ok());

  auto back = ReadCsv(path_.string(), "T", schema, "id");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)->num_rows(), 3);
  EXPECT_EQ((*back)->column(1).GetString(1), "with,comma");
  EXPECT_EQ((*back)->column(1).GetString(2), "with\"quote");
  EXPECT_DOUBLE_EQ((*back)->column(2).GetDouble(1), -2.25);
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  Schema schema({Field("id", ValueType::kInt64)});
  auto t = *Table::Create("T", schema);
  ASSERT_TRUE(t->AppendRow({Value(int64_t{1})}).ok());
  ASSERT_TRUE(WriteCsv(*t, path_.string()).ok());

  Schema other({Field("different", ValueType::kInt64)});
  auto r = ReadCsv(path_.string(), "T", other);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(CsvTest, BadCellRejectedWithLineNumber) {
  {
    std::ofstream out(path_);
    out << "id\n1\nnot_a_number\n";
  }
  Schema schema({Field("id", ValueType::kInt64)});
  auto r = ReadCsv(path_.string(), "T", schema);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST_F(CsvTest, MissingFileIsIoError) {
  Schema schema({Field("id", ValueType::kInt64)});
  auto r = ReadCsv("/nonexistent/path/file.csv", "T", schema);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dpstarj::storage
