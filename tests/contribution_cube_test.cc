// Tests for the contribution index (baseline sensitivities) and the data
// cube, cross-checked against the executor.

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/contribution_index.h"
#include "exec/data_cube.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "test_catalog.h"

namespace dpstarj::exec {
namespace {

using query::Binder;
using query::Predicate;
using query::StarJoinQuery;
using storage::Value;
using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

class ContributionTest : public ::testing::Test {
 protected:
  ContributionTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(ContributionTest, FactPrivateEachRowIsAnIndividual) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.predicates.push_back(Predicate::Point("Cust", "region", Value("N")));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Orders"});
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  // 4 matching fact rows, each contributing 1.
  EXPECT_EQ(idx->contributions.size(), 4u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 1.0);
  EXPECT_DOUBLE_EQ(idx->total, 4.0);
}

TEST_F(ContributionTest, DimensionPrivateGroupsByKey) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  // No predicate: every customer contributes its fan-out (2 each).
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->contributions.size(), 6u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 2.0);
  EXPECT_DOUBLE_EQ(idx->total, 12.0);
}

TEST_F(ContributionTest, PredicateRestrictsContributions) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust"});
  ASSERT_TRUE(idx.ok());
  // Matching rows: (1,1), (2,1) → customers 1 and 2, one row each.
  EXPECT_EQ(idx->contributions.size(), 2u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 1.0);
  EXPECT_DOUBLE_EQ(idx->total, 2.0);
}

TEST_F(ContributionTest, MultiplePrivateDimensionsGroupByConjunction) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust", "Prod"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust", "Prod"});
  ASSERT_TRUE(idx.ok());
  // Every (ck,pk) pair in the fixture is distinct → 12 individuals of 1.
  EXPECT_EQ(idx->contributions.size(), 12u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 1.0);
}

TEST_F(ContributionTest, SumUsesWeights) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust"});
  ASSERT_TRUE(idx.ok());
  // ck3 owns qty 2+5=7, the maximum.
  EXPECT_DOUBLE_EQ(idx->max_contribution, 7.0);
  EXPECT_DOUBLE_EQ(idx->total, 27.0);
}

TEST_F(ContributionTest, TruncatedTotal) {
  ContributionIndex idx;
  idx.contributions = {5.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(2.0), 5.0);   // 2+2+1
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(10.0), 8.0);  // untruncated
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(0.0), 0.0);
}

TEST_F(ContributionTest, Errors) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(BuildContributionIndex(*bound, {}).ok());
  EXPECT_FALSE(BuildContributionIndex(*bound, {"Nope"}).ok());
}

class CubeTest : public ::testing::Test {
 protected:
  CubeTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(CubeTest, TotalsMatchExecutor) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->axes().size(), 2u);
  EXPECT_EQ(cube->num_cells(), 12);  // 3 regions × 4 cats
  EXPECT_EQ(cube->dropped_rows(), 0);
  EXPECT_DOUBLE_EQ(cube->total(), 12.0);

  // Evaluating the query's own predicates must equal the executor.
  auto preds = bound->Predicates();
  auto cube_answer = cube->Evaluate(preds);
  ASSERT_TRUE(cube_answer.ok());
  StarJoinExecutor executor;
  auto exec_answer = executor.Execute(*bound);
  ASSERT_TRUE(exec_answer.ok());
  EXPECT_DOUBLE_EQ(*cube_answer, exec_answer->scalar);
}

TEST_F(CubeTest, CellValues) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  // Region N (idx 0) × cat a (idx 0): rows (1,1),(2,1) → 2.
  EXPECT_DOUBLE_EQ(cube->CellAt({0, 0}), 2.0);
  // Region E (idx 2) × cat b (idx 1): rows (5,2),(6,2) → 2.
  EXPECT_DOUBLE_EQ(cube->CellAt({2, 1}), 2.0);
}

TEST_F(CubeTest, EvaluateWeightedMatchesIndicator) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  // Indicator weights equal to the predicates → same answer as Evaluate.
  std::vector<std::vector<double>> weights = {{1, 0, 0}, {1, 0, 0, 0}};
  auto w = cube->EvaluateWeighted(weights);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(*w, 2.0);
  // Fractional weights scale linearly.
  weights[0] = {0.5, 0, 0};
  EXPECT_DOUBLE_EQ(*cube->EvaluateWeighted(weights), 1.0);
}

TEST_F(CubeTest, Marginals) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  auto region_marginal = cube->Marginal(0);
  ASSERT_TRUE(region_marginal.ok());
  EXPECT_EQ(region_marginal->size(), 3u);
  EXPECT_DOUBLE_EQ((*region_marginal)[0], 4.0);  // region N rows
  EXPECT_DOUBLE_EQ((*region_marginal)[1], 4.0);
  EXPECT_DOUBLE_EQ((*region_marginal)[2], 4.0);
  EXPECT_FALSE(cube->Marginal(5).ok());
}

TEST_F(CubeTest, SumCube) {
  StarJoinQuery q = ToyCountQuery();
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  EXPECT_DOUBLE_EQ(cube->total(), 27.0);
  // N × a: qty 2 (row 1,1) + 3 (row 2,1) = 5.
  EXPECT_DOUBLE_EQ(cube->CellAt({0, 0}), 5.0);
}

TEST_F(CubeTest, ErrorsAndGuards) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(DataCube::Build(*bound, {}).ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  EXPECT_FALSE(cube->Evaluate({}).ok());  // arity
  EXPECT_FALSE(cube->EvaluateWeighted({{1, 0, 0}}).ok());
  EXPECT_FALSE(cube->EvaluateWeighted({{1, 0}, {1, 0, 0, 0}}).ok());
}

// Property: cube evaluation ≡ executor for random predicates.
class CubeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CubeEquivalence, MatchesExecutor) {
  storage::Catalog catalog = MakeToyCatalog();
  Binder binder(&catalog);
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 3);

  int64_t rlo = rng.UniformInt(0, 2), rhi = rng.UniformInt(rlo, 2);
  int64_t clo = rng.UniformInt(0, 3), chi = rng.UniformInt(clo, 3);
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust", "Prod"};
  q.predicates.push_back(Predicate::RangeIndex("Cust", "region", rlo, rhi));
  q.predicates.push_back(Predicate::RangeIndex("Prod", "cat", clo, chi));
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  StarJoinExecutor executor;
  auto exec_r = executor.Execute(*bound);
  auto cube_r = cube->Evaluate(bound->Predicates());
  ASSERT_TRUE(exec_r.ok());
  ASSERT_TRUE(cube_r.ok());
  EXPECT_DOUBLE_EQ(exec_r->scalar, *cube_r);
}

INSTANTIATE_TEST_SUITE_P(RandomRanges, CubeEquivalence, ::testing::Range(0, 20));

}  // namespace
}  // namespace dpstarj::exec
