// Tests for the contribution index (baseline sensitivities) and the data
// cube, cross-checked against the executor.

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/contribution_index.h"
#include "exec/data_cube.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "test_catalog.h"

namespace dpstarj::exec {
namespace {

using query::Binder;
using query::Predicate;
using query::StarJoinQuery;
using storage::Value;
using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

class ContributionTest : public ::testing::Test {
 protected:
  ContributionTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(ContributionTest, FactPrivateEachRowIsAnIndividual) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.predicates.push_back(Predicate::Point("Cust", "region", Value("N")));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Orders"});
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  // 4 matching fact rows, each contributing 1.
  EXPECT_EQ(idx->contributions.size(), 4u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 1.0);
  EXPECT_DOUBLE_EQ(idx->total, 4.0);
}

TEST_F(ContributionTest, DimensionPrivateGroupsByKey) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  // No predicate: every customer contributes its fan-out (2 each).
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->contributions.size(), 6u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 2.0);
  EXPECT_DOUBLE_EQ(idx->total, 12.0);
}

TEST_F(ContributionTest, PredicateRestrictsContributions) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust"});
  ASSERT_TRUE(idx.ok());
  // Matching rows: (1,1), (2,1) → customers 1 and 2, one row each.
  EXPECT_EQ(idx->contributions.size(), 2u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 1.0);
  EXPECT_DOUBLE_EQ(idx->total, 2.0);
}

TEST_F(ContributionTest, MultiplePrivateDimensionsGroupByConjunction) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust", "Prod"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust", "Prod"});
  ASSERT_TRUE(idx.ok());
  // Every (ck,pk) pair in the fixture is distinct → 12 individuals of 1.
  EXPECT_EQ(idx->contributions.size(), 12u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 1.0);
}

TEST_F(ContributionTest, SumUsesWeights) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto idx = BuildContributionIndex(*bound, {"Cust"});
  ASSERT_TRUE(idx.ok());
  // ck3 owns qty 2+5=7, the maximum.
  EXPECT_DOUBLE_EQ(idx->max_contribution, 7.0);
  EXPECT_DOUBLE_EQ(idx->total, 27.0);
}

TEST_F(ContributionTest, TruncatedTotal) {
  ContributionIndex idx;
  idx.contributions = {5.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(2.0), 5.0);   // 2+2+1
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(10.0), 8.0);  // untruncated
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(0.0), 0.0);
}

TEST_F(ContributionTest, Errors) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(BuildContributionIndex(*bound, {}).ok());
  EXPECT_FALSE(BuildContributionIndex(*bound, {"Nope"}).ok());
}

class CubeTest : public ::testing::Test {
 protected:
  CubeTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(CubeTest, TotalsMatchExecutor) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->axes().size(), 2u);
  EXPECT_EQ(cube->num_cells(), 12);  // 3 regions × 4 cats
  EXPECT_EQ(cube->dropped_rows(), 0);
  EXPECT_DOUBLE_EQ(cube->total(), 12.0);

  // Evaluating the query's own predicates must equal the executor.
  auto preds = bound->Predicates();
  auto cube_answer = cube->Evaluate(preds);
  ASSERT_TRUE(cube_answer.ok());
  StarJoinExecutor executor;
  auto exec_answer = executor.Execute(*bound);
  ASSERT_TRUE(exec_answer.ok());
  EXPECT_DOUBLE_EQ(*cube_answer, exec_answer->scalar);
}

TEST_F(CubeTest, CellValues) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  // Region N (idx 0) × cat a (idx 0): rows (1,1),(2,1) → 2.
  EXPECT_DOUBLE_EQ(cube->CellAt({0, 0}), 2.0);
  // Region E (idx 2) × cat b (idx 1): rows (5,2),(6,2) → 2.
  EXPECT_DOUBLE_EQ(cube->CellAt({2, 1}), 2.0);
}

TEST_F(CubeTest, EvaluateWeightedMatchesIndicator) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  // Indicator weights equal to the predicates → same answer as Evaluate.
  std::vector<std::vector<double>> weights = {{1, 0, 0}, {1, 0, 0, 0}};
  auto w = cube->EvaluateWeighted(weights);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(*w, 2.0);
  // Fractional weights scale linearly.
  weights[0] = {0.5, 0, 0};
  EXPECT_DOUBLE_EQ(*cube->EvaluateWeighted(weights), 1.0);
}

TEST_F(CubeTest, Marginals) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  auto region_marginal = cube->Marginal(0);
  ASSERT_TRUE(region_marginal.ok());
  EXPECT_EQ(region_marginal->size(), 3u);
  EXPECT_DOUBLE_EQ((*region_marginal)[0], 4.0);  // region N rows
  EXPECT_DOUBLE_EQ((*region_marginal)[1], 4.0);
  EXPECT_DOUBLE_EQ((*region_marginal)[2], 4.0);
  EXPECT_FALSE(cube->Marginal(5).ok());
}

TEST_F(CubeTest, SumCube) {
  StarJoinQuery q = ToyCountQuery();
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  EXPECT_DOUBLE_EQ(cube->total(), 27.0);
  // N × a: qty 2 (row 1,1) + 3 (row 2,1) = 5.
  EXPECT_DOUBLE_EQ(cube->CellAt({0, 0}), 5.0);
}

TEST_F(CubeTest, ErrorsAndGuards) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(DataCube::Build(*bound, {}).ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  EXPECT_FALSE(cube->Evaluate({}).ok());  // arity
  EXPECT_FALSE(cube->EvaluateWeighted({{1, 0, 0}}).ok());
  EXPECT_FALSE(cube->EvaluateWeighted({{1, 0}, {1, 0, 0, 0}}).ok());
}

// Property: cube evaluation ≡ executor for random predicates.
class CubeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CubeEquivalence, MatchesExecutor) {
  storage::Catalog catalog = MakeToyCatalog();
  Binder binder(&catalog);
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 3);

  int64_t rlo = rng.UniformInt(0, 2), rhi = rng.UniformInt(rlo, 2);
  int64_t clo = rng.UniformInt(0, 3), chi = rng.UniformInt(clo, 3);
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust", "Prod"};
  q.predicates.push_back(Predicate::RangeIndex("Cust", "region", rlo, rhi));
  q.predicates.push_back(Predicate::RangeIndex("Prod", "cat", clo, chi));
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  StarJoinExecutor executor;
  auto exec_r = executor.Execute(*bound);
  auto cube_r = cube->Evaluate(bound->Predicates());
  ASSERT_TRUE(exec_r.ok());
  ASSERT_TRUE(cube_r.ok());
  EXPECT_DOUBLE_EQ(exec_r->scalar, *cube_r);
}

INSTANTIATE_TEST_SUITE_P(RandomRanges, CubeEquivalence, ::testing::Range(0, 20));

// Every cell of two cubes, plus totals and dropped-row accounting.
void ExpectCubesBitIdentical(const DataCube& expected, const DataCube& got) {
  ASSERT_EQ(expected.axes().size(), got.axes().size());
  EXPECT_EQ(expected.num_cells(), got.num_cells());
  EXPECT_EQ(expected.dropped_rows(), got.dropped_rows());
  EXPECT_EQ(expected.total(), got.total());
  std::vector<int64_t> sizes;
  for (int a = 0; a < static_cast<int>(expected.axes().size()); ++a) {
    sizes.push_back(expected.axes()[static_cast<size_t>(a)].domain.size());
  }
  std::vector<int64_t> idx(sizes.size(), 0);
  for (int64_t cell = 0; cell < expected.num_cells(); ++cell) {
    EXPECT_EQ(expected.CellAt(idx), got.CellAt(idx));
    for (int a = static_cast<int>(sizes.size()) - 1; a >= 0; --a) {
      if (++idx[static_cast<size_t>(a)] < sizes[static_cast<size_t>(a)]) break;
      idx[static_cast<size_t>(a)] = 0;
    }
  }
}

TEST_F(CubeTest, VectorizedBuildMatchesLegacyBitForBit) {
  for (bool as_sum : {false, true}) {
    StarJoinQuery q = ToyCountQuery();
    if (as_sum) {
      q.aggregate = query::AggregateKind::kSum;
      q.measure_terms = {{"qty", 1.0}};
    }
    auto bound = binder_.Bind(q);
    ASSERT_TRUE(bound.ok());

    CubeOptions legacy;
    legacy.force_legacy = true;
    auto reference = DataCube::BuildFromQueryPredicates(*bound, legacy);
    ASSERT_TRUE(reference.ok());

    for (int threads : {1, 2, 4}) {
      CubeOptions options;
      options.threads = threads;
      options.morsel_size = 5;  // force several morsels on the 12-row fact
      auto got = DataCube::BuildFromQueryPredicates(*bound, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectCubesBitIdentical(*reference, *got);
    }
  }
}

TEST_F(CubeTest, DroppedRowAccountingMatchesAcrossBuilds) {
  // D(k pk, v ∈ [0,2]) with one out-of-domain value; F references a missing
  // key too — both kinds of rows must be dropped identically by every build.
  storage::Catalog catalog;
  storage::Schema dim_schema(
      {storage::Field("k", storage::ValueType::kInt64),
       storage::Field("v", storage::ValueType::kInt64,
                      storage::AttributeDomain::IntRange(0, 2))});
  auto dim = *storage::Table::Create("D", dim_schema, "k");
  ASSERT_TRUE(dim->AppendRow({Value(int64_t{1}), Value(int64_t{0})}).ok());
  ASSERT_TRUE(dim->AppendRow({Value(int64_t{2}), Value(int64_t{5})}).ok());  // out of domain
  ASSERT_TRUE(dim->AppendRow({Value(int64_t{3}), Value(int64_t{2})}).ok());

  storage::Schema fact_schema({storage::Field("fk", storage::ValueType::kInt64),
                               storage::Field("m", storage::ValueType::kDouble)});
  auto fact = *storage::Table::Create("F", fact_schema);
  for (int64_t fk : {1, 2, 3, 99}) {  // 99 = dangling foreign key
    ASSERT_TRUE(fact->AppendRow({Value(fk), Value(1.0)}).ok());
  }
  ASSERT_TRUE(catalog.AddTable(dim).ok());
  ASSERT_TRUE(catalog.AddTable(fact).ok());
  ASSERT_TRUE(catalog.AddForeignKey({"F", "fk", "D", "k"}).ok());

  StarJoinQuery q;
  q.fact_table = "F";
  q.joined_tables = {"D"};
  q.predicates.push_back(Predicate::RangeIndex("D", "v", 0, 2));
  Binder binder(&catalog);
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  CubeOptions legacy;
  legacy.force_legacy = true;
  auto reference = DataCube::BuildFromQueryPredicates(*bound, legacy);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->dropped_rows(), 2);  // fk=2 (bad value) and fk=99
  EXPECT_DOUBLE_EQ(reference->total(), 2.0);

  for (int threads : {1, 4}) {
    CubeOptions options;
    options.threads = threads;
    options.morsel_size = 2;
    auto got = DataCube::BuildFromQueryPredicates(*bound, options);
    ASSERT_TRUE(got.ok());
    ExpectCubesBitIdentical(*reference, *got);
  }
}

TEST_F(CubeTest, EvaluateBoxSweepMatchesMaskReference) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    query::BoundPredicate p0 = bound->dims[0].predicates[0];
    query::BoundPredicate p1 = bound->dims[1].predicates[0];
    p0.lo_index = rng.UniformInt(0, 2);
    p0.hi_index = rng.UniformInt(p0.lo_index, 2);
    p1.lo_index = rng.UniformInt(0, 3);
    p1.hi_index = rng.UniformInt(p1.lo_index, 3);
    std::vector<const query::BoundPredicate*> preds = {&p0, &p1};
    // Mask reference: walk every cell, apply Matches per axis.
    double expected = 0.0;
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        if (p0.Matches(i) && p1.Matches(j)) expected += cube->CellAt({i, j});
      }
    }
    auto got = cube->Evaluate(preds);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(expected, *got) << "trial " << trial;
  }
}

}  // namespace
}  // namespace dpstarj::exec
