// End-to-end integration tests: SSB generation → SQL → DP answering with PM
// and the baselines, checking the paper's qualitative claims (error shrinks
// with ε, PM beats the baselines on dimension-private star joins, budget
// accounting holds across a session).

#include <gtest/gtest.h>

#include "baselines/local_sensitivity.h"
#include "baselines/r2t.h"
#include "common/math_util.h"
#include "core/dp_star_join.h"
#include "exec/data_cube.h"
#include "query/binder.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "ssb/workloads.h"

namespace dpstarj {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions opt;
    opt.scale_factor = 0.02;
    auto catalog = ssb::GenerateSsb(opt);
    DPSTARJ_CHECK(catalog.ok(), "ssb generation");
    catalog_ = new storage::Catalog(std::move(*catalog));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* IntegrationTest::catalog_ = nullptr;

TEST_F(IntegrationTest, PmAnswersAllNineSsbQueries) {
  core::DpStarJoinOptions opts;
  opts.seed = 1;
  core::DpStarJoin engine(catalog_, opts);
  for (const auto& name : ssb::AllQueryNames()) {
    auto q = ssb::GetQuery(name);
    ASSERT_TRUE(q.ok());
    auto noisy = engine.Answer(*q, 0.5);
    ASSERT_TRUE(noisy.ok()) << name << ": " << noisy.status().ToString();
    auto truth = engine.TrueAnswer(*q);
    ASSERT_TRUE(truth.ok());
    EXPECT_GT(truth->Total(), 0.0) << name;
  }
}

TEST_F(IntegrationTest, PmErrorDecreasesWithEpsilonOnQc3) {
  auto q = ssb::GetQuery("Qc3");
  ASSERT_TRUE(q.ok());
  query::Binder binder(catalog_);
  auto bound = binder.Bind(*q);
  ASSERT_TRUE(bound.ok());
  auto cube = exec::DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  double truth = *cube->Evaluate(bound->Predicates());
  ASSERT_GT(truth, 0.0);

  core::PredicateMechanism pm;
  auto mean_error = [&](double eps) {
    Rng rng(99);
    std::vector<double> errs;
    for (int i = 0; i < 120; ++i) {
      auto est = pm.AnswerWithCube(*bound, *cube, eps, &rng);
      EXPECT_TRUE(est.ok());
      errs.push_back(RelativeErrorPercent(*est, truth));
    }
    return Mean(errs);
  };
  // In the paper's ε range the per-predicate Laplace scale exceeds the
  // domain sizes (saturated regime) and PM's error is essentially flat; the
  // decrease becomes unambiguous once ε_i ≫ domain, so compare against a
  // clearly unsaturated budget.
  double saturated = mean_error(0.1);
  double unsaturated = mean_error(500.0);
  EXPECT_LT(unsaturated, saturated + 1e-9);
  EXPECT_LT(unsaturated, 25.0);
}

TEST_F(IntegrationTest, PmBeatsLsOnDimensionPrivateCount) {
  // The paper's headline (Table 1): PM ≪ LS on counting star joins with
  // private dimensions. Compare mean relative error over repeated runs.
  auto q = ssb::GetQuery("Qc3");
  ASSERT_TRUE(q.ok());
  query::Binder binder(catalog_);
  auto bound = binder.Bind(*q);
  ASSERT_TRUE(bound.ok());
  auto cube = exec::DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  double truth = *cube->Evaluate(bound->Predicates());

  double eps = 0.2;
  Rng rng(7);
  core::PredicateMechanism pm;
  std::vector<double> pm_errs, ls_errs;
  dp::PrivacyScenario scenario = dp::PrivacyScenario::Dimensions({"Customer"});
  for (int i = 0; i < 60; ++i) {
    auto p = pm.AnswerWithCube(*bound, *cube, eps, &rng);
    ASSERT_TRUE(p.ok());
    pm_errs.push_back(RelativeErrorPercent(*p, truth));
    auto l = baselines::AnswerWithLocalSensitivity(*bound, scenario, eps, &rng);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ls_errs.push_back(RelativeErrorPercent(*l, truth));
  }
  EXPECT_LT(Mean(pm_errs), Mean(ls_errs));
}

TEST_F(IntegrationTest, R2tRunsOnSsbCountQueries) {
  auto q = ssb::GetQuery("Qc2");
  ASSERT_TRUE(q.ok());
  query::Binder binder(catalog_);
  auto bound = binder.Bind(*q);
  ASSERT_TRUE(bound.ok());
  Rng rng(8);
  auto r = baselines::AnswerWithR2t(
      *bound, dp::PrivacyScenario::Dimensions({"Supplier"}), 1.0, &rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(*r, 0.0);
}

TEST_F(IntegrationTest, WorkloadsRunEndToEnd) {
  core::DpStarJoinOptions opts;
  opts.seed = 3;
  core::DpStarJoin engine(catalog_, opts);
  auto w1 = ssb::WorkloadW1();
  ASSERT_TRUE(w1.ok());
  auto attrs = ssb::WorkloadAttributes();
  auto truth = engine.TrueWorkload(*w1, attrs);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(truth->size(), 11u);
  auto wd = engine.AnswerWorkload(*w1, attrs, 1.0, /*decompose=*/true);
  ASSERT_TRUE(wd.ok()) << wd.status().ToString();
  auto pm = engine.AnswerWorkload(*w1, attrs, 1.0, /*decompose=*/false);
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(wd->size(), 11u);
  EXPECT_EQ(pm->size(), 11u);
}

TEST_F(IntegrationTest, SessionBudgetExhaustsAcrossQueries) {
  core::DpStarJoinOptions opts;
  opts.seed = 4;
  opts.total_budget = 1.0;
  core::DpStarJoin engine(catalog_, opts);
  auto q = ssb::GetQuery("Qc1");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.Answer(*q, 0.5).ok());
  ASSERT_TRUE(engine.Answer(*q, 0.5).ok());
  auto third = engine.Answer(*q, 0.5);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_NEAR(engine.RemainingBudget().value(), 0.0, 1e-9);
}

TEST_F(IntegrationTest, SqlRoundTripUnderDp) {
  core::DpStarJoin engine(catalog_);
  auto sql = ssb::GetQuerySql("Qc3");
  ASSERT_TRUE(sql.ok());
  auto noisy = engine.AnswerSql(*sql, 5.0);
  ASSERT_TRUE(noisy.ok()) << noisy.status().ToString();
  auto truth = engine.TrueAnswerSql(*sql);
  ASSERT_TRUE(truth.ok());
  // Loose sanity: at ε = 5 the noisy count is within an order of magnitude.
  EXPECT_LT(RelativeErrorPercent(noisy->scalar, truth->scalar), 400.0);
}

TEST_F(IntegrationTest, GroupByUnderDpKeepsRealLabels) {
  core::DpStarJoin engine(catalog_);
  auto q = ssb::GetQuery("Qg2");
  ASSERT_TRUE(q.ok());
  auto noisy = engine.Answer(*q, 2.0);
  ASSERT_TRUE(noisy.ok());
  ASSERT_TRUE(noisy->grouped);
  auto truth = engine.TrueAnswer(*q);
  ASSERT_TRUE(truth.ok());
  // Noisy grouping uses real (year|brand) labels, so every estimated group
  // label must parse like one of the true label universe's shapes.
  for (const auto& [label, value] : noisy->groups) {
    EXPECT_NE(label.find('|'), std::string::npos);
    (void)value;
  }
  EXPECT_GE(noisy->MeanRelativeErrorPercent(*truth), 0.0);
}

}  // namespace
}  // namespace dpstarj
