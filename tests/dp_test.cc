// Tests for the DP primitives: budget accounting, the release mechanisms,
// sensitivity machinery, and the (a,b)-private scenario model.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "dp/budget.h"
#include "dp/mechanism.h"
#include "dp/neighboring.h"
#include "dp/sensitivity.h"

namespace dpstarj::dp {
namespace {

TEST(BudgetTest, SpendAndExhaust) {
  PrivacyBudget b(1.0);
  EXPECT_DOUBLE_EQ(b.total(), 1.0);
  ASSERT_TRUE(b.Spend(0.4).ok());
  EXPECT_DOUBLE_EQ(b.spent(), 0.4);
  EXPECT_DOUBLE_EQ(b.remaining(), 0.6);
  ASSERT_TRUE(b.Spend(0.6).ok());
  Status st = b.Spend(0.01);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kBudgetExhausted);
}

TEST(BudgetTest, RejectsNonPositiveSpend) {
  PrivacyBudget b(1.0);
  EXPECT_FALSE(b.Spend(0.0).ok());
  EXPECT_FALSE(b.Spend(-0.1).ok());
}

TEST(BudgetTest, RejectsNonFiniteSpendAndRefund) {
  // NaN passes a naive `<= 0.0` check and, once accumulated, makes every
  // overdraft comparison false — the account would admit everything.
  PrivacyBudget b(1.0);
  EXPECT_FALSE(b.Spend(std::nan("")).ok());
  EXPECT_FALSE(b.Spend(std::numeric_limits<double>::infinity()).ok());
  EXPECT_DOUBLE_EQ(b.spent(), 0.0);
  ASSERT_TRUE(b.Spend(0.5).ok());
  EXPECT_FALSE(b.Refund(std::nan("")).ok());
  EXPECT_DOUBLE_EQ(b.spent(), 0.5);
  // The account still enforces its limit after the rejected inputs.
  EXPECT_FALSE(b.Spend(0.6).ok());
}

TEST(BudgetTest, FloatingPointSplitsSumToTotal) {
  PrivacyBudget b(1.0);
  auto shares = b.SplitRemaining(3);
  ASSERT_TRUE(shares.ok());
  for (double s : *shares) ASSERT_TRUE(b.Spend(s).ok()) << b.ToString();
  EXPECT_NEAR(b.remaining(), 0.0, 1e-9);
}

TEST(BudgetTest, SplitErrors) {
  PrivacyBudget b(1.0);
  EXPECT_FALSE(b.SplitRemaining(0).ok());
  ASSERT_TRUE(b.Spend(1.0).ok());
  EXPECT_FALSE(b.SplitRemaining(2).ok());
}

TEST(BudgetTest, RefundRestoresBudget) {
  PrivacyBudget b(1.0);
  ASSERT_TRUE(b.Spend(0.7).ok());
  ASSERT_TRUE(b.Refund(0.3).ok());
  EXPECT_NEAR(b.spent(), 0.4, 1e-15);
  EXPECT_NEAR(b.remaining(), 0.6, 1e-15);
  // Refund can never mint budget: refunding more than spent is an error.
  Status st = b.Refund(0.5);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(b.Refund(0.0).ok());
  EXPECT_FALSE(b.Refund(-1.0).ok());
  // A full refund brings the account back to zero exactly.
  ASSERT_TRUE(b.Refund(0.4).ok());
  EXPECT_DOUBLE_EQ(b.spent(), 0.0);
}

TEST(BudgetTest, MillionTinySpendsDoNotDrift) {
  // Regression: naive `spent_ += eps` accumulates rounding error over many
  // tiny spends (a random walk of ~1e-11 after 1e6 additions), eating into
  // kTolerance. Kahan summation keeps the account exact to ~1 ulp.
  constexpr int kSpends = 1000000;
  constexpr double kEps = 1e-6;
  PrivacyBudget b(1.0);
  for (int i = 0; i < kSpends; ++i) {
    ASSERT_TRUE(b.Spend(kEps).ok()) << "spend " << i << ": " << b.ToString();
  }
  // 1e6 · double(1e-6) == 1.0 + 2e-17; the compensated sum must land there,
  // far tighter than the ~1e-11 drift of naive accumulation.
  EXPECT_NEAR(b.spent(), 1.0, 1e-12);
  EXPECT_NEAR(b.remaining(), 0.0, 1e-12);
  // The account is exhausted: one more tiny spend must be refused.
  Status st = b.Spend(1e-5);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kBudgetExhausted);
}

TEST(BudgetTest, MillionSpendRefundPairsStayExact) {
  PrivacyBudget b(1.0);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(b.Spend(1e-4).ok());
    ASSERT_TRUE(b.Refund(1e-4).ok());
  }
  EXPECT_NEAR(b.spent(), 0.0, 1e-12);
  // The full budget is still available after the churn.
  EXPECT_TRUE(b.Spend(1.0).ok());
}

TEST(LaplaceMechanismTest, NoiseStatistics) {
  Rng rng(3);
  double sensitivity = 2.0, epsilon = 0.5;
  std::vector<double> xs(100000);
  for (auto& x : xs) {
    x = *LaplaceMechanism::Release(10.0, sensitivity, epsilon, &rng);
  }
  EXPECT_NEAR(Mean(xs), 10.0, 0.1);
  double var = StdDev(xs) * StdDev(xs);
  EXPECT_NEAR(var, LaplaceMechanism::Variance(sensitivity, epsilon),
              0.05 * LaplaceMechanism::Variance(sensitivity, epsilon));
}

TEST(LaplaceMechanismTest, ParameterValidation) {
  Rng rng(1);
  EXPECT_FALSE(LaplaceMechanism::Release(0, 1, 0, &rng).ok());
  EXPECT_FALSE(LaplaceMechanism::Release(0, -1, 1, &rng).ok());
  EXPECT_FALSE(LaplaceMechanism::Release(0, 1, 1, nullptr).ok());
  // Zero sensitivity → exact answer.
  EXPECT_DOUBLE_EQ(*LaplaceMechanism::Release(7, 0, 1, &rng), 7.0);
}

TEST(CauchyMechanismTest, BetaAndNoiseLevel) {
  // γ = 4: β = ε/10, noise level (10·SS/ε)² (paper §4).
  EXPECT_DOUBLE_EQ(CauchyMechanism::Beta(1.0), 0.1);
  EXPECT_DOUBLE_EQ(CauchyMechanism::NoiseLevel(3.0, 1.0), 900.0);
}

TEST(CauchyMechanismTest, ReleaseCentersOnValue) {
  Rng rng(5);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = *CauchyMechanism::Release(100.0, 1.0, 1.0, &rng);
  EXPECT_NEAR(Median(xs), 100.0, 2.0);
}

TEST(SmoothLaplaceTest, Beta) {
  EXPECT_NEAR(SmoothLaplaceMechanism::Beta(1.0, 0.01), 1.0 / (2 * std::log(200.0)),
              1e-12);
  Rng rng(1);
  EXPECT_TRUE(SmoothLaplaceMechanism::Release(1.0, 2.0, 0.5, &rng).ok());
  EXPECT_FALSE(SmoothLaplaceMechanism::Release(1.0, -1.0, 0.5, &rng).ok());
}

TEST(SmoothSensitivityTest, MatchesBruteForce) {
  // LS^{(t)} = min(5 + t, 20).
  auto ls = [](int64_t t) { return std::min<double>(5.0 + t, 20.0); };
  double beta = 0.3;
  auto got = SmoothSensitivity(beta, 100, 20.0, ls);
  ASSERT_TRUE(got.ok());
  double want = 0.0;
  for (int64_t t = 0; t <= 100; ++t) {
    want = std::max(want, std::exp(-beta * t) * ls(t));
  }
  EXPECT_NEAR(*got, want, 1e-12);
}

TEST(SmoothSensitivityTest, EarlyStopMatchesFullScan) {
  auto ls = [](int64_t t) { return std::min<double>(1.0 + t, 64.0); };
  auto with_cap = SmoothSensitivity(0.05, 1000, 64.0, ls);
  auto without_cap = SmoothSensitivity(0.05, 1000, 0.0, ls);
  ASSERT_TRUE(with_cap.ok());
  ASSERT_TRUE(without_cap.ok());
  EXPECT_DOUBLE_EQ(*with_cap, *without_cap);
}

TEST(SmoothSensitivityTest, Validation) {
  auto ls = [](int64_t) { return 1.0; };
  EXPECT_FALSE(SmoothSensitivity(0.0, 10, 1.0, ls).ok());
  EXPECT_FALSE(SmoothSensitivity(0.5, -1, 1.0, ls).ok());
  EXPECT_FALSE(SmoothSensitivity(0.5, 10, 1.0, nullptr).ok());
  auto neg = SmoothSensitivity(0.5, 10, 0.0, [](int64_t) { return -1.0; });
  EXPECT_FALSE(neg.ok());
}

TEST(KStarSmoothSensitivityTest, GrowsWithDegreeAndK) {
  std::vector<int64_t> degrees = {3, 5, 2, 5, 1};
  auto s2 = KStarSmoothSensitivity(degrees, 2, 10, 0.1);
  auto s3 = KStarSmoothSensitivity(degrees, 3, 10, 0.1);
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(s3.ok());
  EXPECT_GT(*s2, 0.0);
  // Larger caps admit more sensitivity.
  auto s2_small_cap = KStarSmoothSensitivity(degrees, 2, 5, 0.1);
  ASSERT_TRUE(s2_small_cap.ok());
  EXPECT_LE(*s2_small_cap, *s2);
}

TEST(KStarSmoothSensitivityTest, SmoothnessProperty) {
  // SS must satisfy SS(D) ≤ e^β · SS(D′) for neighboring degree sequences
  // (one node's degree changed by one).
  std::vector<int64_t> d1 = {4, 7, 3, 9, 2};
  std::vector<int64_t> d2 = d1;
  d2[3] += 1;  // neighbor at distance 1
  double beta = 0.2;
  auto s1 = KStarSmoothSensitivity(d1, 2, 50, beta);
  auto s2 = KStarSmoothSensitivity(d2, 2, 50, beta);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_LE(*s1, std::exp(beta) * *s2 + 1e-9);
  EXPECT_LE(*s2, std::exp(beta) * *s1 + 1e-9);
}

TEST(KStarSmoothSensitivityTest, Validation) {
  EXPECT_FALSE(KStarSmoothSensitivity({1, 2}, 0, 5, 0.1).ok());
  EXPECT_FALSE(KStarSmoothSensitivity({1, 2}, 2, -1, 0.1).ok());
}

TEST(ScenarioTest, Construction) {
  auto fact_only = PrivacyScenario::FactOnly("Lineorder");
  EXPECT_EQ(fact_only.a(), 1);
  EXPECT_EQ(fact_only.b(), 0);
  EXPECT_EQ(fact_only.ToString(), "(1,0)-private");

  auto dims = PrivacyScenario::Dimensions({"Customer", "Supplier"});
  EXPECT_EQ(dims.a(), 0);
  EXPECT_EQ(dims.b(), 2);
  EXPECT_EQ(dims.PrivateTables().size(), 2u);

  auto both = PrivacyScenario::FactAndDimensions("Lineorder", {"Customer"});
  EXPECT_EQ(both.a(), 1);
  EXPECT_EQ(both.b(), 1);
  ASSERT_EQ(both.PrivateTables().size(), 2u);
  EXPECT_EQ(both.PrivateTables()[0], "Lineorder");
}

TEST(ScenarioTest, Validation) {
  query::StarJoinQuery q;
  q.fact_table = "F";
  q.joined_tables = {"D1", "D2"};

  EXPECT_TRUE(PrivacyScenario::FactOnly("F").Validate(q).ok());
  EXPECT_FALSE(PrivacyScenario::FactOnly("Other").Validate(q).ok());
  EXPECT_TRUE(PrivacyScenario::Dimensions({"D1"}).Validate(q).ok());
  EXPECT_FALSE(PrivacyScenario::Dimensions({"D3"}).Validate(q).ok());
  EXPECT_FALSE(PrivacyScenario::Dimensions({}).Validate(q).ok());
}

}  // namespace
}  // namespace dpstarj::dp
