// Tests for the graph substrate: construction, truncation, generators, and
// k-star counting (closed form vs explicit enumeration, known graphs).

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "graph/kstar.h"

namespace dpstarj::graph {
namespace {

Graph Star(int64_t leaves) {
  // Node 0 is the hub.
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return *Graph::FromEdges(leaves + 1, std::move(edges));
}

Graph Clique(int64_t n) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return *Graph::FromEdges(n, std::move(edges));
}

Graph Path(int64_t n) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return *Graph::FromEdges(n, std::move(edges));
}

TEST(GraphTest, ConstructionAndDegrees) {
  Graph g = Star(4);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degrees()[0], 4);
  EXPECT_EQ(g.degrees()[1], 1);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.adjacency()[0].size(), 4u);
}

TEST(GraphTest, RejectsBadEdges) {
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 0}}).ok());          // self-loop
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 5}}).ok());          // out of range
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 1}, {1, 0}}).ok());  // duplicate
}

TEST(GraphTest, DegreePercentile) {
  Graph g = Star(9);  // degrees: 9,1,1,...,1
  EXPECT_EQ(g.DegreePercentile(0.5), 1);
  EXPECT_EQ(g.DegreePercentile(1.0), 9);
  EXPECT_EQ(g.DegreePercentile(0.0), 1);
}

TEST(GraphTest, TruncationRemovesHighDegreeNodes) {
  Graph g = Star(5);
  Graph t = g.TruncateDegrees(3);
  // Hub (degree 5) is removed with all its edges.
  EXPECT_EQ(t.num_nodes(), g.num_nodes());
  EXPECT_EQ(t.num_edges(), 0);
  // Cap above max keeps everything.
  Graph same = g.TruncateDegrees(5);
  EXPECT_EQ(same.num_edges(), 5);
}

TEST(GraphTest, EdgeTableHasBothOrientations) {
  Graph g = Path(3);
  auto table = g.ToEdgeTable("Edge");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 4);  // 2 edges × 2 directions
  // from_id carries the node-id domain for PM.
  const auto& field = (*table)->schema().field(0);
  ASSERT_TRUE(field.domain.has_value());
  EXPECT_EQ(field.domain->size(), 3);
}

TEST(KStarIndexTest, ClosedFormsOnKnownGraphs) {
  // Star with L leaves: Σ C(deg, 2) = C(L,2) at the hub, 0 elsewhere.
  KStarIndex star2(Star(6), 2);
  EXPECT_DOUBLE_EQ(star2.total(), 15.0);
  // Clique K_n: every node has degree n−1 → n·C(n−1, k).
  KStarIndex clique2(Clique(5), 2);
  EXPECT_DOUBLE_EQ(clique2.total(), 5 * BinomialCoefficient(4, 2));
  KStarIndex clique3(Clique(5), 3);
  EXPECT_DOUBLE_EQ(clique3.total(), 5 * BinomialCoefficient(4, 3));
  // Path with n ≥ 3: inner nodes have degree 2 → (n−2) 2-stars.
  KStarIndex path2(Path(6), 2);
  EXPECT_DOUBLE_EQ(path2.total(), 4.0);
}

TEST(KStarIndexTest, RangeCounting) {
  Graph g = Star(4);  // only node 0 has stars
  KStarIndex idx(g, 2);
  EXPECT_DOUBLE_EQ(idx.CountRange(0, 4), 6.0);
  EXPECT_DOUBLE_EQ(idx.CountRange(1, 4), 0.0);
  EXPECT_DOUBLE_EQ(idx.CountRange(0, 0), 6.0);
  // Clamping.
  EXPECT_DOUBLE_EQ(idx.CountRange(-5, 100), 6.0);
  EXPECT_DOUBLE_EQ(idx.CountRange(3, 1), 0.0);
}

TEST(EnumerateTest, MatchesIndexOnKnownGraphs) {
  Deadline no_limit(0.0);
  for (int k = 1; k <= 3; ++k) {
    Graph g = Clique(6);
    KStarIndex idx(g, k);
    KStarQuery q{k, 0, g.num_nodes() - 1};
    auto enumerated = EnumerateKStars(g, q, no_limit);
    ASSERT_TRUE(enumerated.ok());
    EXPECT_DOUBLE_EQ(*enumerated, idx.total()) << "k=" << k;
  }
}

TEST(EnumerateTest, ContributionsArePerCenter) {
  Graph g = Star(4);
  Deadline no_limit(0.0);
  std::vector<double> contributions;
  auto total = EnumerateKStars(g, {2, 0, 4}, no_limit, &contributions);
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(contributions.size(), 1u);  // only the hub
  EXPECT_DOUBLE_EQ(contributions[0], 6.0);
}

TEST(EnumerateTest, DeadlineTriggersTimeLimit) {
  Graph g = Clique(60);  // ~60·C(59,2) ≈ 10^5 tuples for k=2… use k=3
  Deadline tiny(1e-9);
  auto r = EnumerateKStars(g, {3, 0, g.num_nodes() - 1}, tiny);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeLimit);
}

TEST(EnumerateTest, K4RecursiveWalk) {
  Graph g = Clique(7);
  Deadline no_limit(0.0);
  auto r = EnumerateKStars(g, {4, 0, 6}, no_limit);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 7 * BinomialCoefficient(6, 4));
}

// Property: enumeration ≡ closed form on random power-law graphs.
class EnumerationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EnumerationEquivalence, RandomGraphs) {
  GeneratorOptions opt;
  opt.num_nodes = 150;
  opt.num_edges = 400;
  opt.seed = static_cast<uint64_t>(GetParam()) * 19 + 1;
  auto g = GeneratePowerLawGraph(opt);
  ASSERT_TRUE(g.ok());
  Deadline no_limit(0.0);
  for (int k = 2; k <= 3; ++k) {
    KStarIndex idx(*g, k);
    int64_t lo = GetParam() % 50;
    int64_t hi = 149 - (GetParam() % 30);
    auto e = EnumerateKStars(*g, {k, lo, hi}, no_limit);
    ASSERT_TRUE(e.ok());
    EXPECT_DOUBLE_EQ(*e, idx.CountRange(lo, hi)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumerationEquivalence, ::testing::Range(0, 10));

TEST(GeneratorTest, ProducesRequestedShape) {
  GeneratorOptions opt;
  opt.num_nodes = 2000;
  opt.num_edges = 6000;
  opt.seed = 3;
  auto g = GeneratePowerLawGraph(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 2000);
  EXPECT_NEAR(static_cast<double>(g->num_edges()), 6000.0, 600.0);
  // Heavy tail: the max degree dwarfs the mean.
  double mean_deg = 2.0 * static_cast<double>(g->num_edges()) / 2000.0;
  EXPECT_GT(static_cast<double>(g->max_degree()), 4.0 * mean_deg);
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  GeneratorOptions opt;
  opt.num_nodes = 500;
  opt.num_edges = 1500;
  opt.seed = 9;
  auto a = GeneratePowerLawGraph(opt);
  auto b = GeneratePowerLawGraph(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->edges(), b->edges());
}

TEST(GeneratorTest, NamedGeneratorsScale) {
  auto deezer = GenerateDeezerLike(0.01, 1);
  ASSERT_TRUE(deezer.ok());
  EXPECT_EQ(deezer->num_nodes(), 1440);
  auto amazon = GenerateAmazonLike(0.01, 1);
  ASSERT_TRUE(amazon.ok());
  EXPECT_EQ(amazon->num_nodes(), 3350);
  EXPECT_FALSE(GenerateDeezerLike(0.0, 1).ok());
  EXPECT_FALSE(GenerateAmazonLike(1.5, 1).ok());
}

TEST(GeneratorTest, Validation) {
  GeneratorOptions opt;
  opt.num_nodes = 1;
  EXPECT_FALSE(GeneratePowerLawGraph(opt).ok());
  opt.num_nodes = 10;
  opt.num_edges = 0;
  EXPECT_FALSE(GeneratePowerLawGraph(opt).ok());
  opt.num_edges = 100;  // too dense for 10 nodes (max simple = 45)
  EXPECT_FALSE(GeneratePowerLawGraph(opt).ok());
}

}  // namespace
}  // namespace dpstarj::graph
