// PlanCache + ScanPlan behavior: cached-plan execution equals fresh-build
// execution bit-for-bit, invalidation fires when a table grows, equivalent
// query spellings share one plan, the cache is safe under concurrent use
// (run under TSan via the build-tsan / CI TSan configuration), and the plan
// path never changes Predicate Mechanism noise semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/predicate_mechanism.h"
#include "exec/plan_cache.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "service/query_service.h"
#include "test_catalog.h"

namespace dpstarj {
namespace {

using exec::PlanCache;
using exec::PredicateOverrides;
using exec::QueryResult;
using exec::ScanPlan;
using exec::StarJoinExecutor;
using storage::Value;
using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

void ExpectBitIdentical(const QueryResult& expected, const QueryResult& got) {
  EXPECT_EQ(expected.grouped, got.grouped);
  EXPECT_EQ(expected.scalar, got.scalar);
  ASSERT_EQ(expected.groups.size(), got.groups.size());
  auto it = got.groups.begin();
  for (const auto& [label, value] : expected.groups) {
    EXPECT_EQ(label, it->first);
    EXPECT_EQ(value, it->second) << "group " << label;
    ++it;
  }
}

query::StarJoinQuery ToyGroupedQuery() {
  query::StarJoinQuery q = ToyCountQuery();
  q.name = "toy_grouped";
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  q.group_by = {{"Cust", "region"}, {"Prod", "cat"}};
  return q;
}

TEST(PlanCacheTest, CachedPlanMatchesFreshExecutionAndCountsHits) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  PlanCache cache(8);
  StarJoinExecutor executor;

  for (const auto& q : {ToyCountQuery(), ToyGroupedQuery()}) {
    auto bound = binder.Bind(q);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto fresh = executor.Execute(*bound);
    ASSERT_TRUE(fresh.ok());

    auto plan = cache.GetOrCompile(*bound);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    for (int rep = 0; rep < 3; ++rep) {
      auto got = executor.Execute(*bound, PredicateOverrides(bound->dims.size()),
                                  **plan);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitIdentical(*fresh, *got);
    }
    auto again = cache.GetOrCompile(*bound);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->get(), plan->get());  // same shared plan object
  }
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, InvalidatesWhenATableGrows) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  PlanCache cache(8);
  StarJoinExecutor executor;

  auto bound = binder.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto plan = cache.GetOrCompile(*bound);
  ASSERT_TRUE(plan.ok());
  auto before = executor.Execute(*bound, PredicateOverrides(bound->dims.size()),
                                 **plan);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->scalar, 2.0);  // fixture ground truth

  // Append a matching fact row (and a new customer it references): the
  // cached plan's row counts are stale now.
  auto cust = catalog.GetTable("Cust");
  ASSERT_TRUE(cust.ok());
  ASSERT_TRUE((*cust)->AppendRow({Value(int64_t{7}), Value("N"), Value(int64_t{1})}).ok());
  auto orders = catalog.GetTable("Orders");
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(
      (*orders)
          ->AppendRow({Value(int64_t{7}), Value(int64_t{1}), Value(int64_t{9}),
                       Value(90.0)})
          .ok());

  // Executing the stale plan directly is refused, not silently wrong.
  auto stale = executor.Execute(*bound, PredicateOverrides(bound->dims.size()),
                                **plan);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);

  // The cache notices and recompiles.
  auto recompiled = cache.GetOrCompile(*bound);
  ASSERT_TRUE(recompiled.ok());
  EXPECT_NE(recompiled->get(), plan->get());
  // A grown *dimension* is an identity invalidation — there is no append
  // path to splice, so the extension counter must stay untouched.
  EXPECT_EQ(cache.GetStats().invalidations, 1u);
  EXPECT_EQ(cache.GetStats().invalidated_identity, 1u);
  EXPECT_EQ(cache.GetStats().invalidated_append, 0u);
  EXPECT_EQ(cache.GetStats().extends, 0u);

  auto fresh = executor.Execute(*bound);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->scalar, 3.0);  // the appended row matches region N × cat a
  auto got = executor.Execute(*bound, PredicateOverrides(bound->dims.size()),
                              **recompiled);
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*fresh, *got);
}

TEST(PlanCacheTest, ExtendsInsteadOfInvalidatingWhenOnlyFactGrows) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  PlanCache cache(8);
  StarJoinExecutor executor;

  auto bound = binder.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto plan = cache.GetOrCompile(*bound);
  ASSERT_TRUE(plan.ok());

  // Grow only the fact table (the FK resolves to an existing customer): the
  // stale entry is revalidated by tail extension, not thrown away.
  auto orders = catalog.GetTable("Orders");
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(
      (*orders)
          ->AppendRow({Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{9}),
                       Value(90.0)})
          .ok());
  auto grown = binder.Bind(ToyCountQuery());
  ASSERT_TRUE(grown.ok());
  auto extended = cache.GetOrCompile(*grown);
  ASSERT_TRUE(extended.ok());
  EXPECT_NE(extended->get(), plan->get());  // a new immutable plan object

  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1u);  // only the initial compile
  EXPECT_EQ(stats.hits, 1u);    // the extension counts as a (revalidated) hit
  EXPECT_EQ(stats.extends, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.invalidated_append, 0u);
  EXPECT_EQ(stats.invalidated_identity, 0u);

  // The extended plan answers exactly like the fresh pipeline on the grown
  // table, and a re-lookup at the same row count is a plain hit on it.
  auto fresh = executor.Execute(*grown);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->scalar, 3.0);  // appended row: ck=1 (region N) × pk=1 (cat a)
  auto got = executor.Execute(*grown, PredicateOverrides(grown->dims.size()),
                              **extended);
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*fresh, *got);
  auto again = cache.GetOrCompile(*grown);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), extended->get());
  EXPECT_EQ(cache.GetStats().hits, 2u);
  EXPECT_EQ(cache.GetStats().extends, 1u);
}

TEST(PlanCacheTest, CountsAppendInvalidationWhenExtensionIsDeclined) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  PlanCache cache(8);

  // Group by a fact column so the plan packs qty (fixture range 1..5 →
  // base 1, 3-bit field) into the group code.
  query::StarJoinQuery q = ToyCountQuery();
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"price", 1.0}};
  q.group_by = {{"Orders", "qty"}};
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto plan = cache.GetOrCompile(*bound);
  ASSERT_TRUE(plan.ok());

  // qty=9 has ordinal 8 > the field mask 7: the tail cannot be spliced into
  // the compiled layout, so this append-stale entry must recompile and land
  // in the *append* invalidation counter.
  auto orders = catalog.GetTable("Orders");
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(
      (*orders)
          ->AppendRow({Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{9}),
                       Value(90.0)})
          .ok());
  auto grown = binder.Bind(q);
  ASSERT_TRUE(grown.ok());
  auto recompiled = cache.GetOrCompile(*grown);
  ASSERT_TRUE(recompiled.ok());
  EXPECT_NE(recompiled->get(), plan->get());

  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.extends, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.invalidated_append, 1u);
  EXPECT_EQ(stats.invalidated_identity, 0u);
}

TEST(PlanCacheTest, EquivalentSpellingsShareOnePlan) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  PlanCache cache(8);
  StarJoinExecutor executor;

  // Same query, predicates declared in opposite order: the canonical key
  // collapses them, so the second bind is a cache hit.
  query::StarJoinQuery q1;
  q1.fact_table = "Orders";
  q1.joined_tables = {"Cust"};
  q1.aggregate = query::AggregateKind::kCount;
  q1.predicates.push_back(query::Predicate::Point("Cust", "region", Value("N")));
  q1.predicates.push_back(
      query::Predicate::Range("Cust", "tier", Value(int64_t{1}), Value(int64_t{2})));
  query::StarJoinQuery q2 = q1;
  std::swap(q2.predicates[0], q2.predicates[1]);

  auto b1 = binder.Bind(q1);
  auto b2 = binder.Bind(q2);
  ASSERT_TRUE(b1.ok() && b2.ok());

  auto p1 = cache.GetOrCompile(*b1);
  auto p2 = cache.GetOrCompile(*b2);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->get(), p2->get());
  EXPECT_EQ(cache.GetStats().hits, 1u);

  auto fresh = executor.Execute(*b2);
  ASSERT_TRUE(fresh.ok());
  auto got =
      executor.Execute(*b2, PredicateOverrides(b2->dims.size()), **p2);
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*fresh, *got);
}

TEST(PlanCacheTest, BoundIndependentKeySharesPlanAcrossFilterConstants) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  PlanCache cache(8);
  StarJoinExecutor executor;

  // Same logical query, four different tier ranges: the scaffold is bound-
  // independent, so all four share one compiled plan (and each still gets
  // its own correct answer through its own predicate bitmap).
  std::shared_ptr<const ScanPlan> first;
  for (int64_t hi = 1; hi <= 4; ++hi) {
    query::StarJoinQuery q;
    q.fact_table = "Orders";
    q.joined_tables = {"Cust"};
    q.aggregate = query::AggregateKind::kCount;
    q.predicates.push_back(query::Predicate::Range(
        "Cust", "tier", Value(int64_t{1}), Value(hi)));
    auto bound = binder.Bind(q);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto plan = cache.GetOrCompile(*bound);
    ASSERT_TRUE(plan.ok());
    if (first == nullptr) {
      first = *plan;
    } else {
      EXPECT_EQ(first.get(), plan->get()) << "hi=" << hi;
    }
    auto fresh = executor.Execute(*bound);
    auto got =
        executor.Execute(*bound, PredicateOverrides(bound->dims.size()), **plan);
    ASSERT_TRUE(fresh.ok() && got.ok());
    ExpectBitIdentical(*fresh, *got);
  }
  EXPECT_EQ(cache.GetStats().misses, 1u);
  EXPECT_EQ(cache.GetStats().hits, 3u);
}

TEST(PlanCacheTest, EmptyGroupByDimensionCompilesAndAnswersEmpty) {
  // A grouped query joining a dimension with zero rows: every fact row
  // resolves to the absent sentinel, so the answer is empty — the plan path
  // must agree with the fresh pipeline instead of touching empty rep_rows.
  storage::Catalog catalog;
  storage::Schema dim_schema(
      {storage::Field("k", storage::ValueType::kInt64),
       storage::Field("v", storage::ValueType::kInt64,
                      storage::AttributeDomain::IntRange(0, 2))});
  auto dim = *storage::Table::Create("D", dim_schema, "k");  // left empty
  storage::Schema fact_schema({storage::Field("fk", storage::ValueType::kInt64),
                               storage::Field("m", storage::ValueType::kInt64)});
  auto fact = *storage::Table::Create("F", fact_schema);
  for (int64_t r = 0; r < 5; ++r) {
    ASSERT_TRUE(fact->AppendRow({Value(r), Value(int64_t{1})}).ok());
  }
  ASSERT_TRUE(catalog.AddTable(dim).ok());
  ASSERT_TRUE(catalog.AddTable(fact).ok());
  ASSERT_TRUE(catalog.AddForeignKey({"F", "fk", "D", "k"}).ok());

  query::StarJoinQuery q;
  q.fact_table = "F";
  q.joined_tables = {"D"};
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"m", 1.0}};
  q.group_by = {{"D", "v"}};
  query::Binder binder(&catalog);
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  StarJoinExecutor executor;
  auto fresh = executor.Execute(*bound);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->groups.empty());

  PlanCache cache(4);
  auto plan = cache.GetOrCompile(*bound);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto got =
      executor.Execute(*bound, PredicateOverrides(bound->dims.size()), **plan);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitIdentical(*fresh, *got);
}

TEST(PlanCacheTest, ConcurrentSharedCacheIsSafe) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  auto cache = std::make_shared<PlanCache>(4);

  auto bound_count = binder.Bind(ToyCountQuery());
  auto bound_group = binder.Bind(ToyGroupedQuery());
  ASSERT_TRUE(bound_count.ok() && bound_group.ok());
  StarJoinExecutor executor;
  auto expect_count = executor.Execute(*bound_count);
  auto expect_group = executor.Execute(*bound_group);
  ASSERT_TRUE(expect_count.ok() && expect_group.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      const query::BoundQuery& bound = t % 2 == 0 ? *bound_count : *bound_group;
      const QueryResult& expected = t % 2 == 0 ? *expect_count : *expect_group;
      StarJoinExecutor local;
      for (int i = 0; i < 50; ++i) {
        if (t == 0 && i % 16 == 7) cache->Clear();  // exercise the clear race
        auto plan = cache->GetOrCompile(bound);
        if (!plan.ok()) {
          ++failures;
          continue;
        }
        auto got = local.Execute(bound, PredicateOverrides(bound.dims.size()),
                                 **plan);
        if (!got.ok() || got->scalar != expected.scalar ||
            got->groups != expected.groups) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(PlanCacheTest, PlanPathDoesNotChangePmNoiseSemantics) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);

  for (const auto& q : {ToyCountQuery(), ToyGroupedQuery()}) {
    auto bound = binder.Bind(q);
    ASSERT_TRUE(bound.ok());

    // The mechanism's (cached-plan) answer must be bit-identical to manually
    // drawing the same noise and executing fresh: plan reuse is pure
    // post-processing of an identical noisy query.
    core::PredicateMechanism pm;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Rng mech_rng(seed);
      auto via_pm = pm.Answer(*bound, 0.7, &mech_rng);
      ASSERT_TRUE(via_pm.ok()) << via_pm.status().ToString();

      Rng manual_rng(seed);
      auto overrides = pm.PerturbPredicates(*bound, 0.7, &manual_rng);
      ASSERT_TRUE(overrides.ok());
      StarJoinExecutor fresh_executor;
      auto via_fresh = fresh_executor.Execute(*bound, *overrides);
      ASSERT_TRUE(via_fresh.ok());
      ExpectBitIdentical(*via_fresh, *via_pm);
    }
  }
}

TEST(PlanCacheTest, DisabledCacheBypassesPlanCompilation) {
  storage::Catalog catalog = MakeToyCatalog();
  query::Binder binder(&catalog);
  auto bound = binder.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());

  // Capacity 0 = "no plan reuse": Answer must take the fresh-build pipeline
  // instead of compiling throwaway scaffolds (the cache sees no traffic).
  auto disabled = std::make_shared<PlanCache>(0);
  core::PredicateMechanism pm({}, {}, disabled);
  Rng rng(3);
  auto r = pm.Answer(*bound, 0.5, &rng);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(disabled->GetStats().misses, 0u);
  EXPECT_EQ(disabled->GetStats().hits, 0u);
}

TEST(PlanCacheTest, ServiceSharesOnePlanCacheAcrossEngines) {
  storage::Catalog catalog = MakeToyCatalog();
  service::ServiceOptions opts;
  opts.num_engines = 4;
  service::QueryService svc(&catalog, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 100.0).ok());

  const char* sql =
      "SELECT count(*) FROM Orders, Cust, Prod "
      "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
      "AND Cust.region = 'N' AND Prod.cat = 'a'";
  // Distinct ε per call defeats the noisy-answer replay cache, so every call
  // actually executes — and all engines reuse the single compiled plan.
  for (int i = 0; i < 12; ++i) {
    auto r = svc.Answer(sql, 0.1 + 0.01 * i, "t");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, 11u);
  EXPECT_GE(svc.plan_cache().size(), 1u);
}

}  // namespace
}  // namespace dpstarj
