// Tests for the star-join executor: hand-computed answers on the toy fixture,
// GROUP BY labels, predicate overrides, and a randomized property suite
// cross-checking the hash-join executor against the naive nested-loop
// reference.

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/naive_executor.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "test_catalog.h"

namespace dpstarj::exec {
namespace {

using query::AggregateKind;
using query::Binder;
using query::Predicate;
using query::StarJoinQuery;
using storage::Value;
using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
  StarJoinExecutor executor_;
};

TEST_F(ExecutorTest, CountWithTwoPredicates) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->scalar, 2.0);  // (1,1) and (2,1)
  EXPECT_FALSE(r->grouped);
}

TEST_F(ExecutorTest, CountNoPredicates) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust", "Prod"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 12.0);
}

TEST_F(ExecutorTest, SumWithMeasure) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.aggregate = AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  q.predicates.push_back(Predicate::Point("Cust", "region", Value("E")));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  // ck 5: qty 4,3; ck 6: qty 2,1 → 10.
  EXPECT_DOUBLE_EQ(r->scalar, 10.0);
}

TEST_F(ExecutorTest, SumWithTwoTerms) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.aggregate = AggregateKind::kSum;
  // price = 10*qty, so qty - 0.1*price = 0 for every row.
  q.measure_terms = {{"qty", 1.0}, {"price", -0.1}};
  q.predicates.push_back(Predicate::Point("Cust", "region", Value("N")));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->scalar, 0.0, 1e-9);
}

TEST_F(ExecutorTest, RangePredicate) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.predicates.push_back(Predicate::Range("Cust", "tier", Value(int64_t{1}),
                                          Value(int64_t{2})));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  // tiers 1,2 → ck ∈ {1,2,5,6} → 2+2+2+2 = 8 fact rows.
  EXPECT_DOUBLE_EQ(r->scalar, 8.0);
}

TEST_F(ExecutorTest, GroupByLabelsAndValues) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.aggregate = AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  q.group_by = {{"Cust", "region"}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->grouped);
  ASSERT_EQ(r->groups.size(), 3u);
  EXPECT_DOUBLE_EQ(r->groups.at("N"), 7.0);   // ck1: 2+1, ck2: 3+1
  EXPECT_DOUBLE_EQ(r->groups.at("S"), 10.0);  // ck3: 2+5, ck4: 1+2
  EXPECT_DOUBLE_EQ(r->groups.at("E"), 10.0);
  EXPECT_DOUBLE_EQ(r->Total(), 27.0);
}

TEST_F(ExecutorTest, GroupByCompositeKeyOrder) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust", "Prod"};
  q.group_by = {{"Prod", "cat"}, {"Cust", "region"}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  // Label order must follow the declared GROUP BY order: "cat|region".
  EXPECT_TRUE(r->groups.count("a|N") == 1) << r->ToString();
  EXPECT_DOUBLE_EQ(r->groups.at("a|N"), 2.0);
}

TEST_F(ExecutorTest, PredicateOverridesReplaceOriginal) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());

  // Override the region predicate N → E; Prod predicate untouched.
  PredicateOverrides overrides(bound->dims.size());
  query::BoundPredicate region = bound->dims[0].predicates.at(0);
  region.lo_index = 2;  // E
  region.hi_index = 2;
  overrides[0] = std::vector<query::BoundPredicate>{region};
  auto r = executor_.Execute(*bound, overrides);
  ASSERT_TRUE(r.ok());
  // Region E & cat a: ck∈{5,6} with pk=1 → (6,1) → 1.
  EXPECT_DOUBLE_EQ(r->scalar, 1.0);
}

TEST_F(ExecutorTest, OverrideArityChecked) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  PredicateOverrides wrong(1);
  EXPECT_FALSE(executor_.Execute(*bound, wrong).ok());
}

TEST_F(ExecutorTest, QueryResultErrorMetric) {
  QueryResult truth;
  truth.scalar = 100;
  QueryResult est;
  est.scalar = 90;
  EXPECT_DOUBLE_EQ(est.MeanRelativeErrorPercent(truth), 10.0);

  QueryResult gtruth;
  gtruth.grouped = true;
  gtruth.groups = {{"a", 10.0}, {"b", 20.0}};
  QueryResult gest;
  gest.grouped = true;
  gest.groups = {{"a", 12.0}};  // b missing → 100% for that group
  EXPECT_DOUBLE_EQ(gest.MeanRelativeErrorPercent(gtruth), (20.0 + 100.0) / 2);
}

// ---- property: hash-join executor ≡ naive reference on random instances ----

class ExecutorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorEquivalence, MatchesNaiveReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
  using storage::Field;
  using storage::ValueType;

  // Random instance: one dim with int attribute, one fact.
  int64_t dim_rows = rng.UniformInt(1, 30);
  int64_t fact_rows = rng.UniformInt(0, 200);
  int64_t domain = rng.UniformInt(2, 9);

  storage::Catalog catalog;
  storage::Schema dim_schema(
      {Field("k", ValueType::kInt64),
       Field("attr", ValueType::kInt64,
             storage::AttributeDomain::IntRange(0, domain - 1))});
  auto dim = *storage::Table::Create("D", dim_schema, "k");
  for (int64_t i = 0; i < dim_rows; ++i) {
    ASSERT_TRUE(dim->AppendRow({storage::Value(i),
                                storage::Value(rng.UniformInt(0, domain - 1))})
                    .ok());
  }
  storage::Schema fact_schema(
      {Field("fk", ValueType::kInt64), Field("w", ValueType::kDouble)});
  auto fact = *storage::Table::Create("F", fact_schema);
  for (int64_t i = 0; i < fact_rows; ++i) {
    ASSERT_TRUE(fact->AppendRow({storage::Value(rng.UniformInt(0, dim_rows - 1)),
                                 storage::Value(rng.Uniform(-5, 5))})
                    .ok());
  }
  ASSERT_TRUE(catalog.AddTable(dim).ok());
  ASSERT_TRUE(catalog.AddTable(fact).ok());
  ASSERT_TRUE(catalog.AddForeignKey({"F", "fk", "D", "k"}).ok());

  // Random query: count or sum, random range predicate.
  StarJoinQuery q;
  q.fact_table = "F";
  q.joined_tables = {"D"};
  bool sum = rng.Bernoulli(0.5);
  if (sum) {
    q.aggregate = AggregateKind::kSum;
    q.measure_terms = {{"w", 1.0}};
  }
  int64_t lo = rng.UniformInt(0, domain - 1);
  int64_t hi = rng.UniformInt(lo, domain - 1);
  q.predicates.push_back(Predicate::RangeIndex("D", "attr", lo, hi));

  Binder binder(&catalog);
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  StarJoinExecutor executor;
  auto fast = executor.Execute(*bound);
  auto slow = ExecuteNaive(*bound);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_NEAR(fast->scalar, slow->scalar, 1e-9)
      << "seed=" << GetParam() << " rows=" << fact_rows;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExecutorEquivalence,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace dpstarj::exec
