// Tests for the two PMA range readings (shared shift vs independent
// endpoints) and the calibration-sensitive properties each must satisfy.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "core/pma.h"

namespace dpstarj::core {
namespace {

query::BoundPredicate MakeRange(int64_t domain_size, int64_t lo, int64_t hi) {
  query::BoundPredicate p;
  p.table = "D";
  p.column = "a";
  p.column_index = 0;
  p.domain = storage::AttributeDomain::IntRange(0, domain_size - 1);
  p.kind = query::PredicateKind::kRange;
  p.lo_index = lo;
  p.hi_index = hi;
  return p;
}

PmaOptions SharedShift() {
  PmaOptions o;
  o.range_mode = PmaRangeMode::kSharedShift;
  return o;
}

PmaOptions IndependentEndpoints() {
  PmaOptions o;
  o.range_mode = PmaRangeMode::kIndependentEndpoints;
  return o;
}

TEST(SharedShiftTest, WidthIsAlwaysPreserved) {
  Rng rng(1);
  auto pred = MakeRange(100, 30, 60);
  for (double eps : {0.01, 0.1, 1.0, 10.0}) {
    for (int i = 0; i < 500; ++i) {
      auto noisy = PerturbPredicate(pred, eps, &rng, SharedShift());
      ASSERT_TRUE(noisy.ok());
      EXPECT_EQ(noisy->hi_index - noisy->lo_index, 30) << "eps=" << eps;
      EXPECT_GE(noisy->lo_index, 0);
      EXPECT_LT(noisy->hi_index, 100);
    }
  }
}

TEST(SharedShiftTest, FullDomainRangeIsFixedPoint) {
  // The width-preserving reading has a single placement for a full-width
  // interval (this is why the k-star mechanisms use the other mode).
  Rng rng(2);
  auto pred = MakeRange(50, 0, 49);
  for (int i = 0; i < 100; ++i) {
    auto noisy = PerturbPredicate(pred, 0.01, &rng, SharedShift());
    ASSERT_TRUE(noisy.ok());
    EXPECT_EQ(noisy->lo_index, 0);
    EXPECT_EQ(noisy->hi_index, 49);
  }
}

TEST(SharedShiftTest, ShiftMagnitudeMatchesLaplaceScale) {
  Rng rng(3);
  int64_t m = 1000000;
  auto pred = MakeRange(m, m / 2 - 50, m / 2 + 50);
  double epsilon = 100.0;  // scale m/ε = 10⁴, clamping negligible
  std::vector<double> shifts;
  for (int i = 0; i < 20000; ++i) {
    auto noisy = PerturbPredicate(pred, epsilon, &rng, SharedShift());
    ASSERT_TRUE(noisy.ok());
    shifts.push_back(std::abs(static_cast<double>(noisy->lo_index - (m / 2 - 50))));
  }
  EXPECT_NEAR(Mean(shifts), static_cast<double>(m) / epsilon,
              0.05 * static_cast<double>(m) / epsilon);
}

TEST(SharedShiftTest, BothEndpointsShiftTogether) {
  Rng rng(4);
  auto pred = MakeRange(1000, 400, 500);
  for (int i = 0; i < 200; ++i) {
    auto noisy = PerturbPredicate(pred, 5.0, &rng, SharedShift());
    ASSERT_TRUE(noisy.ok());
    EXPECT_EQ(noisy->hi_index - noisy->lo_index, 100);
  }
}

TEST(IndependentEndpointsTest, ProperIntervalAlways) {
  Rng rng(5);
  auto pred = MakeRange(7, 0, 5);  // the SSB year-range shape
  for (double eps : {0.01, 0.1, 1.0}) {
    for (int i = 0; i < 1000; ++i) {
      auto noisy = PerturbPredicate(pred, eps, &rng, IndependentEndpoints());
      ASSERT_TRUE(noisy.ok());
      EXPECT_LT(noisy->lo_index, noisy->hi_index) << "eps=" << eps;
      EXPECT_GE(noisy->lo_index, 0);
      EXPECT_LT(noisy->hi_index, 7);
    }
  }
}

TEST(IndependentEndpointsTest, WidthVariesUnderNoise) {
  Rng rng(6);
  auto pred = MakeRange(100, 40, 60);
  bool width_changed = false;
  for (int i = 0; i < 200 && !width_changed; ++i) {
    auto noisy = PerturbPredicate(pred, 0.5, &rng, IndependentEndpoints());
    ASSERT_TRUE(noisy.ok());
    width_changed = (noisy->hi_index - noisy->lo_index) != 20;
  }
  EXPECT_TRUE(width_changed);
}

TEST(IndependentEndpointsTest, FullDomainRangeStaysRandomized) {
  // Unlike the shared shift, the verbatim reading keeps randomness on a
  // full-domain range (required for the k-star release to be private).
  Rng rng(7);
  auto pred = MakeRange(1000, 0, 999);
  bool moved = false;
  for (int i = 0; i < 100 && !moved; ++i) {
    auto noisy = PerturbPredicate(pred, 0.5, &rng, IndependentEndpoints());
    ASSERT_TRUE(noisy.ok());
    moved = noisy->lo_index != 0 || noisy->hi_index != 999;
  }
  EXPECT_TRUE(moved);
}

TEST(PmaModesTest, SingletonDomainDegenerates) {
  Rng rng(8);
  auto pred = MakeRange(1, 0, 0);
  for (auto opts : {SharedShift(), IndependentEndpoints()}) {
    auto noisy = PerturbPredicate(pred, 0.5, &rng, opts);
    ASSERT_TRUE(noisy.ok());
    EXPECT_EQ(noisy->lo_index, 0);
    EXPECT_EQ(noisy->hi_index, 0);
  }
}

TEST(PmaModesTest, PointsUnaffectedByMode) {
  query::BoundPredicate p = MakeRange(25, 3, 3);
  p.kind = query::PredicateKind::kPoint;
  Rng a(9), b(9);
  auto r1 = PerturbPredicate(p, 0.5, &a, SharedShift());
  auto r2 = PerturbPredicate(p, 0.5, &b, IndependentEndpoints());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->lo_index, r2->lo_index);
}

// Distribution sweep: both modes must keep every output inside the domain
// across (domain, epsilon, range-shape) combinations.
struct ModeSweepParam {
  int64_t domain;
  double epsilon;
  double lo_frac;
  double hi_frac;
};

class PmaModeSweep : public ::testing::TestWithParam<ModeSweepParam> {};

TEST_P(PmaModeSweep, OutputsStayInDomain) {
  auto [m, eps, lo_frac, hi_frac] = GetParam();
  int64_t lo = static_cast<int64_t>(lo_frac * static_cast<double>(m - 1));
  int64_t hi = static_cast<int64_t>(hi_frac * static_cast<double>(m - 1));
  if (hi < lo) std::swap(lo, hi);
  auto pred = MakeRange(m, lo, hi);
  Rng rng(static_cast<uint64_t>(m) * 31 + static_cast<uint64_t>(eps * 100));
  for (auto opts : {SharedShift(), IndependentEndpoints()}) {
    for (int i = 0; i < 200; ++i) {
      auto noisy = PerturbPredicate(pred, eps, &rng, opts);
      ASSERT_TRUE(noisy.ok());
      EXPECT_GE(noisy->lo_index, 0);
      EXPECT_LE(noisy->lo_index, noisy->hi_index);
      EXPECT_LT(noisy->hi_index, m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PmaModeSweep,
    ::testing::Values(ModeSweepParam{2, 0.1, 0.0, 1.0},
                      ModeSweepParam{7, 0.1, 0.0, 0.8},
                      ModeSweepParam{7, 1.0, 0.7, 1.0},
                      ModeSweepParam{25, 0.5, 0.0, 0.1},
                      ModeSweepParam{366, 0.2, 0.1, 0.5},
                      ModeSweepParam{144000, 0.1, 0.0, 1.0}));

}  // namespace
}  // namespace dpstarj::core
