// Tests for the Predicate Mechanism (Algorithms 1 & 3) and the DpStarJoin
// facade: budget splitting, executor/cube path agreement, GROUP BY support,
// convergence with growing ε, and budget accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "core/dp_star_join.h"
#include "core/predicate_mechanism.h"
#include "exec/data_cube.h"
#include "query/binder.h"
#include "test_catalog.h"

namespace dpstarj::core {
namespace {

using query::Binder;
using query::StarJoinQuery;
using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

class PmTest : public ::testing::Test {
 protected:
  PmTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
  PredicateMechanism pm_;
};

TEST_F(PmTest, PerturbsEveryPredicate) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  Rng rng(1);
  auto overrides = pm_.PerturbPredicates(*bound, 1.0, &rng);
  ASSERT_TRUE(overrides.ok());
  ASSERT_EQ(overrides->size(), 2u);
  EXPECT_TRUE((*overrides)[0].has_value());
  EXPECT_TRUE((*overrides)[1].has_value());
}

TEST_F(PmTest, SkipsPredicateFreeDimensions) {
  StarJoinQuery q = ToyCountQuery();
  q.predicates.pop_back();  // drop the Prod predicate
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  Rng rng(2);
  auto overrides = pm_.PerturbPredicates(*bound, 1.0, &rng);
  ASSERT_TRUE(overrides.ok());
  EXPECT_TRUE((*overrides)[0].has_value());
  EXPECT_FALSE((*overrides)[1].has_value());
}

TEST_F(PmTest, RefusesPredicateFreeQuery) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  Rng rng(3);
  auto r = pm_.Answer(*bound, 1.0, &rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PmTest, BudgetSplitAcrossPredicates) {
  // With two predicates each gets ε/2: verify via noise magnitude. Use a big
  // domain so scale differences are measurable.
  // One-predicate query at ε vs two-predicate query at 2ε must perturb the
  // shared predicate with the same scale — exercised indirectly by checking
  // the answer distributions agree under the same seeds.
  StarJoinQuery one = ToyCountQuery();
  one.predicates.pop_back();
  auto bound_one = binder_.Bind(one);
  auto bound_two = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound_one.ok());
  ASSERT_TRUE(bound_two.ok());
  Rng rng_a(42), rng_b(42);
  auto o1 = pm_.PerturbPredicates(*bound_one, 0.5, &rng_a);
  auto o2 = pm_.PerturbPredicates(*bound_two, 1.0, &rng_b);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  // Same seed, same effective ε_i = 0.5 → identical perturbation of the
  // region predicate.
  EXPECT_EQ((*o1)[0]->at(0).lo_index, (*o2)[0]->at(0).lo_index);
}

TEST_F(PmTest, AnswerIsExactUnderHugeBudget) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  Rng rng(4);
  auto r = pm_.Answer(*bound, 1e9, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 2.0);  // the true answer
}

TEST_F(PmTest, CubePathAgreesWithExecutorPath) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = exec::DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  // Same seed → same noisy predicates → identical answers on both paths.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng ra(seed), rb(seed);
    auto via_exec = pm_.Answer(*bound, 0.4, &ra);
    auto via_cube = pm_.AnswerWithCube(*bound, *cube, 0.4, &rb);
    ASSERT_TRUE(via_exec.ok());
    ASSERT_TRUE(via_cube.ok());
    EXPECT_DOUBLE_EQ(via_exec->scalar, *via_cube) << "seed=" << seed;
  }
}

TEST_F(PmTest, GroupByPerturbsOnlyPredicates) {
  StarJoinQuery q = ToyCountQuery();
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  q.group_by = {{"Cust", "region"}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  Rng rng(5);
  auto r = pm_.Answer(*bound, 1e9, &rng);  // no effective noise
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->grouped);
  // Group labels are real data labels (only region N rows with cat a match).
  EXPECT_EQ(r->groups.count("N"), 1u);
}

TEST_F(PmTest, ErrorShrinksWithEpsilon) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  auto cube = exec::DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_TRUE(cube.ok());
  double truth = 2.0;
  auto mean_error = [&](double eps, uint64_t seed) {
    Rng rng(seed);
    std::vector<double> errs;
    for (int i = 0; i < 400; ++i) {
      auto est = pm_.AnswerWithCube(*bound, *cube, eps, &rng);
      EXPECT_TRUE(est.ok());
      errs.push_back(RelativeErrorPercent(*est, truth));
    }
    return Mean(errs);
  };
  double err_low = mean_error(0.05, 11);
  double err_high = mean_error(5.0, 11);
  EXPECT_LT(err_high, err_low);
}

TEST_F(PmTest, FacadeAnswerSqlAndBudget) {
  DpStarJoinOptions opts;
  opts.seed = 9;
  opts.total_budget = 1.0;
  DpStarJoin engine(&catalog_, opts);
  const std::string sql =
      "SELECT count(*) FROM Cust, Orders, Prod WHERE Orders.ck = Cust.ck"
      " AND Orders.pk = Prod.pk AND Cust.region = 'N' AND Prod.cat = 'a'";
  ASSERT_TRUE(engine.AnswerSql(sql, 0.6).ok());
  EXPECT_NEAR(engine.RemainingBudget().value(), 0.4, 1e-12);
  auto second = engine.AnswerSql(sql, 0.6);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kBudgetExhausted);
}

TEST_F(PmTest, FacadeTrueAnswer) {
  DpStarJoin engine(&catalog_);
  auto truth = engine.TrueAnswer(ToyCountQuery());
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(truth->scalar, 2.0);
  EXPECT_FALSE(engine.RemainingBudget().has_value());
}

TEST_F(PmTest, FacadeReproducibleUnderSeed) {
  DpStarJoinOptions opts;
  opts.seed = 1234;
  DpStarJoin a(&catalog_, opts), b(&catalog_, opts);
  auto ra = a.Answer(ToyCountQuery(), 0.3);
  auto rb = b.Answer(ToyCountQuery(), 0.3);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->scalar, rb->scalar);
}

}  // namespace
}  // namespace dpstarj::core
