// Tests for the HTTP/1.1 plumbing: the incremental request parser (partial
// input, pipelining, keep-alive resolution, size limits), the response
// parser, serializers, and the router's pattern matching.

#include <gtest/gtest.h>

#include <string>

#include "net/http.h"

namespace dpstarj::net {
namespace {

using Progress = HttpRequestParser::Progress;

TEST(HttpRequestParserTest, ParsesASimpleGet) {
  HttpRequestParser parser;
  std::string wire = "GET /v1/stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), Progress::kComplete);
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/v1/stats");
  EXPECT_EQ(req.query, "verbose=1");
  EXPECT_EQ(req.FindHeader("host"), "x");  // case-insensitive
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(req.body.empty());
}

TEST(HttpRequestParserTest, ByteAtATimeWithBody) {
  HttpRequestParser parser;
  std::string wire =
      "POST /v1/query HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  Progress p = Progress::kNeedMore;
  for (char c : wire) p = parser.Feed(&c, 1);
  ASSERT_EQ(p, Progress::kComplete);
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpRequestParserTest, PipeliningKeepsLeftoverBytes) {
  HttpRequestParser parser;
  std::string two =
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parser.Feed(two.data(), two.size()), Progress::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  EXPECT_TRUE(parser.has_buffered_input());
  parser.Reset();
  ASSERT_EQ(parser.Pump(), Progress::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_FALSE(parser.has_buffered_input());
}

TEST(HttpRequestParserTest, KeepAliveResolution) {
  {
    HttpRequestParser p;
    std::string wire = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
    ASSERT_EQ(p.Feed(wire.data(), wire.size()), Progress::kComplete);
    EXPECT_FALSE(p.request().keep_alive);
  }
  {
    HttpRequestParser p;
    std::string wire = "GET / HTTP/1.0\r\n\r\n";
    ASSERT_EQ(p.Feed(wire.data(), wire.size()), Progress::kComplete);
    EXPECT_FALSE(p.request().keep_alive);  // 1.0 defaults to close
  }
  {
    HttpRequestParser p;
    std::string wire = "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
    ASSERT_EQ(p.Feed(wire.data(), wire.size()), Progress::kComplete);
    EXPECT_TRUE(p.request().keep_alive);
  }
}

TEST(HttpRequestParserTest, EnforcesHeaderLimit) {
  ParserLimits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\nX-Big: " + std::string(500, 'a');
  EXPECT_EQ(parser.Feed(wire.data(), wire.size()), Progress::kError);
  EXPECT_EQ(parser.error_status(), 431);
  EXPECT_TRUE(parser.in_error());
}

TEST(HttpRequestParserTest, EnforcesBodyLimitBeforeBuffering) {
  ParserLimits limits;
  limits.max_body_bytes = 64;
  HttpRequestParser parser(limits);
  // The refusal comes from Content-Length alone — no body bytes needed.
  std::string wire = "POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
  EXPECT_EQ(parser.Feed(wire.data(), wire.size()), Progress::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpRequestParserTest, RejectsGarbage) {
  {
    HttpRequestParser p;
    std::string wire = "NOT-HTTP\r\n\r\n";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), Progress::kError);
    EXPECT_EQ(p.error_status(), 400);
  }
  {
    HttpRequestParser p;
    std::string wire = "GET / HTTP/2.0\r\n\r\n";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), Progress::kError);
    EXPECT_EQ(p.error_status(), 505);
  }
  {
    HttpRequestParser p;
    std::string wire =
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), Progress::kError);
    EXPECT_EQ(p.error_status(), 501);
  }
  {
    HttpRequestParser p;
    std::string wire = "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), Progress::kError);
    EXPECT_EQ(p.error_status(), 400);
  }
}

// Request-smuggling primitives must be refused, not resolved silently: a
// front proxy resolving them the other way would desync from this server.
TEST(HttpRequestParserTest, RejectsSmugglingPrimitives) {
  {
    // CL.CL: two differing Content-Length values.
    HttpRequestParser p;
    std::string wire =
        "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 43\r\n\r\n";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), Progress::kError);
    EXPECT_EQ(p.error_status(), 400);
  }
  {
    // Identical duplicates are legal to collapse (RFC 9110 §8.6).
    HttpRequestParser p;
    std::string wire =
        "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), Progress::kComplete);
    EXPECT_EQ(p.request().body, "hi");
  }
  {
    // Whitespace between header name and ':' (RFC 9112 §5.1).
    HttpRequestParser p;
    std::string wire = "POST / HTTP/1.1\r\nContent-Length : 5\r\n\r\nhello";
    EXPECT_EQ(p.Feed(wire.data(), wire.size()), Progress::kError);
    EXPECT_EQ(p.error_status(), 400);
  }
}

TEST(HttpResponseRoundTrip, SerializeThenParse) {
  HttpResponse out = HttpResponse::MakeJson(429, "{\"error\":{}}");
  out.headers.push_back({"Retry-After", "1"});
  std::string wire = SerializeResponse(out, /*keep_alive=*/true);

  HttpResponseParser parser;
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()),
            HttpResponseParser::Progress::kComplete);
  EXPECT_EQ(parser.response().status, 429);
  EXPECT_EQ(parser.response().body, "{\"error\":{}}");
  EXPECT_EQ(parser.response().FindHeader("retry-after"), "1");
  EXPECT_TRUE(parser.keep_alive());

  // And the close variant flips keep_alive.
  std::string closing = SerializeResponse(out, /*keep_alive=*/false);
  parser.Reset();
  ASSERT_EQ(parser.Feed(closing.data(), closing.size()),
            HttpResponseParser::Progress::kComplete);
  EXPECT_FALSE(parser.keep_alive());
}

TEST(HttpRequestRoundTrip, SerializeThenParse) {
  std::string wire = SerializeRequest("POST", "/v1/query", "localhost:8080",
                                      "{\"epsilon\":0.5}", "application/json",
                                      /*keep_alive=*/true);
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), Progress::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().path, "/v1/query");
  EXPECT_EQ(parser.request().body, "{\"epsilon\":0.5}");
  EXPECT_EQ(parser.request().FindHeader("Host"), "localhost:8080");
}

// ----------------------------------------------------------------- router ----

HttpRequest MakeRequest(const std::string& method, const std::string& path) {
  HttpRequest r;
  r.method = method;
  r.path = path;
  r.target = path;
  return r;
}

TEST(RouterTest, MatchesLiteralAndParamRoutes) {
  Router router;
  router.Handle("GET", "/healthz",
                [](const HttpRequest&) { return HttpResponse::MakeText(200, "ok"); });
  router.Handle("GET", "/v1/tenants/<tenant>", [](const HttpRequest& req) {
    return HttpResponse::MakeText(200, req.path_params.at("tenant"));
  });

  HttpRequest health = MakeRequest("GET", "/healthz");
  EXPECT_EQ(router.Dispatch(health).status, 200);

  HttpRequest tenant = MakeRequest("GET", "/v1/tenants/acme");
  HttpResponse r = router.Dispatch(tenant);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "acme");

  // Param segments match exactly one segment — no more, no fewer.
  HttpRequest deep = MakeRequest("GET", "/v1/tenants/acme/extra");
  EXPECT_EQ(router.Dispatch(deep).status, 404);
  HttpRequest bare = MakeRequest("GET", "/v1/tenants");
  EXPECT_EQ(router.Dispatch(bare).status, 404);
}

TEST(RouterTest, PercentDecodesCapturedSegments) {
  Router router;
  router.Handle("GET", "/v1/tenants/<tenant>", [](const HttpRequest& req) {
    return HttpResponse::MakeText(200, req.path_params.at("tenant"));
  });
  // Clients percent-encode special characters in the target; the capture
  // must come back decoded so it matches the name used at registration.
  HttpRequest spaced = MakeRequest("GET", "/v1/tenants/team%20a");
  EXPECT_EQ(router.Dispatch(spaced).body, "team a");
  // Decoding happens after path splitting: an encoded slash stays inside
  // one segment instead of changing the route shape.
  HttpRequest slashed = MakeRequest("GET", "/v1/tenants/a%2Fb");
  EXPECT_EQ(router.Dispatch(slashed).body, "a/b");
  // Invalid escapes pass through verbatim rather than erroring.
  HttpRequest truncated = MakeRequest("GET", "/v1/tenants/50%25");
  EXPECT_EQ(router.Dispatch(truncated).body, "50%");
  HttpRequest bogus = MakeRequest("GET", "/v1/tenants/x%zz");
  EXPECT_EQ(router.Dispatch(bogus).body, "x%zz");
}

TEST(RouterTest, MethodNotAllowedCarriesAllow) {
  Router router;
  router.Handle("POST", "/v1/query",
                [](const HttpRequest&) { return HttpResponse::MakeText(200, ""); });
  HttpRequest req = MakeRequest("GET", "/v1/query");
  HttpResponse r = router.Dispatch(req);
  EXPECT_EQ(r.status, 405);
  EXPECT_EQ(r.FindHeader("Allow"), "POST");
}

TEST(RouterTest, UnknownPathIs404) {
  Router router;
  HttpRequest req = MakeRequest("GET", "/nope");
  EXPECT_EQ(router.Dispatch(req).status, 404);
}

}  // namespace
}  // namespace dpstarj::net
