// Tests for "Table.column" entity grouping in the contribution index (used
// for customer-level privacy on flattened snowflakes) and the harness
// statistics added for the benches (median cells, total-error metric).

#include <gtest/gtest.h>

#include "bench_util/experiment.h"
#include "dp/neighboring.h"
#include "exec/contribution_index.h"
#include "exec/query_result.h"
#include "query/binder.h"
#include "test_catalog.h"

namespace dpstarj {
namespace {

using exec::BuildContributionIndex;
using query::Binder;
using query::StarJoinQuery;
using testing_fixture::MakeToyCatalog;

class EntityGroupingTest : public ::testing::Test {
 protected:
  EntityGroupingTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(EntityGroupingTest, GroupByStringAttribute) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  // Individuals = region values: N, S, E each own 2 customers × 2 rows = 4.
  auto idx = BuildContributionIndex(*bound, {"Cust.region"});
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_EQ(idx->contributions.size(), 3u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 4.0);
  EXPECT_DOUBLE_EQ(idx->total, 12.0);
}

TEST_F(EntityGroupingTest, GroupByIntAttribute) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  // tier values 1,2,3,4 with customer multiplicity 2,2,1,1 → contributions
  // 4,4,2,2.
  auto idx = BuildContributionIndex(*bound, {"Cust.tier"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->contributions.size(), 4u);
  EXPECT_DOUBLE_EQ(idx->max_contribution, 4.0);
}

TEST_F(EntityGroupingTest, PkGroupingUnchanged) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto by_table = BuildContributionIndex(*bound, {"Cust"});
  auto by_pk = BuildContributionIndex(*bound, {"Cust.ck"});
  ASSERT_TRUE(by_table.ok());
  ASSERT_TRUE(by_pk.ok());
  EXPECT_EQ(by_table->contributions.size(), by_pk->contributions.size());
  EXPECT_DOUBLE_EQ(by_table->max_contribution, by_pk->max_contribution);
}

TEST_F(EntityGroupingTest, BadSpecsRejected) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(BuildContributionIndex(*bound, {"Cust.nope"}).ok());
  EXPECT_FALSE(BuildContributionIndex(*bound, {"Nope.ck"}).ok());
}

TEST_F(EntityGroupingTest, ScenarioValidatesEntitySpecs) {
  query::StarJoinQuery q;
  q.fact_table = "F";
  q.joined_tables = {"D1"};
  EXPECT_TRUE(dp::PrivacyScenario::Dimensions({"D1.attr"}).Validate(q).ok());
  EXPECT_FALSE(dp::PrivacyScenario::Dimensions({"D2.attr"}).Validate(q).ok());
}

TEST(RunStatsTest, CellsRenderAllStates) {
  bench_util::RunStats ok;
  ok.mean = 12.345;
  ok.median = 10.0;
  EXPECT_EQ(ok.Cell(), "12.35");
  EXPECT_EQ(ok.Cell(1), "12.3");
  EXPECT_EQ(ok.MedianCell(), "10.00");

  bench_util::RunStats limited;
  limited.over_time_limit = true;
  EXPECT_EQ(limited.Cell(), "over limit");
  EXPECT_EQ(limited.MedianCell(), "over limit");

  bench_util::RunStats unsupported;
  unsupported.not_supported = true;
  EXPECT_EQ(unsupported.Cell(), "n/a");

  bench_util::RunStats failed;
  failed.error = Status::Internal("boom");
  EXPECT_EQ(failed.Cell(), "error");
}

TEST(RunStatsTest, RepeatShortCircuitsOnTimeLimit) {
  int calls = 0;
  auto stats = bench_util::Repeat(10, [&]() -> Result<double> {
    ++calls;
    return Status::TimeLimit("slow");
  });
  EXPECT_TRUE(stats.over_time_limit);
  EXPECT_EQ(calls, 1);
}

TEST(RunStatsTest, RepeatCollectsStatistics) {
  double v = 0.0;
  auto stats = bench_util::Repeat(5, [&]() -> Result<double> {
    v += 1.0;
    return v;
  });
  EXPECT_EQ(stats.runs, 5);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
}

TEST(QueryResultTest, TotalRelativeError) {
  exec::QueryResult truth;
  truth.grouped = true;
  truth.groups = {{"a", 60.0}, {"b", 40.0}};
  exec::QueryResult est;
  est.grouped = true;
  est.groups = {{"c", 110.0}};  // disjoint labels, total 110 vs 100
  EXPECT_DOUBLE_EQ(est.TotalRelativeErrorPercent(truth), 10.0);
  // Per-label matching would be maximal here.
  EXPECT_DOUBLE_EQ(est.MeanRelativeErrorPercent(truth), 100.0);
}

TEST(EnvTest, Defaults) {
  EXPECT_EQ(bench_util::EnvInt("DPSTARJ_SURELY_UNSET_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(bench_util::EnvDouble("DPSTARJ_SURELY_UNSET_VAR", 2.5), 2.5);
}

}  // namespace
}  // namespace dpstarj
