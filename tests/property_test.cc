// Randomized end-to-end property suites that stress feature combinations the
// per-module tests cover only pointwise:
//  * hash-join executor ≡ naive reference on random two-dimension star
//    instances across COUNT/SUM/AVG × scalar/GROUP BY × multi-predicate dims;
//  * snowflake flattening on *branching* hierarchies (a dimension with two
//    sub-dimensions) preserves query answers;
//  * workload matrix encoding round-trips random interval workloads.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/snowflake.h"
#include "exec/naive_executor.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "query/workload.h"
#include "storage/catalog.h"

namespace dpstarj {
namespace {

using query::AggregateKind;
using query::Predicate;
using query::StarJoinQuery;
using storage::AttributeDomain;
using storage::Field;
using storage::Value;
using storage::ValueType;

// Builds a random star instance: two dimensions, each with two domained
// attributes, plus a fact table with two measures.
storage::Catalog RandomStarInstance(Rng* rng, int64_t* d1_domain, int64_t* d2_domain) {
  storage::Catalog catalog;
  int64_t m1 = rng->UniformInt(2, 8);
  int64_t m2 = rng->UniformInt(2, 6);
  *d1_domain = m1;
  *d2_domain = m2;

  int64_t rows1 = rng->UniformInt(1, 25);
  storage::Schema s1({Field("k", ValueType::kInt64),
                      Field("a", ValueType::kInt64,
                            AttributeDomain::IntRange(0, m1 - 1)),
                      Field("b", ValueType::kInt64,
                            AttributeDomain::IntRange(0, 3))});
  auto d1 = *storage::Table::Create("D1", s1, "k");
  for (int64_t i = 0; i < rows1; ++i) {
    DPSTARJ_CHECK(d1->AppendRow({Value(i), Value(rng->UniformInt(0, m1 - 1)),
                                 Value(rng->UniformInt(0, 3))})
                      .ok(),
                  "row");
  }

  int64_t rows2 = rng->UniformInt(1, 15);
  storage::Schema s2({Field("k", ValueType::kInt64),
                      Field("c", ValueType::kInt64,
                            AttributeDomain::IntRange(0, m2 - 1))});
  auto d2 = *storage::Table::Create("D2", s2, "k");
  for (int64_t i = 0; i < rows2; ++i) {
    DPSTARJ_CHECK(d2->AppendRow({Value(i), Value(rng->UniformInt(0, m2 - 1))}).ok(),
                  "row");
  }

  int64_t fact_rows = rng->UniformInt(0, 300);
  storage::Schema sf({Field("fk1", ValueType::kInt64),
                      Field("fk2", ValueType::kInt64),
                      Field("w", ValueType::kDouble),
                      Field("q", ValueType::kInt64)});
  auto fact = *storage::Table::Create("F", sf);
  for (int64_t i = 0; i < fact_rows; ++i) {
    DPSTARJ_CHECK(fact->AppendRow({Value(rng->UniformInt(0, rows1 - 1)),
                                   Value(rng->UniformInt(0, rows2 - 1)),
                                   Value(rng->Uniform(-10, 10)),
                                   Value(rng->UniformInt(1, 9))})
                      .ok(),
                  "row");
  }

  DPSTARJ_CHECK(catalog.AddTable(d1).ok(), "cat");
  DPSTARJ_CHECK(catalog.AddTable(d2).ok(), "cat");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "cat");
  DPSTARJ_CHECK(catalog.AddForeignKey({"F", "fk1", "D1", "k"}).ok(), "cat");
  DPSTARJ_CHECK(catalog.AddForeignKey({"F", "fk2", "D2", "k"}).ok(), "cat");
  return catalog;
}

StarJoinQuery RandomQuery(Rng* rng, int64_t m1, int64_t m2) {
  StarJoinQuery q;
  q.fact_table = "F";
  q.joined_tables = {"D1", "D2"};
  switch (rng->UniformInt(0, 2)) {
    case 0:
      q.aggregate = AggregateKind::kCount;
      break;
    case 1:
      q.aggregate = AggregateKind::kSum;
      q.measure_terms = {{"w", 1.0}, {"q", rng->Uniform(-2, 2)}};
      break;
    default:
      q.aggregate = AggregateKind::kAvg;
      q.measure_terms = {{"w", 1.0}};
      break;
  }
  // Predicate on D1.a, sometimes a second one on D1.b (multi-predicate dim),
  // sometimes one on D2.c.
  int64_t lo = rng->UniformInt(0, m1 - 1);
  int64_t hi = rng->UniformInt(lo, m1 - 1);
  q.predicates.push_back(Predicate::RangeIndex("D1", "a", lo, hi));
  if (rng->Bernoulli(0.5)) {
    int64_t v = rng->UniformInt(0, 3);
    q.predicates.push_back(Predicate::PointIndex("D1", "b", v));
  }
  if (rng->Bernoulli(0.5)) {
    int64_t clo = rng->UniformInt(0, m2 - 1);
    q.predicates.push_back(Predicate::RangeIndex("D2", "c", clo, m2 - 1));
  }
  if (rng->Bernoulli(0.4)) {
    q.group_by.push_back({"D2", "c"});
    if (rng->Bernoulli(0.3)) q.group_by.push_back({"D1", "b"});
  }
  return q;
}

class ExecutorFullEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorFullEquivalence, HashJoinMatchesNaive) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  int64_t m1 = 0, m2 = 0;
  storage::Catalog catalog = RandomStarInstance(&rng, &m1, &m2);
  StarJoinQuery q = RandomQuery(&rng, m1, m2);

  query::Binder binder(&catalog);
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString() << "\n" << q.ToString();

  exec::StarJoinExecutor executor;
  auto fast = executor.Execute(*bound);
  auto slow = exec::ExecuteNaive(*bound);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();

  ASSERT_EQ(fast->grouped, slow->grouped) << q.ToString();
  if (!fast->grouped) {
    EXPECT_NEAR(fast->scalar, slow->scalar, 1e-9) << q.ToString();
  } else {
    ASSERT_EQ(fast->groups.size(), slow->groups.size()) << q.ToString();
    for (const auto& [label, value] : slow->groups) {
      ASSERT_EQ(fast->groups.count(label), 1u) << label << "\n" << q.ToString();
      EXPECT_NEAR(fast->groups.at(label), value, 1e-9) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExecutorFullEquivalence,
                         ::testing::Range(0, 40));

// ---- branching snowflake hierarchies ---------------------------------------

TEST(BranchingSnowflakeTest, DimensionWithTwoSubDimensions) {
  // Mid references both Color and Size; flattening must absorb both.
  storage::Catalog catalog;
  storage::Schema color_schema({Field("ck", ValueType::kInt64),
                                Field("name", ValueType::kString,
                                      AttributeDomain::Categorical({"r", "g"}))});
  auto color = *storage::Table::Create("Color", color_schema, "ck");
  DPSTARJ_CHECK(color->AppendRow({Value(int64_t{1}), Value("r")}).ok(), "t");
  DPSTARJ_CHECK(color->AppendRow({Value(int64_t{2}), Value("g")}).ok(), "t");

  storage::Schema size_schema({Field("sk", ValueType::kInt64),
                               Field("n", ValueType::kInt64,
                                     AttributeDomain::IntRange(1, 2))});
  auto size = *storage::Table::Create("Size", size_schema, "sk");
  DPSTARJ_CHECK(size->AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok(), "t");
  DPSTARJ_CHECK(size->AppendRow({Value(int64_t{2}), Value(int64_t{2})}).ok(), "t");

  storage::Schema mid_schema({Field("mk", ValueType::kInt64),
                              Field("ck", ValueType::kInt64),
                              Field("sk", ValueType::kInt64)});
  auto mid = *storage::Table::Create("Mid", mid_schema, "mk");
  // (mk, color, size): (1,r,1), (2,r,2), (3,g,1).
  DPSTARJ_CHECK(
      mid->AppendRow({Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1})}).ok(),
      "t");
  DPSTARJ_CHECK(
      mid->AppendRow({Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{2})}).ok(),
      "t");
  DPSTARJ_CHECK(
      mid->AppendRow({Value(int64_t{3}), Value(int64_t{2}), Value(int64_t{1})}).ok(),
      "t");

  storage::Schema fact_schema({Field("mk", ValueType::kInt64)});
  auto fact = *storage::Table::Create("F", fact_schema);
  for (int64_t mk : {1, 1, 2, 3, 3, 3}) {
    DPSTARJ_CHECK(fact->AppendRow({Value(mk)}).ok(), "t");
  }

  DPSTARJ_CHECK(catalog.AddTable(color).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(size).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(mid).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"F", "mk", "Mid", "mk"}).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Mid", "ck", "Color", "ck"}).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Mid", "sk", "Size", "sk"}).ok(), "t");

  auto flat = core::FlattenedSnowflake::Flatten(catalog, "F");
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  auto mid_flat = *flat->catalog().GetTable("Mid");
  EXPECT_TRUE(mid_flat->schema().HasField("Color_name"));
  EXPECT_TRUE(mid_flat->schema().HasField("Size_n"));

  // count(color = r AND size = 1) → mids {1} → 2 fact rows.
  StarJoinQuery q;
  q.fact_table = "F";
  q.joined_tables = {"Mid", "Color", "Size"};
  q.predicates.push_back(Predicate::Point("Color", "name", Value("r")));
  q.predicates.push_back(Predicate::Point("Size", "n", Value(int64_t{1})));
  auto rewritten = flat->Rewrite(q);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  query::Binder binder(&flat->catalog());
  auto bound = binder.Bind(*rewritten);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  exec::StarJoinExecutor executor;
  auto r = executor.Execute(*bound);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 2.0);
}

// ---- workload encoding round-trip property ---------------------------------

class WorkloadRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadRoundTrip, EncodingIsLossless) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 271 + 9);
  std::vector<query::DimensionAttribute> attrs = {
      {"D1", "a", AttributeDomain::IntRange(0, rng.UniformInt(1, 9))},
      {"D2", "c", AttributeDomain::IntRange(0, rng.UniformInt(1, 5))},
  };
  int l = static_cast<int>(rng.UniformInt(1, 8));
  std::vector<linalg::Matrix> matrices;
  for (const auto& attr : attrs) {
    int m = static_cast<int>(attr.domain.size());
    linalg::Matrix p(l, m);
    for (int q = 0; q < l; ++q) {
      int lo = static_cast<int>(rng.UniformInt(0, m - 1));
      int hi = static_cast<int>(rng.UniformInt(lo, m - 1));
      for (int c = lo; c <= hi; ++c) p.At(q, c) = 1.0;
    }
    matrices.push_back(std::move(p));
  }
  auto workload = query::WorkloadFromMatrices("rt", "F", attrs, matrices);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto back = query::BuildPredicateMatrices(*workload, attrs);
  ASSERT_TRUE(back.ok());
  for (size_t a = 0; a < matrices.size(); ++a) {
    EXPECT_EQ(matrices[a], (*back)[a]) << "attribute " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, WorkloadRoundTrip,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace dpstarj
