// Tests for the minimal JSON codec of the HTTP front door: strict parsing,
// escaping, round trips, and the typed field accessors the protocol decoders
// rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "net/json.h"

namespace dpstarj::net {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5e2")->AsNumber(), -350.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
  EXPECT_DOUBLE_EQ(Json::Parse("  0.25  ")->AsNumber(), 0.25);
}

TEST(JsonTest, ParsesNested) {
  auto r = Json::Parse(
      "{\"sql\": \"SELECT count(*)\", \"epsilon\": 0.5,"
      " \"tags\": [1, 2, 3], \"opts\": {\"deep\": true}}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r->GetString("sql"), "SELECT count(*)");
  EXPECT_DOUBLE_EQ(*r->GetNumber("epsilon"), 0.5);
  ASSERT_NE(r->Find("tags"), nullptr);
  ASSERT_EQ(r->Find("tags")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(r->Find("tags")->items()[1].AsNumber(), 2.0);
  EXPECT_TRUE(r->Find("opts")->Find("deep")->AsBool());
}

TEST(JsonTest, StringEscapes) {
  auto r = Json::Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->AsString(), "a\"b\\c\nd\teA");

  // Dump escapes what Parse unescapes: round trip through the wire form.
  Json s = Json::Str("line1\nline2\t\"quoted\" \\slash");
  auto back = Json::Parse(s.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), s.AsString());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());        // trailing garbage
  EXPECT_FALSE(Json::Parse("{} []").ok());      // trailing garbage
  EXPECT_FALSE(Json::Parse("\"a\tb\"").ok());   // raw control char
  EXPECT_FALSE(Json::Parse("{'a': 1}").ok());   // single quotes
  EXPECT_EQ(Json::Parse("{").status().code(), StatusCode::kParseError);
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, DumpRoundTripsNumbers) {
  // Integral numbers (counters, COUNT answers) stay integral on the wire.
  EXPECT_EQ(Json::Number(1716).Dump(), "1716");
  EXPECT_EQ(Json::Number(-3).Dump(), "-3");
  EXPECT_EQ(Json::Number(0).Dump(), "0");
  // Non-finite is not representable: encoded as null, never "nan".
  EXPECT_EQ(Json::Number(std::nan("")).Dump(), "null");
  // Fractional values survive a round trip exactly.
  double v = 0.1234567890123456789;
  auto r = Json::Parse(Json::Number(v).Dump());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsNumber(), v);
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json obj = Json::Object();
  obj.Set("b", Json::Number(1));
  obj.Set("a", Json::Number(2));
  obj.Set("b", Json::Number(3));  // replaces, keeps position
  EXPECT_EQ(obj.Dump(), "{\"b\":3,\"a\":2}");
}

TEST(JsonTest, TypedAccessorsExplainFailures) {
  auto obj = Json::Parse("{\"epsilon\": \"not-a-number\"}");
  ASSERT_TRUE(obj.ok());
  auto num = obj->GetNumber("epsilon");
  EXPECT_FALSE(num.ok());
  EXPECT_EQ(num.status().code(), StatusCode::kInvalidArgument);
  auto missing = obj->GetString("sql");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("sql"), std::string::npos);
}

}  // namespace
}  // namespace dpstarj::net
