// Shared toy star-schema fixture for binder/executor/mechanism tests.
//
// Schema:
//   Cust(ck pk, region ∈ {N,S,E}, tier ∈ [1,4])  — 6 rows
//   Prod(pk pk, cat ∈ {a,b,c,d})                 — 4 rows
//   Orders(ck, pk, qty, price)                   — 12 rows (the fact)
//
// The instance is small enough to verify every aggregate by hand; helpers
// expose the canonical counting query used across tests.

#pragma once

#include <memory>

#include "query/star_query.h"
#include "storage/catalog.h"

namespace dpstarj::testing_fixture {

inline storage::AttributeDomain RegionDomain() {
  return storage::AttributeDomain::Categorical({"N", "S", "E"});
}

inline storage::AttributeDomain TierDomain() {
  return storage::AttributeDomain::IntRange(1, 4);
}

inline storage::AttributeDomain CatDomain() {
  return storage::AttributeDomain::Categorical({"a", "b", "c", "d"});
}

/// Builds the toy catalog. Aborts on internal errors (test-only code).
inline storage::Catalog MakeToyCatalog() {
  using storage::Field;
  using storage::Value;
  using storage::ValueType;

  storage::Catalog catalog;

  storage::Schema cust_schema({Field("ck", ValueType::kInt64),
                               Field("region", ValueType::kString, RegionDomain()),
                               Field("tier", ValueType::kInt64, TierDomain())});
  auto cust = *storage::Table::Create("Cust", cust_schema, "ck");
  // ck: 1..6; regions N,N,S,S,E,E; tiers 1,2,3,4,1,2.
  const char* regions[6] = {"N", "N", "S", "S", "E", "E"};
  const int64_t tiers[6] = {1, 2, 3, 4, 1, 2};
  for (int64_t i = 0; i < 6; ++i) {
    DPSTARJ_CHECK(
        cust->AppendRow({Value(i + 1), Value(regions[i]), Value(tiers[i])}).ok(),
        "fixture append");
  }

  storage::Schema prod_schema({Field("pk", ValueType::kInt64),
                               Field("cat", ValueType::kString, CatDomain())});
  auto prod = *storage::Table::Create("Prod", prod_schema, "pk");
  const char* cats[4] = {"a", "b", "c", "d"};
  for (int64_t i = 0; i < 4; ++i) {
    DPSTARJ_CHECK(prod->AppendRow({Value(i + 1), Value(cats[i])}).ok(),
                  "fixture append");
  }

  storage::Schema fact_schema({Field("ck", ValueType::kInt64),
                               Field("pk", ValueType::kInt64),
                               Field("qty", ValueType::kInt64),
                               Field("price", ValueType::kDouble)});
  auto fact = *storage::Table::Create("Orders", fact_schema);
  // 12 rows; (ck, pk, qty, price).
  const int64_t rows[12][3] = {
      {1, 1, 2}, {1, 2, 1}, {2, 1, 3}, {2, 3, 1}, {3, 2, 2}, {3, 4, 5},
      {4, 1, 1}, {4, 4, 2}, {5, 2, 4}, {5, 3, 3}, {6, 1, 2}, {6, 2, 1},
  };
  for (const auto& r : rows) {
    DPSTARJ_CHECK(fact->AppendRow({Value(r[0]), Value(r[1]), Value(r[2]),
                                   Value(static_cast<double>(r[2]) * 10.0)})
                      .ok(),
                  "fixture append");
  }

  DPSTARJ_CHECK(catalog.AddTable(cust).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddTable(prod).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Orders", "ck", "Cust", "ck"}).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Orders", "pk", "Prod", "pk"}).ok(), "fixture");
  return catalog;
}

/// COUNT(*) of orders by customers in region N joined with category-a
/// products. True answer on the fixture: rows with ck∈{1,2} and pk=1 →
/// (1,1),(2,1) → 2.
inline query::StarJoinQuery ToyCountQuery() {
  query::StarJoinQuery q;
  q.name = "toy_count";
  q.fact_table = "Orders";
  q.joined_tables = {"Cust", "Prod"};
  q.aggregate = query::AggregateKind::kCount;
  q.predicates.push_back(
      query::Predicate::Point("Cust", "region", storage::Value("N")));
  q.predicates.push_back(query::Predicate::Point("Prod", "cat", storage::Value("a")));
  return q;
}

}  // namespace dpstarj::testing_fixture
