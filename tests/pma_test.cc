// Tests for PMA (Algorithm 2): perturbation semantics, clamping, termination,
// scale correctness, and parameterized sweeps across domains and budgets.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "core/pma.h"

namespace dpstarj::core {
namespace {

query::BoundPredicate MakePoint(int64_t domain_size, int64_t at) {
  query::BoundPredicate p;
  p.table = "D";
  p.column = "a";
  p.column_index = 0;
  p.domain = storage::AttributeDomain::IntRange(0, domain_size - 1);
  p.kind = query::PredicateKind::kPoint;
  p.lo_index = at;
  p.hi_index = at;
  return p;
}

query::BoundPredicate MakeRange(int64_t domain_size, int64_t lo, int64_t hi) {
  query::BoundPredicate p = MakePoint(domain_size, lo);
  p.kind = query::PredicateKind::kRange;
  p.hi_index = hi;
  return p;
}

TEST(PmaTest, Scales) {
  EXPECT_DOUBLE_EQ(PmaPointScale(7, 0.5), 14.0);
  EXPECT_DOUBLE_EQ(PmaRangeScale(7, 0.5), 28.0);
}

TEST(PmaTest, PointStaysInDomain) {
  Rng rng(1);
  auto pred = MakePoint(5, 2);
  for (int i = 0; i < 2000; ++i) {
    auto noisy = PerturbPredicate(pred, 0.1, &rng);
    ASSERT_TRUE(noisy.ok());
    EXPECT_GE(noisy->lo_index, 0);
    EXPECT_LT(noisy->lo_index, 5);
    EXPECT_EQ(noisy->lo_index, noisy->hi_index);
    EXPECT_EQ(noisy->kind, query::PredicateKind::kPoint);
  }
}

TEST(PmaTest, RangeStaysInDomainAndNonEmpty) {
  Rng rng(2);
  auto pred = MakeRange(100, 20, 60);
  for (int i = 0; i < 2000; ++i) {
    auto noisy = PerturbPredicate(pred, 0.2, &rng);
    ASSERT_TRUE(noisy.ok());
    EXPECT_GE(noisy->lo_index, 0);
    EXPECT_LE(noisy->lo_index, noisy->hi_index);
    EXPECT_LT(noisy->hi_index, 100);
  }
}

TEST(PmaTest, HighBudgetBarelyPerturbs) {
  Rng rng(3);
  auto pred = MakeRange(1000, 100, 900);
  double epsilon = 1e6;  // essentially no noise
  auto noisy = PerturbPredicate(pred, epsilon, &rng);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->lo_index, 100);
  EXPECT_EQ(noisy->hi_index, 900);
}

TEST(PmaTest, PointShiftMatchesLaplaceScale) {
  // Mean |shift| of Laplace(b) is b (before rounding/clamping). Use a huge
  // domain so clamping is immaterial and check the empirical mean shift.
  Rng rng(4);
  int64_t m = 1000000;
  auto pred = MakePoint(m, m / 2);
  double epsilon = 100.0;  // scale m/ε = 10⁴ ≪ m/2, so clamping is negligible
  std::vector<double> shifts;
  shifts.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    auto noisy = PerturbPredicate(pred, epsilon, &rng);
    ASSERT_TRUE(noisy.ok());
    shifts.push_back(std::abs(static_cast<double>(noisy->lo_index - m / 2)));
  }
  double expected = PmaPointScale(m, epsilon);  // E|Lap(b)| = b = m/ε
  EXPECT_NEAR(Mean(shifts), expected, 0.05 * expected);
}

TEST(PmaTest, DeterministicUnderSeed) {
  auto pred = MakeRange(50, 10, 30);
  Rng a(77), b(77);
  auto r1 = PerturbPredicate(pred, 0.3, &a);
  auto r2 = PerturbPredicate(pred, 0.3, &b);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->lo_index, r2->lo_index);
  EXPECT_EQ(r1->hi_index, r2->hi_index);
}

TEST(PmaTest, PreservesAddressingMetadata) {
  Rng rng(5);
  auto pred = MakeRange(10, 2, 8);
  pred.table = "Customer";
  pred.column = "region";
  pred.column_index = 3;
  auto noisy = PerturbPredicate(pred, 0.5, &rng);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->table, "Customer");
  EXPECT_EQ(noisy->column, "region");
  EXPECT_EQ(noisy->column_index, 3);
  EXPECT_EQ(noisy->domain.size(), 10);
}

TEST(PmaTest, Validation) {
  Rng rng(6);
  auto pred = MakePoint(5, 2);
  EXPECT_FALSE(PerturbPredicate(pred, 0.0, &rng).ok());
  EXPECT_FALSE(PerturbPredicate(pred, -1.0, &rng).ok());
  EXPECT_FALSE(PerturbPredicate(pred, 1.0, nullptr).ok());
  auto bad = MakeRange(5, 3, 1);  // inverted
  std::swap(bad.lo_index, bad.hi_index);
  bad.lo_index = 3;
  bad.hi_index = 1;
  EXPECT_FALSE(PerturbPredicate(bad, 1.0, &rng).ok());
  auto oob = MakePoint(5, 7);
  EXPECT_FALSE(PerturbPredicate(oob, 1.0, &rng).ok());
}

TEST(PmaTest, TerminatesUnderExtremeNoise) {
  // ε so small that nearly every draw lands outside the domain; the retry
  // bound plus swap fallback must still terminate with a valid range.
  Rng rng(7);
  auto pred = MakeRange(3, 0, 2);
  PmaOptions opts;
  opts.max_range_retries = 2;
  for (int i = 0; i < 500; ++i) {
    auto noisy = PerturbPredicate(pred, 1e-9, &rng, opts);
    ASSERT_TRUE(noisy.ok());
    EXPECT_LE(noisy->lo_index, noisy->hi_index);
    EXPECT_GE(noisy->lo_index, 0);
    EXPECT_LT(noisy->hi_index, 3);
  }
}

// ---- parameterized sweep over (domain size, epsilon) -----------------------

struct PmaSweepParam {
  int64_t domain;
  double epsilon;
};

class PmaSweep : public ::testing::TestWithParam<PmaSweepParam> {};

TEST_P(PmaSweep, InvariantsHoldEverywhere) {
  auto [m, eps] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + eps * 100));
  auto point = MakePoint(m, m / 2);
  auto range = MakeRange(m, m / 4, (3 * m) / 4);
  for (int i = 0; i < 300; ++i) {
    auto p = PerturbPredicate(point, eps, &rng);
    ASSERT_TRUE(p.ok());
    EXPECT_GE(p->lo_index, 0);
    EXPECT_LT(p->hi_index, m);
    auto r = PerturbPredicate(range, eps, &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->lo_index, 0);
    EXPECT_LE(r->lo_index, r->hi_index);
    EXPECT_LT(r->hi_index, m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndBudgets, PmaSweep,
    ::testing::Values(PmaSweepParam{2, 0.1}, PmaSweepParam{5, 0.1},
                      PmaSweepParam{5, 1.0}, PmaSweepParam{25, 0.5},
                      PmaSweepParam{366, 0.1}, PmaSweepParam{1000, 0.8},
                      PmaSweepParam{144000, 0.1}, PmaSweepParam{144000, 1.0}));

}  // namespace
}  // namespace dpstarj::core
