// End-to-end tests of the HTTP front door: a live epoll server over a real
// QueryService, exercised by concurrent net::Client threads.
//
// The acceptance-criterion test runs 8 client connections × 125 queries
// (1000 total) and then checks the per-tenant ε accounting over the wire
// against the in-process ledger — exactly. The overload test saturates a
// 1-engine/1-slot service and checks that the front door sheds load with
// 429 + Retry-After while /healthz stays responsive (the accept loop and
// spare handler threads never park on the pool's backpressure).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "net/client.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "service/query_service.h"
#include "storage/catalog.h"
#include "test_catalog.h"

namespace dpstarj::net {
namespace {

std::string QueryBody(const std::string& sql, double epsilon,
                      const std::string& tenant) {
  Json body = Json::Object();
  body.Set("sql", Json::Str(sql));
  body.Set("epsilon", Json::Number(epsilon));
  body.Set("tenant", Json::Str(tenant));
  return body.Dump();
}

// The d-th distinct toy-catalog query (distinct canonical keys for d < 16).
std::string DistinctToyQuery(int d) {
  return Format(
      "SELECT count(*) FROM Orders, Cust, Prod WHERE Orders.ck = Cust.ck "
      "AND Orders.pk = Prod.pk AND Cust.tier <= %d AND Prod.cat = '%c'",
      d % 4 + 1, "abcd"[(d / 4) % 4]);
}

// A larger star instance whose queries take real milliseconds — enough work
// for the overload test to actually fill a 1-slot queue.
storage::Catalog MakeHeavyCatalog(int64_t fact_rows) {
  using storage::AttributeDomain;
  using storage::Field;
  using storage::Value;
  using storage::ValueType;

  constexpr int64_t kDimRows = 500;
  storage::Schema dim_schema({Field("dk", ValueType::kInt64),
                              Field("bucket", ValueType::kInt64,
                                    AttributeDomain::IntRange(1, kDimRows))});
  auto dim = *storage::Table::Create("Dim", dim_schema, "dk");
  for (int64_t i = 0; i < kDimRows; ++i) {
    EXPECT_TRUE(dim->AppendRow({Value(i + 1), Value(i + 1)}).ok());
  }
  storage::Schema fact_schema(
      {Field("dk", ValueType::kInt64), Field("amount", ValueType::kDouble)});
  auto fact = *storage::Table::Create("Fact", fact_schema);
  for (int64_t i = 0; i < fact_rows; ++i) {
    EXPECT_TRUE(
        fact->AppendRow({Value(i % kDimRows + 1), Value(double(i % 31))}).ok());
  }
  storage::Catalog catalog;
  EXPECT_TRUE(catalog.AddTable(dim).ok());
  EXPECT_TRUE(catalog.AddTable(fact).ok());
  EXPECT_TRUE(catalog.AddForeignKey({"Fact", "dk", "Dim", "dk"}).ok());
  return catalog;
}

// A raw blocking TCP connection for the deadline tests: net::Client always
// sends complete requests, which is exactly what a slow-loris peer does not.
class RawConn {
 public:
  RawConn(const std::string& host, uint16_t port, int recv_timeout_ms = 5000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{recv_timeout_ms / 1000, (recv_timeout_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }
  bool Send(const std::string& bytes) {
    return fd_ >= 0 &&
           ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(bytes.size());
  }
  /// Reads until EOF (or the socket timeout); returns everything received.
  std::string DrainUntilEof() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;  // EOF, timeout or error
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }
  /// Reads until `marker` has been seen (headers+body arrive in few reads).
  std::string ReadUntil(const std::string& marker) {
    std::string out;
    char buf[4096];
    while (out.find(marker) == std::string::npos) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

class NetServerTest : public ::testing::Test {
 protected:
  NetServerTest() : catalog_(testing_fixture::MakeToyCatalog()) {}
  storage::Catalog catalog_;
};

// The acceptance-criterion test: 8 concurrent connections, 1000 queries,
// per-tenant ε accounting over the wire matches the ledger exactly.
TEST_F(NetServerTest, EightConnectionsThousandQueriesExactAccounting) {
  constexpr int kClients = 8;
  constexpr int kPerClient = 125;
  constexpr int kDistinctPerTenant = 10;
  constexpr double kTotal = 100.0;

  service::ServiceOptions service_options;
  service_options.num_engines = 2;
  service_options.queue_capacity = 64;
  service::QueryService service(&catalog_, service_options);

  ServerOptions server_options;
  server_options.handler_threads = kClients;
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  // Every client is its own tenant with its own ε-per-query; distinct ε
  // values keep the tenants' cache keys disjoint even for identical SQL, so
  // each tenant's paid-answer count is deterministic: one per distinct query
  // (the thread submits sequentially — replays are free).
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = Format("tenant-%d", t);
      const double eps = 0.01 * (t + 1);
      Client client("127.0.0.1", server.port());
      auto reg = client.Post(
          "/v1/tenants",
          Format("{\"tenant\":\"%s\",\"epsilon\":%g}", tenant.c_str(), kTotal));
      if (!reg.ok() || reg->status != 201) {
        ++failures;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        std::string sql = DistinctToyQuery(i % kDistinctPerTenant);
        auto r = client.Post("/v1/query", QueryBody(sql, eps, tenant));
        if (!r.ok() || r->status != 200) {
          ++failures;
          return;
        }
        auto body = Client::ParseBody(*r);
        if (!body.ok() || body->Find("scalar") == nullptr) {
          ++failures;
          return;
        }
      }
      // The wire-reported account must agree with the expected position:
      // exactly kDistinctPerTenant fresh draws were paid for.
      auto account = client.Get("/v1/tenants/" + tenant);
      if (!account.ok() || account->status != 200) {
        ++failures;
        return;
      }
      auto json = Client::ParseBody(*account);
      if (!json.ok()) {
        ++failures;
        return;
      }
      double spent = *json->GetNumber("spent");
      double remaining = *json->GetNumber("remaining");
      EXPECT_NEAR(spent, kDistinctPerTenant * eps, 1e-9) << tenant;
      EXPECT_NEAR(remaining, kTotal - kDistinctPerTenant * eps, 1e-9) << tenant;
      // ...and with the in-process ledger bit-for-bit (the JSON number round
      // trip is exact: %.17g / integral fast path).
      auto ledger = service.ledger().Account(tenant);
      ASSERT_TRUE(ledger.ok());
      EXPECT_EQ(spent, ledger->spent) << tenant;
      EXPECT_EQ(remaining, ledger->remaining) << tenant;
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);

  service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.failed, 0u);
  // Per tenant: kDistinctPerTenant misses, the rest replays.
  EXPECT_EQ(stats.cache.misses,
            static_cast<uint64_t>(kClients * kDistinctPerTenant));
  EXPECT_EQ(stats.cache.hits,
            static_cast<uint64_t>(kClients * (kPerClient - kDistinctPerTenant)));

  ServerStats net_stats = server.GetStats();
  EXPECT_GE(net_stats.requests_handled,
            static_cast<uint64_t>(kClients * (kPerClient + 2)));
  EXPECT_EQ(net_stats.bad_requests, 0u);
  server.Stop();
}

// Saturate a 1-engine, 1-slot service: the front door must shed load with
// 429 + Retry-After, the accept loop must keep answering /healthz, and every
// shed request's admission ε must flow back (exact conservation).
TEST(NetServerOverloadTest, QueueFullYields429AndNeverBlocksAcceptLoop) {
  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  constexpr double kEps = 0.01;

  storage::Catalog catalog = MakeHeavyCatalog(60000);
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service_options.queue_capacity = 1;
  service_options.cache_capacity = 0;  // every accepted query really runs
  service_options.default_tenant_budget = 1e9;
  service::QueryService service(&catalog, service_options);

  ServerOptions server_options;
  server_options.handler_threads = kClients + 2;
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<uint64_t> ok_count{0}, shed_count{0};
  std::atomic<int> failures{0};
  std::atomic<bool> storm_over{false};

  // A probe hammering /healthz for the whole storm: if the accept loop or
  // all handler threads ever park on the pool's backpressure, this stalls
  // and the count collapses.
  std::thread probe([&] {
    Client client("127.0.0.1", server.port());
    while (!storm_over.load()) {
      auto r = client.Get("/healthz");
      if (!r.ok() || r->status != 200) {
        ++failures;
        return;
      }
    }
  });

  std::vector<std::thread> clients;
  int query_counter = 0;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t, base = query_counter] {
      Client client("127.0.0.1", server.port());
      for (int i = 0; i < kPerClient; ++i) {
        int n = base + i;
        std::string sql = Format(
            "SELECT count(*) FROM Fact, Dim WHERE Fact.dk = Dim.dk "
            "AND Dim.bucket BETWEEN %d AND %d",
            n % 200 + 1, n % 200 + 150 + t);
        auto r = client.Post("/v1/query", QueryBody(sql, kEps, "storm"));
        if (!r.ok()) {
          ++failures;
          return;
        }
        if (r->status == 200) {
          ok_count.fetch_add(1);
        } else if (r->status == 429) {
          shed_count.fetch_add(1);
          // The protocol promises a Retry-After hint and an Unavailable code
          // — and no tenant-limited marker: this is global queue pressure,
          // not a per-tenant verdict.
          EXPECT_FALSE(r->FindHeader("Retry-After").empty());
          EXPECT_TRUE(r->FindHeader(kTenantLimitedHeader).empty());
          auto body = Client::ParseBody(*r);
          ASSERT_TRUE(body.ok());
          ASSERT_NE(body->Find("error"), nullptr);
          EXPECT_EQ(body->Find("error")->GetString("code").ValueOrDie(),
                    "Unavailable");
        } else {
          ADD_FAILURE() << "unexpected HTTP " << r->status << ": " << r->body;
          ++failures;
          return;
        }
      }
    });
    query_counter += kPerClient;
  }
  for (auto& th : clients) th.join();
  storm_over.store(true);
  probe.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ok_count.load() + shed_count.load(),
            static_cast<uint64_t>(kClients * kPerClient));
  // 6 senders against 1 engine and a 1-deep queue must shed.
  EXPECT_GT(shed_count.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);

  // Exact conservation: only answered queries kept their ε.
  EXPECT_NEAR(*service.ledger().Spent("storm"),
              static_cast<double>(ok_count.load()) * kEps, 1e-9);
  service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected_overload, shed_count.load());
  EXPECT_EQ(stats.completed, ok_count.load());
  server.Stop();
}

TEST_F(NetServerTest, ProtocolErrorsOverTheWire) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);
  HttpServer server(MakeServiceRouter(&service), {});
  ASSERT_TRUE(server.Start().ok());
  Client client("127.0.0.1", server.port());

  // Route and method errors.
  EXPECT_EQ(client.Get("/nope")->status, 404);
  EXPECT_EQ(client.Get("/v1/query")->status, 405);
  EXPECT_EQ(client.Get("/v1/query")->FindHeader("Allow"), "POST");

  // Malformed / mistyped bodies.
  EXPECT_EQ(client.Post("/v1/query", "not json")->status, 400);
  EXPECT_EQ(client.Post("/v1/query", "{\"sql\": 7}")->status, 400);
  EXPECT_EQ(client.Post("/v1/tenants", "{\"tenant\":\"x\"}")->status, 400);

  // Tenant lifecycle errors. An overflowing JSON number ("1e999" → +inf)
  // must not mint an infinite budget.
  EXPECT_EQ(client.Post("/v1/tenants", "{\"tenant\":\"evil\",\"epsilon\":1e999}")
                ->status,
            400);
  EXPECT_EQ(client.Get("/v1/tenants/ghost")->status, 404);
  ASSERT_EQ(client.Post("/v1/tenants", "{\"tenant\":\"t\",\"epsilon\":0.2}")
                ->status,
            201);
  EXPECT_EQ(client.Post("/v1/tenants", "{\"tenant\":\"t\",\"epsilon\":1}")
                ->status,
            409);

  // Unknown tenant on the query path, then budget exhaustion (403, a DP
  // verdict — distinct from 429's "try again").
  const std::string sql = DistinctToyQuery(0);
  EXPECT_EQ(client.Post("/v1/query", QueryBody(sql, 0.1, "ghost"))->status, 404);
  EXPECT_EQ(client.Post("/v1/query", QueryBody(sql, 0.2, "t"))->status, 200);
  auto exhausted = client.Post("/v1/query", QueryBody(DistinctToyQuery(1), 0.2, "t"));
  EXPECT_EQ(exhausted->status, 403);
  auto body = Client::ParseBody(*exhausted);
  ASSERT_TRUE(body.ok());
  ASSERT_NE(body->Find("error"), nullptr);
  EXPECT_EQ(body->Find("error")->GetString("code").ValueOrDie(),
            "BudgetExhausted");

  // Bad epsilon is refused before admission.
  EXPECT_EQ(client.Post("/v1/query", QueryBody(sql, -1.0, "t"))->status, 400);

  // An unparsable request line closes the connection with 400 after the
  // response; the next Client call transparently reconnects.
  EXPECT_EQ(client.Get("/healthz")->status, 200);
  server.Stop();
}

// POST /v1/workload end to end: a mixed batch (fresh, cache-replayed and
// failing queries) is answered in one round trip with per-query outcomes,
// the shared-scan CSE receipts and stage timings — and an underfunded batch
// is refused whole with /v1/query's status mapping.
TEST_F(NetServerTest, WorkloadBatchOverTheWire) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);
  HttpServer server(MakeServiceRouter(&service), {});
  ASSERT_TRUE(server.Start().ok());
  Client client("127.0.0.1", server.port());

  ASSERT_EQ(client.Post("/v1/tenants", "{\"tenant\":\"w\",\"epsilon\":1}")
                ->status,
            201);
  // Warm the answer cache so the batch demonstrably replays one entry.
  ASSERT_EQ(
      client.Post("/v1/query", QueryBody(DistinctToyQuery(0), 0.1, "w"))->status,
      200);

  auto MakeBatch = [](std::initializer_list<std::pair<std::string, double>>
                          queries) {
    Json body = Json::Object();
    body.Set("tenant", Json::Str("w"));
    Json arr = Json::Array();
    for (const auto& [sql, eps] : queries) {
      Json q = Json::Object();
      q.Set("sql", Json::Str(sql));
      q.Set("epsilon", Json::Number(eps));
      arr.Append(std::move(q));
    }
    body.Set("queries", std::move(arr));
    return body.Dump();
  };

  auto r = client.Post("/v1/workload",
                       MakeBatch({{DistinctToyQuery(0), 0.1},
                                  {DistinctToyQuery(1), 0.2},
                                  {"SELECT nope", 0.1}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->status, 200) << r->body;
  auto body = Client::ParseBody(*r);
  ASSERT_TRUE(body.ok());

  const Json* queries = body->Find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_EQ(queries->items().size(), 3u);
  const Json& cached = queries->items()[0];
  EXPECT_TRUE(cached.Find("ok")->AsBool());
  EXPECT_TRUE(cached.Find("cached")->AsBool());
  EXPECT_NE(cached.Find("scalar"), nullptr);
  const Json& fresh = queries->items()[1];
  EXPECT_TRUE(fresh.Find("ok")->AsBool());
  EXPECT_FALSE(fresh.Find("cached")->AsBool());
  EXPECT_NE(fresh.Find("scalar"), nullptr);
  const Json& failed = queries->items()[2];
  EXPECT_FALSE(failed.Find("ok")->AsBool());
  ASSERT_NE(failed.Find("error"), nullptr);

  // The CSE receipts: one shared sweep answered the one fresh query.
  const Json* exec = body->Find("exec");
  ASSERT_NE(exec, nullptr);
  EXPECT_DOUBLE_EQ(*exec->GetNumber("queries"), 1.0);
  EXPECT_DOUBLE_EQ(*exec->GetNumber("scans"), 1.0);
  const Json* stages = body->Find("stage_us");
  ASSERT_NE(stages, nullptr);
  EXPECT_NE(stages->Find("scan"), nullptr);  // the one shared sweep

  // ε accounting: warm 0.1 + fresh 0.2; the replay and the failure flowed
  // back. The refused batch below must not move the account either.
  auto account = Client::ParseBody(*client.Get("/v1/tenants/w"));
  ASSERT_TRUE(account.ok());
  EXPECT_NEAR(*account->GetNumber("spent"), 0.3, 1e-9);

  // Underfunded batch (0.5 + 0.4 > 0.7 remaining): refused whole, 403, no
  // partial spend.
  auto refused = client.Post("/v1/workload",
                             MakeBatch({{DistinctToyQuery(2), 0.5},
                                        {DistinctToyQuery(3), 0.4}}));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, 403) << refused->body;
  auto err = Client::ParseBody(*refused);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->Find("error")->GetString("code").ValueOrDie(),
            "BudgetExhausted");
  account = Client::ParseBody(*client.Get("/v1/tenants/w"));
  ASSERT_TRUE(account.ok());
  EXPECT_NEAR(*account->GetNumber("spent"), 0.3, 1e-9);

  // Malformed batches are 400s before admission.
  EXPECT_EQ(client.Post("/v1/workload", "{\"tenant\":\"w\"}")->status, 400);
  EXPECT_EQ(client.Post("/v1/workload",
                        "{\"tenant\":\"w\",\"queries\":[]}")
                ->status,
            400);

  // The workload counters surface in /v1/stats.
  auto stats = Client::ParseBody(*client.Get("/v1/stats"));
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(*stats->GetNumber("workload_batches"), 1.0);
  EXPECT_DOUBLE_EQ(*stats->GetNumber("workload_queries_fresh"), 1.0);
  EXPECT_DOUBLE_EQ(*stats->GetNumber("workload_queries_cached"), 1.0);
  EXPECT_DOUBLE_EQ(*stats->GetNumber("workload_queries_failed"), 1.0);
  EXPECT_DOUBLE_EQ(*stats->GetNumber("workload_cache_skips"), 1.0);
  server.Stop();
}

TEST_F(NetServerTest, GracefulStopDrainsAndRefusesNewConnections) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);
  HttpServer server(MakeServiceRouter(&service), {});
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  Client client("127.0.0.1", port);
  ASSERT_EQ(client.Get("/healthz")->status, 200);

  server.Stop();
  server.Stop();  // idempotent

  // The kept-alive connection was torn down and nothing listens anymore:
  // both the reuse path and a fresh connection must fail cleanly.
  auto after = client.Get("/healthz");
  EXPECT_FALSE(after.ok());
  Client fresh("127.0.0.1", port);
  EXPECT_FALSE(fresh.Get("/healthz").ok());
}

// The slow-loris bound (docs/wire-protocol.md "Connection deadlines"): a
// client dripping an eternally-unfinished request line is answered 408 and
// closed at the header deadline — while a concurrent well-behaved client on
// the same server never notices.
TEST_F(NetServerTest, SlowLorisReapedAtHeaderDeadlineFastClientUnaffected) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);
  ServerOptions server_options;
  server_options.header_timeout_ms = 400;
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  const auto start = std::chrono::steady_clock::now();
  RawConn loris("127.0.0.1", server.port());
  ASSERT_TRUE(loris.ok());
  ASSERT_TRUE(loris.Send("GET /heal"));  // ...and never finishes the line

  // The fast client gets served throughout the loris's lifetime.
  Client fast("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    auto r = fast.Get("/healthz");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
  }

  // The loris is reaped: best-effort 408, then EOF, within the deadline
  // (plus scheduling slack), and emphatically not the 5s socket timeout.
  std::string received = loris.DrainUntilEof();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  EXPECT_NE(received.find("408"), std::string::npos) << received;
  EXPECT_NE(received.find("TimeLimit"), std::string::npos) << received;
  EXPECT_GE(elapsed_ms, 350.0);
  EXPECT_LT(elapsed_ms, 3000.0);

  ServerStats stats = server.GetStats();
  EXPECT_EQ(stats.timeouts_header, 1u);
  EXPECT_EQ(stats.timeouts_idle, 0u);

  // The fast client's keep-alive connection is still alive and armed.
  EXPECT_EQ(fast.Get("/healthz")->status, 200);
  server.Stop();
}

// A keep-alive connection that goes quiet after a completed exchange is
// closed silently at the idle deadline — no 408, no error, just EOF.
TEST_F(NetServerTest, KeepAliveIdleTimeoutClosesCleanly) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);
  ServerOptions server_options;
  server_options.header_timeout_ms = 2000;
  server_options.idle_timeout_ms = 300;
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  RawConn conn("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Send("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string response = conn.ReadUntil("\"ok\"");
  ASSERT_NE(response.find("200"), std::string::npos) << response;

  // No second request: the server reaps the idle connection. EOF must come
  // from the 300ms idle deadline, not the 5s receive timeout.
  const auto idle_from = std::chrono::steady_clock::now();
  std::string rest = conn.DrainUntilEof();
  const double idle_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                idle_from)
          .count();
  EXPECT_TRUE(rest.empty()) << rest;  // silent close: no 408 for idleness
  EXPECT_GE(idle_ms, 250.0);
  EXPECT_LT(idle_ms, 3000.0);
  EXPECT_EQ(server.GetStats().timeouts_idle, 1u);
  EXPECT_EQ(server.GetStats().timeouts_header, 0u);
  server.Stop();
}

// The two 429 flavors are distinguishable on the wire: a tenant over its own
// limits gets RateLimited + X-DPStarJ-Tenant-Limited: 1, while global queue
// pressure stays Unavailable with no marker (asserted in the overload test).
TEST_F(NetServerTest, TenantLimited429DistinctFromOverload) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);
  HttpServer server(MakeServiceRouter(&service), {});
  ASSERT_TRUE(server.Start().ok());
  Client client("127.0.0.1", server.port());

  // Register with a bucket of exactly one token that effectively never
  // refills; overrides ride along on POST /v1/tenants.
  auto reg = client.Post(
      "/v1/tenants",
      "{\"tenant\":\"drip\",\"epsilon\":100,\"rate_qps\":0.001,\"burst\":1}");
  ASSERT_TRUE(reg.ok());
  ASSERT_EQ(reg->status, 201);
  auto body = Client::ParseBody(*reg);
  ASSERT_TRUE(body.ok());
  EXPECT_DOUBLE_EQ(*body->GetNumber("rate_qps"), 0.001);

  const std::string sql = DistinctToyQuery(0);
  EXPECT_EQ(client.Post("/v1/query", QueryBody(sql, 0.1, "drip"))->status, 200);

  auto limited = client.Post("/v1/query", QueryBody(sql, 0.1, "drip"));
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->status, 429);
  EXPECT_EQ(limited->FindHeader(kTenantLimitedHeader), "1");
  EXPECT_FALSE(limited->FindHeader("Retry-After").empty());
  auto err = Client::ParseBody(*limited);
  ASSERT_TRUE(err.ok());
  ASSERT_NE(err->Find("error"), nullptr);
  EXPECT_EQ(err->Find("error")->GetString("code").ValueOrDie(), "RateLimited");

  // The refusal is pre-ledger: the tenant paid for one answer only, and the
  // account's admission block shows the rate-limited attempt.
  auto account = client.Get("/v1/tenants/drip");
  ASSERT_EQ(account->status, 200);
  auto acc = Client::ParseBody(*account);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc->GetNumber("spent"), 0.1);
  const Json* adm = acc->Find("admission");
  ASSERT_NE(adm, nullptr);
  EXPECT_DOUBLE_EQ(*adm->GetNumber("rate_limited"), 1.0);
  EXPECT_DOUBLE_EQ(*adm->GetNumber("in_flight"), 0.0);

  // Another tenant on the same service is unaffected by drip's bucket.
  ASSERT_EQ(client
                .Post("/v1/tenants",
                      "{\"tenant\":\"free\",\"epsilon\":100}")
                ->status,
            201);
  EXPECT_EQ(client.Post("/v1/query", QueryBody(sql, 0.1, "free"))->status, 200);

  // A live tenant's limits can be updated over the wire: re-POST with limit
  // fields answers 200 and applies them — while epsilon is never re-minted.
  auto update = client.Post(
      "/v1/tenants", "{\"tenant\":\"drip\",\"epsilon\":999,\"rate_qps\":0}");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->status, 200);
  auto updated = Client::ParseBody(*update);
  ASSERT_TRUE(updated.ok());
  EXPECT_DOUBLE_EQ(*updated->GetNumber("total"), 100.0);  // not 999
  // Unthrottled: the previously rate-limited tenant answers again.
  EXPECT_EQ(client.Post("/v1/query", QueryBody(DistinctToyQuery(1), 0.1, "drip"))
                ->status,
            200);
  // A plain re-registration without limit fields still conflicts.
  EXPECT_EQ(client.Post("/v1/tenants", "{\"tenant\":\"drip\",\"epsilon\":5}")
                ->status,
            409);

  auto stats = Client::ParseBody(*client.Get("/v1/stats"));
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(*stats->GetNumber("rejected_tenant_limited"), 1.0);
  EXPECT_DOUBLE_EQ(*stats->GetNumber("rejected_overload"), 0.0);
  server.Stop();
}

// The fairness acceptance test: a hot tenant saturating the service (capped
// in-flight, so it cannot fill the global queue) leaves a quiet tenant's
// queries answerable — every one succeeds, with exact ε accounting.
TEST(NetServerFairnessTest, HotTenantCannotStarveQuietTenant) {
  constexpr int kQuietQueries = 15;
  constexpr double kQuietEps = 0.01;
  constexpr int kHotThreads = 4;

  storage::Catalog catalog = MakeHeavyCatalog(30000);
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service_options.queue_capacity = 64;
  service_options.cache_capacity = 0;  // every quiet answer is a paid draw
  service_options.default_tenant_budget = 1e9;
  service::QueryService service(&catalog, service_options);
  // Cap only the hot tenant: at most 2 of its queries may occupy the pool,
  // so the 64-slot queue never fills and "quiet" is never globally shed.
  service::TenantLimits hot_limits;
  hot_limits.max_in_flight = 2;
  service.SetTenantLimits("hot", hot_limits);

  ServerOptions server_options;
  server_options.handler_threads = kHotThreads + 2;
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> storm_over{false};
  std::atomic<uint64_t> hot_ok{0}, hot_limited{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> hot;
  for (int t = 0; t < kHotThreads; ++t) {
    hot.emplace_back([&, t] {
      Client client("127.0.0.1", server.port());
      for (int i = 0; !storm_over.load(); ++i) {
        int n = t * 100000 + i;
        std::string sql = Format(
            "SELECT count(*) FROM Fact, Dim WHERE Fact.dk = Dim.dk "
            "AND Dim.bucket BETWEEN %d AND %d",
            n % 200 + 1, n % 200 + 180);
        auto r = client.Post("/v1/query", QueryBody(sql, 0.001, "hot"));
        if (!r.ok()) {
          ++failures;
          return;
        }
        if (r->status == 200) {
          hot_ok.fetch_add(1);
        } else if (r->status == 429) {
          // Always the tenant-limited flavor: the global queue has room.
          hot_limited.fetch_add(1);
          if (r->FindHeader(kTenantLimitedHeader) != "1") {
            ADD_FAILURE() << "expected tenant-limited marker: " << r->body;
            ++failures;
            return;
          }
        } else {
          ADD_FAILURE() << "unexpected HTTP " << r->status << ": " << r->body;
          ++failures;
          return;
        }
      }
    });
  }

  // The quiet tenant, sequential, must get every answer while the storm
  // rages — fair dispatch bounds its wait to the hot tenant's in-flight cap.
  {
    Client client("127.0.0.1", server.port());
    for (int i = 0; i < kQuietQueries; ++i) {
      std::string sql = Format(
          "SELECT count(*) FROM Fact, Dim WHERE Fact.dk = Dim.dk "
          "AND Dim.bucket BETWEEN 1 AND %d",
          i + 2);
      auto r = client.Post("/v1/query", QueryBody(sql, kQuietEps, "quiet"));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->status, 200) << r->body;
    }
  }
  storm_over.store(true);
  for (auto& th : hot) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(hot_limited.load(), 0u) << "the hot tenant was never capped";
  // Exact ε accounting for the quiet tenant: one paid draw per query.
  EXPECT_NEAR(*service.ledger().Spent("quiet"), kQuietQueries * kQuietEps, 1e-9);
  service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected_tenant_limited, hot_limited.load());
  EXPECT_EQ(stats.tenant_capped, hot_limited.load());
  EXPECT_EQ(stats.rejected_overload, 0u);
  server.Stop();
}

TEST_F(NetServerTest, ConnectionCapShedsWith503) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);
  ServerOptions server_options;
  server_options.max_connections = 2;
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  Client a("127.0.0.1", server.port());
  Client b("127.0.0.1", server.port());
  ASSERT_EQ(a.Get("/healthz")->status, 200);
  ASSERT_EQ(b.Get("/healthz")->status, 200);

  // The third concurrent connection is over the cap: the server answers 503
  // and closes instead of letting it occupy parser/handler resources.
  Client c("127.0.0.1", server.port());
  auto r = c.Get("/healthz");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 503);

  // Capacity frees once an earlier connection goes away (the server reaps
  // the FIN asynchronously, so poll briefly).
  a.Close();
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    Client d("127.0.0.1", server.port());
    auto ok = d.Get("/healthz");
    recovered = ok.ok() && ok->status == 200;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
  server.Stop();
}

}  // namespace
}  // namespace dpstarj::net
