// MorselPool: coverage completeness, static role→morsel determinism, and the
// concurrency contract — concurrent multi-worker jobs from different caller
// threads must all complete (work conservation: a caller adopts its own
// unclaimed roles, so no job can starve behind another).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "exec/parallel.h"

namespace dpstarj {
namespace {

using exec::MorselPool;

TEST(MorselPool, CoversEveryRowExactlyOnce) {
  for (int workers : {1, 3, 8}) {
    for (int64_t total : {1, 7, 100, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(total));
      for (auto& h : hits) h = 0;
      MorselPool::Shared().Run(workers, total, /*morsel_size=*/17,
                               [&](int, int64_t begin, int64_t end) {
                                 for (int64_t r = begin; r < end; ++r) {
                                   hits[static_cast<size_t>(r)]++;
                                 }
                               });
      for (int64_t r = 0; r < total; ++r) {
        ASSERT_EQ(hits[static_cast<size_t>(r)].load(), 1)
            << "row " << r << " workers " << workers << " total " << total;
      }
    }
  }
}

TEST(MorselPool, RoleAssignmentIsStatic) {
  // Role w must own morsels w, w+W, ... and visit them in increasing order —
  // the basis of the executor's deterministic partial merging.
  constexpr int kWorkers = 4;
  constexpr int64_t kMorsel = 10;
  constexpr int64_t kTotal = 237;
  std::mutex mu;
  std::vector<std::vector<int64_t>> begins(kWorkers);
  MorselPool::Shared().Run(kWorkers, kTotal, kMorsel,
                           [&](int worker, int64_t begin, int64_t) {
                             std::lock_guard<std::mutex> lock(mu);
                             begins[static_cast<size_t>(worker)].push_back(begin);
                           });
  for (int w = 0; w < kWorkers; ++w) {
    std::vector<int64_t> expected;
    for (int64_t m = w; m * kMorsel < kTotal; m += kWorkers) {
      expected.push_back(m * kMorsel);
    }
    EXPECT_EQ(begins[static_cast<size_t>(w)], expected) << "role " << w;
  }
}

TEST(MorselPool, ConcurrentJobsAllComplete) {
  // Several caller threads each run multi-worker jobs against the shared
  // pool simultaneously; every job must observe full coverage of its range.
  constexpr int kCallers = 6;
  constexpr int kRounds = 25;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &failures] {
      for (int round = 0; round < kRounds; ++round) {
        const int64_t total = 50 + 37 * c + round;
        std::atomic<int64_t> sum{0};
        MorselPool::Shared().Run(2 + c % 3, total, /*morsel_size=*/9,
                                 [&](int, int64_t begin, int64_t end) {
                                   int64_t local = 0;
                                   for (int64_t r = begin; r < end; ++r) local += r;
                                   sum += local;
                                 });
        if (sum.load() != total * (total - 1) / 2) failures++;
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace dpstarj
