// Tests for semantic resolution (Resolve) and plan binding (Bind).

#include <gtest/gtest.h>

#include "query/binder.h"
#include "test_catalog.h"

namespace dpstarj::query {
namespace {

using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(BinderTest, ResolveIdentifiesFactTable) {
  auto parsed = ParseStarJoinSql(
      "SELECT count(*) FROM Cust, Orders, Prod "
      "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk AND Cust.region = 'N'");
  ASSERT_TRUE(parsed.ok());
  auto q = binder_.Resolve(*parsed);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->fact_table, "Orders");
  ASSERT_EQ(q->joined_tables.size(), 2u);
}

TEST_F(BinderTest, ResolveAcceptsEitherJoinOrder) {
  auto parsed = ParseStarJoinSql(
      "SELECT count(*) FROM Cust, Orders WHERE Cust.ck = Orders.ck");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(binder_.Resolve(*parsed).ok());
}

TEST_F(BinderTest, ResolveRejectsUnknownTable) {
  auto parsed = ParseStarJoinSql("SELECT count(*) FROM Nope, Orders "
                                 "WHERE Orders.ck = Nope.ck");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(binder_.Resolve(*parsed).ok());
}

TEST_F(BinderTest, ResolveRejectsJoinNotMatchingForeignKey) {
  auto parsed = ParseStarJoinSql(
      "SELECT count(*) FROM Cust, Orders WHERE Orders.pk = Cust.ck");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(binder_.Resolve(*parsed).ok());
}

TEST_F(BinderTest, ResolveMeasureMustBeFactColumn) {
  auto parsed = ParseStarJoinSql(
      "SELECT sum(Cust.tier) FROM Cust, Orders WHERE Orders.ck = Cust.ck");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(binder_.Resolve(*parsed).ok());
}

TEST_F(BinderTest, ResolveSelectColumnNeedsGroupBy) {
  auto parsed = ParseStarJoinSql(
      "SELECT sum(Orders.qty), Cust.region FROM Cust, Orders "
      "WHERE Orders.ck = Cust.ck");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(binder_.Resolve(*parsed).ok());
  auto with_group = ParseStarJoinSql(
      "SELECT sum(Orders.qty), Cust.region FROM Cust, Orders "
      "WHERE Orders.ck = Cust.ck GROUP BY Cust.region");
  ASSERT_TRUE(with_group.ok());
  EXPECT_TRUE(binder_.Resolve(*with_group).ok());
}

TEST_F(BinderTest, BindHappyPath) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->fact->name(), "Orders");
  ASSERT_EQ(bound->dims.size(), 2u);
  EXPECT_EQ(bound->NumPredicates(), 2);
  ASSERT_EQ(bound->dims[0].predicates.size(), 1u);
  EXPECT_EQ(bound->dims[0].predicates[0].lo_index, 0);  // region N
  EXPECT_EQ(bound->Predicates().size(), 2u);
}

TEST_F(BinderTest, BindRejectsPredicateOnFact) {
  StarJoinQuery q = ToyCountQuery();
  q.predicates.push_back(
      Predicate::Point("Orders", "qty", storage::Value(int64_t{1})));
  auto bound = binder_.Bind(q);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotSupported);
}

TEST_F(BinderTest, BindAllowsTwoPredicatesOnDistinctAttributes) {
  // A flattened snowflake produces several predicates on one dimension; they
  // are legal as long as they target distinct attributes.
  StarJoinQuery q = ToyCountQuery();
  q.predicates.push_back(
      Predicate::Point("Cust", "tier", storage::Value(int64_t{1})));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->NumPredicates(), 3);
  EXPECT_EQ(bound->dims[0].predicates.size(), 2u);
}

TEST_F(BinderTest, BindRejectsTwoPredicatesOnSameAttribute) {
  StarJoinQuery q = ToyCountQuery();
  q.predicates.push_back(Predicate::Point("Cust", "region", storage::Value("S")));
  auto bound = binder_.Bind(q);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotSupported);
}

TEST_F(BinderTest, BindRejectsPredicateOnUnjoinedTable) {
  StarJoinQuery q = ToyCountQuery();
  q.joined_tables = {"Cust"};  // drop Prod but keep its predicate
  EXPECT_FALSE(binder_.Bind(q).ok());
}

TEST_F(BinderTest, BindRejectsAttributeWithoutDomain) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  // "ck" has no declared domain.
  q.predicates.push_back(Predicate::Point("Cust", "ck", storage::Value(int64_t{1})));
  EXPECT_FALSE(binder_.Bind(q).ok());
}

TEST_F(BinderTest, BindSumQuery) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.aggregate = AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}, {"price", -0.5}};
  q.predicates.push_back(Predicate::Point("Cust", "region", storage::Value("S")));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->measure_cols.size(), 2u);
  EXPECT_DOUBLE_EQ(bound->measure_cols[1].second, -0.5);
}

TEST_F(BinderTest, BindRejectsAggregateMeasureMismatch) {
  StarJoinQuery sum_no_terms;
  sum_no_terms.fact_table = "Orders";
  sum_no_terms.aggregate = AggregateKind::kSum;
  EXPECT_FALSE(binder_.Bind(sum_no_terms).ok());

  StarJoinQuery count_with_terms = ToyCountQuery();
  count_with_terms.measure_terms = {{"qty", 1.0}};
  EXPECT_FALSE(binder_.Bind(count_with_terms).ok());
}

TEST_F(BinderTest, BindGroupByLayout) {
  StarJoinQuery q = ToyCountQuery();
  q.aggregate = AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  q.group_by = {{"Cust", "region"}, {"Orders", "qty"}, {"Prod", "cat"}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->group_key_layout.size(), 3u);
  EXPECT_EQ(bound->group_key_layout[0].first, 0);   // Cust is dims[0]
  EXPECT_EQ(bound->group_key_layout[1].first, -1);  // fact column
  EXPECT_EQ(bound->group_key_layout[2].first, 1);   // Prod is dims[1]
  EXPECT_EQ(bound->fact_group_by_cols.size(), 1u);
}

TEST_F(BinderTest, BindRejectsOrderByOutsideGroupBy) {
  StarJoinQuery q = ToyCountQuery();
  q.order_by = {{"Cust", "region"}};
  EXPECT_FALSE(binder_.Bind(q).ok());
}

TEST_F(BinderTest, BindSqlEndToEnd) {
  auto bound = binder_.BindSql(
      "SELECT count(*) FROM Cust, Orders, Prod WHERE Orders.ck = Cust.ck"
      " AND Orders.pk = Prod.pk AND Cust.region = 'N' AND Prod.cat = 'a'");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->NumPredicates(), 2);
}

}  // namespace
}  // namespace dpstarj::query
