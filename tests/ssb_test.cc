// Tests for the SSB substrate: schema/domains, generator integrity across
// scale factors and distributions, the paper's nine queries (object and SQL
// forms agree), and the Figure 8 variants.

#include <gtest/gtest.h>

#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "ssb/distributions.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "ssb/ssb_schema.h"

namespace dpstarj::ssb {
namespace {

TEST(SsbSchemaTest, DomainSizesMatchPaper) {
  EXPECT_EQ(RegionDomain().size(), 5);
  EXPECT_EQ(NationDomain().size(), 25);
  EXPECT_EQ(CityDomain().size(), 250);
  EXPECT_EQ(ZipDomain().size(), 100);
  EXPECT_EQ(MfgrDomain().size(), 5);
  EXPECT_EQ(CategoryDomain().size(), 25);
  EXPECT_EQ(BrandDomain().size(), 1000);
  EXPECT_EQ(YearDomain().size(), 7);
  EXPECT_EQ(DayNumInYearDomain().size(), 366);
}

TEST(SsbSchemaTest, HierarchiesAreConsistent) {
  // Nation i belongs to region i/5; names used by the paper's queries exist.
  EXPECT_EQ(Nations()[5], "UNITED STATES");  // AMERICA block starts at 5
  EXPECT_EQ(Regions()[1], "AMERICA");
  EXPECT_EQ(Categories()[1], "MFGR#12");
  EXPECT_EQ(Mfgrs()[0], "MFGR#1");
  // Every city stems from its nation (SSB style: nation stem + "#digit").
  for (int n = 0; n < 25; ++n) {
    std::string stem = Nations()[static_cast<size_t>(n)].substr(0, 9);
    for (int c = 0; c < 10; ++c) {
      const std::string& city = Cities()[static_cast<size_t>(n * 10 + c)];
      EXPECT_EQ(city.substr(0, stem.size()), stem) << city;
    }
  }
}

TEST(SsbSizesTest, ScaleLinearly) {
  auto s1 = SsbSizes::ForScaleFactor(1.0);
  EXPECT_EQ(s1.lineorder, 6000000);
  EXPECT_EQ(s1.customer, 30000);
  EXPECT_EQ(s1.supplier, 2000);
  EXPECT_EQ(s1.part, 200000);
  auto s_small = SsbSizes::ForScaleFactor(0.01);
  EXPECT_EQ(s_small.lineorder, 60000);
  EXPECT_EQ(s_small.date, kNumDays);
}

TEST(SsbGeneratorTest, IntegrityAtSmallScale) {
  SsbOptions opt;
  opt.scale_factor = 0.002;
  auto catalog = GenerateSsb(opt);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_TRUE(catalog->ValidateIntegrity().ok());
  auto lineorder = *catalog->GetTable(kLineorder);
  EXPECT_EQ(lineorder->num_rows(), 12000);
  EXPECT_EQ((*catalog->GetTable(kDate))->num_rows(), kNumDays);
}

TEST(SsbGeneratorTest, DeterministicUnderSeed) {
  SsbOptions opt;
  opt.scale_factor = 0.001;
  auto a = GenerateSsb(opt);
  auto b = GenerateSsb(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto fact_a = *a->GetTable(kLineorder);
  auto fact_b = *b->GetTable(kLineorder);
  ASSERT_EQ(fact_a->num_rows(), fact_b->num_rows());
  for (int64_t r = 0; r < std::min<int64_t>(fact_a->num_rows(), 100); ++r) {
    EXPECT_EQ(fact_a->column(1).GetInt64(r), fact_b->column(1).GetInt64(r));
  }
}

TEST(SsbGeneratorTest, AttributeValuesInsideDomains) {
  SsbOptions opt;
  opt.scale_factor = 0.001;
  auto catalog = GenerateSsb(opt);
  ASSERT_TRUE(catalog.ok());
  auto customer = *catalog->GetTable(kCustomer);
  const auto& schema = customer->schema();
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (!schema.field(c).domain.has_value()) continue;
    for (int64_t r = 0; r < customer->num_rows(); ++r) {
      auto idx = schema.field(c).domain->IndexOf(customer->column(c).GetValue(r));
      ASSERT_TRUE(idx.ok()) << schema.field(c).name << " row " << r;
    }
  }
}

TEST(SsbGeneratorTest, SkewedDistributionsSkew) {
  SsbOptions uniform;
  uniform.scale_factor = 0.005;
  SsbOptions skewed = uniform;
  skewed.fanout_distribution = DistributionSpec::Exponential(1.0);
  auto cat_u = GenerateSsb(uniform);
  auto cat_s = GenerateSsb(skewed);
  ASSERT_TRUE(cat_u.ok());
  ASSERT_TRUE(cat_s.ok());
  // Under exponential fan-out, low customer keys own far more fact rows.
  auto count_low_keys = [](const storage::Catalog& cat) {
    auto fact = *cat.GetTable(kLineorder);
    auto cust = *cat.GetTable(kCustomer);
    int64_t low = 0;
    int64_t threshold = cust->num_rows() / 10;
    const auto& keys = fact->column(1).int64_data();
    for (int64_t k : keys) {
      if (k <= threshold) ++low;
    }
    return static_cast<double>(low) / static_cast<double>(keys.size());
  };
  EXPECT_NEAR(count_low_keys(*cat_u), 0.1, 0.02);
  EXPECT_GT(count_low_keys(*cat_s), 0.3);
}

TEST(SsbGeneratorTest, PlantedHeavyDegree) {
  SsbOptions opt;
  opt.scale_factor = 0.002;
  opt.planted_heavy_degree = 500;
  auto catalog = GenerateSsb(opt);
  ASSERT_TRUE(catalog.ok());
  auto fact = *catalog->GetTable(kLineorder);
  int64_t owned = 0;
  for (int64_t k : fact->column(1).int64_data()) {
    if (k == 1) ++owned;
  }
  EXPECT_GE(owned, 500);
}

TEST(SsbGeneratorTest, RejectsBadOptions) {
  SsbOptions opt;
  opt.scale_factor = 0.0;
  EXPECT_FALSE(GenerateSsb(opt).ok());
  opt.scale_factor = 0.001;
  opt.attribute_distribution.kind = DistributionKind::kExponential;
  opt.attribute_distribution.param1 = -1.0;
  EXPECT_FALSE(GenerateSsb(opt).ok());
}

TEST(DistributionTest, SampleIndexInRange) {
  Rng rng(1);
  for (auto spec : {DistributionSpec::Uniform(), DistributionSpec::Exponential(1.0),
                    DistributionSpec::Gamma(2.0, 1.0),
                    DistributionSpec::GaussianMixture({1.0}, {0.5}, {0.2})}) {
    for (int i = 0; i < 2000; ++i) {
      int64_t idx = spec.SampleIndex(25, &rng);
      ASSERT_GE(idx, 0) << spec.ToString();
      ASSERT_LT(idx, 25) << spec.ToString();
    }
  }
}

TEST(DistributionTest, ExponentialConcentratesLow) {
  Rng rng(2);
  auto spec = DistributionSpec::Exponential(1.0);
  int64_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (spec.SampleIndex(100, &rng) < 20) ++low;
  }
  EXPECT_GT(low, 6000);  // 1 − e^{-1} ≈ 63% below the first fifth
}

// The nine queries, object form vs SQL form, must agree end-to-end.
class SsbQueryAgreement : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    SsbOptions opt;
    // Large enough that every predicate (incl. Supplier.nation = US) has
    // support: supplier table must exceed the 25-nation coverage prefix.
    opt.scale_factor = 0.02;
    auto catalog = GenerateSsb(opt);
    DPSTARJ_CHECK(catalog.ok(), "ssb generation");
    catalog_ = new storage::Catalog(std::move(*catalog));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* SsbQueryAgreement::catalog_ = nullptr;

TEST_P(SsbQueryAgreement, ObjectAndSqlFormsMatch) {
  query::Binder binder(catalog_);
  auto object_query = GetQuery(GetParam());
  ASSERT_TRUE(object_query.ok());
  auto sql = GetQuerySql(GetParam());
  ASSERT_TRUE(sql.ok());

  auto bound_obj = binder.Bind(*object_query);
  ASSERT_TRUE(bound_obj.ok()) << bound_obj.status().ToString();
  auto bound_sql = binder.BindSql(*sql);
  ASSERT_TRUE(bound_sql.ok()) << bound_sql.status().ToString() << "\n" << *sql;

  exec::StarJoinExecutor executor;
  auto r_obj = executor.Execute(*bound_obj);
  auto r_sql = executor.Execute(*bound_sql);
  ASSERT_TRUE(r_obj.ok());
  ASSERT_TRUE(r_sql.ok());
  if (r_obj->grouped) {
    EXPECT_EQ(r_obj->groups, r_sql->groups);
  } else {
    EXPECT_DOUBLE_EQ(r_obj->scalar, r_sql->scalar);
  }
  // Sanity: the query actually selects something at this scale.
  EXPECT_GT(r_obj->Total(), 0.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllNine, SsbQueryAgreement,
                         ::testing::ValuesIn(AllQueryNames()));

TEST(SsbQueriesTest, UnknownNameRejected) {
  EXPECT_FALSE(GetQuery("Qx9").ok());
  EXPECT_FALSE(GetQuerySql("Qx9").ok());
}

TEST(SsbQueriesTest, DomainSizeVariantsBindAndRun) {
  SsbOptions opt;
  opt.scale_factor = 0.002;
  auto catalog = GenerateSsb(opt);
  ASSERT_TRUE(catalog.ok());
  query::Binder binder(&*catalog);
  exec::StarJoinExecutor executor;
  auto variants = DomainSizeQueries();
  ASSERT_EQ(variants.size(), 5u);
  for (const auto& v : variants) {
    auto bound = binder.Bind(v.query);
    ASSERT_TRUE(bound.ok()) << v.label << ": " << bound.status().ToString();
    auto preds = bound->Predicates();
    ASSERT_EQ(preds.size(), 2u) << v.label;
    EXPECT_EQ(preds[0]->domain.size() * preds[1]->domain.size(), v.dom1 * v.dom2);
    auto r = executor.Execute(*bound);
    ASSERT_TRUE(r.ok()) << v.label;
  }
}

}  // namespace
}  // namespace dpstarj::ssb
