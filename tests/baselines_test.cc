// Tests for the output-perturbation baselines LM, LS, and R2T.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/laplace_baseline.h"
#include "baselines/local_sensitivity.h"
#include "baselines/r2t.h"
#include "common/math_util.h"
#include "exec/contribution_index.h"
#include "query/binder.h"
#include "test_catalog.h"

namespace dpstarj::baselines {
namespace {

using dp::PrivacyScenario;
using query::Binder;
using query::StarJoinQuery;
using testing_fixture::MakeToyCatalog;
using testing_fixture::ToyCountQuery;

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}
  storage::Catalog catalog_;
  Binder binder_;
};

TEST_F(BaselinesTest, LaplaceFactOnlyCentersOnTruth) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  Rng rng(1);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    auto r = AnswerWithLaplaceBaseline(*bound, PrivacyScenario::FactOnly("Orders"),
                                       1.0, &rng);
    ASSERT_TRUE(r.ok());
    x = *r;
  }
  EXPECT_NEAR(Mean(xs), 2.0, 0.1);  // truth = 2, sensitivity 1
}

TEST_F(BaselinesTest, LaplaceRefusesPrivateDimensions) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  Rng rng(2);
  auto r = AnswerWithLaplaceBaseline(*bound, PrivacyScenario::Dimensions({"Cust"}),
                                     1.0, &rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(BaselinesTest, SmoothUpperBoundClosedForm) {
  // ls ≥ 1/β → bound equals ls.
  EXPECT_DOUBLE_EQ(SmoothUpperBound(20.0, 0.1), 20.0);
  // ls < 1/β → e^{β·ls−1}/β; check against brute force.
  double beta = 0.1, ls = 2.0;
  double expect = 0.0;
  for (int t = 0; t < 500; ++t) {
    expect = std::max(expect, std::exp(-beta * t) * (ls + t));
  }
  EXPECT_NEAR(SmoothUpperBound(ls, beta), expect, 1e-6);
}

TEST_F(BaselinesTest, LocalSensitivityInfoAndCentering) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  Rng rng(3);
  LocalSensitivityInfo info;
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    auto r = AnswerWithLocalSensitivity(*bound, PrivacyScenario::Dimensions({"Cust"}),
                                        1.0, &rng, {}, &info);
    ASSERT_TRUE(r.ok());
    x = *r;
  }
  // The bound is predicate-free join fan-out (every customer owns 2 rows).
  EXPECT_DOUBLE_EQ(info.local_sensitivity, 2.0);
  EXPECT_GE(info.smooth_sensitivity, info.local_sensitivity);
  EXPECT_NEAR(Median(xs), 2.0, 1.5);  // Cauchy noise → use median
}

TEST_F(BaselinesTest, LocalSensitivityRefusesSumAndGroupBy) {
  StarJoinQuery q = ToyCountQuery();
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  Rng rng(4);
  auto r = AnswerWithLocalSensitivity(*bound, PrivacyScenario::Dimensions({"Cust"}),
                                      1.0, &rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(BaselinesTest, R2tRaceTruncationArithmetic) {
  // Deterministic check of the truncated totals entering the race: with
  // contributions {8, 2, 1} and τ = 2: Σ min(c, 2) = 5, τ = 4: 7, τ = 8: 11.
  exec::ContributionIndex idx;
  idx.contributions = {8.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(2.0), 5.0);
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(4.0), 7.0);
  EXPECT_DOUBLE_EQ(idx.TruncatedTotal(8.0), 11.0);
}

TEST_F(BaselinesTest, R2tUtilityBoundHoldsWithHighProbability) {
  // Q(D) − 4·log(GS)·ln(log(GS)/α)·τ*/ε ≤ Q̂(D) with probability ≥ 1−α.
  std::vector<double> contributions(100, 1.0);  // Q = 100, τ* = 1
  double gs = 1024.0, eps = 1.0, alpha = 0.1;
  double log_gs = 10.0;
  double bound = 100.0 - 4.0 * log_gs * std::log(log_gs / alpha) * 1.0 / eps;
  Rng rng(5);
  int undershoots = 0;
  int overshoots = 0;
  const int kRuns = 2000;
  for (int i = 0; i < kRuns; ++i) {
    auto r = R2tRace(contributions, gs, eps, alpha, &rng);
    ASSERT_TRUE(r.ok());
    if (*r < bound) ++undershoots;
    // The penalty term also makes overshooting the true answer rare
    // (P ≤ α/2 by a union bound over trials).
    if (*r > 100.0) ++overshoots;
  }
  EXPECT_LT(static_cast<double>(undershoots) / kRuns, alpha);
  EXPECT_LT(static_cast<double>(overshoots) / kRuns, alpha);
}

TEST_F(BaselinesTest, R2tNeverReturnsNegative) {
  std::vector<double> contributions = {1.0, 1.0};
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    auto r = R2tRace(contributions, 1e6, 0.1, 0.1, &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(*r, 0.0);  // the race includes Q(D,0) = 0
  }
}

TEST_F(BaselinesTest, R2tInfoReportsTrials) {
  std::vector<double> contributions = {4.0, 4.0};
  Rng rng(7);
  R2tInfo info;
  ASSERT_TRUE(R2tRace(contributions, 1024.0, 1.0, 0.1, &rng, &info).ok());
  EXPECT_EQ(info.num_trials, 10);
  EXPECT_DOUBLE_EQ(info.gs_q, 1024.0);
}

TEST_F(BaselinesTest, R2tValidation) {
  Rng rng(8);
  EXPECT_FALSE(R2tRace({1.0}, 8.0, 0.0, 0.1, &rng).ok());
  EXPECT_FALSE(R2tRace({1.0}, 8.0, 1.0, 0.0, &rng).ok());
  EXPECT_FALSE(R2tRace({1.0}, 8.0, 1.0, 1.5, &rng).ok());
  EXPECT_FALSE(R2tRace({1.0}, 8.0, 1.0, 0.1, nullptr).ok());
}

TEST_F(BaselinesTest, R2tEndToEndOnStarJoin) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  Rng rng(9);
  R2tOptions opts;
  opts.gs_q = 64.0;
  R2tInfo info;
  auto r = AnswerWithR2t(*bound, PrivacyScenario::Dimensions({"Cust"}), 5.0, &rng,
                         opts, &info);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(*r, 0.0);
  EXPECT_EQ(info.num_trials, 6);
}

TEST_F(BaselinesTest, R2tRefusesGroupBy) {
  StarJoinQuery q = ToyCountQuery();
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  q.group_by = {{"Cust", "region"}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  Rng rng(10);
  auto r = AnswerWithR2t(*bound, PrivacyScenario::Dimensions({"Cust"}), 1.0, &rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(BaselinesTest, R2tTimeLimitTriggers) {
  auto bound = binder_.Bind(ToyCountQuery());
  ASSERT_TRUE(bound.ok());
  Rng rng(11);
  R2tOptions opts;
  opts.time_limit_s = 1e-12;
  auto r = AnswerWithR2t(*bound, PrivacyScenario::Dimensions({"Cust"}), 1.0, &rng,
                         opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeLimit);
}

TEST_F(BaselinesTest, R2tSumUsesMeasureScaledGs) {
  StarJoinQuery q = ToyCountQuery();
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"qty", 1.0}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  Rng rng(12);
  R2tInfo info;
  auto r = AnswerWithR2t(*bound, PrivacyScenario::Dimensions({"Cust"}), 5.0, &rng,
                         {}, &info);
  ASSERT_TRUE(r.ok());
  // Default GS = 12 rows × max qty 5 = 60 → 6 trials.
  EXPECT_EQ(info.num_trials, 6);
}

}  // namespace
}  // namespace dpstarj::baselines
