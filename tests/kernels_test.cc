// The kernel equivalence contract (exec/kernels/kernels.h): for identical
// inputs, the scalar and AVX2 implementations of every engine kernel return
// BYTE-IDENTICAL results. These tests fuzz each kernel over randomized
// inputs — ragged tails shorter than a word, sentinel/absent-FK bits, empty
// spans, all-pass and all-fail bitmaps — and then pin the whole executor to
// each table via ScopedKernelOverride and compare full QueryResults.
//
// On hosts without AVX2 the cross-ISA comparisons GTEST_SKIP (the scalar
// kernels are still exercised against a naive reference), so the suite is
// meaningful on any machine while being a real bit-identity check on x86.

#include "exec/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/cpu.h"
#include "common/random.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "storage/catalog.h"

namespace dpstarj {
namespace {

using exec::kernels::ActiveKernels;
using exec::kernels::Avx2KernelsOrNull;
using exec::kernels::EngineKernels;
using exec::kernels::ScalarKernels;
using exec::kernels::ScopedKernelOverride;

// A star schema big enough that the plan path takes many full 64-row chunks
// plus ragged tails: Da(100 rows, t ∈ [0,9]), Db(250 rows, s ∈ {a..e}),
// fact F(fka, fkb, qty, price) with integer-valued measures.
storage::Catalog MakeMediumCatalog(int64_t fact_rows, uint64_t seed) {
  using storage::AttributeDomain;
  using storage::Field;
  using storage::Value;
  using storage::ValueType;
  Rng rng(seed);
  storage::Catalog catalog;

  storage::Schema da_schema(
      {Field("k", ValueType::kInt64),
       Field("t", ValueType::kInt64, AttributeDomain::IntRange(0, 9))});
  auto da = *storage::Table::Create("Da", da_schema, "k");
  for (int64_t i = 1; i <= 100; ++i) {
    DPSTARJ_CHECK(da->AppendRow({Value(i), Value(rng.UniformInt(0, 9))}).ok(),
                  "fixture append");
  }

  const char* cats[5] = {"a", "b", "c", "d", "e"};
  storage::Schema db_schema(
      {Field("k", ValueType::kInt64),
       Field("s", ValueType::kString,
             AttributeDomain::Categorical({"a", "b", "c", "d", "e"}))});
  auto db = *storage::Table::Create("Db", db_schema, "k");
  for (int64_t i = 1; i <= 250; ++i) {
    DPSTARJ_CHECK(
        db->AppendRow({Value(i), Value(cats[rng.UniformInt(0, 4)])}).ok(),
        "fixture append");
  }

  storage::Schema fact_schema(
      {Field("fka", ValueType::kInt64), Field("fkb", ValueType::kInt64),
       Field("qty", ValueType::kInt64), Field("price", ValueType::kDouble)});
  auto fact = *storage::Table::Create("F", fact_schema);
  for (int64_t r = 0; r < fact_rows; ++r) {
    const int64_t qty = rng.UniformInt(1, 9);
    DPSTARJ_CHECK(fact
                      ->AppendRow({Value(rng.UniformInt(1, 100)),
                                   Value(rng.UniformInt(1, 250)), Value(qty),
                                   Value(static_cast<double>(qty) * 10.0)})
                      .ok(),
                  "fixture append");
  }

  DPSTARJ_CHECK(catalog.AddTable(da).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddTable(db).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddForeignKey({"F", "fka", "Da", "k"}).ok(), "fixture");
  DPSTARJ_CHECK(catalog.AddForeignKey({"F", "fkb", "Db", "k"}).ok(), "fixture");
  return catalog;
}

// grouped: SUM(price) by Da.t with a range predicate on Da only, so the
// predicate-free Db is elidable (all-pass bitmap) — the run-sorted sweep's
// wide path. !grouped: COUNT with predicates on both dims — the probing
// sweep's chunked path.
query::StarJoinQuery MakeMediumQuery(bool grouped) {
  query::StarJoinQuery q;
  q.name = grouped ? "medium_sum_grouped" : "medium_count";
  q.fact_table = "F";
  q.joined_tables = {"Da", "Db"};
  if (grouped) {
    q.aggregate = query::AggregateKind::kSum;
    q.measure_terms = {{"price", 1.0}};
    q.group_by = {{"Da", "t"}};
    q.predicates.push_back(query::Predicate::Range(
        "Da", "t", storage::Value(int64_t{2}), storage::Value(int64_t{7})));
  } else {
    q.aggregate = query::AggregateKind::kCount;
    q.predicates.push_back(query::Predicate::Range(
        "Da", "t", storage::Value(int64_t{1}), storage::Value(int64_t{8})));
    q.predicates.push_back(
        query::Predicate::Point("Db", "s", storage::Value("b")));
  }
  return q;
}

// ---------------------------------------------------------------------------
// range_bitmap_and
// ---------------------------------------------------------------------------

// Naive reference: bit r = ordinals[r] in [lo, hi], bits >= rows untouched
// on AND / zero on first.
std::vector<uint64_t> ReferenceRangeBitmap(const std::vector<int64_t>& ords,
                                           int64_t lo, int64_t hi, bool first,
                                           std::vector<uint64_t> words) {
  const int64_t rows = static_cast<int64_t>(ords.size());
  for (int64_t r = 0; r < rows; ++r) {
    const uint64_t bit = uint64_t{1} << (r & 63);
    const bool pass = ords[static_cast<size_t>(r)] >= lo &&
                      ords[static_cast<size_t>(r)] <= hi;
    uint64_t& w = words[static_cast<size_t>(r >> 6)];
    if (first) {
      w = (w & ~bit) | (pass ? bit : 0);
    } else if (!pass) {
      w &= ~bit;
    }
  }
  if (first) {
    // Bits past `rows` in the tail word must read 0 after a first store.
    const int tail = static_cast<int>(rows & 63);
    if (tail != 0) {
      words[static_cast<size_t>(rows >> 6)] &= ~uint64_t{0} >> (64 - tail);
    }
  }
  return words;
}

void CheckRangeBitmap(const EngineKernels& kern, Rng* rng, int64_t rows) {
  std::vector<int64_t> ords(static_cast<size_t>(rows));
  for (auto& o : ords) o = rng->UniformInt(-2, 20);  // includes -1 sentinels
  const size_t nwords = static_cast<size_t>((rows + 1 + 63) / 64);
  for (const bool first : {true, false}) {
    for (const auto [lo, hi] :
         {std::pair<int64_t, int64_t>{0, 20},    // all real ordinals pass
          std::pair<int64_t, int64_t>{30, 40},   // all fail
          std::pair<int64_t, int64_t>{3, 11}}) { // mixed
      std::vector<uint64_t> seed(nwords);
      for (auto& w : seed) {
        w = (static_cast<uint64_t>(rng->UniformInt(0, INT64_MAX)) << 1) |
            static_cast<uint64_t>(rng->UniformInt(0, 1));
      }
      std::vector<uint64_t> got = seed;
      kern.range_bitmap_and(ords.data(), rows, lo, hi, first, got.data());
      const std::vector<uint64_t> want =
          ReferenceRangeBitmap(ords, lo, hi, first, seed);
      ASSERT_EQ(got, want) << kern.name << " rows=" << rows << " lo=" << lo
                           << " hi=" << hi << " first=" << first;
    }
  }
}

TEST(KernelsTest, RangeBitmapAndMatchesReference) {
  Rng rng(7);
  for (const int64_t rows : {0, 1, 7, 63, 64, 65, 128, 300, 1000}) {
    CheckRangeBitmap(ScalarKernels(), &rng, rows);
    if (const EngineKernels* avx2 = Avx2KernelsOrNull()) {
      CheckRangeBitmap(*avx2, &rng, rows);
    }
  }
}

TEST(KernelsTest, RangeBitmapAndScalarVsAvx2BitIdentical) {
  const EngineKernels* avx2 = Avx2KernelsOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "host has no AVX2";
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t rows = rng.UniformInt(0, 513);
    std::vector<int64_t> ords(static_cast<size_t>(rows));
    for (auto& o : ords) o = rng.UniformInt(-1, 50);
    const int64_t lo = rng.UniformInt(-1, 25);
    const int64_t hi = rng.UniformInt(lo, 60);
    const bool first = rng.UniformInt(0, 1) == 1;
    std::vector<uint64_t> seed(static_cast<size_t>((rows + 1 + 63) / 64));
    for (auto& w : seed) {
      w = static_cast<uint64_t>(rng.UniformInt(INT64_MIN, INT64_MAX));
    }
    std::vector<uint64_t> a = seed, b = seed;
    ScalarKernels().range_bitmap_and(ords.data(), rows, lo, hi, first,
                                     a.data());
    avx2->range_bitmap_and(ords.data(), rows, lo, hi, first, b.data());
    ASSERT_EQ(a, b) << "trial " << trial << " rows=" << rows;
  }
}

// ---------------------------------------------------------------------------
// pass_mask
// ---------------------------------------------------------------------------

struct PassMaskCase {
  std::vector<std::vector<int32_t>> dim_rows;       // per dim, per fact row
  std::vector<std::vector<uint64_t>> bitmap_words;  // per dim
  std::vector<const int32_t*> row_ptrs;
  std::vector<const uint64_t*> word_ptrs;
};

// Dimension bitmaps cover rows [0, dim_size] with the sentinel bit
// (dim_size) always 0; fact rows index anywhere in [0, dim_size].
PassMaskCase MakePassMaskCase(Rng* rng, size_t num_dims, int64_t fact_rows,
                              int32_t dim_size, int percent_set) {
  PassMaskCase c;
  c.dim_rows.resize(num_dims);
  c.bitmap_words.resize(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    c.dim_rows[d].resize(static_cast<size_t>(fact_rows));
    for (auto& r : c.dim_rows[d]) {
      // ~1 in 16 rows hits the sentinel (absent FK).
      r = rng->UniformInt(0, 15) == 0
              ? dim_size
              : static_cast<int32_t>(rng->UniformInt(0, dim_size - 1));
    }
    c.bitmap_words[d].assign(static_cast<size_t>((dim_size + 1 + 63) / 64), 0);
    for (int32_t r = 0; r < dim_size; ++r) {
      if (rng->UniformInt(0, 99) < percent_set) {
        c.bitmap_words[d][static_cast<size_t>(r >> 6)] |= uint64_t{1}
                                                          << (r & 63);
      }
    }
  }
  for (size_t d = 0; d < num_dims; ++d) {
    c.row_ptrs.push_back(c.dim_rows[d].data());
    c.word_ptrs.push_back(c.bitmap_words[d].data());
  }
  return c;
}

uint64_t ReferencePassMask(const PassMaskCase& c, int64_t base, int nbits) {
  uint64_t mask = 0;
  for (int i = 0; i < nbits; ++i) {
    bool ok = true;
    for (size_t d = 0; d < c.dim_rows.size(); ++d) {
      const int32_t dr = c.dim_rows[d][static_cast<size_t>(base + i)];
      ok = ok && ((c.bitmap_words[d][static_cast<size_t>(dr >> 6)] >>
                   (dr & 63)) &
                  1) != 0;
    }
    if (ok) mask |= uint64_t{1} << i;
  }
  return mask;
}

TEST(KernelsTest, PassMaskMatchesReferenceAndCrossIsa) {
  const EngineKernels* avx2 = Avx2KernelsOrNull();
  Rng rng(23);
  // percent_set 0 = all-fail bitmaps, 100 = all-pass; dims 0 = no filter.
  for (const size_t num_dims : {size_t{0}, size_t{1}, size_t{2}, size_t{4}}) {
    for (const int percent_set : {0, 50, 100}) {
      PassMaskCase c = MakePassMaskCase(&rng, num_dims, /*fact_rows=*/512,
                                        /*dim_size=*/100, percent_set);
      for (const auto [base, nbits] :
           {std::pair<int64_t, int>{0, 64}, {64, 64}, {128, 1}, {192, 7},
            {256, 63}, {320, 0}, {448, 64}}) {
        const uint64_t want = ReferencePassMask(c, base, nbits);
        const uint64_t scalar = ScalarKernels().pass_mask(
            c.row_ptrs.data(), c.word_ptrs.data(), num_dims, base, nbits);
        ASSERT_EQ(scalar, want) << "dims=" << num_dims << " base=" << base
                                << " nbits=" << nbits;
        if (avx2 != nullptr) {
          const uint64_t vec = avx2->pass_mask(
              c.row_ptrs.data(), c.word_ptrs.data(), num_dims, base, nbits);
          ASSERT_EQ(vec, want) << "avx2 dims=" << num_dims << " base=" << base
                               << " nbits=" << nbits;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// sum_span
// ---------------------------------------------------------------------------

TEST(KernelsTest, SumSpanPinsFourLaneAssociation) {
  // The contract fixes lane j = elements j, j+4, ..., combined as
  // (l0+l1)+(l2+l3) — verify the scalar kernel against that formula exactly.
  Rng rng(31);
  for (const int64_t n : {0, 1, 2, 3, 4, 5, 7, 8, 43, 64, 100, 1000}) {
    std::vector<double> w(static_cast<size_t>(n));
    for (auto& x : w) x = rng.Uniform(-1e6, 1e6);
    double lanes[4] = {0, 0, 0, 0};
    for (int64_t i = 0; i < n; ++i) lanes[i & 3] += w[static_cast<size_t>(i)];
    const double want = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    EXPECT_EQ(ScalarKernels().sum_span(w.data(), n), want) << "n=" << n;
  }
}

TEST(KernelsTest, SumSpanScalarVsAvx2BitIdentical) {
  const EngineKernels* avx2 = Avx2KernelsOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "host has no AVX2";
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    const int64_t n = rng.UniformInt(0, 300);
    std::vector<double> w(static_cast<size_t>(n));
    for (auto& x : w) {
      // Wildly mixed magnitudes make the sum order-sensitive, so agreement
      // here is evidence of identical association, not luck. A NaN poisons
      // both sides identically (compared by bit pattern below).
      x = rng.Uniform(-1.0, 1.0) * std::pow(10.0, rng.UniformInt(-12, 12));
    }
    if (n > 0 && trial % 10 == 0) {
      w[static_cast<size_t>(rng.UniformInt(0, n - 1))] =
          std::numeric_limits<double>::quiet_NaN();
    }
    const double a = ScalarKernels().sum_span(w.data(), n);
    const double b = avx2->sum_span(w.data(), n);
    uint64_t abits, bbits;
    std::memcpy(&abits, &a, sizeof(a));
    std::memcpy(&bbits, &b, sizeof(b));
    ASSERT_EQ(abits, bbits) << "trial " << trial << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// byte_gather_transpose
// ---------------------------------------------------------------------------

TEST(KernelsTest, ByteGatherTransposeMatchesReferenceAndCrossIsa) {
  const EngineKernels* avx2 = Avx2KernelsOrNull();
  Rng rng(41);
  std::vector<uint8_t> table(1000);
  for (auto& b : table) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
  for (const int len : {0, 1, 7, 31, 32, 33, 63, 64}) {
    for (const size_t nn : {size_t{1}, size_t{3}, size_t{8}}) {
      std::vector<int32_t> rows(static_cast<size_t>(len));
      for (auto& r : rows) {
        r = static_cast<int32_t>(rng.UniformInt(0, 999));
      }
      uint64_t want[8] = {0};
      for (int i = 0; i < len; ++i) {
        const uint8_t v = table[static_cast<size_t>(rows[static_cast<size_t>(i)])];
        for (size_t k = 0; k < nn; ++k) {
          if ((v >> k) & 1) want[k] |= uint64_t{1} << i;
        }
      }
      uint64_t scalar[8];
      std::memset(scalar, 0xAB, sizeof(scalar));  // bits >= len must be 0
      ScalarKernels().byte_gather_transpose(table.data(), rows.data(), len, nn,
                                            scalar);
      for (size_t k = 0; k < nn; ++k) {
        ASSERT_EQ(scalar[k], want[k]) << "len=" << len << " k=" << k;
      }
      if (avx2 != nullptr) {
        uint64_t vec[8];
        std::memset(vec, 0xCD, sizeof(vec));
        avx2->byte_gather_transpose(table.data(), rows.data(), len, nn, vec);
        for (size_t k = 0; k < nn; ++k) {
          ASSERT_EQ(vec[k], want[k]) << "avx2 len=" << len << " k=" << k;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dispatch plumbing + end-to-end bit identity
// ---------------------------------------------------------------------------

TEST(KernelsTest, OverrideInstallsAndRestores) {
  const EngineKernels& before = ActiveKernels();
  {
    ScopedKernelOverride force_scalar(&ScalarKernels());
    EXPECT_STREQ(ActiveKernels().name, "scalar");
    if (const EngineKernels* avx2 = Avx2KernelsOrNull()) {
      ScopedKernelOverride nested(avx2);
      EXPECT_STREQ(ActiveKernels().name, "avx2");
    }
    EXPECT_STREQ(ActiveKernels().name, "scalar");
  }
  EXPECT_EQ(&ActiveKernels(), &before);
}

TEST(KernelsTest, DetectedCpuIsSane) {
  const CpuInfo& cpu = HostCpu();
  EXPECT_GE(cpu.cores, 1);
  EXPECT_GE(cpu.cache_line_bytes, 16);
  // The AVX2 table must exist exactly when detection says the host has AVX2.
  EXPECT_EQ(Avx2KernelsOrNull() != nullptr, cpu.avx2);
}

// Executes a grouped SUM and a scalar COUNT through the full plan path under
// each kernel table and requires bit-identical QueryResults — the end-to-end
// form of the contract the micro tests check per kernel.
TEST(KernelsTest, ExecutorResultsBitIdenticalAcrossKernelTables) {
  const EngineKernels* avx2 = Avx2KernelsOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "host has no AVX2";

  const storage::Catalog catalog =
      MakeMediumCatalog(/*fact_rows=*/7777, /*seed=*/99);
  query::Binder binder(&catalog);
  for (const bool grouped : {false, true}) {
    query::StarJoinQuery q = MakeMediumQuery(grouped);
    auto bound = binder.Bind(q);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto plan = exec::ScanPlan::Compile(*bound);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    exec::ExecutorOptions options;
    options.morsel_size = 1013;  // prime: plenty of ragged chunk tails
    exec::StarJoinExecutor executor(options);

    auto run = [&](const EngineKernels* kern) {
      ScopedKernelOverride override_kernels(kern);
      return executor.Execute(*bound, {}, *plan);
    };
    auto scalar_result = run(&ScalarKernels());
    auto avx2_result = run(avx2);
    ASSERT_TRUE(scalar_result.ok()) << scalar_result.status().ToString();
    ASSERT_TRUE(avx2_result.ok()) << avx2_result.status().ToString();

    EXPECT_EQ(scalar_result->grouped, avx2_result->grouped);
    EXPECT_EQ(scalar_result->scalar, avx2_result->scalar) << "grouped=" << grouped;
    ASSERT_EQ(scalar_result->groups.size(), avx2_result->groups.size());
    auto it_a = scalar_result->groups.begin();
    auto it_b = avx2_result->groups.begin();
    for (; it_a != scalar_result->groups.end(); ++it_a, ++it_b) {
      EXPECT_EQ(it_a->first, it_b->first);
      EXPECT_EQ(it_a->second, it_b->second) << "group " << it_a->first;
    }
  }
}

}  // namespace
}  // namespace dpstarj
