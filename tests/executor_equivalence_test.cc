// Randomized equivalence of the vectorized, morsel-parallel StarJoinExecutor
// against the naive nested-loop reference and the legacy scalar pipeline,
// across generated star schemas × {COUNT, SUM, AVG} × {scalar, GROUP BY} ×
// {dense, sparse key spaces} × {1, 4, 8} exec threads — and of the
// cached-ScanPlan execution path against the fresh-build path, with and
// without predicate overrides (the Predicate Mechanism's repeated-noisy-run
// shape), including strict-integrity error reporting.
//
// Every generated measure is an integer-valued double, so aggregate sums are
// exact regardless of association order — results must match *bit-for-bit*
// across pipelines and thread counts (a tiny morsel size forces real
// multi-morsel merging even on small fact tables).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "exec/naive_executor.h"
#include "exec/plan_cache.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "storage/catalog.h"

namespace dpstarj {
namespace {

using exec::ExecutorOptions;
using exec::QueryResult;
using exec::StarJoinExecutor;
using storage::AttributeDomain;
using storage::Field;
using storage::Value;
using storage::ValueType;

constexpr const char* kCats[] = {"a", "b", "c", "d", "e"};

struct DimSpec {
  std::string name;
  int cats = 2;        // values of column "s" drawn from kCats[0..cats)
  int64_t tlo = 0;     // column "t" domain [tlo, thi]
  int64_t thi = 3;
  std::vector<int64_t> keys;
};

struct Instance {
  storage::Catalog catalog;
  std::vector<DimSpec> dims;
};

int64_t RandInt(std::mt19937& rng, int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}

Instance MakeRandomInstance(std::mt19937& rng, bool with_bad_fk) {
  Instance inst;
  int num_dims = static_cast<int>(RandInt(rng, 1, 3));

  std::vector<std::shared_ptr<storage::Table>> dim_tables;
  for (int j = 0; j < num_dims; ++j) {
    DimSpec spec;
    spec.name = "D" + std::to_string(j);
    spec.cats = static_cast<int>(RandInt(rng, 2, 5));
    spec.tlo = RandInt(rng, -3, 3);
    spec.thi = spec.tlo + RandInt(rng, 1, 6);
    int64_t rows = RandInt(rng, 1, 40);

    // Key space: dense 1..n, or sparse (large random strides, possibly
    // negative) to exercise the hash-map fallback of the dense lookup.
    bool dense = RandInt(rng, 0, 1) == 0;
    int64_t key = dense ? 1 : RandInt(rng, -1000000000, 1000000000);
    for (int64_t r = 0; r < rows; ++r) {
      spec.keys.push_back(key);
      key += dense ? 1 : RandInt(rng, 1, 100000);
    }
    std::shuffle(spec.keys.begin(), spec.keys.end(), rng);

    storage::Schema schema(
        {Field("k", ValueType::kInt64),
         Field("s", ValueType::kString,
               AttributeDomain::Categorical(std::vector<std::string>(
                   kCats, kCats + spec.cats))),
         Field("t", ValueType::kInt64,
               AttributeDomain::IntRange(spec.tlo, spec.thi))});
    auto table = *storage::Table::Create(spec.name, schema, "k");
    for (int64_t k : spec.keys) {
      DPSTARJ_CHECK(
          table
              ->AppendRow({Value(k),
                           Value(kCats[RandInt(rng, 0, spec.cats - 1)]),
                           Value(RandInt(rng, spec.tlo, spec.thi))})
              .ok(),
          "dim append");
    }
    dim_tables.push_back(table);
    inst.dims.push_back(std::move(spec));
  }

  // Fact: one fk per dimension, integer-valued measures qty / price, group
  // columns g (string) and h (int64; occasionally huge-range values so the
  // packed code space overflows the dense accumulator).
  std::vector<Field> fact_fields;
  for (int j = 0; j < num_dims; ++j) {
    fact_fields.emplace_back("fk" + std::to_string(j), ValueType::kInt64);
  }
  fact_fields.emplace_back("qty", ValueType::kInt64);
  fact_fields.emplace_back("price", ValueType::kDouble);
  fact_fields.emplace_back("g", ValueType::kString);
  fact_fields.emplace_back("h", ValueType::kInt64);
  auto fact = *storage::Table::Create("F", storage::Schema(fact_fields));

  bool huge_h = RandInt(rng, 0, 4) == 0;
  int64_t fact_rows = RandInt(rng, 0, 300);
  if (with_bad_fk && fact_rows == 0) fact_rows = 1;
  for (int64_t r = 0; r < fact_rows; ++r) {
    std::vector<Value> row;
    for (int j = 0; j < num_dims; ++j) {
      const auto& keys = inst.dims[static_cast<size_t>(j)].keys;
      int64_t fk = keys[static_cast<size_t>(
          RandInt(rng, 0, static_cast<int64_t>(keys.size()) - 1))];
      // In bad-fk instances a late row references a key no dimension has.
      if (with_bad_fk && r == fact_rows / 2 && j == 0) fk = 2000000001;
      row.emplace_back(fk);
    }
    row.emplace_back(RandInt(rng, 0, 9));
    row.emplace_back(static_cast<double>(RandInt(rng, 0, 99)));
    row.emplace_back(kCats[RandInt(rng, 0, 2)]);
    row.emplace_back(huge_h ? RandInt(rng, -2000000000000, 2000000000000)
                            : RandInt(rng, 0, 5));
    DPSTARJ_CHECK(fact->AppendRow(row).ok(), "fact append");
  }

  for (auto& t : dim_tables) {
    DPSTARJ_CHECK(inst.catalog.AddTable(t).ok(), "add dim");
  }
  DPSTARJ_CHECK(inst.catalog.AddTable(fact).ok(), "add fact");
  for (int j = 0; j < num_dims; ++j) {
    DPSTARJ_CHECK(
        inst.catalog
            .AddForeignKey({"F", "fk" + std::to_string(j),
                            inst.dims[static_cast<size_t>(j)].name, "k"})
            .ok(),
        "add fk");
  }
  return inst;
}

query::StarJoinQuery MakeRandomQuery(std::mt19937& rng,
                                     const std::vector<DimSpec>& dims) {
  query::StarJoinQuery q;
  q.name = "equiv";
  q.fact_table = "F";
  for (const auto& d : dims) q.joined_tables.push_back(d.name);

  switch (RandInt(rng, 0, 3)) {
    case 0:
      q.aggregate = query::AggregateKind::kCount;
      break;
    case 1:
      q.aggregate = query::AggregateKind::kSum;
      q.measure_terms = {{"qty", 1.0}};
      break;
    case 2:
      q.aggregate = query::AggregateKind::kSum;
      q.measure_terms = {{"qty", 1.0}, {"price", 2.0}};
      break;
    default:
      q.aggregate = query::AggregateKind::kAvg;
      q.measure_terms = {{"qty", 1.0}};
      break;
  }

  for (const auto& d : dims) {
    switch (RandInt(rng, 0, 2)) {
      case 0:
        break;  // unfiltered dimension
      case 1:
        q.predicates.push_back(query::Predicate::Point(
            d.name, "s", Value(kCats[RandInt(rng, 0, d.cats - 1)])));
        break;
      default: {
        int64_t lo = RandInt(rng, d.tlo, d.thi);
        int64_t hi = RandInt(rng, lo, d.thi);
        q.predicates.push_back(
            query::Predicate::Range(d.name, "t", Value(lo), Value(hi)));
        break;
      }
    }
  }

  if (RandInt(rng, 0, 2) > 0) {  // grouped two thirds of the time
    for (const auto& d : dims) {
      if (RandInt(rng, 0, 2) == 0) q.group_by.push_back({d.name, "s"});
      if (RandInt(rng, 0, 3) == 0) q.group_by.push_back({d.name, "t"});
    }
    if (RandInt(rng, 0, 2) == 0) q.group_by.push_back({"F", "g"});
    if (RandInt(rng, 0, 2) == 0) q.group_by.push_back({"F", "h"});
  }
  return q;
}

void ExpectBitIdentical(const QueryResult& expected, const QueryResult& got,
                        const std::string& what) {
  EXPECT_EQ(expected.grouped, got.grouped) << what;
  EXPECT_EQ(expected.scalar, got.scalar) << what;
  ASSERT_EQ(expected.groups.size(), got.groups.size()) << what;
  auto it = got.groups.begin();
  for (const auto& [label, value] : expected.groups) {
    EXPECT_EQ(label, it->first) << what;
    EXPECT_EQ(value, it->second) << what << " group " << label;
    ++it;
  }
}

// The pipelines under test: the legacy scalar path and the vectorized path at
// 1, 4 and 8 scan workers. morsel_size 17 forces dozens of morsels per scan,
// so multi-worker runs really exercise partial merging.
std::vector<std::pair<std::string, ExecutorOptions>> Pipelines(bool strict) {
  std::vector<std::pair<std::string, ExecutorOptions>> out;
  ExecutorOptions scalar;
  scalar.force_scalar = true;
  scalar.strict_integrity = strict;
  out.emplace_back("scalar", scalar);
  for (int threads : {1, 4, 8}) {
    ExecutorOptions vec;
    vec.exec_threads = threads;
    vec.morsel_size = 17;
    vec.strict_integrity = strict;
    out.emplace_back("vectorized/" + std::to_string(threads), vec);
  }
  return out;
}

// Random per-dimension predicate replacements in domain-index space — the
// shape the Predicate Mechanism feeds the executor every noisy run.
exec::PredicateOverrides MakeRandomOverrides(std::mt19937& rng,
                                             const query::BoundQuery& bound) {
  exec::PredicateOverrides overrides(bound.dims.size());
  for (size_t i = 0; i < bound.dims.size(); ++i) {
    if (bound.dims[i].predicates.empty()) continue;
    if (RandInt(rng, 0, 2) == 0) continue;  // keep the dim's own predicates
    std::vector<query::BoundPredicate> noisy = bound.dims[i].predicates;
    for (auto& p : noisy) {
      int64_t m = p.domain.size();
      p.lo_index = RandInt(rng, 0, m - 1);
      p.hi_index = RandInt(rng, p.lo_index, m - 1);
      p.kind = p.lo_index == p.hi_index ? query::PredicateKind::kPoint
                                        : query::PredicateKind::kRange;
    }
    overrides[i] = std::move(noisy);
  }
  return overrides;
}

TEST(ExecutorEquivalence, RandomizedMatrixMatchesNaiveBitForBit) {
  for (uint32_t seed = 1; seed <= 40; ++seed) {
    std::mt19937 rng(seed);
    Instance inst = MakeRandomInstance(rng, /*with_bad_fk=*/false);
    query::Binder binder(&inst.catalog);
    for (int qi = 0; qi < 3; ++qi) {
      query::StarJoinQuery q = MakeRandomQuery(rng, inst.dims);
      auto bound = binder.Bind(q);
      ASSERT_TRUE(bound.ok()) << bound.status().ToString();
      auto naive = exec::ExecuteNaive(*bound);
      ASSERT_TRUE(naive.ok()) << naive.status().ToString();
      for (const auto& [name, options] : Pipelines(/*strict=*/false)) {
        StarJoinExecutor executor(options);
        auto got = executor.Execute(*bound);
        ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
        ExpectBitIdentical(*naive, *got,
                           "seed " + std::to_string(seed) + " query " +
                               std::to_string(qi) + " pipeline " + name);
      }

      // Cached-plan path: compile once, execute repeatedly at every thread
      // count; plans are stateless, so results match the naive reference
      // bit-for-bit on every repetition.
      auto plan = exec::ScanPlan::Compile(*bound);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      const exec::PredicateOverrides none(bound->dims.size());
      for (const auto& [name, options] : Pipelines(/*strict=*/false)) {
        StarJoinExecutor executor(options);
        for (int rep = 0; rep < 2; ++rep) {
          auto got = executor.Execute(*bound, none, *plan);
          ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
          ExpectBitIdentical(*naive, *got,
                             "seed " + std::to_string(seed) + " query " +
                                 std::to_string(qi) + " plan pipeline " + name);
        }
      }

      // Overridden-predicate equivalence: the plan path must agree with the
      // fresh-build path on the same override set (the PM repeated-run case).
      for (int oi = 0; oi < 3; ++oi) {
        exec::PredicateOverrides overrides = MakeRandomOverrides(rng, *bound);
        StarJoinExecutor fresh_executor;
        auto fresh = fresh_executor.Execute(*bound, overrides);
        ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
        for (const auto& [name, options] : Pipelines(/*strict=*/false)) {
          StarJoinExecutor executor(options);
          if (options.force_scalar) continue;  // fresh vectorized reference
          auto got = executor.Execute(*bound, overrides, *plan);
          ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
          ExpectBitIdentical(*fresh, *got,
                             "seed " + std::to_string(seed) + " query " +
                                 std::to_string(qi) + " override " +
                                 std::to_string(oi) + " pipeline " + name);
        }
      }
    }
  }
}

TEST(ExecutorEquivalence, StrictIntegrityMissesAgreeAcrossPipelines) {
  for (uint32_t seed = 100; seed < 110; ++seed) {
    std::mt19937 rng(seed);
    Instance inst = MakeRandomInstance(rng, /*with_bad_fk=*/true);
    query::Binder binder(&inst.catalog);
    query::StarJoinQuery q = MakeRandomQuery(rng, inst.dims);
    auto bound = binder.Bind(q);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();

    // All pipelines must fail, and the parallel ones must report the same
    // (first) violating row as the sequential scan — the cached-plan path
    // included (dropped-row accounting is part of the equivalence contract).
    auto plan = exec::ScanPlan::Compile(*bound);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const exec::PredicateOverrides none(bound->dims.size());
    std::string expected_message;
    for (const auto& [name, options] : Pipelines(/*strict=*/true)) {
      StarJoinExecutor executor(options);
      for (bool use_plan : {false, true}) {
        auto got = use_plan ? executor.Execute(*bound, none, *plan)
                            : executor.Execute(*bound);
        ASSERT_FALSE(got.ok()) << name << " seed " << seed;
        EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument) << name;
        if (expected_message.empty()) {
          expected_message = got.status().message();
          EXPECT_NE(expected_message.find("misses dimension"), std::string::npos);
        } else {
          EXPECT_EQ(expected_message, got.status().message())
              << name << " seed " << seed << " plan=" << use_plan;
        }
      }
    }

    // Non-strict executions silently drop the row, matching the reference.
    auto naive = exec::ExecuteNaive(*bound);
    ASSERT_TRUE(naive.ok());
    for (const auto& [name, options] : Pipelines(/*strict=*/false)) {
      StarJoinExecutor executor(options);
      auto got = executor.Execute(*bound);
      ASSERT_TRUE(got.ok()) << name;
      ExpectBitIdentical(*naive, *got, name + " seed " + std::to_string(seed));
      auto got_plan = executor.Execute(*bound, none, *plan);
      ASSERT_TRUE(got_plan.ok()) << name;
      ExpectBitIdentical(*naive, *got_plan,
                         name + " plan seed " + std::to_string(seed));
    }
  }
}

TEST(ExecutorEquivalence, ThreadCountsAgreeOnEmptyFact) {
  std::mt19937 rng(7);
  Instance inst;
  // Regenerate until the fact table is empty (cheap; rows ∈ [0, 300]).
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::mt19937 gen(static_cast<uint32_t>(attempt));
    Instance candidate = MakeRandomInstance(gen, false);
    if (candidate.catalog.GetTable("F").ok() &&
        (*candidate.catalog.GetTable("F"))->num_rows() == 0) {
      inst = std::move(candidate);
      break;
    }
  }
  auto fact = inst.catalog.GetTable("F");
  ASSERT_TRUE(fact.ok());
  ASSERT_EQ((*fact)->num_rows(), 0);

  query::Binder binder(&inst.catalog);
  query::StarJoinQuery q = MakeRandomQuery(rng, inst.dims);
  auto bound = binder.Bind(q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto naive = exec::ExecuteNaive(*bound);
  ASSERT_TRUE(naive.ok());
  for (const auto& [name, options] : Pipelines(false)) {
    StarJoinExecutor executor(options);
    auto got = executor.Execute(*bound);
    ASSERT_TRUE(got.ok()) << name;
    ExpectBitIdentical(*naive, *got, name);
  }
}

}  // namespace
}  // namespace dpstarj
