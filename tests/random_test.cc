// Statistical tests for the noise samplers. Tolerances are loose enough to be
// deterministic under the fixed seeds yet tight enough to catch scale bugs
// (e.g. variance off by 2×).

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/random.h"

namespace dpstarj {
namespace {

constexpr int kSamples = 200000;

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform01() == b.Uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.Fork();
  // The fork must not replay the parent stream.
  Rng fresh(7);
  fresh.Uniform01();  // parent consumed one draw to fork
  EXPECT_NE(child.Uniform01(), fresh.Uniform01());
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(11);
  double scale = 3.0;
  std::vector<double> xs(kSamples);
  for (auto& x : xs) x = rng.Laplace(scale);
  // E = 0, Var = 2b².
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  double var = StdDev(xs) * StdDev(xs);
  EXPECT_NEAR(var, 2 * scale * scale, 0.05 * 2 * scale * scale);
}

TEST(RngTest, LaplaceZeroScaleIsZero) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.Laplace(0.0), 0.0);
}

TEST(RngTest, LaplaceTailProbability) {
  Rng rng(13);
  double b = 1.0;
  int beyond = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (std::abs(rng.Laplace(b)) > 3.0 * b) ++beyond;
  }
  // P(|X| > 3b) = e^{-3} ≈ 0.0498.
  double frac = static_cast<double>(beyond) / kSamples;
  EXPECT_NEAR(frac, std::exp(-3.0), 0.01);
}

TEST(RngTest, GeneralCauchyGamma4HasUnitScaleMedianSpread) {
  Rng rng(17);
  // For density ∝ 1/(1+|z|⁴) the quartiles sit near ±0.59; check the
  // interquartile spread is far narrower than standard Cauchy's (±1).
  std::vector<double> xs(kSamples);
  for (auto& x : xs) x = rng.GeneralCauchy(4.0, 1.0);
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  std::sort(xs.begin(), xs.end());
  double q1 = xs[kSamples / 4];
  double q3 = xs[3 * kSamples / 4];
  EXPECT_NEAR(q3, -q1, 0.08);     // symmetry
  EXPECT_GT(q3, 0.35);
  EXPECT_LT(q3, 0.85);
}

TEST(RngTest, GeneralCauchyScaleMultiplies) {
  Rng a(19), b(19);
  for (int i = 0; i < 100; ++i) {
    double x1 = a.GeneralCauchy(4.0, 1.0);
    double x2 = b.GeneralCauchy(4.0, 10.0);
    EXPECT_NEAR(x2, 10.0 * x1, 1e-9);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  std::vector<double> xs(kSamples);
  for (auto& x : xs) x = rng.Exponential(2.0);
  EXPECT_NEAR(Mean(xs), 0.5, 0.02);
  for (double x : xs) EXPECT_GE(x, 0.0);
}

TEST(RngTest, GammaMoments) {
  Rng rng(29);
  std::vector<double> xs(kSamples);
  for (auto& x : xs) x = rng.Gamma(2.0, 3.0);
  EXPECT_NEAR(Mean(xs), 6.0, 0.15);  // kθ
  double var = StdDev(xs) * StdDev(xs);
  EXPECT_NEAR(var, 18.0, 1.0);  // kθ²
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  std::vector<double> xs(kSamples);
  for (auto& x : xs) x = rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(Mean(xs), 5.0, 0.05);
  EXPECT_NEAR(StdDev(xs), 2.0, 0.05);
}

TEST(RngTest, GaussianMixtureBimodal) {
  Rng rng(37);
  std::vector<double> xs(kSamples);
  for (auto& x : xs) {
    x = rng.GaussianMixture({1.0, 1.0}, {-4.0, 4.0}, {0.5, 0.5});
  }
  EXPECT_NEAR(Mean(xs), 0.0, 0.1);
  // Hardly any mass near zero for well-separated modes.
  int near_zero = 0;
  for (double x : xs) {
    if (std::abs(x) < 1.0) ++near_zero;
  }
  EXPECT_LT(near_zero, kSamples / 100);
}

TEST(RngTest, TwoSidedGeometricSymmetry) {
  Rng rng(41);
  std::vector<double> xs(kSamples);
  for (auto& x : xs) x = static_cast<double>(rng.TwoSidedGeometric(0.5));
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(43);
  int heads = 0;
  for (int i = 0; i < kSamples; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kSamples, 0.3, 0.01);
}

TEST(RngTest, DiscreteFromCdfRespectsWeights) {
  Rng rng(47);
  std::vector<double> cdf = BuildCdf({1.0, 0.0, 3.0});
  ASSERT_EQ(cdf.size(), 3u);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.DiscreteFromCdf(cdf)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.75, 0.01);
}

TEST(RngTest, BuildCdfRejectsEmptyMass) {
  EXPECT_TRUE(BuildCdf({}).empty());
  EXPECT_TRUE(BuildCdf({0.0, -1.0}).empty());
}

}  // namespace
}  // namespace dpstarj
