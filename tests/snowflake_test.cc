// Tests for snowflake flattening and query rewriting.

#include <gtest/gtest.h>

#include "core/snowflake.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"

namespace dpstarj::core {
namespace {

using storage::AttributeDomain;
using storage::Field;
using storage::Value;
using storage::ValueType;

// Snowflake fixture: Fact → Mid → Leaf (a two-level dimension chain).
//   Leaf(lk, color ∈ {red, blue})           : 2 rows
//   Mid(mk, lk, size ∈ [1,3])               : 3 rows
//   Fact(mk, amount)                        : 6 rows
storage::Catalog MakeSnowflakeCatalog() {
  storage::Catalog catalog;

  storage::Schema leaf_schema(
      {Field("lk", ValueType::kInt64),
       Field("color", ValueType::kString,
             AttributeDomain::Categorical({"red", "blue"}))});
  auto leaf = *storage::Table::Create("Leaf", leaf_schema, "lk");
  DPSTARJ_CHECK(leaf->AppendRow({Value(int64_t{1}), Value("red")}).ok(), "t");
  DPSTARJ_CHECK(leaf->AppendRow({Value(int64_t{2}), Value("blue")}).ok(), "t");

  storage::Schema mid_schema({Field("mk", ValueType::kInt64),
                              Field("lk", ValueType::kInt64),
                              Field("size", ValueType::kInt64,
                                    AttributeDomain::IntRange(1, 3))});
  auto mid = *storage::Table::Create("Mid", mid_schema, "mk");
  DPSTARJ_CHECK(
      mid->AppendRow({Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1})}).ok(),
      "t");
  DPSTARJ_CHECK(
      mid->AppendRow({Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{2})}).ok(),
      "t");
  DPSTARJ_CHECK(
      mid->AppendRow({Value(int64_t{3}), Value(int64_t{2}), Value(int64_t{3})}).ok(),
      "t");

  storage::Schema fact_schema(
      {Field("mk", ValueType::kInt64), Field("amount", ValueType::kDouble)});
  auto fact = *storage::Table::Create("Fact", fact_schema);
  const int64_t mks[6] = {1, 1, 2, 2, 3, 3};
  for (int i = 0; i < 6; ++i) {
    DPSTARJ_CHECK(fact->AppendRow({Value(mks[i]), Value(double(i + 1))}).ok(), "t");
  }

  DPSTARJ_CHECK(catalog.AddTable(leaf).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(mid).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Fact", "mk", "Mid", "mk"}).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Mid", "lk", "Leaf", "lk"}).ok(), "t");
  return catalog;
}

TEST(SnowflakeTest, FlattensHierarchyIntoStar) {
  storage::Catalog catalog = MakeSnowflakeCatalog();
  auto flat = FlattenedSnowflake::Flatten(catalog, "Fact");
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();

  // The flattened catalog has Fact + Mid (with Leaf attributes pre-joined).
  ASSERT_TRUE(flat->catalog().HasTable("Fact"));
  ASSERT_TRUE(flat->catalog().HasTable("Mid"));
  auto mid = *flat->catalog().GetTable("Mid");
  EXPECT_EQ(mid->num_rows(), 3);
  EXPECT_TRUE(mid->schema().HasField("Leaf_color"));
  // Leaf attribute values joined correctly: mid row 2 (mk=3) has lk=2 → blue.
  auto col = *mid->ColumnByName("Leaf_color");
  EXPECT_EQ(col->GetString(2), "blue");
  // Domain preserved through flattening.
  int idx = *mid->schema().FieldIndex("Leaf_color");
  ASSERT_TRUE(mid->schema().field(idx).domain.has_value());
  EXPECT_EQ(mid->schema().field(idx).domain->size(), 2);
}

TEST(SnowflakeTest, ColumnAndTableMapping) {
  storage::Catalog catalog = MakeSnowflakeCatalog();
  auto flat = FlattenedSnowflake::Flatten(catalog, "Fact");
  ASSERT_TRUE(flat.ok());
  auto mapped = flat->MapColumn("Leaf", "color");
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->first, "Mid");
  EXPECT_EQ(mapped->second, "Leaf_color");
  EXPECT_EQ(*flat->MapTable("Leaf"), "Mid");
  EXPECT_EQ(*flat->MapTable("Mid"), "Mid");
  EXPECT_FALSE(flat->MapColumn("Nope", "x").ok());
  EXPECT_FALSE(flat->MapTable("Nope").ok());
}

TEST(SnowflakeTest, RewriteAndExecuteMatchesManualAnswer) {
  storage::Catalog catalog = MakeSnowflakeCatalog();
  auto flat = FlattenedSnowflake::Flatten(catalog, "Fact");
  ASSERT_TRUE(flat.ok());

  // Snowflake query: count fact rows joined to red leaves.
  query::StarJoinQuery q;
  q.fact_table = "Fact";
  q.joined_tables = {"Mid", "Leaf"};
  q.predicates.push_back(query::Predicate::Point("Leaf", "color", Value("red")));
  auto rewritten = flat->Rewrite(q);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  ASSERT_EQ(rewritten->joined_tables.size(), 1u);
  EXPECT_EQ(rewritten->joined_tables[0], "Mid");
  ASSERT_EQ(rewritten->predicates.size(), 1u);
  EXPECT_EQ(rewritten->predicates[0].table(), "Mid");
  EXPECT_EQ(rewritten->predicates[0].column(), "Leaf_color");

  query::Binder binder(&flat->catalog());
  auto bound = binder.Bind(*rewritten);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  exec::StarJoinExecutor executor;
  auto r = executor.Execute(*bound);
  ASSERT_TRUE(r.ok());
  // Red leaves: lk=1 → mids {1,2} → fact rows with mk∈{1,2} → 4.
  EXPECT_DOUBLE_EQ(r->scalar, 4.0);
}

TEST(SnowflakeTest, RewriteGroupByKeys) {
  storage::Catalog catalog = MakeSnowflakeCatalog();
  auto flat = FlattenedSnowflake::Flatten(catalog, "Fact");
  ASSERT_TRUE(flat.ok());
  query::StarJoinQuery q;
  q.fact_table = "Fact";
  q.joined_tables = {"Mid"};
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"amount", 1.0}};
  q.predicates.push_back(query::Predicate::Range("Mid", "size", Value(int64_t{1}),
                                                 Value(int64_t{3})));
  q.group_by = {{"Leaf", "color"}};
  auto rewritten = flat->Rewrite(q);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(rewritten->group_by[0].column, "Leaf_color");

  query::Binder binder(&flat->catalog());
  auto bound = binder.Bind(*rewritten);
  ASSERT_TRUE(bound.ok());
  exec::StarJoinExecutor executor;
  auto r = executor.Execute(*bound);
  ASSERT_TRUE(r.ok());
  // red: fact amounts 1+2+3+4 = 10; blue: 5+6 = 11.
  EXPECT_DOUBLE_EQ(r->groups.at("red"), 10.0);
  EXPECT_DOUBLE_EQ(r->groups.at("blue"), 11.0);
}

TEST(SnowflakeTest, RejectsWrongFact) {
  storage::Catalog catalog = MakeSnowflakeCatalog();
  auto flat = FlattenedSnowflake::Flatten(catalog, "Fact");
  ASSERT_TRUE(flat.ok());
  query::StarJoinQuery q;
  q.fact_table = "Mid";
  EXPECT_FALSE(flat->Rewrite(q).ok());
}

TEST(SnowflakeTest, CycleDetection) {
  // A → B → A cycle among dimensions must be rejected.
  storage::Catalog catalog;
  storage::Schema a_schema({Field("ak", ValueType::kInt64),
                            Field("bk", ValueType::kInt64)});
  auto a = *storage::Table::Create("A", a_schema, "ak");
  DPSTARJ_CHECK(a->AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok(), "t");
  storage::Schema b_schema({Field("bk", ValueType::kInt64),
                            Field("ak", ValueType::kInt64)});
  auto b = *storage::Table::Create("B", b_schema, "bk");
  DPSTARJ_CHECK(b->AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok(), "t");
  storage::Schema f_schema({Field("ak", ValueType::kInt64)});
  auto f = *storage::Table::Create("F", f_schema);
  DPSTARJ_CHECK(f->AppendRow({Value(int64_t{1})}).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(a).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(b).ok(), "t");
  DPSTARJ_CHECK(catalog.AddTable(f).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"F", "ak", "A", "ak"}).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"A", "bk", "B", "bk"}).ok(), "t");
  DPSTARJ_CHECK(catalog.AddForeignKey({"B", "ak", "A", "ak"}).ok(), "t");
  auto flat = FlattenedSnowflake::Flatten(catalog, "F");
  EXPECT_FALSE(flat.ok());
}

}  // namespace
}  // namespace dpstarj::core
