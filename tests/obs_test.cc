// Unit tests of the telemetry substrate (src/obs/): histogram bucket math
// and quantile extraction, registry identity and rendering invariants, trace
// stage accounting, and the access-log line format. The concurrency test
// hammers one histogram from many threads — it is the TSan witness that
// Observe/Snapshot need no lock.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/access_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpstarj::obs {
namespace {

TEST(HistogramTest, BucketBoundariesAreInclusiveUpper) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // (-inf, 1]
  h.Observe(1.0);  // (-inf, 1]  — v <= bound is inclusive
  h.Observe(1.5);  // (1, 2]
  h.Observe(4.0);  // (2, 4]
  h.Observe(5.0);  // +Inf bucket

  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 12.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 2.4);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  // 10 observations per bucket over bounds {10,20,30,40}: the distribution
  // is uniform at bucket granularity, so quantiles interpolate linearly.
  Histogram h({10.0, 20.0, 30.0, 40.0});
  for (int b = 0; b < 4; ++b) {
    for (int i = 0; i < 10; ++i) h.Observe(b * 10 + 5);
  }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.25), 10.0);  // rank 10 = top of bucket 0
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 40.0);
  // Rank 5 of 40 → halfway into (0, 10].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.125), 5.0);
  // Monotone in q.
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = snap.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, QuantileClampsInfBucketToLargestFiniteBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.Observe(100.0);  // all land in +Inf
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.99), 2.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Mean(), 0.0);
}

TEST(HistogramTest, ExponentialBuckets) {
  std::vector<double> bounds = Histogram::ExponentialBuckets(1.0, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 16.0);
  for (size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
  // The default latency buckets reach past 10 s so a stuck scan still lands
  // in a finite bucket.
  const std::vector<double>& latency = Histogram::DefaultLatencyBuckets();
  EXPECT_DOUBLE_EQ(latency.front(), 5e-6);
  EXPECT_GT(latency.back(), 10.0);
}

// The TSan witness: concurrent Observe against one histogram, with scrapes
// racing the writers, must neither tear nor drop observations.
TEST(HistogramTest, ConcurrentObserveIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram h({1.0, 2.0, 4.0, 8.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t + i) % 10));
        if (i % 1024 == 0) (void)h.Snapshot();  // scrapes race the writers
      }
    });
  }
  for (auto& th : threads) th.join();

  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  // Every thread observes each residue 0..9 exactly kPerThread/10 times.
  double expected_sum = kThreads * (kPerThread / 10) * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9);
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
}

TEST(MetricsRegistryTest, HandlesAreStableAndLabelOrderInsensitive) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("c_total", "help", {{"x", "1"}, {"y", "2"}});
  Counter* b = reg.GetCounter("c_total", "help", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);  // labels are sorted at registration
  Counter* other = reg.GetCounter("c_total", "help", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(a, other);

  a->Inc(3);
  const Counter* found = reg.FindCounter("c_total", {{"y", "2"}, {"x", "1"}});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->Value(), 3u);
  EXPECT_EQ(reg.FindCounter("c_total", {{"x", "9"}}), nullptr);
  EXPECT_EQ(reg.FindCounter("missing_total"), nullptr);
  // A family registered as counter is invisible to typed lookups of other
  // kinds (and the reverse) rather than aliasing.
  EXPECT_EQ(reg.FindGauge("c_total", {{"x", "1"}, {"y", "2"}}), nullptr);
}

TEST(MetricsRegistryTest, HistogramChildrenExposeLabels) {
  MetricsRegistry reg;
  reg.GetHistogram("h_seconds", "help", {{"stage", "scan"}})->Observe(0.5);
  reg.GetHistogram("h_seconds", "help", {{"stage", "bind"}})->Observe(0.25);
  auto children = reg.HistogramChildren("h_seconds");
  ASSERT_EQ(children.size(), 2u);
  for (const auto& [labels, hist] : children) {
    ASSERT_EQ(labels.size(), 1u);
    EXPECT_EQ(labels[0].first, "stage");
    EXPECT_EQ(hist->Count(), 1u);
  }
  EXPECT_TRUE(reg.HistogramChildren("h_missing").empty());
}

TEST(MetricsRegistryTest, RenderPrometheusFormat) {
  MetricsRegistry reg;
  reg.GetCounter("req_total", "Requests served", {{"code", "200"}})->Inc(7);
  reg.GetGauge("depth", "Queue depth")->Set(3.5);
  Histogram* h = reg.GetHistogram("lat_seconds", "Latency", {{"op", "q"}},
                                  {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);

  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# HELP req_total Requests served\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{code=\"200\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // _bucket series are cumulative, le joins the child labels, +Inf closes.
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"q\",le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"q\",le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"q\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum{op=\"q\"} 5.55\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count{op=\"q\"} 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.GetCounter("esc_total", "h", {{"v", "a\"b\\c\nd"}})->Inc();
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("esc_total{v=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
}

TEST(TraceTest, StagesAccumulateAndSetTouchedBits) {
  Trace trace;
  EXPECT_EQ(trace.id().size(), 16u);
  EXPECT_FALSE(trace.touched(Stage::kScan));
  trace.Record(Stage::kScan, 1000);
  trace.Record(Stage::kScan, 500);  // spends accumulate (e.g. spend + refund)
  EXPECT_TRUE(trace.touched(Stage::kScan));
  EXPECT_EQ(trace.stage_ns(Stage::kScan), 1500u);
  EXPECT_EQ(trace.stage_us(Stage::kScan), 1u);
  EXPECT_FALSE(trace.touched(Stage::kBind));

  Trace other;
  EXPECT_NE(trace.id(), other.id());
}

TEST(TraceTest, ScopedStageIsNullSafeAndRecords) {
  { ScopedStage noop(nullptr, Stage::kScan); }  // must not crash

  Trace trace;
  {
    ScopedStage span(&trace, Stage::kBind);
  }
  EXPECT_TRUE(trace.touched(Stage::kBind));
}

TEST(TraceTest, StageMetricsFoldTouchedStagesOnly) {
  MetricsRegistry reg;
  StageMetrics metrics(&reg);
  Trace trace;
  trace.Record(Stage::kScan, 2'000'000);       // 2 ms
  trace.Record(Stage::kNoiseDraw, 1'000'000);  // 1 ms
  metrics.ObserveTrace(trace);

  const Histogram* scan =
      reg.FindHistogram("dpstarj_stage_duration_seconds", {{"stage", "scan"}});
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->Count(), 1u);
  EXPECT_DOUBLE_EQ(scan->Snapshot().sum, 0.002);
  const Histogram* bind =
      reg.FindHistogram("dpstarj_stage_duration_seconds", {{"stage", "bind"}});
  ASSERT_NE(bind, nullptr);
  EXPECT_EQ(bind->Count(), 0u);  // untouched stages stay unobserved
}

TEST(AccessLogTest, SerializeCarriesAllStagesAndEscapes) {
  Trace trace;
  for (int s = 0; s < kStageCount; ++s) {
    trace.Record(static_cast<Stage>(s), (s + 1) * 1000);
  }
  trace.plan_cache_hit = true;

  AccessLogEntry entry;
  entry.method = "POST";
  entry.path = "/v1/\"query\"";
  entry.status = 200;
  entry.tenant = "acme";
  entry.total_us = 1234;
  entry.trace = &trace;

  std::string line = AccessLog::Serialize(entry);
  EXPECT_NE(line.find("\"method\":\"POST\""), std::string::npos);
  EXPECT_NE(line.find("\"path\":\"/v1/\\\"query\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":200"), std::string::npos);
  EXPECT_NE(line.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(line.find("\"total_us\":1234"), std::string::npos);
  EXPECT_NE(line.find("\"trace_id\":\"" + trace.id() + "\""), std::string::npos);
  EXPECT_NE(line.find("\"plan_cache_hit\":true"), std::string::npos);
  for (int s = 0; s < kStageCount; ++s) {
    std::string key =
        "\"" + std::string(StageName(static_cast<Stage>(s))) + "\":";
    EXPECT_NE(line.find(key), std::string::npos) << key;
  }
  EXPECT_NE(line.find("\"scan\":10"), std::string::npos);  // stage 9: 10000 ns

  // No trace and no tenant: the optional fields are omitted entirely.
  AccessLogEntry bare;
  bare.method = "GET";
  bare.path = "/healthz";
  bare.status = 200;
  bare.total_us = 5;
  std::string bare_line = AccessLog::Serialize(bare);
  EXPECT_EQ(bare_line.find("\"tenant\""), std::string::npos);
  EXPECT_EQ(bare_line.find("\"trace_id\""), std::string::npos);
  EXPECT_EQ(bare_line.find("\"stages\""), std::string::npos);
}

TEST(AccessLogTest, WriteProducesOneLinePerEntry) {
  std::vector<std::string> lines;
  AccessLog log([&](const std::string& line) { lines.push_back(line); });
  AccessLogEntry entry;
  entry.method = "GET";
  entry.path = "/metrics";
  entry.status = 200;
  entry.total_us = 10;
  log.Write(entry);
  log.Write(entry);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find('\n'), std::string::npos);
  EXPECT_EQ(lines[0].front(), '{');
  EXPECT_EQ(lines[0].back(), '}');
}

}  // namespace
}  // namespace dpstarj::obs
