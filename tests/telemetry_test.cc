// End-to-end telemetry tests: a live server over a real QueryService with a
// shared MetricsRegistry and a captured access log. Each wire outcome the
// protocol can produce (200, 403 budget, 429 tenant-limited, 400 bad
// request, 408 header timeout) must leave a well-formed access-log line, and
// the scrape endpoints (/metrics, /v1/trace/stats) must expose populated
// per-stage histograms after a query burst. The /v1/stats ↔ /metrics
// agreement test is the regression guard for the single-source-of-truth
// counters in QueryService.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "net/client.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "obs/access_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "storage/catalog.h"
#include "test_catalog.h"

namespace dpstarj::net {
namespace {

std::string QueryBody(const std::string& sql, double epsilon,
                      const std::string& tenant) {
  Json body = Json::Object();
  body.Set("sql", Json::Str(sql));
  body.Set("epsilon", Json::Number(epsilon));
  body.Set("tenant", Json::Str(tenant));
  return body.Dump();
}

std::string ToyQuery(int d) {
  return Format(
      "SELECT count(*) FROM Orders, Cust, Prod WHERE Orders.ck = Cust.ck "
      "AND Orders.pk = Prod.pk AND Cust.tier <= %d AND Prod.cat = '%c'",
      d % 4 + 1, "abcd"[(d / 4) % 4]);
}

/// Collects access-log lines in memory; reads happen after traffic quiesces.
class CapturedLog {
 public:
  std::shared_ptr<obs::AccessLog> Make() {
    return std::make_shared<obs::AccessLog>([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    });
  }
  std::vector<std::string> Lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

/// Parses an access-log line and asserts the request-level invariants every
/// line must satisfy; returns the parsed JSON for outcome-specific checks.
Json MustParseLine(const std::string& line) {
  auto json = Json::Parse(line);
  EXPECT_TRUE(json.ok()) << line;
  EXPECT_NE(json->Find("ts"), nullptr) << line;
  EXPECT_NE(json->Find("method"), nullptr) << line;
  EXPECT_NE(json->Find("path"), nullptr) << line;
  EXPECT_NE(json->Find("status"), nullptr) << line;
  EXPECT_GE(*json->GetNumber("total_us"), 0.0) << line;
  return *json;
}

/// Asserts a /v1/query line carries a trace with every stage present and
/// non-negative.
void CheckQueryLineStages(const Json& line_json, const std::string& line) {
  ASSERT_NE(line_json.Find("trace_id"), nullptr) << line;
  EXPECT_EQ(line_json.GetString("trace_id")->size(), 16u) << line;
  const Json* stages = line_json.Find("stages");
  ASSERT_NE(stages, nullptr) << line;
  for (int s = 0; s < obs::kStageCount; ++s) {
    const char* name = obs::StageName(static_cast<obs::Stage>(s));
    auto us = stages->GetNumber(name);
    ASSERT_TRUE(us.ok()) << name << " missing in " << line;
    EXPECT_GE(*us, 0.0) << name << " in " << line;
  }
}

class TelemetryTest : public ::testing::Test {
 protected:
  TelemetryTest() : catalog_(testing_fixture::MakeToyCatalog()) {}
  storage::Catalog catalog_;
};

TEST_F(TelemetryTest, AllWireOutcomesEmitTracedAccessLogLines) {
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  service::ServiceOptions service_options;
  service_options.num_engines = 2;
  service_options.metrics = metrics;
  service::QueryService service(&catalog_, service_options);

  CapturedLog captured;
  ServerOptions server_options;
  server_options.metrics = metrics.get();
  server_options.access_log = captured.Make();
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());
  Client client("127.0.0.1", server.port());

  // 200s: one fresh draw + replays, plus a second fresh query.
  ASSERT_EQ(client.Post("/v1/tenants", "{\"tenant\":\"t\",\"epsilon\":1.0}")
                ->status,
            201);
  for (int i = 0; i < 4; ++i) {
    auto r = client.Post("/v1/query", QueryBody(ToyQuery(0), 0.4, "t"));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->status, 200) << r->body;
    EXPECT_EQ(r->FindHeader("X-DPStarJ-Trace-Id").size(), 16u);
  }
  ASSERT_EQ(client.Post("/v1/query", QueryBody(ToyQuery(1), 0.4, "t"))->status,
            200);
  // 403: the third fresh draw does not fit in the remaining 0.2.
  auto exhausted = client.Post("/v1/query", QueryBody(ToyQuery(2), 0.4, "t"));
  ASSERT_TRUE(exhausted.ok());
  EXPECT_EQ(exhausted->status, 403);
  EXPECT_EQ(exhausted->FindHeader("X-DPStarJ-Trace-Id").size(), 16u);

  // 429 tenant-limited: a one-token bucket that effectively never refills.
  ASSERT_EQ(client
                .Post("/v1/tenants",
                      "{\"tenant\":\"drip\",\"epsilon\":100,"
                      "\"rate_qps\":0.001,\"burst\":1}")
                ->status,
            201);
  ASSERT_EQ(client.Post("/v1/query", QueryBody(ToyQuery(0), 0.1, "drip"))
                ->status,
            200);
  auto limited = client.Post("/v1/query", QueryBody(ToyQuery(0), 0.1, "drip"));
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->status, 429);
  EXPECT_EQ(limited->FindHeader(kTenantLimitedHeader), "1");
  EXPECT_EQ(limited->FindHeader("X-DPStarJ-Trace-Id").size(), 16u);

  // 400: an unparsable body still gets a traced response.
  auto bad = client.Post("/v1/query", "not json");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  EXPECT_EQ(bad->FindHeader("X-DPStarJ-Trace-Id").size(), 16u);

  // Stop() joins the handler threads, so every access-log line has landed
  // before the assertions below read them.
  server.Stop();

  // Every line parses and satisfies the shared invariants; every /v1/query
  // line carries a complete stage map.
  int ok_lines = 0, forbidden_lines = 0, limited_lines = 0, bad_lines = 0;
  for (const std::string& line : captured.Lines()) {
    Json json = MustParseLine(line);
    if (*json.GetString("path") != "/v1/query") continue;
    CheckQueryLineStages(json, line);
    const int status = static_cast<int>(*json.GetNumber("status"));
    switch (status) {
      case 200: ++ok_lines; break;
      case 403: ++forbidden_lines; break;
      case 429: ++limited_lines; break;
      case 400: ++bad_lines; break;
      default: break;
    }
    if (status == 200 || status == 403 || status == 429) {
      EXPECT_NE(json.Find("tenant"), nullptr) << line;
    }
  }
  EXPECT_EQ(ok_lines, 6);
  EXPECT_EQ(forbidden_lines, 1);
  EXPECT_EQ(limited_lines, 1);
  EXPECT_EQ(bad_lines, 1);

  // A replayed answer is marked as a cache hit in its log line.
  bool saw_replay = false;
  for (const std::string& line : captured.Lines()) {
    if (line.find("\"answer_cache_hit\":true") != std::string::npos) {
      saw_replay = true;
    }
  }
  EXPECT_TRUE(saw_replay);
}

TEST_F(TelemetryTest, MetricsEndpointExposesPopulatedHistograms) {
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  service::ServiceOptions service_options;
  service_options.num_engines = 2;
  service_options.default_tenant_budget = 100.0;
  service_options.metrics = metrics;
  service::QueryService service(&catalog_, service_options);

  ServerOptions server_options;
  server_options.metrics = metrics.get();
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());
  Client client("127.0.0.1", server.port());

  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(
        client.Post("/v1/query", QueryBody(ToyQuery(i % 3), 0.05, "burst"))
            ->status,
        200);
  }

  auto scrape = client.Get("/metrics");
  ASSERT_TRUE(scrape.ok());
  ASSERT_EQ(scrape->status, 200);
  EXPECT_EQ(scrape->content_type, "text/plain; version=0.0.4; charset=utf-8");
  const std::string& text = scrape->body;

  // Lifecycle counters, per-outcome duration histograms, per-stage
  // histograms, per-tenant ε gauges and the HTTP layer's own counters all on
  // one page.
  EXPECT_NE(text.find("# TYPE dpstarj_queries_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dpstarj_queries_submitted_total 12"), std::string::npos);
  EXPECT_NE(text.find("dpstarj_queries_completed_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dpstarj_query_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("dpstarj_query_duration_seconds_count{outcome=\"ok\"} 12"),
      std::string::npos);
  EXPECT_NE(text.find("dpstarj_stage_duration_seconds_bucket{stage=\"scan\""),
            std::string::npos);
  EXPECT_NE(
      text.find("dpstarj_stage_duration_seconds_count{stage=\"queue_wait\"} 12"),
      std::string::npos);
  EXPECT_NE(text.find("dpstarj_tenant_epsilon_spent{tenant=\"burst\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dpstarj_tenant_epsilon_remaining{tenant=\"burst\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dpstarj_http_requests_total"), std::string::npos);
  EXPECT_NE(text.find("dpstarj_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("dpstarj_answer_cache_hit_ratio"), std::string::npos);

  // Counters never reset across scrapes: a second scrape must not regress.
  auto again = client.Get("/metrics");
  ASSERT_EQ(again->status, 200);
  EXPECT_NE(again->body.find("dpstarj_queries_completed_total 12"),
            std::string::npos);

  // /v1/trace/stats distills the same histograms into JSON aggregates.
  auto traces = client.Get("/v1/trace/stats");
  ASSERT_EQ(traces->status, 200);
  auto body = Client::ParseBody(*traces);
  ASSERT_TRUE(body.ok());
  const Json* stages = body->Find("stages");
  ASSERT_NE(stages, nullptr);
  const Json* scan = stages->Find("scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_GE(*scan->GetNumber("count"), 3.0);  // one per fresh draw
  EXPECT_GE(*scan->GetNumber("p99_seconds"), *scan->GetNumber("p50_seconds"));
  const Json* query = body->Find("query");
  ASSERT_NE(query, nullptr);
  ASSERT_NE(query->Find("ok"), nullptr);
  EXPECT_DOUBLE_EQ(*query->Find("ok")->GetNumber("count"), 12.0);
  server.Stop();
}

// /v1/stats and /metrics read the same registry counters, so the wire stats
// and a scrape can never disagree at quiescence.
TEST_F(TelemetryTest, StatsAndMetricsAgree) {
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service_options.default_tenant_budget = 100.0;
  service_options.metrics = metrics;
  service::QueryService service(&catalog_, service_options);

  ServerOptions server_options;
  server_options.metrics = metrics.get();
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());
  Client client("127.0.0.1", server.port());

  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(client.Post("/v1/query", QueryBody(ToyQuery(i), 0.01, "agree"))
                  ->status,
              200);
  }

  auto stats = Client::ParseBody(*client.Get("/v1/stats"));
  ASSERT_TRUE(stats.ok());
  service::ServiceStats in_process = service.Stats();
  EXPECT_DOUBLE_EQ(*stats->GetNumber("submitted"),
                   static_cast<double>(in_process.submitted));
  EXPECT_DOUBLE_EQ(*stats->GetNumber("completed"),
                   static_cast<double>(in_process.completed));
  const obs::Counter* submitted =
      metrics->FindCounter("dpstarj_queries_submitted_total");
  ASSERT_NE(submitted, nullptr);
  EXPECT_EQ(submitted->Value(), in_process.submitted);
  EXPECT_EQ(in_process.submitted, 5u);
  EXPECT_EQ(in_process.completed, 5u);
  server.Stop();
}

// A connection reaped at the header deadline leaves a 408 access-log line —
// no trace (there was no request), but a valid record of the refusal.
TEST_F(TelemetryTest, HeaderTimeoutLeavesAccessLogLine) {
  service::ServiceOptions service_options;
  service_options.num_engines = 1;
  service::QueryService service(&catalog_, service_options);

  CapturedLog captured;
  ServerOptions server_options;
  server_options.header_timeout_ms = 200;
  server_options.access_log = captured.Make();
  HttpServer server(MakeServiceRouter(&service), server_options);
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_GT(::send(fd, "GET /slow", 9, MSG_NOSIGNAL), 0);  // never finishes

  // Wait for the reap (408 + close), bounded by the receive side going EOF.
  timeval tv{3, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[1024];
  std::string got;
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(got.find("408"), std::string::npos);

  server.Stop();  // joins the event thread: the reaper's log line has landed
  bool saw_408 = false;
  for (const std::string& line : captured.Lines()) {
    Json json = MustParseLine(line);
    if (static_cast<int>(*json.GetNumber("status")) == 408) saw_408 = true;
  }
  EXPECT_TRUE(saw_408);
}

}  // namespace
}  // namespace dpstarj::net
