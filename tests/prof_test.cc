// Tests for the profiling subsystem (src/obs/prof): counter-mode fallback and
// the signal-based sampler.
//
// The whole binary runs with DPSTARJ_PROF_NO_PERF=1, set before any test can
// resolve the process-wide counter mode — so these tests exercise the
// fallback path deterministically on every host, including developer machines
// that DO have a PMU. The perf_events path itself is covered operationally:
// on a host that grants perf_event_open the same code runs with hardware
// numbers, and the mode gauge says which world a scrape came from.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/prof/sampler.h"
#include "obs/trace.h"

namespace dpstarj::obs {
namespace {

// Runs before main(): the counter mode is resolved lazily on the first
// sample, and this guarantees the knob is in place before that.
const bool g_forced_fallback = [] {
  ::setenv("DPSTARJ_PROF_NO_PERF", "1", /*overwrite=*/1);
  return true;
}();

// Spins long enough for CLOCK_THREAD_CPUTIME_ID to visibly advance.
void BurnCpu() {
  volatile double sink = 0.0;
  for (int i = 0; i < 2'000'000; ++i) sink += static_cast<double>(i) * 1e-9;
}

TEST(CounterModeTest, EnvKnobForcesFallback) {
  ASSERT_TRUE(g_forced_fallback);
  EXPECT_EQ(prof::ActiveCounterMode(), prof::CounterMode::kFallback);
  EXPECT_STREQ(prof::CounterModeName(prof::CounterMode::kFallback),
               "thread_cputime");
  EXPECT_STREQ(prof::CounterModeName(prof::CounterMode::kPerfEvents),
               "perf_events");
}

TEST(CounterModeTest, FallbackSamplesTaskClockNotHardware) {
  prof::CounterSet before = prof::SampleThreadCounters();
  BurnCpu();
  prof::CounterSet delta = prof::SampleThreadCounters() - before;
  // The one series that must work everywhere.
  EXPECT_GT(delta.task_clock_ns, 0u);
  // Hardware series are exactly zero in fallback mode — never garbage.
  EXPECT_EQ(delta.cycles, 0u);
  EXPECT_EQ(delta.instructions, 0u);
  EXPECT_EQ(delta.llc_misses, 0u);
  EXPECT_EQ(delta.branch_misses, 0u);
}

TEST(CounterModeTest, SaturatingDifferenceClampsRegressions) {
  prof::CounterSet later;
  later.cycles = 5;
  prof::CounterSet earlier;
  earlier.cycles = 9;  // multiplexing scaling can regress a count slightly
  EXPECT_EQ((later - earlier).cycles, 0u);
}

TEST(StageMetricsTest, ExportsModeGaugeAndTaskClock) {
  MetricsRegistry registry;
  StageMetrics metrics(&registry);

  // In the forced-fallback world the mode gauge must say so — a scrape can
  // always tell "no cycles burned" apart from "no PMU access".
  const Gauge* fallback = registry.FindGauge(
      "dpstarj_profiler_mode", {{"mode", "thread_cputime"}});
  const Gauge* perf = registry.FindGauge(
      "dpstarj_profiler_mode", {{"mode", "perf_events"}});
  ASSERT_NE(fallback, nullptr);
  ASSERT_NE(perf, nullptr);
  EXPECT_EQ(fallback->Value(), 1.0);
  EXPECT_EQ(perf->Value(), 0.0);

  // A traced span still lands task-clock counts through ObserveTrace.
  Trace trace;
  {
    ScopedStage stage(&trace, Stage::kScan);
    BurnCpu();
  }
  metrics.ObserveTrace(trace);
  const Counter* task_clock = registry.FindCounter(
      "dpstarj_stage_task_clock_ns_total", {{"stage", StageName(Stage::kScan)}});
  const Counter* cycles = registry.FindCounter(
      "dpstarj_stage_cycles_total", {{"stage", StageName(Stage::kScan)}});
  ASSERT_NE(task_clock, nullptr);
  ASSERT_NE(cycles, nullptr);
  EXPECT_GT(task_clock->Value(), 0u);
  EXPECT_EQ(cycles->Value(), 0u);
}

#if defined(__linux__)

TEST(SamplerTest, RejectsOutOfRangeArguments) {
  auto& sampler = prof::Sampler::Global();
  EXPECT_EQ(sampler.Run(0.0, 99).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sampler.Run(31.0, 99).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sampler.Run(1.0, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sampler.Run(1.0, 1001).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SamplerTest, CapturesSpinningThreads) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> spinners;
  for (int i = 0; i < 2; ++i) {
    spinners.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) BurnCpu();
    });
  }

  auto profile = prof::Sampler::Global().Run(/*seconds=*/0.4, /*hz=*/199);
  stop.store(true);
  for (auto& t : spinners) t.join();

  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  // ITIMER_PROF fires against consumed CPU time; two busy spinners for 0.4s
  // at 199 Hz must land at least a handful of samples.
  EXPECT_GT(profile->samples, 0u);
  EXPECT_FALSE(profile->folded.empty());
  // Every line ends "<space><positive count>\n".
  size_t pos = 0;
  while (pos < profile->folded.size()) {
    size_t eol = profile->folded.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated folded line";
    std::string line = profile->folded.substr(pos, eol - pos);
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
    pos = eol + 1;
  }
}

TEST(SamplerTest, OverlappingRunReturnsAlreadyExists) {
  std::atomic<bool> spin{true};
  std::thread spinner([&spin] {
    while (spin.load(std::memory_order_relaxed)) BurnCpu();
  });

  std::atomic<int> overlap_rejections{0};
  std::thread first([&] {
    auto p = prof::Sampler::Global().Run(/*seconds=*/0.5, /*hz=*/97);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
  });
  // Let the first capture get past its own startup, then collide with it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto second = prof::Sampler::Global().Run(/*seconds=*/0.2, /*hz=*/97);
  if (!second.ok() &&
      second.status().code() == StatusCode::kAlreadyExists) {
    overlap_rejections.fetch_add(1);
  }
  first.join();
  spin.store(false);
  spinner.join();
  EXPECT_EQ(overlap_rejections.load(), 1)
      << "second capture should have collided with the in-flight one";
}

// Start/stop churn under concurrent request pressure: many short captures
// racing each other and a pool of spinning victim threads. Run under TSan
// this is the data-race gate for the handler/drain protocol; under the normal
// build it still shakes out slot-recycling bugs (each capture resets the
// slot array while handlers may be in flight on other threads).
TEST(SamplerTest, StartStopHammer) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> spinners;
  for (int i = 0; i < 2; ++i) {
    spinners.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) BurnCpu();
    });
  }

  std::atomic<int> completed{0};
  std::vector<std::thread> requesters;
  for (int i = 0; i < 4; ++i) {
    requesters.emplace_back([&completed] {
      for (int run = 0; run < 6; ++run) {
        auto p = prof::Sampler::Global().Run(/*seconds=*/0.05, /*hz=*/311);
        if (p.ok()) {
          completed.fetch_add(1);
        } else {
          // The only acceptable failure is losing the race for the slot.
          EXPECT_EQ(p.status().code(), StatusCode::kAlreadyExists)
              << p.status().ToString();
        }
      }
    });
  }
  for (auto& t : requesters) t.join();
  stop.store(true);
  for (auto& t : spinners) t.join();
  // At any moment exactly one capture wins; across 24 attempts several must.
  EXPECT_GT(completed.load(), 0);
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace dpstarj::obs
