// Tests for the SQL lexer and the star-join parser, including every SSB query
// from the paper's appendix.

#include <gtest/gtest.h>

#include "query/lexer.h"
#include "query/parser.h"
#include "ssb/ssb_queries.h"

namespace dpstarj::query {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT count(*) FROM T WHERE T.a = 'x';");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("COUNT"));
  EXPECT_TRUE((*tokens)[2].IsSymbol("("));
  EXPECT_TRUE((*tokens)[3].IsSymbol("*"));
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("1993 3.5 'MFGR#12' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*tokens)[0].int_value, 1993);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNumLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[1].num_value, 3.5);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*tokens)[2].text, "MFGR#12");
  EXPECT_EQ((*tokens)[3].text, "it's");
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("a <= b >= c <> d");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[3].IsSymbol(">="));
  EXPECT_TRUE((*tokens)[5].IsSymbol("!="));
}

TEST(LexerTest, ErrorsCarryPosition) {
  auto t1 = Tokenize("SELECT @");
  ASSERT_FALSE(t1.ok());
  EXPECT_EQ(t1.status().code(), StatusCode::kParseError);
  auto t2 = Tokenize("'unterminated");
  ASSERT_FALSE(t2.ok());
}

TEST(ParserTest, MinimalCount) {
  auto q = ParseStarJoinSql(
      "SELECT count(*) FROM Date, Lineorder "
      "WHERE Lineorder.orderdate = Date.datekey AND Date.year = 1993");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate, AggregateKind::kCount);
  ASSERT_EQ(q->from_tables.size(), 2u);
  ASSERT_EQ(q->joins.size(), 1u);
  ASSERT_EQ(q->predicates.size(), 1u);
  EXPECT_EQ(q->predicates[0].table(), "Date");
  EXPECT_EQ(q->predicates[0].kind(), PredicateKind::kPoint);
}

TEST(ParserTest, SumWithDifference) {
  auto q = ParseStarJoinSql(
      "SELECT sum(Lineorder.revenue - Lineorder.supplycost) FROM Lineorder");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate, AggregateKind::kSum);
  ASSERT_EQ(q->measure_terms.size(), 2u);
  EXPECT_DOUBLE_EQ(q->measure_terms[0].coefficient, 1.0);
  EXPECT_DOUBLE_EQ(q->measure_terms[1].coefficient, -1.0);
  EXPECT_EQ(q->measure_terms[1].column, "Lineorder.supplycost");
}

TEST(ParserTest, BetweenBecomesRange) {
  auto q = ParseStarJoinSql(
      "SELECT count(*) FROM D, F WHERE F.k = D.k AND D.year BETWEEN 1992 AND 1997");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->predicates.size(), 1u);
  EXPECT_EQ(q->predicates[0].kind(), PredicateKind::kRange);
  EXPECT_EQ(q->predicates[0].lo_value().AsInt64(), 1992);
  EXPECT_EQ(q->predicates[0].hi_value().AsInt64(), 1997);
}

TEST(ParserTest, ComparisonOperators) {
  auto q = ParseStarJoinSql(
      "SELECT count(*) FROM D, F WHERE F.k = D.k AND D.month < 7 AND D.day >= 2");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->predicates.size(), 2u);
  EXPECT_FALSE(q->predicates[0].has_lo());
  EXPECT_TRUE(q->predicates[0].hi_strict());
  EXPECT_FALSE(q->predicates[1].has_hi());
  EXPECT_FALSE(q->predicates[1].lo_strict());
}

TEST(ParserTest, OrMergesAdjacentPoints) {
  auto q = ParseStarJoinSql(
      "SELECT count(*) FROM P, F WHERE F.k = P.k AND P.mfgr = 'MFGR#1'"
      " OR P.mfgr = 'MFGR#2'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates.size(), 1u);
  EXPECT_TRUE(q->predicates[0].is_or_pair());
}

TEST(ParserTest, OrAcrossAttributesRejected) {
  auto q = ParseStarJoinSql(
      "SELECT count(*) FROM P, F WHERE F.k = P.k AND P.a = 'x' OR P.b = 'y'");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotSupported);
}

TEST(ParserTest, GroupByOrderBy) {
  auto q = ParseStarJoinSql(
      "SELECT sum(F.rev), D.year FROM D, F WHERE F.k = D.k"
      " GROUP BY D.year, P.brand ORDER BY D.year");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->group_by.size(), 2u);
  EXPECT_EQ(q->group_by[0].ToString(), "D.year");
  ASSERT_EQ(q->order_by.size(), 1u);
  ASSERT_EQ(q->select_columns.size(), 1u);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseStarJoinSql("").ok());
  EXPECT_FALSE(ParseStarJoinSql("SELECT FROM T").ok());
  EXPECT_FALSE(ParseStarJoinSql("SELECT count(*)").ok());          // no FROM
  EXPECT_FALSE(ParseStarJoinSql("SELECT count(*) FROM T extra").ok());
  EXPECT_FALSE(ParseStarJoinSql("SELECT count(*), count(*) FROM T").ok());
  EXPECT_FALSE(
      ParseStarJoinSql("SELECT count(*) FROM T WHERE T.a != 3").ok());
  EXPECT_FALSE(
      ParseStarJoinSql("SELECT count(*) FROM A, B WHERE A.x < B.y").ok());
}

TEST(ParserTest, NonEqualityJoinRejected) {
  auto q = ParseStarJoinSql("SELECT count(*) FROM A, B WHERE A.x < B.y");
  EXPECT_FALSE(q.ok());
}

// Every SSB query from the appendix must parse.
class SsbSqlParses : public ::testing::TestWithParam<std::string> {};

TEST_P(SsbSqlParses, Parses) {
  auto sql = ssb::GetQuerySql(GetParam());
  ASSERT_TRUE(sql.ok());
  auto parsed = ParseStarJoinSql(*sql);
  ASSERT_TRUE(parsed.ok()) << GetParam() << ": " << parsed.status().ToString()
                           << "\n" << *sql;
  EXPECT_FALSE(parsed->from_tables.empty());
  EXPECT_FALSE(parsed->joins.empty());
}

INSTANTIATE_TEST_SUITE_P(AllNine, SsbSqlParses,
                         ::testing::ValuesIn(ssb::AllQueryNames()));

}  // namespace
}  // namespace dpstarj::query
