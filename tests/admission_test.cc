// Tests for per-tenant fair admission: the AdmissionController's token
// buckets and in-flight caps (driven by a fake clock, so refill behavior is
// exact), the EnginePool's round-robin tenant queues (FIFO within a tenant,
// no tenant monopolizes dispatch order), and the QueryService integration —
// a rate-limited tenant is refused with RateLimited before any ε is spent,
// while an unlimited tenant on the same service is untouched.

#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "exec/query_result.h"
#include "service/admission.h"
#include "service/engine_pool.h"
#include "service/query_service.h"
#include "test_catalog.h"

namespace dpstarj::service {
namespace {

const char* kToySql =
    "SELECT count(*) FROM Orders, Cust, Prod "
    "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
    "AND Cust.region = 'N' AND Prod.cat = 'a'";

exec::QueryResult ScalarResult(double v) {
  exec::QueryResult r;
  r.grouped = false;
  r.scalar = v;
  return r;
}

/// Controller over a hand-cranked clock.
struct FakeClockController {
  double now = 0.0;
  AdmissionController controller;

  explicit FakeClockController(TenantLimits defaults)
      : controller([&] {
          AdmissionOptions options;
          options.defaults = defaults;
          options.clock = [this] { return now; };
          return options;
        }()) {}
};

// ------------------------------------------------------- token bucket ----

TEST(AdmissionControllerTest, BucketAllowsBurstThenRefills) {
  TenantLimits limits;
  limits.rate_qps = 2.0;
  limits.burst = 3.0;
  FakeClockController fx(limits);

  // A fresh tenant starts with a full bucket: the whole burst is admitted.
  for (int i = 0; i < 3; ++i) {
    auto d = fx.controller.TryAdmit("t");
    ASSERT_TRUE(d.status.ok()) << i << ": " << d.status.ToString();
    fx.controller.Release("t");
  }
  auto denied = fx.controller.TryAdmit("t");
  ASSERT_FALSE(denied.status.ok());
  EXPECT_EQ(denied.status.code(), StatusCode::kRateLimited);
  ASSERT_TRUE(denied.denial.has_value());
  EXPECT_EQ(*denied.denial, AdmissionDenial::kRateLimited);
  // Empty bucket at 2 tokens/sec: a whole token is 0.5s away.
  EXPECT_DOUBLE_EQ(denied.retry_after_seconds, 0.5);
  EXPECT_DOUBLE_EQ(fx.controller.RetryAfterSeconds("t"), 0.5);

  // Refill is proportional to elapsed time and capped at the burst.
  fx.now = 0.25;  // +0.5 tokens: still short of one
  EXPECT_EQ(fx.controller.TryAdmit("t").status.code(), StatusCode::kRateLimited);
  fx.now = 0.5;  // exactly one token
  EXPECT_TRUE(fx.controller.TryAdmit("t").status.ok());
  fx.controller.Release("t");
  fx.now = 1000.0;  // long idle: the bucket caps at burst, not rate×elapsed
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(fx.controller.TryAdmit("t").status.ok()) << i;
    fx.controller.Release("t");
  }
  EXPECT_EQ(fx.controller.TryAdmit("t").status.code(), StatusCode::kRateLimited);

  TenantAdmissionStats stats = fx.controller.TenantStats("t");
  EXPECT_EQ(stats.admitted, 7u);
  EXPECT_EQ(stats.rate_limited, 3u);
  EXPECT_EQ(stats.capped, 0u);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(AdmissionControllerTest, ZeroRateDisablesBucket) {
  FakeClockController fx(TenantLimits{});  // all knobs off
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fx.controller.TryAdmit("t").status.ok());
  }
  EXPECT_DOUBLE_EQ(fx.controller.RetryAfterSeconds("t"), 0.0);
}

TEST(AdmissionControllerTest, UnsetBurstDefaultsToOneSecondOfTokens) {
  TenantLimits limits;
  limits.rate_qps = 4.0;  // burst unset → 4 tokens
  FakeClockController fx(limits);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.controller.TryAdmit("t").status.ok()) << i;
  }
  EXPECT_EQ(fx.controller.TryAdmit("t").status.code(), StatusCode::kRateLimited);
}

// A burst below one token is floored at 1: it would otherwise cap the bucket
// under the admission threshold and refuse every query forever (while the
// Retry-After hint kept promising a token that could never arrive).
TEST(AdmissionControllerTest, SubUnitBurstIsFlooredToOneToken) {
  TenantLimits limits;
  limits.rate_qps = 5.0;
  limits.burst = 0.5;
  FakeClockController fx(limits);
  ASSERT_TRUE(fx.controller.TryAdmit("t").status.ok());
  fx.controller.Release("t");
  EXPECT_EQ(fx.controller.TryAdmit("t").status.code(), StatusCode::kRateLimited);
  fx.now = 0.2;  // one token at 5/s
  EXPECT_TRUE(fx.controller.TryAdmit("t").status.ok());
}

// ReleaseAndForget evicts state the controller created for a tenant the
// ledger turned out not to know — arbitrary names must not pin memory.
TEST(AdmissionControllerTest, ReleaseAndForgetEvictsUnpinnedState) {
  TenantLimits defaults;
  defaults.rate_qps = 10.0;
  FakeClockController fx(defaults);
  ASSERT_TRUE(fx.controller.TryAdmit("ghost").status.ok());
  ASSERT_EQ(fx.controller.Snapshot().size(), 1u);
  fx.controller.ReleaseAndForget("ghost");
  EXPECT_TRUE(fx.controller.Snapshot().empty());

  // An operator override pins the state (and its counters) through forgets.
  TenantLimits vip;
  vip.max_in_flight = 8;
  fx.controller.SetTenantLimits("vip", vip);
  ASSERT_TRUE(fx.controller.TryAdmit("vip").status.ok());
  fx.controller.ReleaseAndForget("vip");
  ASSERT_EQ(fx.controller.Snapshot().size(), 1u);
  EXPECT_EQ(fx.controller.TenantStats("vip").admitted, 1u);
}

// ------------------------------------------------------- in-flight cap ----

TEST(AdmissionControllerTest, InFlightCapRefusesUntilRelease) {
  TenantLimits limits;
  limits.max_in_flight = 2;
  FakeClockController fx(limits);

  ASSERT_TRUE(fx.controller.TryAdmit("t").status.ok());
  ASSERT_TRUE(fx.controller.TryAdmit("t").status.ok());
  auto denied = fx.controller.TryAdmit("t");
  ASSERT_FALSE(denied.status.ok());
  EXPECT_EQ(denied.status.code(), StatusCode::kRateLimited);
  ASSERT_TRUE(denied.denial.has_value());
  EXPECT_EQ(*denied.denial, AdmissionDenial::kInFlightCap);
  EXPECT_EQ(fx.controller.TenantStats("t").in_flight, 2);

  // Another tenant has its own cap — the refusal is per-tenant by design.
  EXPECT_TRUE(fx.controller.TryAdmit("other").status.ok());

  fx.controller.Release("t");
  EXPECT_TRUE(fx.controller.TryAdmit("t").status.ok());
  // A refused admission consumed nothing: only the cap's worth is in flight.
  EXPECT_EQ(fx.controller.TenantStats("t").in_flight, 2);
  EXPECT_EQ(fx.controller.TenantStats("t").capped, 1u);
}

// A workload batch debits its full query count in one all-or-nothing
// decision — tokens, in-flight slots and the admitted counter all move by k,
// and a refused batch consumes nothing.
TEST(AdmissionControllerTest, BatchAdmissionDebitsQueryCount) {
  TenantLimits limits;
  limits.rate_qps = 2.0;
  limits.burst = 4.0;
  FakeClockController fx(limits);

  // 3 of the 4 burst tokens go in one decision.
  ASSERT_TRUE(fx.controller.TryAdmit("t", 3).status.ok());
  EXPECT_EQ(fx.controller.TenantStats("t").in_flight, 3);
  EXPECT_EQ(fx.controller.TenantStats("t").admitted, 3u);

  // A 2-query batch needs 2 whole tokens; only 1 remains. Retry-After spans
  // the full shortfall: (2 - 1) / 2 per sec = 0.5s.
  auto denied = fx.controller.TryAdmit("t", 2);
  ASSERT_FALSE(denied.status.ok());
  ASSERT_TRUE(denied.denial.has_value());
  EXPECT_EQ(*denied.denial, AdmissionDenial::kRateLimited);
  EXPECT_DOUBLE_EQ(denied.retry_after_seconds, 0.5);
  // The refusal consumed nothing: a single query still fits.
  ASSERT_TRUE(fx.controller.TryAdmit("t", 1).status.ok());

  // Release returns the batch's worth of slots in one call.
  fx.controller.Release("t", 3);
  fx.controller.Release("t");
  EXPECT_EQ(fx.controller.TenantStats("t").in_flight, 0);
  EXPECT_EQ(fx.controller.TenantStats("t").rate_limited, 1u);

  // The in-flight cap is checked against the whole batch too: with cap 4 and
  // 3 in flight, a 2-query batch is capped while a single query passes.
  TenantLimits capped;
  capped.max_in_flight = 4;
  FakeClockController fy(capped);
  ASSERT_TRUE(fy.controller.TryAdmit("t", 3).status.ok());
  auto over = fy.controller.TryAdmit("t", 2);
  ASSERT_FALSE(over.status.ok());
  ASSERT_TRUE(over.denial.has_value());
  EXPECT_EQ(*over.denial, AdmissionDenial::kInFlightCap);
  ASSERT_TRUE(fy.controller.TryAdmit("t", 1).status.ok());
  // A batch larger than the cap can never be admitted, even idle.
  fy.controller.Release("t", 4);
  EXPECT_FALSE(fy.controller.TryAdmit("t", 5).status.ok());
}

// SubmitWorkload debits the tenant's bucket by the batch's query count, not
// by one — a workload must not be a rate-limit bypass.
TEST(QueryServiceAdmissionTest, WorkloadBatchDebitsTokenBucketByQueryCount) {
  auto catalog = testing_fixture::MakeToyCatalog();
  ServiceOptions opts;
  opts.num_engines = 1;
  double now = 0.0;
  opts.admission.defaults.rate_qps = 1.0;
  opts.admission.defaults.burst = 4.0;
  opts.admission.clock = [&now] { return now; };
  QueryService svc(&catalog, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 100.0).ok());

  // A 3-query batch leaves 1 of the 4 burst tokens.
  auto batch = svc.SubmitWorkload(
      {{kToySql, 0.1}, {kToySql, 0.2}, {kToySql, 0.3}}, "t");
  ASSERT_TRUE(batch.get().ok());
  ASSERT_TRUE(svc.Answer(kToySql, 0.4, "t").ok());  // the last token
  auto limited = svc.SubmitWorkload({{kToySql, 0.1}, {kToySql, 0.1}}, "t");
  auto refused = limited.get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kRateLimited);
  // The refused batch's two queries count as tenant-limited rejections, and
  // its ε was never touched.
  EXPECT_EQ(svc.Stats().rejected_tenant_limited, 2u);
  EXPECT_EQ(svc.admission().TenantStats("t").in_flight, 0);
}

TEST(AdmissionControllerTest, PerTenantOverridesReplaceDefaults) {
  TenantLimits defaults;
  defaults.rate_qps = 1.0;
  defaults.burst = 1.0;
  FakeClockController fx(defaults);

  // Default tenant: one query, then limited.
  ASSERT_TRUE(fx.controller.TryAdmit("capped").status.ok());
  EXPECT_EQ(fx.controller.TryAdmit("capped").status.code(),
            StatusCode::kRateLimited);

  // Overridden tenant: unlimited rate (zero disables the knob).
  TenantLimits unlimited;
  fx.controller.SetTenantLimits("vip", unlimited);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.controller.TryAdmit("vip").status.ok());
  }
  EXPECT_DOUBLE_EQ(fx.controller.LimitsFor("vip").rate_qps, 0.0);
  EXPECT_DOUBLE_EQ(fx.controller.LimitsFor("capped").rate_qps, 1.0);

  // Re-limiting an existing tenant whose bucket was never primed (rate was
  // disabled) primes it at the new burst on first use.
  TenantLimits tightened;
  tightened.rate_qps = 1.0;
  tightened.burst = 2.0;
  fx.controller.SetTenantLimits("vip", tightened);
  ASSERT_TRUE(fx.controller.TryAdmit("vip").status.ok());
  ASSERT_TRUE(fx.controller.TryAdmit("vip").status.ok());
  EXPECT_EQ(fx.controller.TryAdmit("vip").status.code(),
            StatusCode::kRateLimited);
}

// A limits update never refills a drained bucket: POST /v1/tenants can apply
// limits to a live tenant, and a throttled tenant re-submitting its own
// limits must not buy itself a fresh burst.
TEST(AdmissionControllerTest, LimitsUpdateDoesNotRefillADrainedBucket) {
  TenantLimits defaults;
  defaults.rate_qps = 1.0;
  defaults.burst = 1.0;
  FakeClockController fx(defaults);

  ASSERT_TRUE(fx.controller.TryAdmit("t").status.ok());  // bucket drained
  EXPECT_EQ(fx.controller.TryAdmit("t").status.code(), StatusCode::kRateLimited);

  TenantLimits same = defaults;
  fx.controller.SetTenantLimits("t", same);  // the self-service "reset"
  EXPECT_EQ(fx.controller.TryAdmit("t").status.code(), StatusCode::kRateLimited);

  fx.now = 1.0;  // honest refill still works
  EXPECT_TRUE(fx.controller.TryAdmit("t").status.ok());
}

// --------------------------------------------------- fair engine pool ----

// Round-robin across tenants, FIFO within one: with the single worker parked,
// tenant A queues three jobs before B and C queue one each — yet B and C are
// served right after A's first job, not after A's whole backlog.
TEST(EnginePoolFairnessTest, RoundRobinAcrossTenantsFifoWithinTenant) {
  auto catalog = testing_fixture::MakeToyCatalog();
  EnginePool pool(&catalog, /*num_engines=*/1, /*queue_capacity=*/16);

  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> latch(release.get_future());
  auto blocker = pool.Dispatch(
      [&started, latch](core::DpStarJoin&) -> Result<exec::QueryResult> {
        started.set_value();
        latch.wait();
        return ScalarResult(0);
      },
      "blocker");
  ASSERT_TRUE(blocker.ok());
  started.get_future().wait();  // worker parked; queue empty

  std::mutex order_mu;
  std::vector<std::string> order;
  auto tagged = [&](const std::string& tag) {
    return [&order_mu, &order, tag](core::DpStarJoin&) -> Result<exec::QueryResult> {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
      return ScalarResult(0);
    };
  };

  std::vector<std::future<Result<exec::QueryResult>>> futures;
  auto enqueue = [&](const std::string& tag, const std::string& tenant) {
    auto f = pool.TryDispatch(tagged(tag), tenant);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(*f));
  };
  enqueue("A1", "A");
  enqueue("A2", "A");
  enqueue("A3", "A");
  enqueue("B1", "B");
  enqueue("C1", "C");
  EXPECT_EQ(pool.queue_depth(), 5u);
  EXPECT_EQ(pool.queue_depth("A"), 3u);
  EXPECT_EQ(pool.queue_depth("B"), 1u);

  release.set_value();
  ASSERT_TRUE(blocker->get().ok());
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  // A keeps its FIFO order; B and C each jump A's backlog once.
  EXPECT_EQ(order, (std::vector<std::string>{"A1", "B1", "C1", "A2", "A3"}));
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.queue_depth("A"), 0u);
}

// ------------------------------------------------ service integration ----

TEST(QueryServiceAdmissionTest, RateLimitedTenantRefusedWithoutSpendingEpsilon) {
  auto catalog = testing_fixture::MakeToyCatalog();
  ServiceOptions opts;
  opts.num_engines = 1;
  opts.cache_capacity = 0;
  double now = 0.0;
  opts.admission.defaults.rate_qps = 1.0;
  opts.admission.defaults.burst = 2.0;
  opts.admission.clock = [&now] { return now; };
  QueryService svc(&catalog, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 100.0).ok());

  // The burst passes; the third submission is tenant-limited — with no ε
  // spent and nothing dispatched for it.
  ASSERT_TRUE(svc.Answer(kToySql, 0.5, "t").ok());
  ASSERT_TRUE(svc.Answer(kToySql, 0.5, "t").ok());
  auto limited = svc.Answer(kToySql, 0.5, "t");
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kRateLimited);
  EXPECT_NEAR(*svc.ledger().Spent("t"), 1.0, 1e-12);

  // An unlimited tenant on the same service is untouched by t's limit.
  svc.SetTenantLimits("free", TenantLimits{});
  ASSERT_TRUE(svc.RegisterTenant("free", 100.0).ok());
  ASSERT_TRUE(svc.Answer(kToySql, 0.5, "free").ok());

  // The bucket refills with time; the in-flight slots of the completed
  // queries were released (in_flight is back to zero).
  now = 1.0;
  ASSERT_TRUE(svc.Answer(kToySql, 0.5, "t").ok());
  EXPECT_EQ(svc.admission().TenantStats("t").in_flight, 0);

  ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.rejected_tenant_limited, 1u);
  EXPECT_EQ(stats.tenant_rate_limited, 1u);
  EXPECT_EQ(stats.tenant_capped, 0u);
  // The refusal never reached the ledger: 3 spends, 0 refusals there.
  auto account = svc.ledger().Account("t");
  ASSERT_TRUE(account.ok());
  EXPECT_EQ(account->spends, 3u);
  EXPECT_EQ(account->refusals, 0u);

  // A tenant the ledger refuses as unknown leaves no admission state behind
  // — invented names on the public endpoint cannot grow the map.
  now = 2.0;
  auto ghost = svc.Answer(kToySql, 0.5, "ghost-404");
  ASSERT_FALSE(ghost.ok());
  EXPECT_EQ(ghost.status().code(), StatusCode::kNotFound);
  for (const auto& s : svc.admission().Snapshot()) {
    EXPECT_NE(s.tenant, "ghost-404");
  }
}

}  // namespace
}  // namespace dpstarj::service
