// Unit tests for the columnar storage engine.

#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/domain.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dpstarj::storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  Value d(3.5);
  Value s("hello");
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
  EXPECT_EQ(s.AsString(), "hello");
  EXPECT_DOUBLE_EQ(i.ToNumeric(), 42.0);
  EXPECT_DOUBLE_EQ(s.ToNumeric(), 0.0);
  EXPECT_EQ(i.ToString(), "42");
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(DictionaryTest, InternAndLookup) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrInsert("a"), 0);
  EXPECT_EQ(dict.GetOrInsert("b"), 1);
  EXPECT_EQ(dict.GetOrInsert("a"), 0);
  EXPECT_EQ(dict.size(), 2);
  EXPECT_EQ(dict.Find("b"), 1);
  EXPECT_EQ(dict.Find("zzz"), -1);
  EXPECT_EQ(dict.At(1), "b");
}

TEST(ColumnTest, Int64Appends) {
  Column c(ValueType::kInt64);
  c.AppendInt64(5);
  ASSERT_TRUE(c.Append(Value(int64_t{6})).ok());
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.GetInt64(0), 5);
  EXPECT_EQ(c.GetInt64(1), 6);
  EXPECT_DOUBLE_EQ(c.GetNumeric(1), 6.0);
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column c(ValueType::kString);
  int32_t code_a = c.AppendString("ASIA");
  int32_t code_b = c.AppendString("EUROPE");
  int32_t code_a2 = c.AppendString("ASIA");
  EXPECT_EQ(code_a, code_a2);
  EXPECT_NE(code_a, code_b);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.GetString(2), "ASIA");
  EXPECT_EQ(c.GetStringCode(0), c.GetStringCode(2));
}

TEST(ColumnTest, SharedDictionary) {
  auto dict = std::make_shared<Dictionary>();
  Column a(ValueType::kString, dict);
  Column b(ValueType::kString, dict);
  a.AppendString("x");
  b.AppendString("x");
  EXPECT_EQ(a.GetStringCode(0), b.GetStringCode(0));
}

TEST(ColumnTest, TypeMismatchIsError) {
  Column c(ValueType::kInt64);
  EXPECT_FALSE(c.Append(Value("oops")).ok());
  Column s(ValueType::kString);
  EXPECT_FALSE(s.Append(Value(int64_t{1})).ok());
}

TEST(ColumnTest, NumericCoercionIntDouble) {
  Column c(ValueType::kDouble);
  ASSERT_TRUE(c.Append(Value(int64_t{3})).ok());
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 3.0);
}

TEST(SchemaTest, FieldLookup) {
  Schema s({Field("a", ValueType::kInt64), Field("b", ValueType::kString)});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(*s.FieldIndex("b"), 1);
  EXPECT_FALSE(s.FieldIndex("zzz").ok());
  EXPECT_TRUE(s.HasField("a"));
  EXPECT_FALSE(s.AddField(Field("a", ValueType::kDouble)).ok());
  EXPECT_EQ(s.ToString(), "a:int64, b:string");
}

TEST(DomainTest, IntRange) {
  AttributeDomain d = AttributeDomain::IntRange(1992, 1998);
  EXPECT_FALSE(d.is_categorical());
  EXPECT_EQ(d.size(), 7);
  EXPECT_EQ(*d.IndexOf(Value(int64_t{1992})), 0);
  EXPECT_EQ(*d.IndexOf(Value(int64_t{1998})), 6);
  EXPECT_FALSE(d.IndexOf(Value(int64_t{1999})).ok());
  EXPECT_FALSE(d.IndexOf(Value("1993")).ok());
  EXPECT_EQ(d.ValueAt(3).AsInt64(), 1995);
}

TEST(DomainTest, Categorical) {
  AttributeDomain d = AttributeDomain::Categorical({"A", "B", "C"});
  EXPECT_TRUE(d.is_categorical());
  EXPECT_EQ(d.size(), 3);
  EXPECT_EQ(*d.IndexOf(Value("B")), 1);
  EXPECT_FALSE(d.IndexOf(Value("Z")).ok());
  EXPECT_FALSE(d.IndexOf(Value(int64_t{1})).ok());
  EXPECT_EQ(d.ValueAt(2).AsString(), "C");
}

TEST(TableTest, CreateAndAppend) {
  Schema schema({Field("k", ValueType::kInt64), Field("name", ValueType::kString)});
  auto t = Table::Create("T", schema, "k");
  ASSERT_TRUE(t.ok());
  auto table = *t;
  EXPECT_EQ(table->primary_key(), "k");
  EXPECT_EQ(table->primary_key_index(), 0);
  ASSERT_TRUE(table->AppendRow({Value(int64_t{1}), Value("one")}).ok());
  ASSERT_TRUE(table->AppendRow({Value(int64_t{2}), Value("two")}).ok());
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->column(1).GetString(1), "two");
  auto row = table->GetRow(0);
  EXPECT_EQ(row[0].AsInt64(), 1);
  EXPECT_EQ(row[1].AsString(), "one");
}

TEST(TableTest, AppendValidationLeavesTableUnchanged) {
  Schema schema({Field("k", ValueType::kInt64), Field("v", ValueType::kDouble)});
  auto table = *Table::Create("T", schema);
  // Second cell has the wrong type; nothing must be appended.
  EXPECT_FALSE(table->AppendRow({Value(int64_t{1}), Value("bad")}).ok());
  EXPECT_EQ(table->num_rows(), 0);
  EXPECT_EQ(table->column(0).size(), 0);
  EXPECT_FALSE(table->AppendRow({Value(int64_t{1})}).ok());  // arity
}

TEST(TableTest, BadPrimaryKeyRejected) {
  Schema schema({Field("k", ValueType::kInt64)});
  EXPECT_FALSE(Table::Create("T", schema, "nope").ok());
  EXPECT_FALSE(Table::Create("", schema).ok());
}

TEST(TableTest, ColumnByName) {
  Schema schema({Field("a", ValueType::kInt64), Field("b", ValueType::kInt64)});
  auto table = *Table::Create("T", schema);
  ASSERT_TRUE(table->AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  auto col = table->ColumnByName("b");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->GetInt64(0), 2);
  EXPECT_FALSE(table->ColumnByName("zzz").ok());
}

TEST(TableTest, BulkAppendChecksLengths) {
  Schema schema({Field("a", ValueType::kInt64), Field("b", ValueType::kInt64)});
  auto table = *Table::Create("T", schema);
  table->mutable_column(0)->AppendInt64(1);
  // Column b left short: FinishBulkAppend must fail.
  EXPECT_FALSE(table->FinishBulkAppend(1).ok());
  table->mutable_column(1)->AppendInt64(2);
  EXPECT_TRUE(table->FinishBulkAppend(1).ok());
  EXPECT_EQ(table->num_rows(), 1);
}

}  // namespace
}  // namespace dpstarj::storage
