// Tests for the mini TPC-H snowflake substrate and the Figure 10 queries.

#include <gtest/gtest.h>

#include "core/snowflake.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "tpch/tpch_mini.h"

namespace dpstarj::tpch {
namespace {

TEST(TpchTest, GeneratorIntegrity) {
  TpchOptions opt;
  opt.scale_factor = 0.002;
  auto catalog = GenerateTpchMini(opt);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_TRUE(catalog->ValidateIntegrity().ok());
  EXPECT_EQ((*catalog->GetTable(kRegion))->num_rows(), 5);
  EXPECT_EQ((*catalog->GetTable(kNation))->num_rows(), 25);
  EXPECT_EQ((*catalog->GetTable(kCustomer))->num_rows(), 300);
  EXPECT_EQ((*catalog->GetTable(kOrders))->num_rows(), 3000);
  EXPECT_EQ((*catalog->GetTable(kLineitem))->num_rows(), 12000);
}

TEST(TpchTest, RejectsBadScale) {
  TpchOptions opt;
  opt.scale_factor = -1;
  EXPECT_FALSE(GenerateTpchMini(opt).ok());
}

TEST(TpchTest, SnowflakeChainHasFourLevels) {
  TpchOptions opt;
  opt.scale_factor = 0.001;
  auto catalog = GenerateTpchMini(opt);
  ASSERT_TRUE(catalog.ok());
  // Lineitem→Orders→Customer→Nation→Region registered.
  EXPECT_TRUE(catalog->ForeignKeyBetween(kLineitem, kOrders).ok());
  EXPECT_TRUE(catalog->ForeignKeyBetween(kOrders, kCustomer).ok());
  EXPECT_TRUE(catalog->ForeignKeyBetween(kCustomer, kNation).ok());
  EXPECT_TRUE(catalog->ForeignKeyBetween(kNation, kRegion).ok());
}

class TpchFlattenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchOptions opt;
    opt.scale_factor = 0.002;
    auto catalog = GenerateTpchMini(opt);
    DPSTARJ_CHECK(catalog.ok(), "tpch generation");
    catalog_ = new storage::Catalog(std::move(*catalog));
    auto flat = core::FlattenedSnowflake::Flatten(*catalog_, kLineitem);
    DPSTARJ_CHECK(flat.ok(), "flatten");
    flat_ = new core::FlattenedSnowflake(std::move(*flat));
  }
  static void TearDownTestSuite() {
    delete flat_;
    delete catalog_;
    flat_ = nullptr;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
  static core::FlattenedSnowflake* flat_;
};

storage::Catalog* TpchFlattenTest::catalog_ = nullptr;
core::FlattenedSnowflake* TpchFlattenTest::flat_ = nullptr;

TEST_F(TpchFlattenTest, FlattensChainIntoOneDimension) {
  // Orders absorbs Customer→Nation→Region.
  auto orders = flat_->catalog().GetTable(kOrders);
  ASSERT_TRUE(orders.ok());
  EXPECT_TRUE((*orders)->schema().HasField("Customer_Nation_Region_name"));
  auto mapped = flat_->MapColumn(kRegion, "name");
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->first, kOrders);
  EXPECT_EQ(mapped->second, "Customer_Nation_Region_name");
}

TEST_F(TpchFlattenTest, QtcMatchesManualEvaluationOnSnowflake) {
  // Rewrite and execute Qtc on the flattened star.
  auto rewritten = flat_->Rewrite(QueryQtc());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  query::Binder binder(&flat_->catalog());
  auto bound = binder.Bind(*rewritten);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  exec::StarJoinExecutor executor;
  auto fast = executor.Execute(*bound);
  ASSERT_TRUE(fast.ok());

  // Manual evaluation over the original snowflake chain.
  auto lineitem = *catalog_->GetTable(kLineitem);
  auto orders = *catalog_->GetTable(kOrders);
  auto customer = *catalog_->GetTable(kCustomer);
  auto nation = *catalog_->GetTable(kNation);
  auto region = *catalog_->GetTable(kRegion);
  // Build key→row maps.
  auto key_map = [](const storage::Table& t, int col) {
    std::unordered_map<int64_t, int64_t> m;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      m.emplace(t.column(col).GetInt64(r), r);
    }
    return m;
  };
  auto orders_by_key = key_map(*orders, 0);
  auto cust_by_key = key_map(*customer, 0);
  auto nation_by_key = key_map(*nation, 0);
  auto region_by_key = key_map(*region, 0);
  double manual = 0;
  for (int64_t r = 0; r < lineitem->num_rows(); ++r) {
    int64_t orow = orders_by_key.at(lineitem->column(1).GetInt64(r));
    int64_t year = orders->column(2).GetInt64(orow);
    if (year < 1993 || year > 1995) continue;
    int64_t crow = cust_by_key.at(orders->column(1).GetInt64(orow));
    int64_t nrow = nation_by_key.at(customer->column(1).GetInt64(crow));
    int64_t rrow = region_by_key.at(nation->column(2).GetInt64(nrow));
    if (region->column(1).GetString(rrow) == "ASIA") manual += 1;
  }
  EXPECT_DOUBLE_EQ(fast->scalar, manual);
  EXPECT_GT(manual, 0.0);
}

TEST_F(TpchFlattenTest, QtsIsSumTwin) {
  auto qts = QueryQts();
  EXPECT_EQ(qts.aggregate, query::AggregateKind::kSum);
  ASSERT_EQ(qts.measure_terms.size(), 1u);
  auto rewritten = flat_->Rewrite(qts);
  ASSERT_TRUE(rewritten.ok());
  query::Binder binder(&flat_->catalog());
  auto bound = binder.Bind(*rewritten);
  ASSERT_TRUE(bound.ok());
  exec::StarJoinExecutor executor;
  auto r = executor.Execute(*bound);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->scalar, 0.0);
}

}  // namespace
}  // namespace dpstarj::tpch
