// Unit tests for the common substrate: Status/Result, math and string utils.

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace dpstarj {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kBudgetExhausted), "BudgetExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTimeLimit), "TimeLimit");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  DPSTARJ_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(-1).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 5);
}

TEST(MathTest, BinomialSmallValues) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 4), 1.0);
}

TEST(MathTest, BinomialDegenerate) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(-1, 1), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, -1), 0.0);
}

TEST(MathTest, BinomialSaturates) {
  EXPECT_EQ(BinomialCoefficient(100000, 50000), kBinomialCap);
}

TEST(MathTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1.0), 0);
  EXPECT_EQ(CeilLog2(2.0), 1);
  EXPECT_EQ(CeilLog2(3.0), 2);
  EXPECT_EQ(CeilLog2(1024.0), 10);
  EXPECT_EQ(CeilLog2(1025.0), 11);
  EXPECT_EQ(CeilLog2(0.5), 0);
}

TEST(MathTest, MeanStdDevMedian) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(StdDev(xs), 1.1180, 1e-3);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 9.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(MathTest, RelativeErrorPercent) {
  EXPECT_DOUBLE_EQ(RelativeErrorPercent(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPercent(90, 100), 10.0);
  // Guarded denominator for empty results.
  EXPECT_DOUBLE_EQ(RelativeErrorPercent(3, 0), 300.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPercent(0.5, 0.25), 25.0);
}

TEST(MathTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 3.0), 0.0);
  EXPECT_EQ(ClampInt(10, 0, 4), 4);
  EXPECT_EQ(ClampInt(-2, 0, 4), 0);
  EXPECT_EQ(ClampInt(2, 0, 4), 2);
}

TEST(StringTest, SplitTrimJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
}

TEST(StringTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(StartsWith("Lineorder", "Line"));
  EXPECT_FALSE(StartsWith("Line", "Lineorder"));
}

TEST(StringTest, Format) {
  EXPECT_EQ(Format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Format("%.2f", 3.14159), "3.14");
}

TEST(StringTest, ParseNumbers) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64("123", &i));
  EXPECT_EQ(i, 123);
  EXPECT_TRUE(ParseInt64(" -5 ", &i));
  EXPECT_EQ(i, -5);
  EXPECT_FALSE(ParseInt64("12x", &i));
  EXPECT_FALSE(ParseInt64("", &i));
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("3.5z", &d));
}

TEST(TimerTest, DeadlineSemantics) {
  Deadline unlimited(0.0);
  EXPECT_FALSE(unlimited.Expired());
  Deadline tiny(1e-9);
  // Busy-wait a moment.
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GT(x, 0);
  EXPECT_TRUE(tiny.Expired());
}

TEST(TimerTest, ElapsedIsMonotonic) {
  Timer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace dpstarj
