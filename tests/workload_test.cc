// Tests for workload one-hot encoding, matrix↔query round trips, the paper's
// W1/W2 literals, and the Workload Decomposition mechanism (Algorithm 4).

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/dp_star_join.h"
#include "core/workload_mechanism.h"
#include "exec/data_cube.h"
#include "query/binder.h"
#include "query/workload.h"
#include "ssb/workloads.h"
#include "test_catalog.h"

namespace dpstarj::core {
namespace {

using query::Binder;
using query::DimensionAttribute;
using query::StarJoinQuery;
using query::Workload;
using testing_fixture::CatDomain;
using testing_fixture::MakeToyCatalog;
using testing_fixture::RegionDomain;

std::vector<DimensionAttribute> ToyAttributes() {
  return {{"Cust", "region", RegionDomain()}, {"Prod", "cat", CatDomain()}};
}

Workload ToyWorkload() {
  Workload w;
  w.name = "toy";
  for (int r = 0; r < 3; ++r) {
    StarJoinQuery q;
    q.fact_table = "Orders";
    q.joined_tables = {"Cust", "Prod"};
    q.predicates.push_back(query::Predicate::PointIndex("Cust", "region", r));
    if (r == 0) {
      q.predicates.push_back(query::Predicate::RangeIndex("Prod", "cat", 0, 1));
    }
    w.queries.push_back(std::move(q));
  }
  return w;
}

TEST(WorkloadEncodingTest, OneHotMatrices) {
  auto matrices = query::BuildPredicateMatrices(ToyWorkload(), ToyAttributes());
  ASSERT_TRUE(matrices.ok()) << matrices.status().ToString();
  ASSERT_EQ(matrices->size(), 2u);
  const auto& region = (*matrices)[0];
  EXPECT_EQ(region.rows(), 3);
  EXPECT_EQ(region.cols(), 3);
  EXPECT_DOUBLE_EQ(region.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(region.At(0, 1), 0.0);
  const auto& cat = (*matrices)[1];
  // Query 0 selects cats {0,1}; queries 1,2 have no cat predicate → all ones.
  EXPECT_DOUBLE_EQ(cat.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cat.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(cat.At(1, 3), 1.0);
}

TEST(WorkloadEncodingTest, UnknownAttributeRejected) {
  Workload w = ToyWorkload();
  w.queries[0].predicates.push_back(
      query::Predicate::PointIndex("Cust", "tier", 0));
  EXPECT_FALSE(query::BuildPredicateMatrices(w, ToyAttributes()).ok());
}

TEST(WorkloadEncodingTest, MatrixRoundTrip) {
  auto matrices = query::BuildPredicateMatrices(ToyWorkload(), ToyAttributes());
  ASSERT_TRUE(matrices.ok());
  auto back =
      query::WorkloadFromMatrices("rt", "Orders", ToyAttributes(), *matrices);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto again = query::BuildPredicateMatrices(*back, ToyAttributes());
  ASSERT_TRUE(again.ok());
  for (size_t a = 0; a < matrices->size(); ++a) {
    EXPECT_EQ((*matrices)[a], (*again)[a]) << "attribute " << a;
  }
}

TEST(WorkloadEncodingTest, NonIntervalRowRejected) {
  linalg::Matrix bad(1, 3);
  bad.At(0, 0) = 1.0;
  bad.At(0, 2) = 1.0;  // hole at 1
  auto r = query::WorkloadFromMatrices(
      "bad", "Orders", {{"Cust", "region", RegionDomain()}}, {bad});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST(PaperWorkloadsTest, LiteralShapes) {
  EXPECT_EQ(ssb::W1Matrix().rows(), 11);
  EXPECT_EQ(ssb::W1Matrix().cols(), 17);
  EXPECT_EQ(ssb::W2Matrix().rows(), 7);
  EXPECT_EQ(ssb::W2Matrix().cols(), 17);
}

TEST(PaperWorkloadsTest, W2DateBlockIsCumulative) {
  auto blocks = ssb::SplitWorkloadMatrix(ssb::W2Matrix());
  ASSERT_TRUE(blocks.ok());
  const auto& date = (*blocks)[0];
  for (int q = 0; q < date.rows(); ++q) {
    // Prefix structure: row q selects years [0, q].
    for (int c = 0; c < date.cols(); ++c) {
      EXPECT_DOUBLE_EQ(date.At(q, c), c <= q ? 1.0 : 0.0);
    }
  }
}

TEST(PaperWorkloadsTest, ConvertToQueries) {
  auto w1 = ssb::WorkloadW1();
  ASSERT_TRUE(w1.ok()) << w1.status().ToString();
  EXPECT_EQ(w1->size(), 11);
  auto w2 = ssb::WorkloadW2();
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(w2->size(), 7);
  // All queries share the fact table and are COUNTs.
  for (const auto& q : w1->queries) {
    EXPECT_EQ(q.fact_table, "Lineorder");
    EXPECT_EQ(q.aggregate, query::AggregateKind::kCount);
  }
}

class WdTest : public ::testing::Test {
 protected:
  WdTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {
    StarJoinQuery base;
    base.fact_table = "Orders";
    base.joined_tables = {"Cust", "Prod"};
    auto bound = binder_.Bind(base);
    DPSTARJ_CHECK(bound.ok(), "fixture bind");
    auto cube = exec::DataCube::Build(*bound, ToyAttributes());
    DPSTARJ_CHECK(cube.ok(), "fixture cube");
    cube_ = std::make_unique<exec::DataCube>(std::move(*cube));
  }
  storage::Catalog catalog_;
  Binder binder_;
  std::unique_ptr<exec::DataCube> cube_;
};

TEST_F(WdTest, TrueAnswers) {
  auto truth = TrueWorkloadAnswers(*cube_, ToyWorkload(), ToyAttributes());
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(truth->size(), 3u);
  // Query 0: region N (=idx 0) × cat {a,b}: rows (1,1),(1,2),(2,1) → 3.
  EXPECT_DOUBLE_EQ((*truth)[0], 3.0);
  // Query 1: region S, any cat → 4 rows.
  EXPECT_DOUBLE_EQ((*truth)[1], 4.0);
  EXPECT_DOUBLE_EQ((*truth)[2], 4.0);
}

TEST_F(WdTest, HugeBudgetRecoversTruth) {
  Rng rng(3);
  auto answers = AnswerWorkloadWithDecomposition(*cube_, ToyWorkload(),
                                                 ToyAttributes(), 1e9, &rng);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  auto truth = TrueWorkloadAnswers(*cube_, ToyWorkload(), ToyAttributes());
  ASSERT_TRUE(truth.ok());
  for (size_t i = 0; i < truth->size(); ++i) {
    EXPECT_NEAR((*answers)[i], (*truth)[i], 1e-6) << "query " << i;
  }
}

TEST_F(WdTest, PerQueryPathRecoversTruthUnderHugeBudget) {
  Rng rng(4);
  auto answers =
      AnswerWorkloadPerQuery(*cube_, ToyWorkload(), ToyAttributes(), 1e9, &rng);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_DOUBLE_EQ((*answers)[0], 3.0);
  EXPECT_DOUBLE_EQ((*answers)[1], 4.0);
}

TEST_F(WdTest, StrategyDiagnostics) {
  Rng rng(5);
  WorkloadDecompositionInfo info;
  WorkloadMechanismOptions opts;
  auto answers = AnswerWorkloadWithDecomposition(*cube_, ToyWorkload(),
                                                 ToyAttributes(), 1.0, &rng, opts,
                                                 &info);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(info.strategies.size(), 2u);
  // The cat block has a width-2 interval → hierarchical; region is points…
  // but absent predicates (full-domain rows) count as ranges, so both may be
  // hierarchical. Just check the labels are well-formed.
  for (const auto& s : info.strategies) {
    EXPECT_TRUE(s.find("identity") == 0 || s.find("hierarchical") == 0) << s;
  }
}

TEST_F(WdTest, ForcedStrategies) {
  Rng rng(6);
  WorkloadMechanismOptions identity;
  identity.strategy = WorkloadStrategyKind::kIdentity;
  WorkloadDecompositionInfo info;
  ASSERT_TRUE(AnswerWorkloadWithDecomposition(*cube_, ToyWorkload(),
                                              ToyAttributes(), 1e9, &rng, identity,
                                              &info)
                  .ok());
  EXPECT_EQ(info.strategies[0], "identity(3)");
  WorkloadMechanismOptions hier;
  hier.strategy = WorkloadStrategyKind::kHierarchical;
  ASSERT_TRUE(AnswerWorkloadWithDecomposition(*cube_, ToyWorkload(),
                                              ToyAttributes(), 1e9, &rng, hier,
                                              &info)
                  .ok());
  EXPECT_EQ(info.strategies[0], "hierarchical(3)");
}

TEST_F(WdTest, Validation) {
  Rng rng(7);
  EXPECT_FALSE(AnswerWorkloadWithDecomposition(*cube_, ToyWorkload(),
                                               ToyAttributes(), 0.0, &rng)
                   .ok());
  EXPECT_FALSE(AnswerWorkloadWithDecomposition(*cube_, ToyWorkload(),
                                               ToyAttributes(), 1.0, nullptr)
                   .ok());
  // Axis mismatch.
  EXPECT_FALSE(
      AnswerWorkloadWithDecomposition(*cube_, ToyWorkload(),
                                      {{"Cust", "region", RegionDomain()}}, 1.0,
                                      &rng)
          .ok());
}

TEST_F(WdTest, FacadeWorkloadPath) {
  DpStarJoinOptions opts;
  opts.seed = 11;
  DpStarJoin engine(&catalog_, opts);
  auto truth = engine.TrueWorkload(ToyWorkload(), ToyAttributes());
  ASSERT_TRUE(truth.ok());
  auto wd = engine.AnswerWorkload(ToyWorkload(), ToyAttributes(), 1e9, true);
  ASSERT_TRUE(wd.ok()) << wd.status().ToString();
  for (size_t i = 0; i < truth->size(); ++i) {
    EXPECT_NEAR((*wd)[i], (*truth)[i], 1e-6);
  }
  auto pm = engine.AnswerWorkload(ToyWorkload(), ToyAttributes(), 1e9, false);
  ASSERT_TRUE(pm.ok());
}

}  // namespace
}  // namespace dpstarj::core
