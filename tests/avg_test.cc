// Tests for the AVG aggregate (§3.1's query template lists COUNT/AVG/SUM).
// Under PM, AVG is post-processing of one noisy-predicate draw: the same
// noisy query yields both SUM and COUNT.

#include <gtest/gtest.h>

#include "core/dp_star_join.h"
#include "exec/contribution_index.h"
#include "exec/data_cube.h"
#include "exec/naive_executor.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "query/parser.h"
#include "test_catalog.h"

namespace dpstarj {
namespace {

using query::AggregateKind;
using query::Binder;
using query::StarJoinQuery;
using testing_fixture::MakeToyCatalog;

class AvgTest : public ::testing::Test {
 protected:
  AvgTest() : catalog_(MakeToyCatalog()), binder_(&catalog_) {}

  StarJoinQuery AvgQtyByRegion(const char* region) {
    StarJoinQuery q;
    q.fact_table = "Orders";
    q.joined_tables = {"Cust"};
    q.aggregate = AggregateKind::kAvg;
    q.measure_terms = {{"qty", 1.0}};
    q.predicates.push_back(
        query::Predicate::Point("Cust", "region", storage::Value(region)));
    return q;
  }

  storage::Catalog catalog_;
  Binder binder_;
  exec::StarJoinExecutor executor_;
};

TEST_F(AvgTest, ScalarAvg) {
  auto bound = binder_.Bind(AvgQtyByRegion("E"));
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  // Region E rows: qty 4,3,2,1 → avg 2.5.
  EXPECT_DOUBLE_EQ(r->scalar, 2.5);
}

TEST_F(AvgTest, EmptySelectionYieldsZero) {
  StarJoinQuery q = AvgQtyByRegion("N");
  // Restrict to an impossible conjunction via a second attribute.
  q.predicates.push_back(
      query::Predicate::Point("Cust", "tier", storage::Value(int64_t{4})));
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 0.0);  // no N-region tier-4 customers
}

TEST_F(AvgTest, GroupedAvg) {
  StarJoinQuery q;
  q.fact_table = "Orders";
  q.joined_tables = {"Cust"};
  q.aggregate = AggregateKind::kAvg;
  q.measure_terms = {{"qty", 1.0}};
  q.group_by = {{"Cust", "region"}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  // N: (2+1+3+1)/4 = 1.75; S: (2+5+1+2)/4 = 2.5; E: (4+3+2+1)/4 = 2.5.
  EXPECT_DOUBLE_EQ(r->groups.at("N"), 1.75);
  EXPECT_DOUBLE_EQ(r->groups.at("S"), 2.5);
  EXPECT_DOUBLE_EQ(r->groups.at("E"), 2.5);
}

TEST_F(AvgTest, NaiveExecutorAgrees) {
  auto bound = binder_.Bind(AvgQtyByRegion("S"));
  ASSERT_TRUE(bound.ok());
  auto fast = executor_.Execute(*bound);
  auto slow = exec::ExecuteNaive(*bound);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_DOUBLE_EQ(fast->scalar, slow->scalar);
}

TEST_F(AvgTest, ParserAcceptsAvg) {
  auto parsed = query::ParseStarJoinSql(
      "SELECT avg(Orders.qty) FROM Cust, Orders WHERE Orders.ck = Cust.ck"
      " AND Cust.region = 'E'");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->aggregate, AggregateKind::kAvg);
  auto q = binder_.Resolve(*parsed);
  ASSERT_TRUE(q.ok());
  auto bound = binder_.Bind(*q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 2.5);
}

TEST_F(AvgTest, BinderRequiresMeasure) {
  StarJoinQuery q = AvgQtyByRegion("E");
  q.measure_terms.clear();
  EXPECT_FALSE(binder_.Bind(q).ok());
}

TEST_F(AvgTest, CubeAndContributionsRefuseAvg) {
  auto bound = binder_.Bind(AvgQtyByRegion("E"));
  ASSERT_TRUE(bound.ok());
  auto cube = exec::DataCube::BuildFromQueryPredicates(*bound);
  ASSERT_FALSE(cube.ok());
  EXPECT_EQ(cube.status().code(), StatusCode::kNotSupported);
  auto idx = exec::BuildContributionIndex(*bound, {"Cust"});
  ASSERT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kNotSupported);
}

TEST_F(AvgTest, DpAnswerViaPredicateMechanism) {
  core::DpStarJoinOptions opts;
  opts.seed = 5;
  core::DpStarJoin engine(&catalog_, opts);
  StarJoinQuery q = AvgQtyByRegion("E");
  auto truth = engine.TrueAnswer(q);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(truth->scalar, 2.5);
  // Huge budget → the noisy predicate equals the true one → exact AVG.
  auto exact = engine.Answer(q, 1e9);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_DOUBLE_EQ(exact->scalar, 2.5);
  // Small budget → still a well-formed average of *some* region.
  auto noisy = engine.Answer(q, 0.1);
  ASSERT_TRUE(noisy.ok());
  EXPECT_GE(noisy->scalar, 0.0);
  EXPECT_LE(noisy->scalar, 5.0);  // qty ∈ [1,5] bounds any region average
}

TEST_F(AvgTest, AvgWithLinearExpression) {
  StarJoinQuery q = AvgQtyByRegion("E");
  // price = 10·qty, so avg(price - 10·qty + qty) = avg(qty).
  q.measure_terms = {{"price", 1.0}, {"qty", -9.0}};
  auto bound = binder_.Bind(q);
  ASSERT_TRUE(bound.ok());
  auto r = executor_.Execute(*bound);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 2.5);
}

}  // namespace
}  // namespace dpstarj
