// Tests for the dense matrix library and WD strategy builders, including
// parameterized pseudoinverse property sweeps (A·A⁺·A = A).

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/strategy.h"

namespace dpstarj::linalg {
namespace {

Matrix FromRowsOrDie(const std::vector<std::vector<double>>& rows) {
  auto m = Matrix::FromRows(rows);
  EXPECT_TRUE(m.ok());
  return *m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  EXPECT_FALSE(Matrix::FromRows({{1, 2}, {3}}).ok());
}

TEST(MatrixTest, RowsAndSetRow) {
  Matrix m = FromRowsOrDie({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  ASSERT_TRUE(m.SetRow(0, {9, 8}).ok());
  EXPECT_DOUBLE_EQ(m.At(0, 1), 8.0);
  EXPECT_FALSE(m.SetRow(5, {1, 2}).ok());
  EXPECT_FALSE(m.SetRow(0, {1}).ok());
}

TEST(MatrixTest, TransposeMultiply) {
  Matrix a = FromRowsOrDie({{1, 2, 3}, {4, 5, 6}});
  Matrix at = a.Transposed();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_DOUBLE_EQ(at.At(2, 1), 6.0);
  auto prod = a.Multiply(at);  // 2x2
  ASSERT_TRUE(prod.ok());
  EXPECT_DOUBLE_EQ(prod->At(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(prod->At(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(prod->At(1, 1), 77.0);
  EXPECT_FALSE(a.Multiply(a).ok());  // shape mismatch
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = FromRowsOrDie({{1, 2}, {3, 4}});
  auto v = a.MultiplyVector({1, 1});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<double>{3, 7}));
  EXPECT_FALSE(a.MultiplyVector({1}).ok());
}

TEST(MatrixTest, AddScale) {
  Matrix a = FromRowsOrDie({{1, 2}});
  Matrix b = FromRowsOrDie({{3, 4}});
  auto s = a.Add(b);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->At(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(a.Scaled(2.0).At(0, 0), 2.0);
  EXPECT_FALSE(a.Add(Matrix(2, 2)).ok());
}

TEST(MatrixTest, InverseKnownMatrix) {
  Matrix a = FromRowsOrDie({{4, 7}, {2, 6}});
  auto inv = a.Inverse();
  ASSERT_TRUE(inv.ok());
  auto prod = a.Multiply(*inv);
  ASSERT_TRUE(prod.ok());
  EXPECT_NEAR(prod->At(0, 0), 1.0, 1e-9);
  EXPECT_NEAR(prod->At(0, 1), 0.0, 1e-9);
  EXPECT_NEAR(prod->At(1, 0), 0.0, 1e-9);
  EXPECT_NEAR(prod->At(1, 1), 1.0, 1e-9);
}

TEST(MatrixTest, InverseRejectsSingularAndNonSquare) {
  EXPECT_FALSE(FromRowsOrDie({{1, 2}, {2, 4}}).Inverse().ok());
  EXPECT_FALSE(Matrix(2, 3).Inverse().ok());
}

TEST(MatrixTest, Norms) {
  Matrix a = FromRowsOrDie({{-3, 1}, {2, 0}});
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 3.0);
  EXPECT_NEAR(a.FrobeniusNorm(), std::sqrt(14.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.MaxColumnAbsSum(), 5.0);
}

// --- pseudoinverse property: A·A⁺·A = A over random shapes -------------------

class PseudoInverseProperty : public ::testing::TestWithParam<int> {};

TEST_P(PseudoInverseProperty, ReconstructsA) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  int rows = static_cast<int>(rng.UniformInt(1, 8));
  int cols = static_cast<int>(rng.UniformInt(1, 8));
  Matrix a(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) a.At(r, c) = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  auto pinv = a.PseudoInverse();
  ASSERT_TRUE(pinv.ok());
  auto reconstructed = a.Multiply(*pinv)->Multiply(a);
  ASSERT_TRUE(reconstructed.ok());
  // With the tiny ridge fallback, allow a loose-but-meaningful tolerance.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      EXPECT_NEAR(reconstructed->At(r, c), a.At(r, c), 1e-4)
          << "seed=" << GetParam() << " at (" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, PseudoInverseProperty,
                         ::testing::Range(0, 25));

TEST(StrategyTest, IdentityStrategy) {
  IntervalStrategy s = MakeIdentityStrategy(4);
  EXPECT_EQ(s.intervals.size(), 4u);
  Matrix m = s.AsMatrix();
  EXPECT_EQ(m, Matrix::Identity(4));
}

TEST(StrategyTest, HierarchicalCoversAllLevels) {
  IntervalStrategy s = MakeHierarchicalStrategy(7);
  // Root must be the full domain; leaves must include every unit cell.
  EXPECT_EQ(s.intervals.front(), std::make_pair(0, 6));
  int unit_cells = 0;
  for (auto [lo, hi] : s.intervals) {
    EXPECT_LE(lo, hi);
    if (lo == hi) ++unit_cells;
  }
  EXPECT_EQ(unit_cells, 7);
  // Row space spans the domain: identity decomposes exactly.
  auto x = SolveDecomposition(Matrix::Identity(7), s.AsMatrix());
  ASSERT_TRUE(x.ok());
  auto recon = x->Multiply(s.AsMatrix());
  ASSERT_TRUE(recon.ok());
  for (int r = 0; r < 7; ++r) {
    for (int c = 0; c < 7; ++c) {
      EXPECT_NEAR(recon->At(r, c), r == c ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(StrategyTest, RangeStructureDetection) {
  Matrix points = FromRowsOrDie({{1, 0, 0}, {0, 0, 1}});
  EXPECT_FALSE(HasRangeStructure(points));
  Matrix ranges = FromRowsOrDie({{1, 1, 0}});
  EXPECT_TRUE(HasRangeStructure(ranges));
  EXPECT_EQ(ChooseStrategy(points, 3).description, "identity(3)");
  EXPECT_EQ(ChooseStrategy(ranges, 3).description, "hierarchical(3)");
}

class DecompositionProperty : public ::testing::TestWithParam<int> {};

// Any interval workload decomposes exactly over the hierarchical strategy.
TEST_P(DecompositionProperty, IntervalWorkloadsDecomposeExactly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  int m = static_cast<int>(rng.UniformInt(2, 12));
  int l = static_cast<int>(rng.UniformInt(1, 6));
  Matrix p(l, m);
  for (int q = 0; q < l; ++q) {
    int lo = static_cast<int>(rng.UniformInt(0, m - 1));
    int hi = static_cast<int>(rng.UniformInt(lo, m - 1));
    for (int c = lo; c <= hi; ++c) p.At(q, c) = 1.0;
  }
  IntervalStrategy s = MakeHierarchicalStrategy(m);
  auto x = SolveDecomposition(p, s.AsMatrix());
  ASSERT_TRUE(x.ok());
  auto recon = x->Multiply(s.AsMatrix());
  ASSERT_TRUE(recon.ok());
  for (int q = 0; q < l; ++q) {
    for (int c = 0; c < m; ++c) {
      EXPECT_NEAR(recon->At(q, c), p.At(q, c), 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, DecompositionProperty,
                         ::testing::Range(0, 20));

TEST(StrategyTest, DecompositionShapeMismatch) {
  EXPECT_FALSE(SolveDecomposition(Matrix(2, 3), Matrix(3, 4)).ok());
}

}  // namespace
}  // namespace dpstarj::linalg
