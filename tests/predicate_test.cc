// Tests for the predicate model and binding against attribute domains.

#include <gtest/gtest.h>

#include "query/predicate.h"

namespace dpstarj::query {
namespace {

using storage::AttributeDomain;
using storage::Value;

const AttributeDomain kYears = AttributeDomain::IntRange(1992, 1998);
const AttributeDomain kRegions =
    AttributeDomain::Categorical({"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"});

TEST(PredicateTest, PointBindsToIndex) {
  auto p = Predicate::Point("Date", "year", Value(int64_t{1995}));
  auto b = BindPredicate(p, kYears, 1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->kind, PredicateKind::kPoint);
  EXPECT_EQ(b->lo_index, 3);
  EXPECT_EQ(b->hi_index, 3);
  EXPECT_EQ(b->Width(), 1);
  EXPECT_TRUE(b->Matches(3));
  EXPECT_FALSE(b->Matches(2));
  EXPECT_EQ(b->column_index, 1);
}

TEST(PredicateTest, CategoricalPoint) {
  auto p = Predicate::Point("Customer", "region", Value("ASIA"));
  auto b = BindPredicate(p, kRegions, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->lo_index, 2);
}

TEST(PredicateTest, OutOfDomainValueRejected) {
  auto p = Predicate::Point("Date", "year", Value(int64_t{2024}));
  EXPECT_FALSE(BindPredicate(p, kYears, 0).ok());
  auto q = Predicate::Point("Customer", "region", Value("ATLANTIS"));
  EXPECT_FALSE(BindPredicate(q, kRegions, 0).ok());
}

TEST(PredicateTest, RangeBinds) {
  auto p = Predicate::Range("Date", "year", Value(int64_t{1993}),
                            Value(int64_t{1996}));
  auto b = BindPredicate(p, kYears, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->kind, PredicateKind::kRange);
  EXPECT_EQ(b->lo_index, 1);
  EXPECT_EQ(b->hi_index, 4);
  EXPECT_EQ(b->Width(), 4);
}

TEST(PredicateTest, EmptyRangeRejected) {
  auto p = Predicate::Range("Date", "year", Value(int64_t{1996}),
                            Value(int64_t{1993}));
  EXPECT_FALSE(BindPredicate(p, kYears, 0).ok());
}

TEST(PredicateTest, AtMostStrictAndInclusive) {
  // year < 1995 → [1992, 1994] → indices [0, 2]
  auto strict = Predicate::AtMost("Date", "year", Value(int64_t{1995}), true);
  auto b1 = BindPredicate(strict, kYears, 0);
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1->lo_index, 0);
  EXPECT_EQ(b1->hi_index, 2);
  // year <= 1995 → [0, 3]
  auto incl = Predicate::AtMost("Date", "year", Value(int64_t{1995}), false);
  auto b2 = BindPredicate(incl, kYears, 0);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->hi_index, 3);
}

TEST(PredicateTest, AtLeastStrictAndInclusive) {
  auto strict = Predicate::AtLeast("Date", "year", Value(int64_t{1995}), true);
  auto b1 = BindPredicate(strict, kYears, 0);
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1->lo_index, 4);
  EXPECT_EQ(b1->hi_index, 6);
  auto incl = Predicate::AtLeast("Date", "year", Value(int64_t{1995}), false);
  auto b2 = BindPredicate(incl, kYears, 0);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->lo_index, 3);
}

TEST(PredicateTest, StrictBoundCollapsingToEmptyRejected) {
  // year < 1992 selects nothing.
  auto p = Predicate::AtMost("Date", "year", Value(int64_t{1992}), true);
  EXPECT_FALSE(BindPredicate(p, kYears, 0).ok());
}

TEST(PredicateTest, OrPairAdjacentBecomesRange) {
  auto p = Predicate::PointPair("Part", "mfgr", Value("AMERICA"), Value("AFRICA"));
  auto b = BindPredicate(p, kRegions, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->kind, PredicateKind::kRange);
  EXPECT_EQ(b->lo_index, 0);
  EXPECT_EQ(b->hi_index, 1);
}

TEST(PredicateTest, OrPairNonAdjacentRejected) {
  auto p = Predicate::PointPair("Part", "mfgr", Value("AFRICA"), Value("ASIA"));
  auto b = BindPredicate(p, kRegions, 0);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kNotSupported);
}

TEST(PredicateTest, IndexSpacePassThrough) {
  auto p = Predicate::RangeIndex("Date", "year", 2, 5);
  auto b = BindPredicate(p, kYears, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->lo_index, 2);
  EXPECT_EQ(b->hi_index, 5);
  auto pt = Predicate::PointIndex("Date", "year", 6);
  auto b2 = BindPredicate(pt, kYears, 0);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->lo_index, 6);
}

TEST(PredicateTest, IndexSpaceOutOfRangeRejected) {
  EXPECT_FALSE(BindPredicate(Predicate::PointIndex("D", "y", 7), kYears, 0).ok());
  EXPECT_FALSE(BindPredicate(Predicate::RangeIndex("D", "y", -1, 3), kYears, 0).ok());
  EXPECT_FALSE(BindPredicate(Predicate::RangeIndex("D", "y", 5, 3), kYears, 0).ok());
}

TEST(PredicateTest, ToStringForms) {
  EXPECT_EQ(Predicate::Point("T", "a", Value(int64_t{5})).ToString(), "T.a = 5");
  EXPECT_EQ(Predicate::AtMost("T", "a", Value(int64_t{5}), true).ToString(),
            "T.a < 5");
  EXPECT_EQ(Predicate::AtLeast("T", "a", Value(int64_t{5}), false).ToString(),
            "T.a >= 5");
  EXPECT_EQ(
      Predicate::Range("T", "a", Value(int64_t{1}), Value(int64_t{2})).ToString(),
      "T.a in [1, 2]");
  EXPECT_EQ(Predicate::PointIndex("T", "a", 3).ToString(), "T.a = #3");
  EXPECT_NE(Predicate::PointPair("T", "a", Value("x"), Value("y"))
                .ToString()
                .find("OR"),
            std::string::npos);
}

}  // namespace
}  // namespace dpstarj::query
