// Tests for the k-star DP mechanisms (Table 2's PM / R2T / TM).

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "graph/generator.h"
#include "graph/kstar_mechanisms.h"

namespace dpstarj::graph {
namespace {

Graph TestGraph(uint64_t seed = 5) {
  GeneratorOptions opt;
  opt.num_nodes = 400;
  opt.num_edges = 1600;
  opt.seed = seed;
  auto g = GeneratePowerLawGraph(opt);
  DPSTARJ_CHECK(g.ok(), "test graph");
  return std::move(*g);
}

TEST(KStarPmTest, ExactUnderHugeBudget) {
  Graph g = TestGraph();
  KStarIndex idx(g, 2);
  KStarQuery q{2, 0, g.num_nodes() - 1};
  Rng rng(1);
  auto r = AnswerKStarWithPm(g, idx, q, /*epsilon=*/1e9, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, idx.total());
  EXPECT_GE(r->seconds, 0.0);
}

TEST(KStarPmTest, EstimateIsAlwaysAValidRangeCount) {
  Graph g = TestGraph();
  KStarIndex idx(g, 2);
  KStarQuery q{2, 0, g.num_nodes() - 1};
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto r = AnswerKStarWithPm(g, idx, q, 0.1, &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->estimate, 0.0);
    EXPECT_LE(r->estimate, idx.total());
  }
}

TEST(KStarPmTest, ErrorShrinksWithEpsilon) {
  Graph g = TestGraph();
  KStarIndex idx(g, 2);
  // Use a proper sub-range: for a full-domain range the boundary clamping
  // makes tiny ε *more* accurate (both endpoints stick to the domain edges),
  // so monotonicity in ε only holds away from the boundaries.
  KStarQuery q{2, g.num_nodes() / 5, 4 * g.num_nodes() / 5};
  double truth = idx.CountRange(q.lo, q.hi);
  auto mean_error = [&](double eps) {
    Rng rng(3);
    std::vector<double> errs;
    for (int i = 0; i < 300; ++i) {
      auto r = AnswerKStarWithPm(g, idx, q, eps, &rng);
      EXPECT_TRUE(r.ok());
      errs.push_back(RelativeErrorPercent(r->estimate, truth));
    }
    return Mean(errs);
  };
  EXPECT_LT(mean_error(10.0), mean_error(0.05));
}

TEST(KStarPmTest, Validation) {
  Graph g = TestGraph();
  KStarIndex idx(g, 2);
  Rng rng(4);
  // Index k mismatch.
  KStarQuery q3{3, 0, g.num_nodes() - 1};
  EXPECT_FALSE(AnswerKStarWithPm(g, idx, q3, 1.0, &rng).ok());
  // Empty range.
  KStarQuery empty{2, 10, 5};
  EXPECT_FALSE(AnswerKStarWithPm(g, idx, empty, 1.0, &rng).ok());
}

TEST(KStarR2tTest, ReasonableEstimate) {
  Graph g = TestGraph();
  KStarIndex idx(g, 2);
  KStarQuery q{2, 0, g.num_nodes() - 1};
  Rng rng(5);
  KStarR2tOptions opts;
  opts.gs_q = 1e6;
  auto r = AnswerKStarWithR2t(g, q, /*epsilon=*/8.0, &rng, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->estimate, 0.0);
  // At a generous budget R2T should land within a factor of the truth.
  EXPECT_LT(RelativeErrorPercent(r->estimate, idx.total()), 100.0);
}

TEST(KStarR2tTest, TimeLimitOnExpensiveEnumeration) {
  GeneratorOptions opt;
  opt.num_nodes = 3000;
  opt.num_edges = 15000;
  opt.seed = 6;
  auto g = GeneratePowerLawGraph(opt);
  ASSERT_TRUE(g.ok());
  Rng rng(6);
  KStarR2tOptions opts;
  opts.time_limit_s = 1e-6;  // 3-star enumeration cannot finish in a μs
  auto r = AnswerKStarWithR2t(*g, {3, 0, g->num_nodes() - 1}, 1.0, &rng, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeLimit);
}

TEST(KStarTmTest, TruncationBiasAndNoise) {
  Graph g = TestGraph();
  KStarIndex idx(g, 2);
  KStarQuery q{2, 0, g.num_nodes() - 1};
  Rng rng(7);
  KStarTmOptions opts;
  opts.degree_cap = g.max_degree();  // no truncation
  auto r = AnswerKStarWithTm(g, q, /*epsilon=*/1e9, &rng, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // With no truncation and no effective noise, TM returns the exact count.
  EXPECT_NEAR(r->estimate, idx.total(), 1e-6 * idx.total() + 1.0);
}

TEST(KStarTmTest, AggressiveCapUnderestimates) {
  Graph g = TestGraph();
  KStarIndex idx(g, 2);
  KStarQuery q{2, 0, g.num_nodes() - 1};
  Rng rng(8);
  KStarTmOptions opts;
  opts.degree_cap = 2;  // drop almost everything
  auto r = AnswerKStarWithTm(g, q, 1e9, &rng, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->estimate, idx.total());
}

TEST(KStarTmTest, DefaultCapIsPercentile) {
  Graph g = TestGraph();
  KStarQuery q{2, 0, g.num_nodes() - 1};
  Rng rng(9);
  auto r = AnswerKStarWithTm(g, q, 1.0, &rng);
  ASSERT_TRUE(r.ok());
}

TEST(KStarTmTest, TimeLimit) {
  GeneratorOptions opt;
  opt.num_nodes = 3000;
  opt.num_edges = 15000;
  opt.seed = 10;
  auto g = GeneratePowerLawGraph(opt);
  ASSERT_TRUE(g.ok());
  Rng rng(10);
  KStarTmOptions opts;
  opts.time_limit_s = 1e-6;
  opts.degree_cap = g->max_degree();
  auto r = AnswerKStarWithTm(*g, {3, 0, g->num_nodes() - 1}, 1.0, &rng, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeLimit);
}

TEST(KStarMechanismsTest, PmIsOrdersOfMagnitudeFasterThanEnumeration) {
  GeneratorOptions opt;
  opt.num_nodes = 5000;
  opt.num_edges = 25000;
  opt.seed = 11;
  auto g = GeneratePowerLawGraph(opt);
  ASSERT_TRUE(g.ok());
  KStarIndex idx(*g, 2);
  KStarQuery q{2, 0, g->num_nodes() - 1};
  Rng rng(11);
  auto pm = AnswerKStarWithPm(*g, idx, q, 0.5, &rng);
  auto r2t = AnswerKStarWithR2t(*g, q, 0.5, &rng);
  ASSERT_TRUE(pm.ok());
  ASSERT_TRUE(r2t.ok());
  // PM answers from the prefix-sum index; R2T pays the self-join enumeration.
  EXPECT_LT(pm->seconds * 5.0, r2t->seconds + 1e-6);
}

}  // namespace
}  // namespace dpstarj::graph
