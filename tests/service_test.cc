// Tests for the concurrent DP query service: the multi-tenant budget ledger
// (no over-spend under contention), the noisy-answer cache (bit-identical
// replay at zero ε), the engine pool, and the QueryService facade's
// spend/refund protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "service/answer_cache.h"
#include "service/budget_ledger.h"
#include "service/engine_pool.h"
#include "service/query_service.h"
#include "test_catalog.h"

namespace dpstarj::service {
namespace {

const char* kToySql =
    "SELECT count(*) FROM Orders, Cust, Prod "
    "WHERE Orders.ck = Cust.ck AND Orders.pk = Prod.pk "
    "AND Cust.region = 'N' AND Prod.cat = 'a'";

// ---------------------------------------------------------------- ledger ----

TEST(BudgetLedgerTest, RegisterSpendRefund) {
  BudgetLedger ledger;
  ASSERT_TRUE(ledger.RegisterTenant("a", 1.0).ok());
  EXPECT_EQ(ledger.RegisterTenant("a", 2.0).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(ledger.RegisterTenant("", 1.0).ok());
  EXPECT_FALSE(ledger.RegisterTenant("b", 0.0).ok());
  // Registration is remotely reachable (POST /v1/tenants): a non-finite
  // total would mint an unbounded privacy budget.
  EXPECT_FALSE(
      ledger.RegisterTenant("b", std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(ledger.RegisterTenant("b", std::nan("")).ok());

  ASSERT_TRUE(ledger.Spend("a", 0.4).ok());
  EXPECT_NEAR(*ledger.Remaining("a"), 0.6, 1e-12);
  ASSERT_TRUE(ledger.Refund("a", 0.4).ok());
  EXPECT_NEAR(*ledger.Remaining("a"), 1.0, 1e-12);
  EXPECT_NEAR(*ledger.Spent("a"), 0.0, 1e-12);

  // Unknown tenants are refused when no default budget is configured.
  EXPECT_EQ(ledger.Spend("ghost", 0.1).code(), StatusCode::kNotFound);
  EXPECT_EQ(ledger.Remaining("ghost").status().code(), StatusCode::kNotFound);
}

TEST(BudgetLedgerTest, DefaultBudgetAutoRegisters) {
  BudgetLedger ledger(/*default_tenant_budget=*/0.5);
  ASSERT_TRUE(ledger.Spend("new-tenant", 0.2).ok());
  EXPECT_NEAR(*ledger.Remaining("new-tenant"), 0.3, 1e-12);
  EXPECT_TRUE(ledger.HasTenant("new-tenant"));
  // The default applies only to unseen tenants; explicit registration wins.
  ASSERT_TRUE(ledger.RegisterTenant("vip", 10.0).ok());
  EXPECT_NEAR(*ledger.Remaining("vip"), 10.0, 1e-12);
}

TEST(BudgetLedgerTest, SnapshotIsSorted) {
  BudgetLedger ledger;
  ASSERT_TRUE(ledger.RegisterTenant("beta", 2.0).ok());
  ASSERT_TRUE(ledger.RegisterTenant("alpha", 1.0).ok());
  ASSERT_TRUE(ledger.Spend("beta", 0.5).ok());
  auto snap = ledger.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].tenant, "alpha");
  EXPECT_EQ(snap[1].tenant, "beta");
  EXPECT_NEAR(snap[1].spent, 0.5, 1e-12);
}

// The acceptance-criterion test: hammer one tenant's account from many
// threads; the number of admitted spends must never exceed the budget.
TEST(BudgetLedgerTest, ConcurrentSpendsNeverOverdraw) {
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 2000;
  constexpr double kEps = 0.001;
  constexpr double kTotal = 1.0;  // room for exactly 1000 admissions

  BudgetLedger ledger;
  ASSERT_TRUE(ledger.RegisterTenant("hot", kTotal).ok());

  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (ledger.Spend("hot", kEps).ok()) admitted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  // 16000 attempts compete for 1000 slots: every slot is filled, none minted.
  EXPECT_EQ(admitted.load(), 1000);
  EXPECT_LE(*ledger.Spent("hot"), kTotal + 1e-9);
  EXPECT_NEAR(*ledger.Spent("hot"), kTotal, 1e-9);
}

TEST(BudgetLedgerTest, AccountIsOneConsistentSnapshot) {
  BudgetLedger ledger;
  ASSERT_TRUE(ledger.RegisterTenant("a", 2.0).ok());
  ASSERT_TRUE(ledger.Spend("a", 0.5).ok());
  auto account = ledger.Account("a");
  ASSERT_TRUE(account.ok());
  EXPECT_EQ(account->tenant, "a");
  EXPECT_NEAR(account->total, 2.0, 1e-12);
  EXPECT_NEAR(account->spent, 0.5, 1e-12);
  EXPECT_NEAR(account->remaining, 1.5, 1e-12);
  EXPECT_EQ(ledger.Account("ghost").status().code(), StatusCode::kNotFound);
  // total = spent + remaining holds inside one snapshot even while another
  // thread spends between reads — that is what the single-lock accessor is
  // for (the /v1/tenants/<t> endpoint relies on it).
  std::atomic<bool> done{false};
  std::thread churn([&] {
    while (!done.load()) {
      if (!ledger.Spend("a", 0.001).ok()) (void)ledger.Refund("a", 1.0);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    auto snap = ledger.Account("a");
    ASSERT_TRUE(snap.ok());
    EXPECT_NEAR(snap->spent + snap->remaining, snap->total, 1e-9);
  }
  done.store(true);
  churn.join();
}

TEST(BudgetLedgerTest, ConcurrentSpendRefundStaysConsistent) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 1000;
  BudgetLedger ledger;
  ASSERT_TRUE(ledger.RegisterTenant("churn", 1.0).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        if (ledger.Spend("churn", 0.01).ok()) {
          ASSERT_TRUE(ledger.Refund("churn", 0.01).ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every admitted ε was returned; the account must be exactly balanced.
  EXPECT_NEAR(*ledger.Spent("churn"), 0.0, 1e-9);
  EXPECT_NEAR(*ledger.Remaining("churn"), 1.0, 1e-9);
}

// The satellite acceptance test: spend/refund/exhaustion racing from 8
// threads around a tight budget. Every admitted ε must be conserved — the
// final position equals (admits − refunds) × ε exactly, and the exhaustion
// boundary refuses without corrupting the account.
TEST(BudgetLedgerTest, ConcurrentSpendRefundExhaustionConservesEpsilon) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  constexpr double kEps = 0.01;
  constexpr double kTotal = 1.0;  // exhausts after ~100 net spends

  BudgetLedger ledger;
  ASSERT_TRUE(ledger.RegisterTenant("hot", kTotal).ok());

  std::atomic<int> admitted{0}, refunded{0}, exhausted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        Status st = ledger.Spend("hot", kEps);
        if (st.ok()) {
          admitted.fetch_add(1);
          // Refund two of three admissions: the account approaches the
          // exhaustion boundary slowly, so many threads race right at it.
          if ((t + i) % 3 != 0) {
            ASSERT_TRUE(ledger.Refund("hot", kEps).ok());
            refunded.fetch_add(1);
          }
        } else {
          ASSERT_EQ(st.code(), StatusCode::kBudgetExhausted);
          exhausted.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // The race must have actually crossed the boundary in both directions.
  EXPECT_GT(exhausted.load(), 0);
  EXPECT_GT(refunded.load(), 0);
  double expected = (admitted.load() - refunded.load()) * kEps;
  EXPECT_NEAR(*ledger.Spent("hot"), expected, 1e-9);
  EXPECT_NEAR(*ledger.Remaining("hot"), kTotal - expected, 1e-9);
  // Conservation: nothing minted, nothing leaked.
  auto account = ledger.Account("hot");
  ASSERT_TRUE(account.ok());
  EXPECT_NEAR(account->spent + account->remaining, kTotal, 1e-9);
  EXPECT_LE(account->spent, kTotal + 1e-9);
}

// ----------------------------------------------------------------- cache ----

exec::QueryResult ScalarResult(double v) {
  exec::QueryResult r;
  r.scalar = v;
  return r;
}

TEST(AnswerCacheTest, HitMissAndEpsilonSaved) {
  AnswerCache cache(4);
  EXPECT_FALSE(cache.Lookup("k1", 0.5).has_value());
  cache.Insert("k1", ScalarResult(42.0));
  auto hit = cache.Lookup("k1", 0.5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->scalar, 42.0);
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.epsilon_saved, 0.5);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(AnswerCacheTest, LruEviction) {
  AnswerCache cache(2);
  cache.Insert("a", ScalarResult(1));
  cache.Insert("b", ScalarResult(2));
  ASSERT_TRUE(cache.Lookup("a", 0.1).has_value());  // a is now most recent
  cache.Insert("c", ScalarResult(3));               // evicts b
  EXPECT_TRUE(cache.Lookup("a", 0.1).has_value());
  EXPECT_FALSE(cache.Lookup("b", 0.1).has_value());
  EXPECT_TRUE(cache.Lookup("c", 0.1).has_value());
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(AnswerCacheTest, ReinsertKeepsFirstPaidAnswer) {
  AnswerCache cache(4);
  cache.Insert("k", ScalarResult(1.0));
  cache.Insert("k", ScalarResult(2.0));  // racing second computation
  EXPECT_DOUBLE_EQ(cache.Lookup("k", 0.1)->scalar, 1.0);
  EXPECT_EQ(cache.GetStats().insertions, 1u);
}

TEST(AnswerCacheTest, ZeroCapacityDisablesReplay) {
  AnswerCache cache(0);
  cache.Insert("k", ScalarResult(1.0));
  EXPECT_FALSE(cache.Lookup("k", 0.1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------------------------ pool ----

TEST(EnginePoolTest, DispatchesToAllEngines) {
  auto catalog = testing_fixture::MakeToyCatalog();
  EnginePool pool(&catalog, /*num_engines=*/4, /*queue_capacity=*/8);
  std::vector<std::future<Result<exec::QueryResult>>> futures;
  for (int i = 0; i < 32; ++i) {
    auto f = pool.Dispatch([](core::DpStarJoin& engine) {
      return engine.AnswerSql(kToySql, /*epsilon=*/1.0);
    });
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(EnginePoolTest, ShutdownRefusesNewWork) {
  auto catalog = testing_fixture::MakeToyCatalog();
  EnginePool pool(&catalog, 2, 4);
  pool.Shutdown();
  auto f = pool.Dispatch(
      [](core::DpStarJoin&) -> Result<exec::QueryResult> { return ScalarResult(0); });
  EXPECT_FALSE(f.ok());
}

TEST(EnginePoolTest, EnginesHaveIndependentRngStreams) {
  auto catalog = testing_fixture::MakeToyCatalog();
  EnginePool pool(&catalog, 2, 4);
  // Serialize two identical fresh answers through different engines often
  // enough that identical streams would betray themselves. With independent
  // streams the draws differ essentially always.
  std::vector<double> scalars;
  for (int i = 0; i < 4; ++i) {
    auto f = pool.Dispatch([](core::DpStarJoin& engine) {
      return engine.AnswerSql(kToySql, /*epsilon=*/0.1);
    });
    ASSERT_TRUE(f.ok());
    auto r = f->get();
    ASSERT_TRUE(r.ok());
    scalars.push_back(r->scalar);
  }
  bool all_equal = true;
  for (double s : scalars) all_equal = all_equal && s == scalars[0];
  EXPECT_FALSE(all_equal);
}

// Deterministic queue-full behavior: park the single worker on a latch, fill
// the one queue slot, and observe TryDispatch refuse with Unavailable while
// Dispatch would block.
TEST(EnginePoolTest, TryDispatchRefusesWhenFull) {
  auto catalog = testing_fixture::MakeToyCatalog();
  EnginePool pool(&catalog, /*num_engines=*/1, /*queue_capacity=*/1);

  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> latch(release.get_future());
  // Occupies the worker until released; `started` resolves once the worker
  // has actually picked the job up (the queue slot is free again).
  auto blocker =
      pool.Dispatch([&started, latch](core::DpStarJoin&) -> Result<exec::QueryResult> {
        started.set_value();
        latch.wait();
        return ScalarResult(1);
      });
  ASSERT_TRUE(blocker.ok());
  started.get_future().wait();

  // The worker is parked and the queue is empty: one TryDispatch fills the
  // single slot, the next must refuse without blocking.
  auto queued = pool.TryDispatch(
      [latch](core::DpStarJoin&) -> Result<exec::QueryResult> {
        latch.wait();
        return ScalarResult(2);
      });
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_EQ(pool.queue_depth(), 1u);

  auto refused = pool.TryDispatch(
      [](core::DpStarJoin&) -> Result<exec::QueryResult> { return ScalarResult(3); });
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

  release.set_value();
  ASSERT_TRUE(blocker->get().ok());
  ASSERT_TRUE(queued->get().ok());
}

// --------------------------------------------------------------- service ----

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() : catalog_(testing_fixture::MakeToyCatalog()) {}
  storage::Catalog catalog_;
};

TEST_F(QueryServiceTest, CacheReplayIsBitIdenticalAndFree) {
  ServiceOptions opts;
  opts.num_engines = 2;
  QueryService svc(&catalog_, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 1.0).ok());

  auto first = svc.Answer(kToySql, 0.25, "t");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NEAR(*svc.RemainingBudget("t"), 0.75, 1e-12);

  // Same query, formatted differently: canonicalization must still hit.
  auto second = svc.Answer(
      "SELECT count(*) FROM Prod, Orders, Cust "
      "WHERE Prod.cat = 'a' AND Orders.pk = Prod.pk "
      "AND Cust.region = 'N' AND Orders.ck = Cust.ck",
      0.25, "t");
  ASSERT_TRUE(second.ok());
  // Bit-identical replay of the stored noisy draw...
  EXPECT_EQ(first->scalar, second->scalar);
  EXPECT_EQ(first->grouped, second->grouped);
  EXPECT_EQ(first->groups, second->groups);
  // ...at zero additional ε.
  EXPECT_NEAR(*svc.RemainingBudget("t"), 0.75, 1e-12);

  auto stats = svc.Stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.cache.epsilon_saved, 0.25);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(QueryServiceTest, DifferentEpsilonIsNotAReplay) {
  QueryService svc(&catalog_, {});
  ASSERT_TRUE(svc.RegisterTenant("t", 1.0).ok());
  ASSERT_TRUE(svc.Answer(kToySql, 0.25, "t").ok());
  ASSERT_TRUE(svc.Answer(kToySql, 0.5, "t").ok());
  // Both draws were paid for: 1.0 - 0.25 - 0.5.
  EXPECT_NEAR(*svc.RemainingBudget("t"), 0.25, 1e-12);
  EXPECT_EQ(svc.Stats().cache.hits, 0u);
}

TEST_F(QueryServiceTest, BindFailureRefundsTheBudget) {
  QueryService svc(&catalog_, {});
  ASSERT_TRUE(svc.RegisterTenant("t", 1.0).ok());

  auto r = svc.Answer("SELECT count(*) FROM NoSuchTable", 0.3, "t");
  ASSERT_FALSE(r.ok());
  // The ε spent at admission must have flowed back in full.
  EXPECT_NEAR(*svc.RemainingBudget("t"), 1.0, 1e-12);

  auto garbage = svc.Answer("THIS IS NOT SQL", 0.3, "t");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NEAR(*svc.RemainingBudget("t"), 1.0, 1e-12);
  EXPECT_EQ(svc.Stats().failed, 2u);
}

TEST_F(QueryServiceTest, RejectsBadEpsilonAndUnknownTenant) {
  QueryService svc(&catalog_, {});
  ASSERT_TRUE(svc.RegisterTenant("t", 1.0).ok());
  EXPECT_EQ(svc.Answer(kToySql, 0.0, "t").status().code(),
            StatusCode::kInvalidArgument);
  // NaN/inf ε must be refused at admission — it would otherwise poison the
  // tenant's ledger and feed a NaN noise scale to the mechanism.
  EXPECT_EQ(svc.Answer(kToySql, std::nan(""), "t").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.Answer(kToySql, std::numeric_limits<double>::infinity(), "t")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_NEAR(*svc.RemainingBudget("t"), 1.0, 1e-12);
  EXPECT_EQ(svc.Answer(kToySql, 0.1, "nobody").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(svc.Stats().rejected_budget, 1u);
}

TEST_F(QueryServiceTest, BudgetExhaustionIsARefusalNotACrash) {
  QueryService svc(&catalog_, {});
  ASSERT_TRUE(svc.RegisterTenant("t", 0.5).ok());
  ASSERT_TRUE(svc.Answer(kToySql, 0.5, "t").ok());
  // A fresh (uncached) query can no longer be paid for.
  auto r = svc.Answer(
      "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
      "AND Cust.region = 'S'",
      0.1, "t");
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted);
}

TEST_F(QueryServiceTest, ExhaustedTenantStillGetsFreeReplays) {
  QueryService svc(&catalog_, {});
  ASSERT_TRUE(svc.RegisterTenant("t", 0.5).ok());
  auto paid = svc.Answer(kToySql, 0.5, "t");
  ASSERT_TRUE(paid.ok());
  ASSERT_NEAR(*svc.RemainingBudget("t"), 0.0, 1e-12);
  // The tenant is broke, but re-reading the answer it already paid for is
  // post-processing — the replay must succeed, bit-identical, at zero ε.
  auto replay = svc.Answer(kToySql, 0.5, "t");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(paid->scalar, replay->scalar);
  EXPECT_NEAR(*svc.RemainingBudget("t"), 0.0, 1e-12);
  // A different query (or the same one at a different ε) is a fresh draw and
  // is still refused.
  EXPECT_EQ(svc.Answer(kToySql, 0.25, "t").status().code(),
            StatusCode::kBudgetExhausted);
}

// The acceptance-criterion test: ≥8 threads submitting concurrently against
// one tenant must never over-spend its ledger, and every admitted ε must be
// accounted for (spent on success, refunded on failure).
TEST_F(QueryServiceTest, ConcurrentSubmitsNeverOverspendATenant) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  constexpr double kEps = 0.01;
  constexpr double kTotal = 1.0;  // room for 100 of the 400 attempted queries

  ServiceOptions opts;
  opts.num_engines = 4;
  opts.queue_capacity = 16;
  opts.cache_capacity = 0;  // every admitted query must pay (no replays)
  QueryService svc(&catalog_, opts);
  ASSERT_TRUE(svc.RegisterTenant("hot", kTotal).ok());

  std::atomic<int> ok_count{0}, refused{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct constants so distinct queries hammer the pool.
        int tier = (t * kPerThread + i) % 4 + 1;
        std::string sql = Format(
            "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
            "AND Cust.tier <= %d",
            tier);
        auto r = svc.Answer(sql, kEps, "hot");
        if (r.ok()) {
          ok_count.fetch_add(1);
        } else {
          ASSERT_EQ(r.status().code(), StatusCode::kBudgetExhausted);
          refused.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok_count.load() + refused.load(), kThreads * kPerThread);
  // Exactly the budget's worth of queries got through.
  EXPECT_EQ(ok_count.load(), 100);
  double spent = *svc.ledger().Spent("hot");
  EXPECT_LE(spent, kTotal + 1e-9);
  EXPECT_NEAR(spent, ok_count.load() * kEps, 1e-9);
}

TEST_F(QueryServiceTest, ConcurrentMixedWorkloadAccountsExactly) {
  // Success, bind failure, and cache replay interleaved across threads: the
  // final ledger position must equal ε × (fresh successful answers) exactly.
  ServiceOptions opts;
  opts.num_engines = 4;
  QueryService svc(&catalog_, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 100.0).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  constexpr double kEps = 0.05;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        switch ((t + i) % 3) {
          case 0:  // shared query — at most one fresh draw, rest replays
            (void)svc.Answer(kToySql, kEps, "t");
            break;
          case 1:  // bind failure — full refund
            (void)svc.Answer("SELECT count(*) FROM Missing", kEps, "t");
            break;
          default:  // per-thread query — one fresh draw per thread
            (void)svc.Answer(
                Format("SELECT count(*) FROM Orders, Cust "
                       "WHERE Orders.ck = Cust.ck AND Cust.tier = %d",
                       t % 4 + 1),
                kEps, "t");
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  auto stats = svc.Stats();
  // Paid answers = completed minus replays; ledger must agree to the cent.
  uint64_t paid = stats.completed - stats.cache.hits;
  EXPECT_NEAR(*svc.ledger().Spent("t"), static_cast<double>(paid) * kEps, 1e-9);
  EXPECT_EQ(stats.cache.misses, paid);
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_GT(stats.failed, 0u);
}

// TrySubmit under saturation: whatever mix of answers and Unavailable
// refusals the race produces, the ledger position must equal ε × (paid
// answers) exactly — every shed query's admission ε flowed back — and the
// stats must classify refusals as overload, not failure.
TEST_F(QueryServiceTest, TrySubmitShedsLoadAndRefundsExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  constexpr double kEps = 0.01;

  ServiceOptions opts;
  opts.num_engines = 1;
  opts.queue_capacity = 1;
  opts.cache_capacity = 0;  // every answered query pays
  QueryService svc(&catalog_, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 1e6).ok());

  std::atomic<uint64_t> answered{0}, shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string sql = Format(
            "SELECT count(*) FROM Orders, Cust WHERE Orders.ck = Cust.ck "
            "AND Cust.tier <= %d",
            (t * kPerThread + i) % 4 + 1);
        auto r = svc.TrySubmit(sql, kEps, "t").get();
        if (r.ok()) {
          answered.fetch_add(1);
        } else {
          ASSERT_EQ(r.status().code(), StatusCode::kUnavailable)
              << r.status().ToString();
          shed.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(answered.load() + shed.load(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(answered.load(), 0u);
  EXPECT_NEAR(*svc.ledger().Spent("t"),
              static_cast<double>(answered.load()) * kEps, 1e-9);
  auto stats = svc.Stats();
  EXPECT_EQ(stats.completed, answered.load());
  EXPECT_EQ(stats.rejected_overload, shed.load());
  EXPECT_EQ(stats.failed, 0u);
  // Shed queries were never counted as submitted work.
  EXPECT_EQ(stats.submitted, answered.load());
}

TEST_F(QueryServiceTest, TrySubmitMatchesSubmitWhenUncontended) {
  ServiceOptions opts;
  opts.num_engines = 2;
  QueryService svc(&catalog_, opts);
  ASSERT_TRUE(svc.RegisterTenant("t", 1.0).ok());
  auto r = svc.TrySubmit(kToySql, 0.25, "t").get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(*svc.RemainingBudget("t"), 0.75, 1e-12);
  // Same canonical query replays from the cache at zero ε, like Submit.
  auto replay = svc.TrySubmit(kToySql, 0.25, "t").get();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(r->scalar, replay->scalar);
  EXPECT_NEAR(*svc.RemainingBudget("t"), 0.75, 1e-12);
  // Invalid arguments are refused identically.
  EXPECT_EQ(svc.TrySubmit(kToySql, 0.0, "t").get().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.TrySubmit(kToySql, 0.1, "nobody").get().status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dpstarj::service
