// OLAP analytics scenario: generate a Star Schema Benchmark instance and run
// the paper's nine analytical queries under differential privacy, reporting
// the relative error of each DP answer against the exact one.
//
//   $ ./ssb_analytics [scale_factor=0.02] [epsilon=0.5]

#include <cstdio>
#include <cstdlib>

#include "bench_util/table_printer.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "core/dp_star_join.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using dpstarj::Status;

namespace {

Status Run(double scale_factor, double epsilon) {
  std::printf("generating SSB at scale factor %.3f ...\n", scale_factor);
  dpstarj::ssb::SsbOptions options;
  options.scale_factor = scale_factor;
  DPSTARJ_ASSIGN_OR_RETURN(auto catalog, dpstarj::ssb::GenerateSsb(options));
  DPSTARJ_RETURN_NOT_OK(catalog.ValidateIntegrity());
  DPSTARJ_ASSIGN_OR_RETURN(auto lineorder, catalog.GetTable("Lineorder"));
  std::printf("  Lineorder: %lld rows\n",
              static_cast<long long>(lineorder->num_rows()));

  dpstarj::core::DpStarJoinOptions engine_options;
  engine_options.seed = 7;
  dpstarj::core::DpStarJoin engine(&catalog, engine_options);

  dpstarj::bench_util::TablePrinter table(
      {"query", "kind", "true answer", "dp answer", "rel. error %"});
  for (const auto& name : dpstarj::ssb::AllQueryNames()) {
    DPSTARJ_ASSIGN_OR_RETURN(auto query, dpstarj::ssb::GetQuery(name));
    DPSTARJ_ASSIGN_OR_RETURN(auto truth, engine.TrueAnswer(query));
    DPSTARJ_ASSIGN_OR_RETURN(auto noisy, engine.Answer(query, epsilon));
    double err = noisy.MeanRelativeErrorPercent(truth);
    std::string kind = query.group_by.empty()
                           ? std::string(AggregateKindToString(query.aggregate))
                           : "GROUP BY";
    if (truth.grouped) {
      table.AddRow({name, kind,
                    dpstarj::Format("%zu groups", truth.groups.size()),
                    dpstarj::Format("%zu groups", noisy.groups.size()),
                    dpstarj::Format("%.2f", err)});
    } else {
      table.AddRow({name, kind, dpstarj::Format("%.0f", truth.scalar),
                    dpstarj::Format("%.0f", noisy.scalar),
                    dpstarj::Format("%.2f", err)});
    }
  }
  std::printf("\nDP-starJ answers at epsilon = %.2f\n", epsilon);
  table.Print();
  std::printf(
      "\nNote: each row consumed its own epsilon; a production deployment\n"
      "would track the cumulative budget (see quickstart.cpp).\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  double epsilon = argc > 2 ? std::atof(argv[2]) : 0.5;
  Status st = Run(sf, epsilon);
  if (!st.ok()) {
    std::fprintf(stderr, "ssb_analytics failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
