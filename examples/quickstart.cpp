// Quickstart: build a tiny star schema by hand, then answer a counting
// star-join query under ε-differential privacy with DP-starJ.
//
//   $ ./quickstart
//
// Walks through the full API surface a new user touches: Schema/Table/Catalog
// construction, foreign keys, DpStarJoin, and the privacy budget.

#include <cstdio>

#include "core/dp_star_join.h"
#include "storage/catalog.h"

using dpstarj::Status;
using dpstarj::storage::AttributeDomain;
using dpstarj::storage::Catalog;
using dpstarj::storage::Field;
using dpstarj::storage::Schema;
using dpstarj::storage::Table;
using dpstarj::storage::Value;
using dpstarj::storage::ValueType;

namespace {

Status Run() {
  // 1. A dimension table: patients with a declared, finite `ward` domain.
  //    Attributes that can carry DP predicates must declare their domain —
  //    the Predicate Mechanism's noise is calibrated to its size.
  Schema patient_schema({
      Field("patient_id", ValueType::kInt64),
      Field("ward", ValueType::kString,
            AttributeDomain::Categorical(
                {"cardiology", "oncology", "neurology", "pediatrics"})),
  });
  DPSTARJ_ASSIGN_OR_RETURN(auto patients,
                           Table::Create("Patient", patient_schema, "patient_id"));
  const char* wards[8] = {"cardiology", "oncology",   "cardiology", "neurology",
                          "pediatrics", "cardiology", "oncology",   "neurology"};
  for (int64_t i = 0; i < 8; ++i) {
    DPSTARJ_RETURN_NOT_OK(patients->AppendRow({Value(i + 1), Value(wards[i])}));
  }

  // 2. The fact table: hospital visits referencing patients.
  Schema visit_schema({
      Field("patient_id", ValueType::kInt64),
      Field("cost", ValueType::kDouble),
  });
  DPSTARJ_ASSIGN_OR_RETURN(auto visits, Table::Create("Visit", visit_schema));
  for (int64_t i = 0; i < 64; ++i) {
    DPSTARJ_RETURN_NOT_OK(
        visits->AppendRow({Value(i % 8 + 1), Value(100.0 + 5.0 * (i % 7))}));
  }

  // 3. Register both in a catalog with the foreign-key constraint. The FK is
  //    what makes a deleted patient cascade into the fact table — the reason
  //    output-perturbation DP fails here and DP-starJ exists.
  Catalog catalog;
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(patients));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(visits));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({"Visit", "patient_id", "Patient", "patient_id"}));
  DPSTARJ_RETURN_NOT_OK(catalog.ValidateIntegrity());

  // 4. Ask: how many visits came from the cardiology ward? First the exact
  //    answer (for comparison only — a real deployment never sees it), then
  //    the DP answer at a few privacy budgets.
  dpstarj::core::DpStarJoinOptions options;
  options.seed = 2024;           // reproducible noise
  options.total_budget = 4.0;    // the engine enforces cumulative spending
  dpstarj::core::DpStarJoin engine(&catalog, options);

  const std::string sql =
      "SELECT count(*) FROM Patient, Visit "
      "WHERE Visit.patient_id = Patient.patient_id "
      "AND Patient.ward = 'cardiology'";

  DPSTARJ_ASSIGN_OR_RETURN(auto truth, engine.TrueAnswerSql(sql));
  std::printf("true count            : %.0f\n", truth.scalar);

  for (double epsilon : {0.1, 0.5, 1.0}) {
    DPSTARJ_ASSIGN_OR_RETURN(auto noisy, engine.AnswerSql(sql, epsilon));
    std::printf("dp count (epsilon=%.1f): %.0f   [budget left: %.1f]\n", epsilon,
                noisy.scalar, engine.RemainingBudget().value());
  }

  // 5. Exhausting the budget is a refusal, not a crash.
  auto r = engine.AnswerSql(sql, 10.0);
  std::printf("over-budget query     : %s\n", r.status().ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
