// Service demo: the concurrent, multi-tenant DP query service on a tiny
// hospital schema — tenant budgets, async submission, free cache replays,
// budget-exhaustion refusals, and the same service behind the HTTP front
// door (an in-process server + client round trip; `tools/dpstarj_server.cc`
// is the standalone binary).
//
//   $ ./service_demo
//
// Builds on quickstart.cpp (same schema); read that first for the storage
// and engine basics.

#include <cstdio>
#include <future>
#include <vector>

#include "net/client.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "service/query_service.h"
#include "storage/catalog.h"

using dpstarj::Status;
using dpstarj::storage::AttributeDomain;
using dpstarj::storage::Catalog;
using dpstarj::storage::Field;
using dpstarj::storage::Schema;
using dpstarj::storage::Table;
using dpstarj::storage::Value;
using dpstarj::storage::ValueType;

namespace {

Status Run() {
  // 1. The quickstart schema: patients (with a declared ward domain) and
  //    visits referencing them.
  Schema patient_schema({
      Field("patient_id", ValueType::kInt64),
      Field("ward", ValueType::kString,
            AttributeDomain::Categorical(
                {"cardiology", "oncology", "neurology", "pediatrics"})),
  });
  DPSTARJ_ASSIGN_OR_RETURN(auto patients,
                           Table::Create("Patient", patient_schema, "patient_id"));
  const char* wards[8] = {"cardiology", "oncology",   "cardiology", "neurology",
                          "pediatrics", "cardiology", "oncology",   "neurology"};
  for (int64_t i = 0; i < 8; ++i) {
    DPSTARJ_RETURN_NOT_OK(patients->AppendRow({Value(i + 1), Value(wards[i])}));
  }
  Schema visit_schema({
      Field("patient_id", ValueType::kInt64),
      Field("cost", ValueType::kDouble),
  });
  DPSTARJ_ASSIGN_OR_RETURN(auto visits, Table::Create("Visit", visit_schema));
  for (int64_t i = 0; i < 64; ++i) {
    DPSTARJ_RETURN_NOT_OK(
        visits->AppendRow({Value(i % 8 + 1), Value(100.0 + 5.0 * (i % 7))}));
  }
  Catalog catalog;
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(patients));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(visits));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({"Visit", "patient_id", "Patient", "patient_id"}));
  DPSTARJ_RETURN_NOT_OK(catalog.ValidateIntegrity());

  // 2. A query service: 4 engines behind a bounded queue, a noisy-answer
  //    cache, and per-tenant budgets.
  dpstarj::service::ServiceOptions options;
  options.num_engines = 4;
  options.engine.seed = 2024;
  dpstarj::service::QueryService service(&catalog, options);
  DPSTARJ_RETURN_NOT_OK(service.RegisterTenant("research", 2.0));
  DPSTARJ_RETURN_NOT_OK(service.RegisterTenant("billing", 0.5));

  const std::string cardio =
      "SELECT count(*) FROM Patient, Visit "
      "WHERE Visit.patient_id = Patient.patient_id "
      "AND Patient.ward = 'cardiology'";

  // 3. Asynchronous submission: futures resolve as pool workers answer.
  std::vector<std::future<dpstarj::Result<dpstarj::exec::QueryResult>>> futures;
  const char* queried_wards[3] = {"cardiology", "oncology", "neurology"};
  for (const char* ward : queried_wards) {
    std::string sql =
        "SELECT count(*) FROM Patient, Visit "
        "WHERE Visit.patient_id = Patient.patient_id AND Patient.ward = '" +
        std::string(ward) + "'";
    futures.push_back(service.Submit(sql, /*epsilon=*/0.25, "research"));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    DPSTARJ_ASSIGN_OR_RETURN(auto noisy, futures[i].get());
    std::printf("research: dp count of %-11s visits = %6.1f\n", queried_wards[i],
                noisy.scalar);
  }
  std::printf("research: budget left %.2f of 2.00\n\n",
              *service.RemainingBudget("research"));

  // 4. Replays are free: re-asking the cardiology question (even reformatted)
  //    returns the *same* noisy answer and spends no budget.
  DPSTARJ_ASSIGN_OR_RETURN(auto replay, service.Answer(cardio, 0.25, "research"));
  std::printf("research: replayed cardiology count = %6.1f (budget still %.2f)\n\n",
              replay.scalar, *service.RemainingBudget("research"));

  // 5. Tenants are isolated: billing has its own small budget and runs dry.
  DPSTARJ_ASSIGN_OR_RETURN(
      auto avg, service.Answer("SELECT avg(cost) FROM Visit, Patient "
                               "WHERE Visit.patient_id = Patient.patient_id "
                               "AND Patient.ward = 'oncology'",
                               0.5, "billing"));
  std::printf("billing : dp avg oncology cost = %.1f (budget left %.2f)\n",
              avg.scalar, *service.RemainingBudget("billing"));
  auto refused = service.Answer(cardio, 0.5, "billing");
  std::printf("billing : next query -> %s\n\n", refused.status().ToString().c_str());

  // 6. The service accounts for everything it did.
  std::printf("stats   : %s\n", service.Stats().ToString().c_str());
  std::printf("ledger  :\n%s\n", service.ledger().ToString().c_str());

  // 7. The same service over the wire: an epoll HTTP server on an ephemeral
  //    localhost port, spoken to with the blocking client library. POST
  //    /v1/query goes through TrySubmit — a saturated pool answers 429
  //    instead of blocking the connection.
  dpstarj::net::HttpServer server(dpstarj::net::MakeServiceRouter(&service), {});
  DPSTARJ_RETURN_NOT_OK(server.Start());
  dpstarj::net::Client client("127.0.0.1", server.port());
  DPSTARJ_ASSIGN_OR_RETURN(
      auto wire_reply,
      client.Post("/v1/query",
                  "{\"sql\":\"" + cardio + "\",\"epsilon\":0.25,"
                  "\"tenant\":\"research\"}"));
  std::printf("wire    : POST /v1/query -> HTTP %d %s (a free replay)\n",
              wire_reply.status, wire_reply.body.c_str());
  DPSTARJ_ASSIGN_OR_RETURN(auto wire_account, client.Get("/v1/tenants/research"));
  std::printf("wire    : GET /v1/tenants/research -> %s\n",
              wire_account.body.c_str());
  server.Stop();
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "service_demo failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
