// SQL front-end scenario: an interactive-style loop that takes the star-join
// SQL statements of the paper's appendix (and a few intentionally broken
// ones) through the full pipeline — lexer → parser → semantic resolution →
// binding → DP answering — showing how errors surface as typed Statuses
// rather than crashes.
//
//   $ ./sql_interface [epsilon=0.5]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dp_star_join.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using dpstarj::Status;

namespace {

Status Run(double epsilon) {
  dpstarj::ssb::SsbOptions options;
  options.scale_factor = 0.02;
  DPSTARJ_ASSIGN_OR_RETURN(auto catalog, dpstarj::ssb::GenerateSsb(options));
  dpstarj::core::DpStarJoin engine(&catalog);

  // The paper's nine appendix statements…
  std::vector<std::string> statements;
  for (const auto& name : dpstarj::ssb::AllQueryNames()) {
    DPSTARJ_ASSIGN_OR_RETURN(std::string sql, dpstarj::ssb::GetQuerySql(name));
    statements.push_back(sql);
  }
  // …plus queries that must be rejected, with useful diagnostics.
  statements.push_back("SELECT count(*) FROM Nowhere");
  statements.push_back(
      "SELECT count(*) FROM Date, Lineorder WHERE Lineorder.orderdate = "
      "Date.datekey AND Date.year = 2050");  // outside the year domain
  statements.push_back(
      "SELECT avg(Lineorder.revenue) FROM Date, Lineorder WHERE "
      "Lineorder.orderdate = Date.datekey AND Date.year = 1995");  // AVG works
  statements.push_back(
      "SELECT avg(Lineorder.revenue) FROM Lineorder");  // no predicate → refused
  statements.push_back(
      "SELECT count(*) FROM Customer, Supplier WHERE Customer.custkey = "
      "Supplier.suppkey");  // no star join here

  for (const auto& sql : statements) {
    std::string preview = sql.substr(0, 72);
    if (sql.size() > 72) preview += "...";
    std::printf("sql> %s\n", preview.c_str());
    auto result = engine.AnswerSql(sql, epsilon);
    if (result.ok()) {
      if (result->grouped) {
        std::printf("  -> %zu groups under epsilon=%.2f (first: %s)\n",
                    result->groups.size(), epsilon,
                    result->groups.empty()
                        ? "-"
                        : result->groups.begin()->first.c_str());
      } else {
        std::printf("  -> %.0f (epsilon=%.2f)\n", result->scalar, epsilon);
      }
    } else {
      std::printf("  !! %s\n", result.status().ToString().c_str());
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double epsilon = argc > 1 ? std::atof(argv[1]) : 0.5;
  Status st = Run(epsilon);
  if (!st.ok()) {
    std::fprintf(stderr, "sql_interface failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
