// Graph analytics scenario: differentially private k-star counting on a
// social network (the paper's second application, Table 2). Compares the
// Predicate Mechanism with the R2T and naive-truncation baselines on a
// synthetic Deezer-like graph.
//
//   $ ./graph_kstar [graph_scale=0.02] [epsilon=0.5]

#include <cstdio>
#include <cstdlib>

#include "bench_util/table_printer.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "graph/generator.h"
#include "graph/kstar_mechanisms.h"

using dpstarj::Status;

namespace {

Status Run(double scale, double epsilon) {
  std::printf("generating Deezer-like social network at scale %.3f ...\n", scale);
  DPSTARJ_ASSIGN_OR_RETURN(auto graph,
                           dpstarj::graph::GenerateDeezerLike(scale, /*seed=*/17));
  std::printf("  %lld nodes, %lld edges, max degree %lld\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()),
              static_cast<long long>(graph.max_degree()));

  dpstarj::Rng rng(23);
  dpstarj::bench_util::TablePrinter table(
      {"task", "mechanism", "true count", "dp estimate", "rel. error %",
       "time (s)"});

  for (int k : {2, 3}) {
    dpstarj::graph::KStarIndex index(graph, k);
    dpstarj::graph::KStarQuery query{k, 0, graph.num_nodes() - 1};
    double truth = index.total();

    DPSTARJ_ASSIGN_OR_RETURN(
        auto pm, dpstarj::graph::AnswerKStarWithPm(graph, index, query, epsilon,
                                                   &rng));
    table.AddRow({dpstarj::Format("%d-star", k), "PM (DP-starJ)",
                  dpstarj::Format("%.0f", truth),
                  dpstarj::Format("%.0f", pm.estimate),
                  dpstarj::Format("%.2f",
                                  dpstarj::RelativeErrorPercent(pm.estimate, truth)),
                  dpstarj::Format("%.4f", pm.seconds)});

    dpstarj::graph::KStarR2tOptions r2t_options;
    r2t_options.time_limit_s = 10.0;
    auto r2t = dpstarj::graph::AnswerKStarWithR2t(graph, query, epsilon, &rng,
                                                  r2t_options);
    if (r2t.ok()) {
      table.AddRow(
          {dpstarj::Format("%d-star", k), "R2T", dpstarj::Format("%.0f", truth),
           dpstarj::Format("%.0f", r2t->estimate),
           dpstarj::Format("%.2f",
                           dpstarj::RelativeErrorPercent(r2t->estimate, truth)),
           dpstarj::Format("%.4f", r2t->seconds)});
    } else {
      table.AddRow({dpstarj::Format("%d-star", k), "R2T", "-", "-",
                    "over time limit", "-"});
    }

    dpstarj::graph::KStarTmOptions tm_options;
    tm_options.time_limit_s = 10.0;
    auto tm = dpstarj::graph::AnswerKStarWithTm(graph, query, epsilon, &rng,
                                                tm_options);
    if (tm.ok()) {
      table.AddRow(
          {dpstarj::Format("%d-star", k), "TM", dpstarj::Format("%.0f", truth),
           dpstarj::Format("%.0f", tm->estimate),
           dpstarj::Format("%.2f",
                           dpstarj::RelativeErrorPercent(tm->estimate, truth)),
           dpstarj::Format("%.4f", tm->seconds)});
    } else {
      table.AddRow({dpstarj::Format("%d-star", k), "TM", "-", "-",
                    "over time limit", "-"});
    }
  }

  std::printf("\nDP k-star counting at epsilon = %.2f\n", epsilon);
  table.Print();
  std::printf(
      "\nPM answers from a degree index after perturbing the node-range\n"
      "predicate; the baselines pay the self-join enumeration cost, which is\n"
      "why they blow up on 3-stars (Table 2 of the paper).\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  double epsilon = argc > 2 ? std::atof(argv[2]) : 0.5;
  Status st = Run(scale, epsilon);
  if (!st.ok()) {
    std::fprintf(stderr, "graph_kstar failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
