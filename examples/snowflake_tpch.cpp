// Snowflake scenario (paper §5.3): the TPC-H chain
// Lineitem→Orders→Customer→Nation→Region is flattened into a star so the
// Predicate Mechanism applies to queries whose predicates sit deep in the
// hierarchy (Region.name, three joins away from the fact table).
//
//   $ ./snowflake_tpch [scale_factor=0.01] [epsilon=0.5]

#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"
#include "core/dp_star_join.h"
#include "core/snowflake.h"
#include "tpch/tpch_mini.h"

using dpstarj::Status;

namespace {

Status Run(double scale_factor, double epsilon) {
  dpstarj::tpch::TpchOptions options;
  options.scale_factor = scale_factor;
  DPSTARJ_ASSIGN_OR_RETURN(auto snowflake_catalog,
                           dpstarj::tpch::GenerateTpchMini(options));
  std::printf("TPC-H snowflake generated at scale %.3f\n", scale_factor);

  // Flatten: every dimension reachable from Lineitem becomes one wide table.
  DPSTARJ_ASSIGN_OR_RETURN(
      auto flat, dpstarj::core::FlattenedSnowflake::Flatten(snowflake_catalog,
                                                            dpstarj::tpch::kLineitem));
  DPSTARJ_ASSIGN_OR_RETURN(auto mapped,
                           flat.MapColumn(dpstarj::tpch::kRegion, "name"));
  std::printf("Region.name now lives at %s.%s\n\n", mapped.first.c_str(),
              mapped.second.c_str());

  dpstarj::core::DpStarJoinOptions engine_options;
  engine_options.seed = 31;
  dpstarj::core::DpStarJoin engine(&flat.catalog(), engine_options);

  for (auto query : {dpstarj::tpch::QueryQtc(), dpstarj::tpch::QueryQts()}) {
    DPSTARJ_ASSIGN_OR_RETURN(auto star_query, flat.Rewrite(query));
    DPSTARJ_ASSIGN_OR_RETURN(auto truth, engine.TrueAnswer(star_query));
    DPSTARJ_ASSIGN_OR_RETURN(auto noisy, engine.Answer(star_query, epsilon));
    std::printf("%s: true %.0f | dp %.0f | rel. error %.2f%% (epsilon=%.2f)\n",
                query.name.c_str(), truth.scalar, noisy.scalar,
                dpstarj::RelativeErrorPercent(noisy.scalar, truth.scalar), epsilon);
  }
  std::printf(
      "\nThe rewrite is exact (pre-joins follow foreign keys), so the DP\n"
      "guarantee and the PMA sensitivities carry over unchanged.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  double epsilon = argc > 2 ? std::atof(argv[2]) : 0.5;
  Status st = Run(sf, epsilon);
  if (!st.ok()) {
    std::fprintf(stderr, "snowflake_tpch failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
