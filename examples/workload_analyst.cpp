// Workload scenario: an analyst submits a batch of correlated star-join
// counting queries (the paper's W1/W2). Workload Decomposition answers the
// batch with less error than independent per-query perturbation (Figure 9).
//
//   $ ./workload_analyst [scale_factor=0.02] [epsilon=0.5]

#include <cstdio>
#include <cstdlib>

#include "bench_util/table_printer.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "core/dp_star_join.h"
#include "ssb/ssb_generator.h"
#include "ssb/workloads.h"

using dpstarj::Status;

namespace {

double MeanAbsError(const std::vector<double>& est, const std::vector<double>& truth) {
  double acc = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += dpstarj::RelativeErrorPercent(est[i], truth[i]);
  }
  return truth.empty() ? 0 : acc / static_cast<double>(truth.size());
}

Status Run(double scale_factor, double epsilon) {
  dpstarj::ssb::SsbOptions options;
  options.scale_factor = scale_factor;
  DPSTARJ_ASSIGN_OR_RETURN(auto catalog, dpstarj::ssb::GenerateSsb(options));

  dpstarj::core::DpStarJoinOptions engine_options;
  engine_options.seed = 99;
  dpstarj::core::DpStarJoin engine(&catalog, engine_options);

  auto attributes = dpstarj::ssb::WorkloadAttributes();
  dpstarj::bench_util::TablePrinter table(
      {"workload", "queries", "PM mean err %", "WD mean err %"});

  for (const char* which : {"W1", "W2"}) {
    DPSTARJ_ASSIGN_OR_RETURN(auto workload,
                             std::string(which) == "W1" ? dpstarj::ssb::WorkloadW1()
                                                        : dpstarj::ssb::WorkloadW2());
    DPSTARJ_ASSIGN_OR_RETURN(auto truth, engine.TrueWorkload(workload, attributes));
    DPSTARJ_ASSIGN_OR_RETURN(
        auto pm, engine.AnswerWorkload(workload, attributes, epsilon, false));
    DPSTARJ_ASSIGN_OR_RETURN(
        auto wd, engine.AnswerWorkload(workload, attributes, epsilon, true));
    table.AddRow({which, dpstarj::Format("%d", workload.size()),
                  dpstarj::Format("%.2f", MeanAbsError(pm, truth)),
                  dpstarj::Format("%.2f", MeanAbsError(wd, truth))});
  }

  std::printf("workload answering at epsilon = %.2f (scale factor %.3f)\n\n",
              epsilon, scale_factor);
  table.Print();
  std::printf(
      "\nWD perturbs a strategy of interval predicates once per dimension and\n"
      "reconstructs every query from it; correlated queries share the noise.\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  double epsilon = argc > 2 ? std::atof(argv[2]) : 0.5;
  Status st = Run(sf, epsilon);
  if (!st.ok()) {
    std::fprintf(stderr, "workload_analyst failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
