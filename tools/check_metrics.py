#!/usr/bin/env python3
"""Prometheus /metrics exposition checker (CI: no network, no deps).

Parses a text-format (0.0.4) scrape dumped by
`dpstarj-server --selfcheck --metrics-dump FILE` and verifies:
  * every sample line parses (`name{labels} value`) and its metric family
    has both `# HELP` and `# TYPE` comments;
  * counter and histogram sample values are finite and non-negative;
  * every histogram family has a `+Inf` bucket per label set, its bucket
    counts are cumulative (non-decreasing in `le`), and the `+Inf` bucket
    equals the family's `_count`;
  * the core DP-starJ series exist: query lifecycle counters, the
    per-outcome duration histogram, the per-stage histogram, per-tenant
    epsilon gauges, and the HTTP front-door counters.

Usage: check_metrics.py METRICS_FILE [REQUIRED_SERIES ...]
Extra arguments add required metric-family names on top of the built-in
set. Exits non-zero listing every violation.
"""

import math
import re
import sys
from pathlib import Path

# `name{labels} value` / `name value`. Label values may contain escaped
# quotes/backslashes/newlines per the exposition format.
SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*",?)*)\})?'
    r' (\S+)$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')

# Metric families GET /metrics must always expose (populated by the
# selfcheck's query burst); see docs/operations.md for the full catalog.
REQUIRED = [
    "dpstarj_queries_submitted_total",
    "dpstarj_queries_completed_total",
    "dpstarj_query_duration_seconds",
    "dpstarj_stage_duration_seconds",
    "dpstarj_tenant_epsilon_total",
    "dpstarj_tenant_epsilon_spent",
    "dpstarj_tenant_epsilon_remaining",
    "dpstarj_http_connections_total",
    "dpstarj_http_requests_total",
    "dpstarj_queue_depth",
    "dpstarj_workload_batches_total",
    "dpstarj_workload_queries_total",
    "dpstarj_workload_cache_skips_total",
    "dpstarj_workload_batch_size",
    "dpstarj_workload_duration_seconds",
    # Profiling subsystem (PR 9). The stage counter families are present in
    # both profiler modes; dpstarj_profiler_mode says which one filled them.
    "dpstarj_profiler_mode",
    "dpstarj_build_info",
    "dpstarj_process_uptime_seconds",
    "dpstarj_stage_cycles_total",
    "dpstarj_stage_instructions_total",
    "dpstarj_stage_llc_misses_total",
    "dpstarj_stage_branch_misses_total",
    "dpstarj_stage_task_clock_ns_total",
    "dpstarj_worker_busy_seconds",
    "dpstarj_worker_tasks",
    "dpstarj_queue_depth_sampled",
    "dpstarj_profile_captures_total",
    "dpstarj_profile_samples_total",
    # Streaming ingest (PR 10): batch/row counters, the service-side apply
    # histogram, the /v1/ingest end-to-end histogram, and the plan-cache
    # extend-vs-recompile gauges.
    "dpstarj_ingest_batches_total",
    "dpstarj_ingest_rows_total",
    "dpstarj_ingest_duration_seconds",
    "dpstarj_ingest_api_duration_seconds",
    "dpstarj_plan_extends",
    "dpstarj_plan_recompiles",
]


def family_of(sample_name: str, typed: dict) -> str:
    """Maps a sample name to its metric family (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
        if base and typed.get(base) == "histogram":
            return base
    return sample_name


def parse(text: str):
    """Returns (helped, typed, samples, errors); samples are
    (line_no, name, {label: value}, float)."""
    helped, typed, samples, errors = set(), {}, [], []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(None, 3)[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 4)
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        name, label_blob, value_str = m.group(1), m.group(2) or "", m.group(3)
        try:
            value = float(value_str)
        except ValueError:
            errors.append(f"line {line_no}: bad value {value_str!r} for {name}")
            continue
        labels = {k: v for k, v in LABEL_RE.findall(label_blob)}
        samples.append((line_no, name, labels, value))
    return helped, typed, samples, errors


def check(text: str, required):
    helped, typed, samples, errors = parse(text)
    families_seen = set()

    # Histogram accounting: family -> non-le label tuple -> {le: count}.
    buckets, counts = {}, {}
    for line_no, name, labels, value in samples:
        family = family_of(name, typed)
        families_seen.add(family)
        if family not in typed:
            errors.append(f"line {line_no}: {name} has no # TYPE comment")
        if family not in helped:
            errors.append(f"line {line_no}: {name} has no # HELP comment")
        kind = typed.get(family)
        if kind in ("counter", "histogram"):
            if not (math.isfinite(value) and value >= 0):
                errors.append(
                    f"line {line_no}: {kind} {name} has value {value}")
        if kind == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                errors.append(f"line {line_no}: {name} bucket without le label")
                continue
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            buckets.setdefault(family, {}).setdefault(key, {})[le] = value
        if kind == "histogram" and name.endswith("_count"):
            key = tuple(sorted(labels.items()))
            counts.setdefault(family, {})[key] = value

    for family, children in buckets.items():
        for key, by_le in children.items():
            if "+Inf" not in by_le:
                errors.append(f"{family}{dict(key)}: no +Inf bucket")
                continue
            finite = sorted((le for le in by_le if le != "+Inf"), key=float)
            ordered = [by_le[le] for le in finite] + [by_le["+Inf"]]
            if any(a > b for a, b in zip(ordered, ordered[1:])):
                errors.append(
                    f"{family}{dict(key)}: bucket counts not cumulative")
            total = counts.get(family, {}).get(key)
            if total is not None and total != by_le["+Inf"]:
                errors.append(
                    f"{family}{dict(key)}: +Inf bucket {by_le['+Inf']} != "
                    f"_count {total}")

    for name in required:
        if name not in families_seen:
            errors.append(f"required metric family missing: {name}")

    return errors, len(samples)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"{path}: file not found", file=sys.stderr)
        return 1
    errors, num_samples = check(path.read_text(encoding="utf-8"),
                                REQUIRED + argv[2:])
    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if not errors:
        print(f"{path}: {num_samples} samples ok")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
