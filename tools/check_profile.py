#!/usr/bin/env python3
"""Folded-stack profile checker (CI: no network, no deps).

Validates a GET /v1/profile capture dumped by
`dpstarj-server --selfcheck --profile-dump FILE`:
  * every line is `frame;frame;...;frame COUNT` — the count is the last
    space-separated token and must be a positive integer (demangled C++
    frames legitimately contain spaces, commas and angle brackets, so
    everything before that token is the stack);
  * every line has at least one frame and no empty frame (`;;`);
  * lines are sorted by count, descending (ties broken lexicographically)
    — the order the server promises so `head` shows the hottest stacks;
  * at least one sample landed in the engine: a stack whose root frame is
    a `dpsj-eng` worker thread or that contains a `dpstarj::` frame.
    This is what proves the capture profiled real query execution rather
    than idle pool threads parked in futex waits.

Usage: check_profile.py PROFILE_FILE [MIN_SAMPLES]
Exits non-zero listing every violation. MIN_SAMPLES (default 1) is the
minimum total sample count across all stacks.
"""

import sys
from pathlib import Path


def check(text: str, min_samples: int):
    errors = []
    total = 0
    engine_lines = 0
    prev = None  # previous line's count, for order checking
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        errors.append("capture is empty")
    for line_no, line in enumerate(lines, start=1):
        stack, sep, count_str = line.rpartition(" ")
        if not sep or not count_str.isdigit() or int(count_str) <= 0:
            errors.append(
                f"line {line_no}: no positive trailing count: {line[:80]!r}")
            continue
        count = int(count_str)
        total += count
        frames = stack.split(";")
        if not stack or any(not f for f in frames):
            errors.append(f"line {line_no}: empty frame in {stack[:80]!r}")
            continue
        if frames[0].startswith("dpsj-eng") or "dpstarj::" in stack:
            engine_lines += 1
        if prev is not None and count > prev:
            errors.append(
                f"line {line_no}: counts not sorted descending "
                f"({prev} then {count})")
        prev = count

    if total < min_samples:
        errors.append(f"only {total} samples total, need >= {min_samples}")
    if not errors and engine_lines == 0:
        errors.append(
            "no engine-frame samples (no dpsj-eng root, no dpstarj:: frame) "
            "— capture ran without query load?")
    return errors, total, engine_lines


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"{path}: file not found", file=sys.stderr)
        return 1
    min_samples = int(argv[2]) if len(argv) > 2 else 1
    errors, total, engine = check(path.read_text(encoding="utf-8"),
                                  min_samples)
    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if not errors:
        print(f"{path}: {total} samples ok ({engine} engine stacks)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
