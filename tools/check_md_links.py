#!/usr/bin/env python3
"""Markdown link checker for the repo's docs tree (CI: no network, no deps).

Verifies every inline link/image target in the given markdown files:
  * relative paths must exist on disk (anchors stripped first);
  * intra-repo anchors (`#...`, on the same file or a linked .md file) must
    match a heading's GitHub-style slug;
  * http(s)/mailto targets are skipped — CI has no business hitting the
    network, and external rot is a different problem from tree rot.

Usage: check_md_links.py FILE.md [FILE.md ...]
Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

# Inline links and images: [text](target) / ![alt](target). Good enough for
# this repo's markdown; reference-style links are not used here.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)  # drop punctuation (incl. backticks)
    return text.replace(" ", "-")


def heading_slugs(md_path: Path) -> set:
    content = CODE_FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(content)}


def check_file(md_path: Path) -> list:
    errors = []
    content = CODE_FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md_path}: broken link '{target}' "
                              f"(no such file: {path_part})")
                continue
        else:
            resolved = md_path
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                errors.append(f"{md_path}: broken anchor '{target}' "
                              f"(no heading slugs to '#{anchor}' in "
                              f"{resolved.name})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
        checked += 1
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"{checked} files ok")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
