#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON emitted by the bench binaries.

Compares a fresh `--json` run against a checked-in baseline (e.g.
BENCH_engine.json). Because CI machines and workstations differ in absolute
speed, the gate is *ratio-based*: within each bench group it normalises every
config's rows/sec by the group's slowest baseline config, and requires the
candidate's speedup ratios to stay within --tolerance of the baseline's.
A regression in, say, the plan-warm fast path shows up as a collapsed
warm/uncached ratio no matter how fast the host is.

When BOTH files carry non-zero `cycles_per_row` columns for a record (i.e.
both runs had perf-counter access), the gate additionally bounds the
candidate's cycles/row at (1 + --cycle-tolerance) x baseline — a
frequency-independent check that catches "same wall clock, twice the work"
regressions that scaling governors can mask. Records where either side is 0
(no PMU: most CI containers) are skipped with a note, never failed.

Usage:
    tools/check_bench.py BASELINE.json CANDIDATE.json [--tolerance 0.5]

Exit status 0 when every ratio holds, 1 otherwise. Both the current
{"host": {...}, "records": [...]} format and the legacy flat-array format are
accepted (the legacy format simply has no host block to print).
"""

import argparse
import json
import re
import sys


def load_records(path):
    """Returns (host_dict_or_None,
    {(bench, normalised_config): (rows_per_sec, cycles_per_row)}).
    cycles_per_row is 0.0 for records predating the counter columns."""
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        host, records = doc.get("host"), doc["records"]
    else:  # legacy flat array
        host, records = None, doc
    out = {}
    for r in records:
        out[(r["bench"], normalise(r["config"]))] = (
            float(r["rows_per_sec"]),
            float(r.get("cycles_per_row", 0.0)),
        )
    return host, out


def normalise(config):
    """Strips run-dependent numbers (measured speedups, host annotations) so
    configs from different runs line up."""
    config = re.sub(r"speedup=[0-9.]+x", "speedup", config)
    config = re.sub(r"\s*\[[0-9]+-core host\]", "", config)  # legacy suffix
    return config.strip()


def group_ratios(records):
    """Per bench group: every config's rows/sec over the group's slowest."""
    groups = {}
    for (bench, config), (rps, _cycles) in records.items():
        groups.setdefault(bench, {})[config] = rps
    ratios = {}
    for bench, configs in groups.items():
        if len(configs) < 2:
            continue  # nothing to normalise against
        floor = min(configs.values())
        if floor <= 0:
            continue
        ratios[bench] = {c: rps / floor for c, rps in configs.items()}
    return ratios


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional drop in any within-group speedup ratio "
        "(default 0.5: the candidate ratio must be >= 50%% of baseline)",
    )
    ap.add_argument(
        "--cycle-tolerance",
        type=float,
        default=0.5,
        help="allowed fractional growth in cycles/row when both runs carry "
        "hardware counts (default 0.5: candidate <= 1.5x baseline)",
    )
    args = ap.parse_args()

    base_host, base = load_records(args.baseline)
    cand_host, cand = load_records(args.candidate)
    for label, host in (("baseline", base_host), ("candidate", cand_host)):
        if host:
            print(
                f"{label} host: {host.get('cores')} cores, isa={host.get('isa')}, "
                f"l2={host.get('l2_bytes')}"
            )

    base_ratios = group_ratios(base)
    cand_ratios = group_ratios(cand)

    failures = []
    checked = 0
    for bench, configs in sorted(base_ratios.items()):
        if bench not in cand_ratios:
            failures.append(f"{bench}: group missing from candidate run")
            continue
        for config, base_r in sorted(configs.items()):
            cand_r = cand_ratios[bench].get(config)
            if cand_r is None:
                failures.append(f"{bench} [{config}]: config missing from candidate run")
                continue
            checked += 1
            floor_r = base_r * (1.0 - args.tolerance)
            verdict = "ok" if cand_r >= floor_r else "REGRESSED"
            print(
                f"  {verdict:9s} {bench} [{config}]: "
                f"baseline x{base_r:.2f} candidate x{cand_r:.2f} (floor x{floor_r:.2f})"
            )
            if cand_r < floor_r:
                failures.append(
                    f"{bench} [{config}]: speedup ratio fell to x{cand_r:.2f} "
                    f"(baseline x{base_r:.2f}, floor x{floor_r:.2f})"
                )

    # Cycle gate: absolute-ish (cycles/row is frequency-independent), but only
    # meaningful when both runs actually counted cycles.
    cycle_checked = cycle_skipped = 0
    for key, (base_rps, base_cyc) in sorted(base.items()):
        cand_entry = cand.get(key)
        if cand_entry is None:
            continue  # already reported by the ratio gate
        cand_cyc = cand_entry[1]
        if base_cyc <= 0 or cand_cyc <= 0:
            cycle_skipped += 1
            continue
        cycle_checked += 1
        bench, config = key
        ceiling = base_cyc * (1.0 + args.cycle_tolerance)
        verdict = "ok" if cand_cyc <= ceiling else "REGRESSED"
        print(
            f"  {verdict:9s} {bench} [{config}]: cycles/row "
            f"baseline {base_cyc:.1f} candidate {cand_cyc:.1f} "
            f"(ceiling {ceiling:.1f})"
        )
        if cand_cyc > ceiling:
            failures.append(
                f"{bench} [{config}]: cycles/row grew to {cand_cyc:.1f} "
                f"(baseline {base_cyc:.1f}, ceiling {ceiling:.1f})"
            )
    if cycle_skipped:
        print(
            f"cycle gate: {cycle_checked} records checked, {cycle_skipped} "
            "skipped (no hardware counts on one side)"
        )

    print(f"checked {checked} ratios across {len(base_ratios)} bench groups")
    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
