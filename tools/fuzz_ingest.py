#!/usr/bin/env python3
"""Wire-level fuzzer for POST /v1/ingest (CI: no network deps, fixed seed).

Spawns a dpstarj-server on an ephemeral port, then throws a budget of
mutated ingest bodies at it: random byte flips, insertions, deletions,
truncations and duplications of a valid JSON batch, plus a few structural
edits (wrong types, giant bodies past the 1 MB cap). The server must answer
every one of them from the 2xx/4xx vocabulary of docs/wire-protocol.md —

  200           the mutation kept the body valid,
  400           malformed JSON / wrong shape / schema-invalid rows,
  404           the table name got mangled,
  413           the body outgrew the parser's cap,

never a 5xx, never a dropped connection, and never a crash: after the
budget the server must still answer /healthz and drain cleanly on SIGINT
with exit code 0. A fixed default seed keeps CI deterministic; override it
(and the iteration budget) to widen the search locally.

Usage: fuzz_ingest.py --server PATH [--iterations N] [--seed N] [--sf S]
"""

import argparse
import http.client
import json
import random
import re
import signal
import subprocess
import sys
import time

LISTEN_RE = re.compile(r"listening on http://([0-9.]+):([0-9]+)")

# Statuses the wire protocol allows for an ingest request, however mangled.
ACCEPTABLE = {200, 400, 404, 413}


def valid_body():
    """A well-formed two-row batch for the SSB Lineorder fact table."""
    return json.dumps({
        "table": "Lineorder",
        "rows": [
            [900001, 1, 1, 1, 1, 5, 1234.5, 100.25],
            [900002, 1, 1, 1, 2, 3, 99.0, 42.5],
        ],
    })


def mutate(body: str, rng: random.Random) -> bytes:
    """One random mutation of `body` (operating on bytes, like a real fuzzer)."""
    data = bytearray(body.encode())
    op = rng.randrange(8)
    if op == 0 and data:  # flip random bytes
        for _ in range(rng.randint(1, 8)):
            data[rng.randrange(len(data))] = rng.randrange(256)
    elif op == 1 and data:  # delete a span
        start = rng.randrange(len(data))
        del data[start:start + rng.randint(1, 16)]
    elif op == 2:  # insert random bytes
        start = rng.randrange(len(data) + 1)
        data[start:start] = bytes(rng.randrange(256)
                                  for _ in range(rng.randint(1, 16)))
    elif op == 3 and data:  # truncate
        del data[rng.randrange(len(data)):]
    elif op == 4:  # duplicate a span
        start = rng.randrange(len(data) + 1)
        span = data[start:start + rng.randint(1, 32)]
        data[start:start] = span
    elif op == 5:  # structural: retype a field
        doc = json.loads(body)
        choice = rng.randrange(4)
        if choice == 0:
            doc["table"] = rng.choice([7, None, [], "NoSuchTable", ""])
        elif choice == 1:
            doc["rows"] = rng.choice([{}, "rows", 3.5, None, [[]], [{}]])
        elif choice == 2:
            doc["rows"][0][rng.randrange(8)] = rng.choice(
                [None, True, [], {}, "x", 1e308, -1e308])
        else:
            doc["rows"][0] = doc["rows"][0][:rng.randrange(8)]  # wrong arity
        data = bytearray(json.dumps(doc).encode())
    elif op == 6:  # giant body: must hit the parser's 1 MB cap (413)
        doc = json.loads(body)
        doc["rows"] = [doc["rows"][0]] * 40000
        data = bytearray(json.dumps(doc).encode())
    # op == 7: send the body unmodified (the 200 path stays in rotation)
    return bytes(data)


def post(host, port, path, payload):
    """One request on a fresh connection; returns the status code."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        try:
            conn.request("POST", path, body=payload,
                         headers={"Content-Type": "application/json"})
        except (BrokenPipeError, ConnectionResetError):
            # A legitimate mid-upload rejection: an over-cap Content-Length
            # gets an early 413 + close while we are still writing the body.
            # The response is already on the socket; a real crash surfaces
            # below when getresponse() finds the socket empty.
            pass
        resp = conn.getresponse()
        resp.read()
        return resp.status
    finally:
        conn.close()


def healthz_ok(host, port):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", "/healthz")
        return conn.getresponse().status == 200
    except OSError:
        return False
    finally:
        conn.close()


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True,
                        help="path to the dpstarj-server binary")
    parser.add_argument("--iterations", type=int, default=300)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--sf", type=float, default=0.002,
                        help="SSB scale factor for the fuzzed instance")
    args = parser.parse_args(argv[1:])

    proc = subprocess.Popen(
        [args.server, "--port", "0", "--sf", str(args.sf)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    host = port = None
    deadline = time.monotonic() + 60
    try:
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                print("server exited before listening", file=sys.stderr)
                return 1
            m = LISTEN_RE.search(line)
            if m:
                host, port = m.group(1), int(m.group(2))
                break
        if port is None:
            print("server never announced its port", file=sys.stderr)
            return 1

        rng = random.Random(args.seed)
        base = valid_body()
        outcomes = {}
        failures = 0
        for i in range(args.iterations):
            payload = mutate(base, rng)
            try:
                status = post(host, port, "/v1/ingest", payload)
            except (OSError, http.client.HTTPException) as err:
                print(f"iteration {i}: connection failed ({err}) for "
                      f"{payload[:120]!r}", file=sys.stderr)
                failures += 1
                continue
            outcomes[status] = outcomes.get(status, 0) + 1
            if status not in ACCEPTABLE:
                print(f"iteration {i}: HTTP {status} for {payload[:120]!r}",
                      file=sys.stderr)
                failures += 1
        # The process must have survived the whole budget.
        if not healthz_ok(host, port):
            print("server unhealthy after fuzzing", file=sys.stderr)
            failures += 1
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            rc = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("server did not drain after SIGINT", file=sys.stderr)
            return 1

    if rc != 0:
        print(f"server exited {rc} after fuzzing", file=sys.stderr)
        return 1
    if failures:
        print(f"{failures} violations", file=sys.stderr)
        return 1
    summary = ", ".join(f"{n}x {s}" for s, n in sorted(outcomes.items()))
    print(f"fuzz_ingest: {args.iterations} mutated bodies ok ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
