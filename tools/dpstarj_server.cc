// dpstarj-server — the DP-starJ query service behind the HTTP front door.
//
// Generates an SSB catalog (--sf), runs a QueryService over it, and serves
// the wire protocol of src/net/service_api.h until SIGINT/SIGTERM, then
// drains gracefully: the listen socket closes first, in-flight queries are
// answered, the pool shuts down, and the final service stats are printed.
//
//   $ ./dpstarj-server --port 8080 --sf 0.01 --default-budget 10
//   $ curl -s localhost:8080/healthz
//   $ curl -s -X POST localhost:8080/v1/tenants \
//       -d '{"tenant":"analytics","epsilon":2.0}'
//   $ curl -s -X POST localhost:8080/v1/query \
//       -d '{"sql":"SELECT count(*) FROM Date, Lineorder WHERE
//            Lineorder.orderdate = Date.datekey AND Date.year = 1993",
//            "epsilon":0.5,"tenant":"analytics"}'
//   $ curl -s localhost:8080/v1/tenants/analytics
//   $ curl -s localhost:8080/v1/stats
//
// --selfcheck runs the CI smoke path instead of waiting for traffic: an
// in-process net::Client registers a tenant, issues one query and one stats
// call, the process SIGINTs itself, and the exit code reports whether the
// round trips and the graceful drain all succeeded.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/client.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "service/query_service.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

namespace {

struct Flags {
  std::string host = "127.0.0.1";
  int port = 8080;
  double scale_factor = 0.01;
  int engines = 4;
  int queue = 256;
  int handler_threads = 8;
  double default_budget = 0.0;  // <= 0: tenants must be registered explicitly
  bool selfcheck = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host A] [--port N] [--sf S] [--engines N] [--queue N]\n"
      "          [--handler-threads N] [--default-budget E] [--selfcheck]\n"
      "  --port 0 picks an ephemeral port (printed on startup)\n"
      "  --default-budget E auto-registers unknown tenants with total eps E\n"
      "  --selfcheck: serve, run one client round trip, SIGINT itself, exit\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_num = [&](double* out) {
      if (i + 1 >= argc) return false;
      return ParseDouble(argv[++i], out);
    };
    double v = 0.0;
    if (arg == "--host" && i + 1 < argc) {
      flags->host = argv[++i];
    } else if (arg == "--port" && next_num(&v)) {
      if (v < 0 || v > 65535 || v != static_cast<int>(v)) {
        std::fprintf(stderr, "--port must be an integer in [0, 65535]\n");
        return false;
      }
      flags->port = static_cast<int>(v);
    } else if (arg == "--sf" && next_num(&v)) {
      flags->scale_factor = v;
    } else if (arg == "--engines" && next_num(&v)) {
      flags->engines = static_cast<int>(v);
    } else if (arg == "--queue" && next_num(&v)) {
      flags->queue = static_cast<int>(v);
    } else if (arg == "--handler-threads" && next_num(&v)) {
      flags->handler_threads = static_cast<int>(v);
    } else if (arg == "--default-budget" && next_num(&v)) {
      flags->default_budget = v;
    } else if (arg == "--selfcheck") {
      flags->selfcheck = true;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

// The selfcheck client: one full protocol round trip against the live
// server, then a process-directed SIGINT so the main thread's sigwait-based
// drain path is exercised exactly as an operator's Ctrl-C would.
int RunSelfcheck(const std::string& host, uint16_t port) {
  net::Client client(host, port);

  auto health = client.Get("/healthz");
  if (!health.ok() || health->status != 200) {
    std::fprintf(stderr, "selfcheck: /healthz failed: %s\n",
                 health.ok() ? Format("HTTP %d", health->status).c_str()
                             : health.status().ToString().c_str());
    return 1;
  }
  auto reg = client.Post("/v1/tenants",
                         "{\"tenant\":\"smoke\",\"epsilon\":2.0}");
  if (!reg.ok() || reg->status != 201) {
    std::fprintf(stderr, "selfcheck: tenant registration failed\n");
    return 1;
  }
  auto sql = ssb::GetQuerySql("Qc1");
  if (!sql.ok()) {
    std::fprintf(stderr, "selfcheck: %s\n", sql.status().ToString().c_str());
    return 1;
  }
  net::Json query = net::Json::Object();
  query.Set("sql", net::Json::Str(*sql));
  query.Set("epsilon", net::Json::Number(0.5));
  query.Set("tenant", net::Json::Str("smoke"));
  auto answer = client.Post("/v1/query", query.Dump());
  if (!answer.ok() || answer->status != 200) {
    std::fprintf(stderr, "selfcheck: query failed: %s\n",
                 answer.ok() ? answer->body.c_str()
                             : answer.status().ToString().c_str());
    return 1;
  }
  auto body = net::Client::ParseBody(*answer);
  if (!body.ok() || body->Find("scalar") == nullptr) {
    std::fprintf(stderr, "selfcheck: malformed answer body\n");
    return 1;
  }
  auto account = client.Get("/v1/tenants/smoke");
  if (!account.ok() || account->status != 200) {
    std::fprintf(stderr, "selfcheck: account lookup failed\n");
    return 1;
  }
  auto stats = client.Get("/v1/stats");
  if (!stats.ok() || stats->status != 200) {
    std::fprintf(stderr, "selfcheck: stats failed\n");
    return 1;
  }
  std::printf("selfcheck: noisy answer %s\n", answer->body.c_str());
  std::printf("selfcheck: account %s\n", account->body.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;
  Logger::SetLevel(LogLevel::kInfo);

  // Block SIGINT/SIGTERM in every thread (children inherit the mask); the
  // main thread collects them with sigwait below — the only async-signal-safe
  // way to run a multi-thread drain from a signal.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  std::printf("generating SSB catalog at sf=%g ...\n", flags.scale_factor);
  ssb::SsbOptions ssb_options;
  ssb_options.scale_factor = flags.scale_factor;
  auto catalog = ssb::GenerateSsb(ssb_options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  service::ServiceOptions service_options;
  service_options.num_engines = flags.engines;
  service_options.queue_capacity = static_cast<size_t>(flags.queue);
  if (flags.default_budget > 0.0) {
    service_options.default_tenant_budget = flags.default_budget;
  }
  service::QueryService service(&*catalog, service_options);

  net::ServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.handler_threads = flags.handler_threads;
  net::HttpServer server(net::MakeServiceRouter(&service), server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("dpstarj-server listening on http://%s:%u (engines=%d, queue=%d)\n",
              server.host().c_str(), server.port(), flags.engines, flags.queue);

  std::thread selfcheck;
  int selfcheck_rc = 0;
  if (flags.selfcheck) {
    selfcheck = std::thread([&] {
      selfcheck_rc = RunSelfcheck(flags.host, server.port());
      // Drive the normal shutdown path; process-directed so sigwait sees it.
      kill(getpid(), SIGINT);
    });
  }

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("\n%s received, draining ...\n", strsignal(sig));
  if (selfcheck.joinable()) selfcheck.join();

  server.Stop();
  service.Shutdown();

  net::ServerStats net_stats = server.GetStats();
  std::printf("server: %llu connections (%llu rejected), %llu requests "
              "(%llu bad)\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.connections_rejected),
              static_cast<unsigned long long>(net_stats.requests_handled),
              static_cast<unsigned long long>(net_stats.bad_requests));
  std::printf("service: %s\n", service.Stats().ToString().c_str());
  return selfcheck_rc;
}
