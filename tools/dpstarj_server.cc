// dpstarj-server — the DP-starJ query service behind the HTTP front door.
//
// Generates an SSB catalog (--sf), runs a QueryService over it, and serves
// the wire protocol of src/net/service_api.h until SIGINT/SIGTERM, then
// drains gracefully: the listen socket closes first, in-flight queries are
// answered, the pool shuts down, and the final service stats are printed.
//
//   $ ./dpstarj-server --port 8080 --sf 0.01 --default-budget 10
//   $ curl -s localhost:8080/healthz
//   $ curl -s -X POST localhost:8080/v1/tenants \
//       -d '{"tenant":"analytics","epsilon":2.0}'
//   $ curl -s -X POST localhost:8080/v1/query \
//       -d '{"sql":"SELECT count(*) FROM Date, Lineorder WHERE
//            Lineorder.orderdate = Date.datekey AND Date.year = 1993",
//            "epsilon":0.5,"tenant":"analytics"}'
//   $ curl -s localhost:8080/v1/tenants/analytics
//   $ curl -s localhost:8080/v1/stats
//
// --selfcheck runs the CI smoke path instead of waiting for traffic: an
// in-process net::Client registers a tenant, issues one query and one stats
// call, the process SIGINTs itself, and the exit code reports whether the
// round trips and the graceful drain all succeeded.

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/parallel.h"
#include "net/client.h"
#include "obs/access_log.h"
#include "obs/metrics.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "service/query_service.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

namespace {

struct Flags {
  std::string host = "127.0.0.1";
  int port = 8080;
  double scale_factor = 0.01;
  int engines = 4;
  int queue = 256;
  int handler_threads = 8;
  double default_budget = 0.0;  // <= 0: tenants must be registered explicitly
  // Connection deadlines (0 disables one); see docs/operations.md.
  int header_timeout_ms = 10'000;
  int body_timeout_ms = 30'000;
  int idle_timeout_ms = 60'000;
  int write_timeout_ms = 30'000;
  // Default per-tenant fair-admission limits (0 disables one); overridable
  // per tenant via POST /v1/tenants.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  int tenant_inflight = 0;
  // Telemetry: JSON-lines access log ("" disables, "-" = stdout) and the
  // slow-request WARN threshold (0 disables).
  std::string access_log;
  int slow_query_ms = 0;
  bool selfcheck = false;
  // Pin engine-pool scan workers round-robin to cores (exec/parallel.h).
  bool pin_workers = false;
  // With --selfcheck: write the scraped /metrics body here so CI can run
  // tools/check_metrics.py against a real exposition.
  std::string metrics_dump;
  // With --selfcheck: capture GET /v1/profile under a query load and write
  // the folded stacks here (CI feeds it to tools/check_profile.py).
  std::string profile_dump;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host A] [--port N] [--sf S] [--engines N] [--queue N]\n"
      "          [--handler-threads N] [--default-budget E]\n"
      "          [--header-timeout-ms N] [--body-timeout-ms N]\n"
      "          [--idle-timeout-ms N] [--write-timeout-ms N]\n"
      "          [--tenant-rate Q] [--tenant-burst B]\n"
      "          [--tenant-inflight N] [--access-log PATH]\n"
      "          [--slow-query-ms N] [--pin-workers] [--selfcheck]\n"
      "          [--metrics-dump PATH] [--profile-dump PATH]\n"
      "  --port 0 picks an ephemeral port (printed on startup)\n"
      "  --default-budget E auto-registers unknown tenants with total eps E\n"
      "  --header/body/idle/write-timeout-ms: connection deadlines, 0 disables\n"
      "  --tenant-rate/burst/inflight: default per-tenant admission limits\n"
      "    (0 disables; per-tenant overrides via POST /v1/tenants)\n"
      "  --access-log PATH: JSON-lines per-request log with stage timings\n"
      "    ('-' = stdout); /metrics is always served regardless\n"
      "  --slow-query-ms N: WARN-log requests slower than N ms (0 disables)\n"
      "  --pin-workers: pin scan worker threads round-robin to cores\n"
      "    (steady-state dedicated hosts only; see docs/operations.md)\n"
      "  --selfcheck: serve, run one client round trip, SIGINT itself, exit\n"
      "  --metrics-dump PATH: with --selfcheck, save the /metrics scrape to\n"
      "    PATH (CI feeds it to tools/check_metrics.py)\n"
      "  --profile-dump PATH: with --selfcheck, capture GET /v1/profile under\n"
      "    a query load and save the folded stacks to PATH (CI feeds it to\n"
      "    tools/check_profile.py)\n"
      "  full reference: docs/operations.md\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_num = [&](double* out) {
      if (i + 1 >= argc) return false;
      return ParseDouble(argv[++i], out);
    };
    // Integer flags are range-checked BEFORE the cast — static_cast of an
    // out-of-int-range double is UB, same hardening as the wire's
    // max_in_flight validation in service_api.cc.
    auto next_int = [&](int* out) {
      double v = 0.0;
      if (!next_num(&v)) return false;
      if (!(v >= 0 && v <= 1e9) || v != std::floor(v)) {
        std::fprintf(stderr, "%s must be an integer in [0, 1e9]\n", arg.c_str());
        return false;
      }
      *out = static_cast<int>(v);
      return true;
    };
    double v = 0.0;
    if (arg == "--host" && i + 1 < argc) {
      flags->host = argv[++i];
    } else if (arg == "--port" && next_num(&v)) {
      if (!(v >= 0 && v <= 65535) || v != std::floor(v)) {
        std::fprintf(stderr, "--port must be an integer in [0, 65535]\n");
        return false;
      }
      flags->port = static_cast<int>(v);
    } else if (arg == "--sf" && next_num(&v)) {
      flags->scale_factor = v;
    } else if (arg == "--engines" && next_int(&flags->engines)) {
    } else if (arg == "--queue" && next_int(&flags->queue)) {
    } else if (arg == "--handler-threads" && next_int(&flags->handler_threads)) {
    } else if (arg == "--default-budget" && next_num(&v)) {
      flags->default_budget = v;
    } else if (arg == "--header-timeout-ms" && next_int(&flags->header_timeout_ms)) {
    } else if (arg == "--body-timeout-ms" && next_int(&flags->body_timeout_ms)) {
    } else if (arg == "--idle-timeout-ms" && next_int(&flags->idle_timeout_ms)) {
    } else if (arg == "--write-timeout-ms" && next_int(&flags->write_timeout_ms)) {
    } else if (arg == "--tenant-rate" && next_num(&v)) {
      flags->tenant_rate = v;
    } else if (arg == "--tenant-burst" && next_num(&v)) {
      flags->tenant_burst = v;
    } else if (arg == "--tenant-inflight" && next_int(&flags->tenant_inflight)) {
    } else if (arg == "--access-log" && i + 1 < argc) {
      flags->access_log = argv[++i];
    } else if (arg == "--slow-query-ms" && next_int(&flags->slow_query_ms)) {
    } else if (arg == "--pin-workers") {
      flags->pin_workers = true;
    } else if (arg == "--selfcheck") {
      flags->selfcheck = true;
    } else if (arg == "--metrics-dump" && i + 1 < argc) {
      flags->metrics_dump = argv[++i];
    } else if (arg == "--profile-dump" && i + 1 < argc) {
      flags->profile_dump = argv[++i];
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  // Same validation posture as the wire path (service_api.cc): reject what
  // would abort deeper in (a zero engine pool trips a CHECK) or silently
  // misbehave (NaN/negative admission limits).
  if (flags->engines < 1) {
    std::fprintf(stderr, "--engines must be >= 1\n");
    return false;
  }
  if (!std::isfinite(flags->tenant_rate) || flags->tenant_rate < 0.0 ||
      !std::isfinite(flags->tenant_burst) || flags->tenant_burst < 0.0) {
    std::fprintf(stderr, "--tenant-rate/--tenant-burst must be finite and >= 0\n");
    return false;
  }
  if (!std::isfinite(flags->scale_factor) || flags->scale_factor <= 0.0) {
    std::fprintf(stderr, "--sf must be positive and finite\n");
    return false;
  }
  return true;
}

// The selfcheck client: one full protocol round trip against the live
// server, then a process-directed SIGINT so the main thread's sigwait-based
// drain path is exercised exactly as an operator's Ctrl-C would.
int RunSelfcheck(const std::string& host, uint16_t port,
                 const std::string& metrics_dump,
                 const std::string& profile_dump) {
  net::Client client(host, port);

  auto health = client.Get("/healthz");
  if (!health.ok() || health->status != 200) {
    std::fprintf(stderr, "selfcheck: /healthz failed: %s\n",
                 health.ok() ? Format("HTTP %d", health->status).c_str()
                             : health.status().ToString().c_str());
    return 1;
  }
  auto reg = client.Post("/v1/tenants",
                         "{\"tenant\":\"smoke\",\"epsilon\":2.0}");
  if (!reg.ok() || reg->status != 201) {
    std::fprintf(stderr, "selfcheck: tenant registration failed\n");
    return 1;
  }
  auto sql = ssb::GetQuerySql("Qc1");
  if (!sql.ok()) {
    std::fprintf(stderr, "selfcheck: %s\n", sql.status().ToString().c_str());
    return 1;
  }
  net::Json query = net::Json::Object();
  query.Set("sql", net::Json::Str(*sql));
  query.Set("epsilon", net::Json::Number(0.5));
  query.Set("tenant", net::Json::Str("smoke"));
  auto answer = client.Post("/v1/query", query.Dump());
  if (!answer.ok() || answer->status != 200) {
    std::fprintf(stderr, "selfcheck: query failed: %s\n",
                 answer.ok() ? answer->body.c_str()
                             : answer.status().ToString().c_str());
    return 1;
  }
  auto body = net::Client::ParseBody(*answer);
  if (!body.ok() || body->Find("scalar") == nullptr) {
    std::fprintf(stderr, "selfcheck: malformed answer body\n");
    return 1;
  }
  auto account = client.Get("/v1/tenants/smoke");
  if (!account.ok() || account->status != 200) {
    std::fprintf(stderr, "selfcheck: account lookup failed\n");
    return 1;
  }
  auto stats = client.Get("/v1/stats");
  if (!stats.ok() || stats->status != 200) {
    std::fprintf(stderr, "selfcheck: stats failed\n");
    return 1;
  }
  // Telemetry smoke: a small burst (cache replays — free under DP) so the
  // stage and duration histograms carry data, then both scrape endpoints.
  for (int i = 0; i < 8; ++i) {
    auto burst = client.Post("/v1/query", query.Dump());
    if (!burst.ok() || burst->status != 200) {
      std::fprintf(stderr, "selfcheck: burst query %d failed\n", i);
      return 1;
    }
    if (burst->FindHeader("X-DPStarJ-Trace-Id").empty()) {
      std::fprintf(stderr, "selfcheck: response missing X-DPStarJ-Trace-Id\n");
      return 1;
    }
  }
  // One /v1/workload batch: a cache replay of the query above plus two
  // fresh queries riding a single shared scan. Populates the workload
  // counters and batch-size/duration histograms before the scrape.
  net::Json batch = net::Json::Object();
  batch.Set("tenant", net::Json::Str("smoke"));
  net::Json batch_queries = net::Json::Array();
  for (const char* name : {"Qc1", "Qc2", "Qc3"}) {
    auto batch_sql = ssb::GetQuerySql(name);
    if (!batch_sql.ok()) {
      std::fprintf(stderr, "selfcheck: %s\n",
                   batch_sql.status().ToString().c_str());
      return 1;
    }
    net::Json entry = net::Json::Object();
    entry.Set("sql", net::Json::Str(*batch_sql));
    entry.Set("epsilon", net::Json::Number(0.5));
    batch_queries.Append(std::move(entry));
  }
  batch.Set("queries", std::move(batch_queries));
  auto workload = client.Post("/v1/workload", batch.Dump());
  if (!workload.ok() || workload->status != 200) {
    std::fprintf(stderr, "selfcheck: workload failed: %s\n",
                 workload.ok() ? workload->body.c_str()
                               : workload.status().ToString().c_str());
    return 1;
  }
  auto workload_body = net::Client::ParseBody(*workload);
  if (!workload_body.ok() || workload_body->Find("queries") == nullptr ||
      workload_body->Find("queries")->items().size() != 3 ||
      workload_body->Find("exec") == nullptr) {
    std::fprintf(stderr, "selfcheck: malformed workload body\n");
    return 1;
  }
  // Streaming-ingest round trip: append two fact rows (all FK values 1 —
  // every SSB dimension key space is 1-based, so they resolve at any scale
  // factor), check the epoch advanced, and re-run the query to confirm the
  // post-append answer is stamped with the new epoch (a fresh DP release;
  // the plan cache should extend rather than recompile underneath it).
  net::Json ingest = net::Json::Object();
  ingest.Set("table", net::Json::Str("Lineorder"));
  net::Json ingest_rows = net::Json::Array();
  for (int r = 0; r < 2; ++r) {
    net::Json row = net::Json::Array();
    for (double cell : {1e6 + r, 1.0, 1.0, 1.0, 1.0, 5.0, 1234.5, 100.25}) {
      row.Append(net::Json::Number(cell));
    }
    ingest_rows.Append(std::move(row));
  }
  ingest.Set("rows", std::move(ingest_rows));
  auto appended = client.Post("/v1/ingest", ingest.Dump());
  if (!appended.ok() || appended->status != 200) {
    std::fprintf(stderr, "selfcheck: ingest failed: %s\n",
                 appended.ok() ? appended->body.c_str()
                               : appended.status().ToString().c_str());
    return 1;
  }
  auto ingest_body = net::Client::ParseBody(*appended);
  if (!ingest_body.ok() || ingest_body->Find("version") == nullptr ||
      ingest_body->Find("version")->AsNumber() != 1.0 ||
      ingest_body->Find("appended") == nullptr ||
      ingest_body->Find("appended")->AsNumber() != 2.0) {
    std::fprintf(stderr, "selfcheck: malformed ingest body: %s\n",
                 appended->body.c_str());
    return 1;
  }
  // A short row must be refused whole (400, nothing appended).
  auto bad = client.Post(
      "/v1/ingest", "{\"table\":\"Lineorder\",\"rows\":[[1,2,3]]}");
  if (!bad.ok() || bad->status != 400) {
    std::fprintf(stderr, "selfcheck: malformed ingest row not rejected\n");
    return 1;
  }
  net::Json requery = net::Json::Object();
  requery.Set("sql", net::Json::Str(*sql));
  requery.Set("epsilon", net::Json::Number(0.25));
  requery.Set("tenant", net::Json::Str("smoke"));
  auto post_ingest = client.Post("/v1/query", requery.Dump());
  if (!post_ingest.ok() || post_ingest->status != 200) {
    std::fprintf(stderr, "selfcheck: post-ingest query failed\n");
    return 1;
  }
  auto post_body = net::Client::ParseBody(*post_ingest);
  if (!post_body.ok() || post_body->Find("epoch") == nullptr ||
      post_body->Find("epoch")->AsNumber() != 1.0) {
    std::fprintf(stderr, "selfcheck: post-ingest answer not at epoch 1: %s\n",
                 post_ingest->body.c_str());
    return 1;
  }
  if (!profile_dump.empty()) {
    // Capture GET /v1/profile while a second thread drives a steady query
    // load, so engine frames actually appear in the folded stacks. The load
    // tenant's epsilon varies per query, which defeats the answer cache —
    // every request runs a real scan instead of a sub-microsecond replay.
    auto prof_reg = client.Post("/v1/tenants",
                                "{\"tenant\":\"prof\",\"epsilon\":1e9}");
    if (!prof_reg.ok() || prof_reg->status != 201) {
      std::fprintf(stderr, "selfcheck: profile tenant registration failed\n");
      return 1;
    }
    std::atomic<bool> stop{false};
    std::thread load([&] {
      net::Client load_client(host, port);
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        net::Json q = net::Json::Object();
        q.Set("sql", net::Json::Str(*sql));
        q.Set("epsilon", net::Json::Number(0.01 + 1e-6 * i));
        q.Set("tenant", net::Json::Str("prof"));
        auto r = load_client.Post("/v1/query", q.Dump());
        if (!r.ok() || r->status != 200) break;
      }
    });
    // 499 Hz (prime: no aliasing against periodic work) for one second —
    // plenty of CPU-time ticks even on a one-core CI runner under load.
    auto profile = client.Get("/v1/profile?seconds=1&hz=499");
    stop.store(true, std::memory_order_relaxed);
    load.join();
    if (!profile.ok() || profile->status != 200 || profile->body.empty()) {
      std::fprintf(stderr, "selfcheck: /v1/profile failed: %s\n",
                   profile.ok() ? Format("HTTP %d body=%zu bytes",
                                         profile->status, profile->body.size())
                                      .c_str()
                                : profile.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(profile_dump.c_str(), "w");
    bool wrote =
        f != nullptr &&
        std::fwrite(profile->body.data(), 1, profile->body.size(), f) ==
            profile->body.size();
    if (f != nullptr && std::fclose(f) != 0) wrote = false;
    if (!wrote) {
      std::fprintf(stderr, "selfcheck: cannot write %s\n",
                   profile_dump.c_str());
      return 1;
    }
    std::printf("selfcheck: /v1/profile OK (%s samples, %zu bytes)\n",
                std::string(profile->FindHeader("X-DPStarJ-Profile-Samples"))
                    .c_str(),
                profile->body.size());
  }
  auto metrics = client.Get("/metrics");
  if (!metrics.ok() || metrics->status != 200) {
    std::fprintf(stderr, "selfcheck: /metrics failed\n");
    return 1;
  }
  for (const char* needle :
       {"dpstarj_queries_submitted_total", "dpstarj_queries_completed_total",
        "dpstarj_query_duration_seconds_bucket",
        "dpstarj_stage_duration_seconds_bucket",
        "dpstarj_tenant_epsilon_remaining", "dpstarj_http_requests_total",
        "dpstarj_workload_batches_total", "dpstarj_workload_batch_size_bucket",
        "dpstarj_workload_duration_seconds_bucket", "dpstarj_profiler_mode",
        "dpstarj_build_info", "dpstarj_process_uptime_seconds",
        "dpstarj_stage_cycles_total", "dpstarj_stage_task_clock_ns_total",
        "dpstarj_worker_busy_seconds", "dpstarj_queue_depth_sampled_bucket",
        "dpstarj_ingest_batches_total", "dpstarj_ingest_rows_total",
        "dpstarj_ingest_duration_seconds_bucket",
        "dpstarj_ingest_api_duration_seconds_bucket", "dpstarj_plan_extends",
        "dpstarj_plan_recompiles"}) {
    if (metrics->body.find(needle) == std::string::npos) {
      std::fprintf(stderr, "selfcheck: /metrics missing %s\n", needle);
      return 1;
    }
  }
  if (!metrics_dump.empty()) {
    std::FILE* f = std::fopen(metrics_dump.c_str(), "w");
    bool wrote =
        f != nullptr &&
        std::fwrite(metrics->body.data(), 1, metrics->body.size(), f) ==
            metrics->body.size();
    if (f != nullptr && std::fclose(f) != 0) wrote = false;
    if (!wrote) {
      std::fprintf(stderr, "selfcheck: cannot write %s\n",
                   metrics_dump.c_str());
      return 1;
    }
  }
  auto traces = client.Get("/v1/trace/stats");
  if (!traces.ok() || traces->status != 200) {
    std::fprintf(stderr, "selfcheck: /v1/trace/stats failed\n");
    return 1;
  }
  auto trace_body = net::Client::ParseBody(*traces);
  if (!trace_body.ok() || trace_body->Find("stages") == nullptr) {
    std::fprintf(stderr, "selfcheck: malformed /v1/trace/stats body\n");
    return 1;
  }
  std::printf("selfcheck: noisy answer %s\n", answer->body.c_str());
  std::printf("selfcheck: workload exec %s\n",
              workload_body->Find("exec")->Dump().c_str());
  std::printf("selfcheck: ingest %s\n", appended->body.c_str());
  std::printf("selfcheck: account %s\n", account->body.c_str());
  std::printf("selfcheck: /metrics OK (%zu bytes)\n", metrics->body.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;
  Logger::SetLevel(LogLevel::kInfo);

  // Block SIGINT/SIGTERM in every thread (children inherit the mask); the
  // main thread collects them with sigwait below — the only async-signal-safe
  // way to run a multi-thread drain from a signal.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  // Before any scan runs so the very first pool threads are pinned.
  if (flags.pin_workers) exec::MorselPool::SetPinWorkers(true);

  std::printf("generating SSB catalog at sf=%g ...\n", flags.scale_factor);
  ssb::SsbOptions ssb_options;
  ssb_options.scale_factor = flags.scale_factor;
  auto catalog = ssb::GenerateSsb(ssb_options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // One process-wide registry: the service's lifecycle counters, the API's
  // latency histograms and the HTTP layer's connection counters all land on
  // the same GET /metrics page.
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  service::ServiceOptions service_options;
  service_options.num_engines = flags.engines;
  service_options.queue_capacity = static_cast<size_t>(flags.queue);
  if (flags.default_budget > 0.0) {
    service_options.default_tenant_budget = flags.default_budget;
  }
  service_options.admission.defaults.rate_qps = flags.tenant_rate;
  service_options.admission.defaults.burst = flags.tenant_burst;
  service_options.admission.defaults.max_in_flight = flags.tenant_inflight;
  service_options.metrics = metrics;
  service::QueryService service(&*catalog, service_options);

  net::ServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.handler_threads = flags.handler_threads;
  server_options.header_timeout_ms = flags.header_timeout_ms;
  server_options.body_timeout_ms = flags.body_timeout_ms;
  server_options.idle_timeout_ms = flags.idle_timeout_ms;
  server_options.write_timeout_ms = flags.write_timeout_ms;
  server_options.metrics = metrics.get();
  server_options.slow_query_ms = flags.slow_query_ms;
  if (!flags.access_log.empty()) {
    auto log = obs::AccessLog::Open(flags.access_log);
    if (!log.ok()) {
      std::fprintf(stderr, "access log: %s\n", log.status().ToString().c_str());
      return 1;
    }
    server_options.access_log = std::shared_ptr<obs::AccessLog>(std::move(*log));
  }
  net::HttpServer server(net::MakeServiceRouter(&service), server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("dpstarj-server listening on http://%s:%u (engines=%d, queue=%d)\n",
              server.host().c_str(), server.port(), flags.engines, flags.queue);
  // Supervisors (tools/fuzz_ingest.py, smoke scripts) scrape this line from a
  // pipe to learn the ephemeral port; don't let stdio buffer it indefinitely.
  std::fflush(stdout);

  std::thread selfcheck;
  int selfcheck_rc = 0;
  if (flags.selfcheck) {
    selfcheck = std::thread([&] {
      selfcheck_rc = RunSelfcheck(flags.host, server.port(),
                                  flags.metrics_dump, flags.profile_dump);
      // Drive the normal shutdown path; process-directed so sigwait sees it.
      kill(getpid(), SIGINT);
    });
  }

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("\n%s received, draining ...\n", strsignal(sig));
  if (selfcheck.joinable()) selfcheck.join();

  server.Stop();
  service.Shutdown();

  net::ServerStats net_stats = server.GetStats();
  std::printf("server: %llu connections (%llu rejected), %llu requests "
              "(%llu bad), timeouts %llu hdr / %llu body / %llu idle / "
              "%llu write\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.connections_rejected),
              static_cast<unsigned long long>(net_stats.requests_handled),
              static_cast<unsigned long long>(net_stats.bad_requests),
              static_cast<unsigned long long>(net_stats.timeouts_header),
              static_cast<unsigned long long>(net_stats.timeouts_body),
              static_cast<unsigned long long>(net_stats.timeouts_idle),
              static_cast<unsigned long long>(net_stats.timeouts_write));
  std::printf("service: %s\n", service.Stats().ToString().c_str());
  return selfcheck_rc;
}
