// Figure 4 — Running time (s) and error level of PM, R2T, LS for different
// data scales on the COUNT queries Qc1..Qc4.
//
// The x-axis replicates the paper's SSB scale factors {0.25, 0.5, 0.75, 1},
// applied relative to the bench base scale DPSTARJ_SF (so the default sweeps
// 0.0125..0.05; export DPSTARJ_SF=1 for paper-scale).

#include <cstdio>

#include "bench_common.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

int main() {
  double base_sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const double kEpsilon = 0.5;
  const std::vector<double> kScales = {0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> kQueries = {"Qc1", "Qc2", "Qc3", "Qc4"};

  std::printf(
      "== Figure 4: error level and running time vs data scale (COUNT)"
      " (base SF=%.3f, eps=%.1f, %d runs) ==\n\n",
      base_sf, kEpsilon, runs);

  Rng rng(404);
  for (const auto& name : kQueries) {
    std::vector<std::string> err_pm, err_r2t, err_ls, t_pm, t_r2t, t_ls;
    for (double rel : kScales) {
      ssb::SsbOptions options;
      options.scale_factor = base_sf * rel;
      auto catalog = ssb::GenerateSsb(options);
      if (!catalog.ok()) {
        std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
        return 1;
      }
      auto q = ssb::GetQuery(name);
      auto b = bench::QueryBench::Prepare(&*catalog, *q);
      if (!b.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(), b.status().ToString().c_str());
        return 1;
      }
      err_pm.push_back(b->PmError(kEpsilon, runs, &rng).Cell());
      err_r2t.push_back(b->R2tError(kEpsilon, runs, &rng).MedianCell());
      err_ls.push_back(b->LsError(kEpsilon, runs, &rng).Cell());
      auto time_cell = [&](int mech) {
        auto t = b->TimeOneRun(mech, kEpsilon, &rng);
        return t.ok() ? Format("%.3f", *t) : std::string("n/a");
      };
      t_pm.push_back(time_cell(0));
      t_r2t.push_back(time_cell(1));
      t_ls.push_back(time_cell(2));
    }
    std::printf("%s  error level (%%):\n", name.c_str());
    std::printf("  %s\n", bench_util::FormatSeries("PM ", kScales, err_pm).c_str());
    std::printf("  %s\n", bench_util::FormatSeries("R2T", kScales, err_r2t).c_str());
    std::printf("  %s\n", bench_util::FormatSeries("LS ", kScales, err_ls).c_str());
    std::printf("%s  running time (s):\n", name.c_str());
    std::printf("  %s\n", bench_util::FormatSeries("PM ", kScales, t_pm).c_str());
    std::printf("  %s\n", bench_util::FormatSeries("R2T", kScales, t_r2t).c_str());
    std::printf("  %s\n\n", bench_util::FormatSeries("LS ", kScales, t_ls).c_str());
  }
  std::printf(
      "(paper shape: PM error flat in scale; all runtimes grow linearly with\n"
      " the data, PM's increment smallest)\n");
  return 0;
}
