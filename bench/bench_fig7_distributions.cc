// Figure 7 — Error level of PM, R2T, LS for different data distributions
// (uniform / exponential / gamma) on Qc3 (top) and Qs3 (bottom), sweeping
// data scale.
//
// The distribution knob skews both the dimension attributes and the fact
// fan-outs / measure values (the generator's three distribution inputs).

#include <cstdio>

#include "bench_common.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

int main() {
  double base_sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const double kEpsilon = 0.5;
  const std::vector<double> kScales = {0.2, 0.4, 0.6, 0.8, 1.0};

  std::printf(
      "== Figure 7: error level vs distribution and scale (base SF=%.3f, "
      "eps=%.1f, %d runs) ==\n\n",
      base_sf, kEpsilon, runs);

  struct Dist {
    const char* label;
    ssb::DistributionSpec spec;
  };
  Dist dists[] = {
      {"uniform", ssb::DistributionSpec::Uniform()},
      {"exponential", ssb::DistributionSpec::Exponential(1.0)},
      {"gamma", ssb::DistributionSpec::Gamma(2.0, 1.0)},
  };

  Rng rng(707);
  for (const auto& name : {std::string("Qc3"), std::string("Qs3")}) {
    std::printf("%s:\n", name.c_str());
    for (const auto& dist : dists) {
      std::vector<std::string> err_pm, err_r2t, err_ls;
      for (double rel : kScales) {
        ssb::SsbOptions options;
        options.scale_factor = base_sf * rel;
        options.attribute_distribution = dist.spec;
        options.fanout_distribution = dist.spec;
        options.value_distribution = dist.spec;
        auto catalog = ssb::GenerateSsb(options);
        if (!catalog.ok()) {
          std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
          return 1;
        }
        auto q = ssb::GetQuery(name);
        auto b = bench::QueryBench::Prepare(&*catalog, *q);
        if (!b.ok()) {
          std::fprintf(stderr, "%s: %s\n", name.c_str(),
                       b.status().ToString().c_str());
          return 1;
        }
        err_pm.push_back(b->PmError(kEpsilon, runs, &rng).Cell());
        err_r2t.push_back(b->R2tError(kEpsilon, runs, &rng).MedianCell());
        err_ls.push_back(b->LsError(kEpsilon, runs, &rng).Cell());
      }
      std::printf("  %s:\n", dist.label);
      std::printf("    %s\n", bench_util::FormatSeries("PM ", kScales, err_pm).c_str());
      std::printf("    %s\n",
                  bench_util::FormatSeries("R2T", kScales, err_r2t).c_str());
      std::printf("    %s\n", bench_util::FormatSeries("LS ", kScales, err_ls).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "(paper shape: PM best on uniform data; its error grows as skew\n"
      " increases, more for COUNT than for SUM)\n");
  return 0;
}
