// Figure 10 — Error levels of PM, R2T, LS on the TPC-H snowflake queries
// Qtc (count) and Qts (sum) by varying ε ∈ {0.1, 0.5, 1}.
//
// The snowflake chain Lineitem→Orders→Customer→Nation→Region is flattened
// into a star first (core::FlattenedSnowflake); all three mechanisms then run
// on the same flattened instance.

#include <cstdio>

#include "bench_common.h"
#include "core/snowflake.h"
#include "tpch/tpch_mini.h"

using namespace dpstarj;

int main() {
  double sf = bench::BenchScaleFactor() / 2.0;  // TPC-H rows ≈ 2× SSB at equal SF
  int runs = bench_util::DefaultRuns();
  const std::vector<double> kEps = {0.1, 0.5, 1.0};

  std::printf(
      "== Figure 10: TPC-H snowflake queries (SF=%.3f, %d runs) ==\n\n", sf, runs);

  tpch::TpchOptions options;
  options.scale_factor = sf;
  auto snowflake = tpch::GenerateTpchMini(options);
  if (!snowflake.ok()) {
    std::fprintf(stderr, "gen: %s\n", snowflake.status().ToString().c_str());
    return 1;
  }
  auto flat = core::FlattenedSnowflake::Flatten(*snowflake, tpch::kLineitem);
  if (!flat.ok()) {
    std::fprintf(stderr, "flatten: %s\n", flat.status().ToString().c_str());
    return 1;
  }

  Rng rng(1010);
  for (auto query : {tpch::QueryQtc(), tpch::QueryQts()}) {
    auto rewritten = flat->Rewrite(query);
    if (!rewritten.ok()) {
      std::fprintf(stderr, "rewrite: %s\n", rewritten.status().ToString().c_str());
      return 1;
    }
    // The private entity is the customer, three hierarchy hops from the fact
    // table; on the flattened schema that is the distinct Orders.custkey.
    auto b = bench::QueryBench::Prepare(&flat->catalog(), *rewritten,
                                        "Orders.custkey");
    if (!b.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.name.c_str(),
                   b.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> pm_cells, r2t_cells, ls_cells;
    for (double eps : kEps) {
      pm_cells.push_back(b->PmError(eps, runs, &rng).Cell());
      r2t_cells.push_back(b->R2tError(eps, runs, &rng).MedianCell());
      ls_cells.push_back(b->LsError(eps, runs, &rng).Cell());
    }
    std::printf("%s  error level (%%):\n", query.name.c_str());
    std::printf("  %s\n", bench_util::FormatSeries("PM ", kEps, pm_cells).c_str());
    std::printf("  %s\n", bench_util::FormatSeries("R2T", kEps, r2t_cells).c_str());
    std::printf("  %s\n\n", bench_util::FormatSeries("LS ", kEps, ls_cells).c_str());
  }
  std::printf("(paper shape: PM outperforms both R2T and LS on snowflake queries)\n");
  return 0;
}
