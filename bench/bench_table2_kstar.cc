// Table 2 — Relative error (%) and running time (s) of PM, R2T, TM on the
// k-star counting queries Q2*, Q3* over the Deezer-like and Amazon-like
// graphs, ε ∈ {0.1, 0.5, 1}.
//
// "over limit" reproduces the paper's time-outs: the baselines pay the
// self-join enumeration cost (R2T additionally on its LP-style truncation
// race), which explodes on 3-stars / the larger graph; PM answers from the
// degree index in microseconds. Scale via DPSTARJ_GRAPH_SCALE,
// limit via DPSTARJ_TIME_LIMIT_S.

#include <cstdio>

#include "bench_common.h"
#include "graph/generator.h"
#include "graph/kstar_mechanisms.h"

using namespace dpstarj;

namespace {

struct Cell {
  std::string error = "-";
  std::string time = "-";
};

Cell RunMechanism(const std::string& which, const graph::Graph& g,
                  const graph::KStarIndex& index, const graph::KStarQuery& q,
                  double eps, int runs, double time_limit, Rng* rng) {
  double truth = index.total();
  std::vector<double> errs;
  double seconds = 0.0;
  for (int i = 0; i < runs; ++i) {
    Result<graph::KStarAnswer> r = Status::Internal("unset");
    if (which == "PM") {
      r = graph::AnswerKStarWithPm(g, index, q, eps, rng);
    } else if (which == "R2T") {
      graph::KStarR2tOptions o;
      o.time_limit_s = time_limit;
      r = graph::AnswerKStarWithR2t(g, q, eps, rng, o);
    } else {
      graph::KStarTmOptions o;
      o.time_limit_s = time_limit;
      r = graph::AnswerKStarWithTm(g, q, eps, rng, o);
    }
    if (!r.ok()) {
      Cell c;
      if (r.status().code() == StatusCode::kTimeLimit) {
        c.error = "over limit";
        c.time = "over limit";
      } else {
        c.error = "error";
      }
      return c;
    }
    errs.push_back(RelativeErrorPercent(r->estimate, truth));
    seconds += r->seconds;
  }
  Cell c;
  // Median across runs: the baselines' Cauchy/Laplace tails make the sample
  // mean of the relative error diverge (see EXPERIMENTS.md).
  c.error = Format("%.2f", Median(errs));
  c.time = Format("%.3f", seconds / runs);
  return c;
}

}  // namespace

int main() {
  double scale = bench::BenchGraphScale();
  double limit = bench::BenchTimeLimit();
  int runs = bench_util::DefaultRuns();
  std::printf(
      "== Table 2: k-star counting — error (%%) and time (s)"
      " (graph scale %.3f, limit %.1fs, %d runs) ==\n\n",
      scale, limit, runs);

  Rng rng(77);
  struct Dataset {
    const char* name;
    Result<graph::Graph> graph;
  };
  Dataset datasets[] = {
      {"Deezer-like", graph::GenerateDeezerLike(scale, 101)},
      {"Amazon-like", graph::GenerateAmazonLike(scale, 202)},
  };

  for (auto& ds : datasets) {
    if (!ds.graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", ds.name, ds.graph.status().ToString().c_str());
      return 1;
    }
    const graph::Graph& g = *ds.graph;
    std::printf("%s: %lld nodes / %lld edges / max degree %lld\n", ds.name,
                static_cast<long long>(g.num_nodes()),
                static_cast<long long>(g.num_edges()),
                static_cast<long long>(g.max_degree()));
    for (int k : {2, 3}) {
      graph::KStarIndex index(g, k);
      graph::KStarQuery q{k, 0, g.num_nodes() - 1};
      bench_util::TablePrinter table({Format("Q%d* mechanism", k), "eps=0.1 err",
                                      "eps=0.1 time", "eps=0.5 err", "eps=0.5 time",
                                      "eps=1 err", "eps=1 time"});
      for (const char* mech : {"PM", "R2T", "TM"}) {
        std::vector<std::string> row = {mech};
        for (double eps : {0.1, 0.5, 1.0}) {
          Cell c = RunMechanism(mech, g, index, q, eps, runs, limit, &rng);
          row.push_back(c.error);
          row.push_back(c.time);
        }
        table.AddRow(row);
      }
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "(paper shape: PM lowest error and flat sub-second time; TM error\n"
      " explodes at small epsilon; R2T/TM hit the limit on 3-stars)\n");
  return 0;
}
