// Ablation — the PMA range-perturbation reading (DESIGN.md §4): shared shift
// (width-preserving, the default for star joins) vs independent endpoints
// (the verbatim Algorithm 2). Run on the range-bearing SSB queries Qc3/Qc4
// and on k-star sub-range queries, across ε.
//
// Expected: the shared shift preserves the query's selectivity and keeps the
// error in the paper's band; independent endpoints blow up narrow ranges
// (Qc4's 2-of-7 year range, 2-of-5 mfgr pair) by re-drawing their width.

#include <cstdio>

#include "bench_common.h"
#include "core/predicate_mechanism.h"
#include "graph/generator.h"
#include "graph/kstar_mechanisms.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

namespace {

bench_util::RunStats SsbError(const query::BoundQuery& bound,
                              const exec::DataCube& cube, double truth,
                              core::PmaRangeMode mode, double eps, int runs,
                              Rng* rng) {
  core::PmaOptions pma;
  pma.range_mode = mode;
  core::PredicateMechanism pm(pma);
  return bench_util::Repeat(runs, [&]() -> Result<double> {
    DPSTARJ_ASSIGN_OR_RETURN(double est, pm.AnswerWithCube(bound, cube, eps, rng));
    return RelativeErrorPercent(est, truth);
  });
}

}  // namespace

int main() {
  double sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const std::vector<double> kEps = {0.1, 0.5, 1.0};

  std::printf(
      "== Ablation: PMA range modes — shared shift vs independent endpoints"
      " (SF=%.3f, %d runs) ==\n\n",
      sf, runs);

  ssb::SsbOptions options;
  options.scale_factor = sf;
  auto catalog = ssb::GenerateSsb(options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  Rng rng(1212);
  query::Binder binder(&*catalog);
  for (const auto& name : {std::string("Qc3"), std::string("Qc4")}) {
    auto q = ssb::GetQuery(name);
    auto bound = binder.Bind(*q);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind: %s\n", bound.status().ToString().c_str());
      return 1;
    }
    auto cube = exec::DataCube::BuildFromQueryPredicates(*bound);
    if (!cube.ok()) {
      std::fprintf(stderr, "cube: %s\n", cube.status().ToString().c_str());
      return 1;
    }
    auto truth = cube->Evaluate(bound->Predicates());

    bench_util::TablePrinter table({name + " range mode", "eps=0.1 err %",
                                    "eps=0.5 err %", "eps=1 err %"});
    std::vector<std::string> shift_row = {"shared shift"};
    std::vector<std::string> indep_row = {"independent endpoints"};
    for (double eps : kEps) {
      shift_row.push_back(SsbError(*bound, *cube, *truth,
                                   core::PmaRangeMode::kSharedShift, eps, runs,
                                   &rng)
                              .Cell());
      indep_row.push_back(SsbError(*bound, *cube, *truth,
                                   core::PmaRangeMode::kIndependentEndpoints, eps,
                                   runs, &rng)
                              .Cell());
    }
    table.AddRow(shift_row);
    table.AddRow(indep_row);
    table.Print();
    std::printf("\n");
  }

  // k-star sub-range: here the *independent* reading is the meaningful one
  // (the full-domain query degenerates under the shared shift); show a proper
  // sub-range where both modes are live.
  auto g = graph::GenerateDeezerLike(0.02, 55);
  if (!g.ok()) {
    std::fprintf(stderr, "graph: %s\n", g.status().ToString().c_str());
    return 1;
  }
  graph::KStarIndex index(*g, 2);
  graph::KStarQuery q{2, g->num_nodes() / 4, 3 * g->num_nodes() / 4};
  double truth = index.CountRange(q.lo, q.hi);
  bench_util::TablePrinter table({"2-star sub-range mode", "eps=0.1 err %",
                                  "eps=0.5 err %", "eps=1 err %"});
  for (auto [label, mode] :
       {std::pair<const char*, core::PmaRangeMode>{"shared shift",
                                                   core::PmaRangeMode::kSharedShift},
        {"independent endpoints", core::PmaRangeMode::kIndependentEndpoints}}) {
    std::vector<std::string> row = {label};
    for (double eps : kEps) {
      auto stats = bench_util::Repeat(runs, [&]() -> Result<double> {
        query::BoundPredicate pred;
        pred.table = "Edge";
        pred.column = "from_id";
        pred.domain = storage::AttributeDomain::IntRange(0, g->num_nodes() - 1);
        pred.kind = query::PredicateKind::kRange;
        pred.lo_index = q.lo;
        pred.hi_index = q.hi;
        core::PmaOptions pma;
        pma.range_mode = mode;
        DPSTARJ_ASSIGN_OR_RETURN(auto noisy,
                                 core::PerturbPredicate(pred, eps, &rng, pma));
        return RelativeErrorPercent(index.CountRange(noisy.lo_index, noisy.hi_index),
                                    truth);
      });
      row.push_back(stats.Cell());
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\n(expected: shared shift dominates on the narrow-range SSB queries;\n"
      " both modes are comparable on wide sub-ranges)\n");
  return 0;
}
