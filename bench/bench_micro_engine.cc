// Engine-level micro benchmarks: comparison harnesses (always run;
// `--json out.json` records machine-readable
// {bench, config, rows_per_sec, wall_ms} rows — see BENCH_engine.json) for
//   * the scalar vs vectorized executor pipelines,
//   * repeated PredicateMechanism::Answer — uncached fresh-build execution
//     vs the PlanCache cold (compile+run) and warm (bitmap-only) paths,
//   * a 16-query shared-predicate SSB workload — one shared-scan AnswerBatch
//     vs sequential warm Answer calls,
//   * DataCube build (legacy hash-probing vs fused-LUT morsel scan) and the
//     box-sweep Evaluate,
//   * ingest plan maintenance — ScanPlan::Compile on a grown fact table vs
//     ScanPlan::ExtendFrom over just the appended tail,
// plus google-benchmark timings of the join/cube/PMA/R2T/k-star substrate
// (skipped with `--compare-only`). These are not paper experiments; they
// track the substrate's performance so regressions in the hot paths are
// visible. Thread-scaling configs are annotated with the host core count
// when the host cannot actually scale to them (e.g. a 1-core container).
//
// Environment knobs:
//   DPSTARJ_MICRO_SF       SSB scale factor of the comparison harness (0.05)
//   DPSTARJ_MICRO_MIN_SEC  min measured wall-clock per configuration (0.3)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>

#include "baselines/r2t.h"
#include "bench_common.h"
#include "bench_util/table_printer.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/pma.h"
#include "core/predicate_mechanism.h"
#include "obs/trace.h"
#include "exec/data_cube.h"
#include "exec/scan_plan.h"
#include "exec/star_join_executor.h"
#include "graph/generator.h"
#include "graph/kstar.h"
#include "query/binder.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

namespace {

using namespace dpstarj;

// Shared SSB instance (built once, smallest useful size).
const storage::Catalog& SharedCatalog() {
  static storage::Catalog* catalog = [] {
    ssb::SsbOptions options;
    options.scale_factor = 0.01;
    auto c = ssb::GenerateSsb(options);
    DPSTARJ_CHECK(c.ok(), "ssb generation");
    return new storage::Catalog(std::move(*c));
  }();
  return *catalog;
}

const query::BoundQuery& SharedBoundQc3() {
  static query::BoundQuery* bound = [] {
    query::Binder binder(&SharedCatalog());
    auto q = ssb::GetQuery("Qc3");
    DPSTARJ_CHECK(q.ok(), "query");
    auto b = binder.Bind(*q);
    DPSTARJ_CHECK(b.ok(), "bind");
    return new query::BoundQuery(std::move(*b));
  }();
  return *bound;
}

void BM_StarJoinExecute(benchmark::State& state) {
  exec::StarJoinExecutor executor;
  const auto& bound = SharedBoundQc3();
  for (auto _ : state) {
    auto r = executor.Execute(bound);
    DPSTARJ_CHECK(r.ok(), "execute");
    benchmark::DoNotOptimize(r->scalar);
  }
  state.SetItemsProcessed(state.iterations() * bound.fact->num_rows());
}
BENCHMARK(BM_StarJoinExecute);

void BM_DataCubeBuild(benchmark::State& state) {
  const auto& bound = SharedBoundQc3();
  for (auto _ : state) {
    auto cube = exec::DataCube::BuildFromQueryPredicates(bound);
    DPSTARJ_CHECK(cube.ok(), "cube");
    benchmark::DoNotOptimize(cube->total());
  }
  state.SetItemsProcessed(state.iterations() * bound.fact->num_rows());
}
BENCHMARK(BM_DataCubeBuild);

void BM_DataCubeEvaluate(benchmark::State& state) {
  const auto& bound = SharedBoundQc3();
  auto cube = exec::DataCube::BuildFromQueryPredicates(bound);
  DPSTARJ_CHECK(cube.ok(), "cube");
  auto preds = bound.Predicates();
  for (auto _ : state) {
    auto r = cube->Evaluate(preds);
    DPSTARJ_CHECK(r.ok(), "evaluate");
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_DataCubeEvaluate);

void BM_PmaPerturbRange(benchmark::State& state) {
  Rng rng(1);
  query::BoundPredicate pred;
  pred.domain = storage::AttributeDomain::IntRange(0, state.range(0) - 1);
  pred.kind = query::PredicateKind::kRange;
  pred.lo_index = state.range(0) / 4;
  pred.hi_index = 3 * state.range(0) / 4;
  for (auto _ : state) {
    auto r = core::PerturbPredicate(pred, 0.5, &rng);
    DPSTARJ_CHECK(r.ok(), "pma");
    benchmark::DoNotOptimize(r->lo_index);
  }
}
BENCHMARK(BM_PmaPerturbRange)->Arg(7)->Arg(366)->Arg(144000);

void BM_PredicateMechanismAnswer(benchmark::State& state) {
  Rng rng(2);
  core::PredicateMechanism pm;
  const auto& bound = SharedBoundQc3();
  auto cube = exec::DataCube::BuildFromQueryPredicates(bound);
  DPSTARJ_CHECK(cube.ok(), "cube");
  for (auto _ : state) {
    auto r = pm.AnswerWithCube(bound, *cube, 0.5, &rng);
    DPSTARJ_CHECK(r.ok(), "pm");
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_PredicateMechanismAnswer);

void BM_R2tRace(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> contributions(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < contributions.size(); ++i) {
    contributions[i] = 1.0 + static_cast<double>(i % 17);
  }
  for (auto _ : state) {
    auto r = baselines::R2tRace(contributions, 1e6, 0.5, 0.1, &rng);
    DPSTARJ_CHECK(r.ok(), "race");
    benchmark::DoNotOptimize(*r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_R2tRace)->Arg(1000)->Arg(100000);

void BM_KStarIndexBuild(benchmark::State& state) {
  graph::GeneratorOptions options;
  options.num_nodes = state.range(0);
  options.num_edges = state.range(0) * 5;
  options.seed = 4;
  auto g = graph::GeneratePowerLawGraph(options);
  DPSTARJ_CHECK(g.ok(), "graph");
  for (auto _ : state) {
    graph::KStarIndex index(*g, 2);
    benchmark::DoNotOptimize(index.total());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KStarIndexBuild)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Scalar vs vectorized executor comparison (the PR-2 acceptance measurement):
// runs one grouped and one scalar SSB query through the legacy row-at-a-time
// pipeline and the vectorized pipeline at 1/2/4 scan threads, reporting
// rows/sec and the speedup over the legacy pipeline.
// ---------------------------------------------------------------------------

struct ExecConfig {
  std::string name;
  exec::ExecutorOptions options;
};

std::vector<ExecConfig> ComparisonConfigs() {
  std::vector<ExecConfig> configs;
  exec::ExecutorOptions scalar;
  scalar.force_scalar = true;
  configs.push_back({"scalar", scalar});
  for (int threads : {1, 2, 4}) {
    exec::ExecutorOptions vec;
    vec.exec_threads = threads;
    configs.push_back({"vectorized t=" + std::to_string(threads), vec});
  }
  return configs;
}

double SharedMinSec() {
  return bench_util::EnvDouble("DPSTARJ_MICRO_MIN_SEC", 0.3);
}

const storage::Catalog& ComparisonCatalog() {
  static storage::Catalog* catalog = [] {
    ssb::SsbOptions options;
    options.scale_factor = bench_util::EnvDouble("DPSTARJ_MICRO_SF", 0.05);
    auto c = ssb::GenerateSsb(options);
    DPSTARJ_CHECK(c.ok(), "ssb generation");
    return new storage::Catalog(std::move(*c));
  }();
  return *catalog;
}

void RunEngineComparison(bench::JsonBenchWriter* json) {
  const double sf = bench_util::EnvDouble("DPSTARJ_MICRO_SF", 0.05);
  const double min_sec = SharedMinSec();

  const storage::Catalog& catalog = ComparisonCatalog();
  query::Binder binder(&catalog);

  // QgScan: the archetypal SSB drill-down — SUM(revenue) by year × brand over
  // the full fact table (no filter), so every row exercises the grouping
  // path; this is the acceptance-criterion query. Qg2: the paper's filtered
  // GROUP BY. Qc3: scalar COUNT with two selective predicates.
  std::vector<std::pair<std::string, query::StarJoinQuery>> queries;
  {
    query::StarJoinQuery scan;
    scan.name = "QgScan";
    scan.fact_table = "Lineorder";
    scan.joined_tables = {"Date", "Part"};
    scan.aggregate = query::AggregateKind::kSum;
    scan.measure_terms = {{"revenue", 1.0}};
    scan.group_by = {{"Date", "year"}, {"Part", "brand"}};
    queries.emplace_back("QgScan", std::move(scan));
  }
  for (const char* qname : {"Qg2", "Qc3"}) {
    auto q = ssb::GetQuery(qname);
    DPSTARJ_CHECK(q.ok(), "query");
    queries.emplace_back(qname, std::move(*q));
  }

  for (const auto& [qname_str, query] : queries) {
    const char* qname = qname_str.c_str();
    auto bound = binder.Bind(query);
    DPSTARJ_CHECK(bound.ok(), "bind");
    const double fact_rows = static_cast<double>(bound->fact->num_rows());

    std::printf("== executor comparison: %s (sf=%.3g, %.0f fact rows) ==\n",
                qname, sf, fact_rows);
    bench_util::TablePrinter table(
        {"pipeline", "iters", "ms/exec", "rows/sec", "speedup"});
    double scalar_rows_per_sec = 0.0;
    double reference_total = 0.0;
    bool have_reference = false;
    for (const ExecConfig& config : ComparisonConfigs()) {
      exec::StarJoinExecutor executor(config.options);
      // Warm-up + self-check: every pipeline must agree on the total (up to
      // summation-order rounding on the double-valued SSB measures).
      auto warm = executor.Execute(*bound);
      DPSTARJ_CHECK(warm.ok(), "execute");
      if (!have_reference) {
        reference_total = warm->Total();
        have_reference = true;
      } else {
        double drift = std::abs(warm->Total() - reference_total) /
                       std::max(1.0, std::abs(reference_total));
        DPSTARJ_CHECK(drift < 1e-9, "pipelines disagree on the query answer");
      }
      Timer timer;
      std::optional<bench::CounterSpan> span;
      if (json != nullptr) span.emplace(*json);
      int iters = 0;
      do {
        auto r = executor.Execute(*bound);
        DPSTARJ_CHECK(r.ok(), "execute");
        ++iters;
      } while (timer.ElapsedSeconds() < min_sec || iters < 3);
      const double wall_ms = timer.ElapsedMillis() / iters;
      const double rows_per_sec = fact_rows / (wall_ms / 1e3);
      if (scalar_rows_per_sec == 0.0) scalar_rows_per_sec = rows_per_sec;
      table.AddRow({config.name, Format("%d", iters), Format("%.2f", wall_ms),
                    Format("%.3g", rows_per_sec),
                    Format("%.2fx", rows_per_sec / scalar_rows_per_sec)});
      if (json != nullptr) {
        const double rows = fact_rows * iters;
        json->Add(std::string("micro_engine/") + qname, config.name,
                  rows_per_sec, wall_ms, span->CyclesPerRow(rows),
                  span->InstructionsPerRow(rows));
      }
    }
    table.Print();
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// Repeated-answer comparison (the PR-3 acceptance measurement): the Predicate
// Mechanism re-executes the same bound query with perturbed predicates every
// noisy run. "uncached" rebuilds the verdict tables from scratch per run (the
// pre-plan-cache behavior); "plan cold" pays ScanPlan::Compile every run;
// "plan warm" is the steady state — predicate bitmaps only.
// ---------------------------------------------------------------------------

void RunPlanCacheComparison(bench::JsonBenchWriter* json) {
  const double sf = bench_util::EnvDouble("DPSTARJ_MICRO_SF", 0.05);
  const double min_sec = SharedMinSec();
  const storage::Catalog& catalog = ComparisonCatalog();
  query::Binder binder(&catalog);

  // QgScanP: the full-scan grouped drill-down (SUM(revenue) by year × brand)
  // made PM-compatible with a full-domain year predicate — every fact row
  // still reaches the grouping path. Qg2/Qc3: the paper's filtered queries.
  std::vector<std::pair<std::string, query::StarJoinQuery>> queries;
  {
    query::StarJoinQuery scan;
    scan.name = "QgScanP";
    scan.fact_table = "Lineorder";
    scan.joined_tables = {"Date", "Part"};
    scan.aggregate = query::AggregateKind::kSum;
    scan.measure_terms = {{"revenue", 1.0}};
    scan.group_by = {{"Date", "year"}, {"Part", "brand"}};
    scan.predicates.push_back(query::Predicate::Range(
        "Date", "year", storage::Value(int64_t{ssb::kYearLo}),
        storage::Value(int64_t{ssb::kYearHi})));
    queries.emplace_back("QgScanP", std::move(scan));
  }
  for (const char* qname : {"Qg2", "Qc3"}) {
    auto q = ssb::GetQuery(qname);
    DPSTARJ_CHECK(q.ok(), "query");
    queries.emplace_back(qname, std::move(*q));
  }

  const double epsilon = 0.5;
  for (const auto& [qname_str, query] : queries) {
    const char* qname = qname_str.c_str();
    auto bound = binder.Bind(query);
    DPSTARJ_CHECK(bound.ok(), "bind");
    const double fact_rows = static_cast<double>(bound->fact->num_rows());

    std::printf("== repeated PM answer: %s (sf=%.3g, %.0f fact rows) ==\n",
                qname, sf, fact_rows);
    bench_util::TablePrinter table(
        {"path", "iters", "ms/answer", "rows/sec", "speedup"});

    Rng rng(11);
    core::PredicateMechanism pm;
    exec::StarJoinExecutor fresh_executor;

    struct PathConfig {
      std::string name;
      std::function<void()> run;
    };
    std::vector<PathConfig> paths;
    paths.push_back({"uncached (fresh build)", [&]() {
                       auto overrides = pm.PerturbPredicates(*bound, epsilon, &rng);
                       DPSTARJ_CHECK(overrides.ok(), "perturb");
                       auto r = fresh_executor.Execute(*bound, *overrides);
                       DPSTARJ_CHECK(r.ok(), "execute");
                     }});
    paths.push_back({"plan cold (compile+run)", [&]() {
                       pm.plan_cache()->Clear();
                       auto r = pm.Answer(*bound, epsilon, &rng);
                       DPSTARJ_CHECK(r.ok(), "answer");
                     }});
    paths.push_back({"plan warm (bitmaps only)", [&]() {
                       auto r = pm.Answer(*bound, epsilon, &rng);
                       DPSTARJ_CHECK(r.ok(), "answer");
                     }});
    // Same steady-state path with a per-answer stage trace attached — the
    // telemetry-overhead acceptance measurement (must stay within a few
    // percent of the untraced warm path).
    paths.push_back({"plan warm (traced)", [&]() {
                       obs::Trace trace;
                       auto r = pm.Answer(*bound, epsilon, &rng, &trace);
                       DPSTARJ_CHECK(r.ok(), "answer");
                       DPSTARJ_CHECK(trace.touched(obs::Stage::kScan) ||
                                         trace.touched(obs::Stage::kNoiseDraw),
                                     "traced answer recorded no stages");
                     }});

    double uncached_rows_per_sec = 0.0;
    for (const PathConfig& path : paths) {
      path.run();  // warm-up (compiles the plan for the warm path)
      Timer timer;
      std::optional<bench::CounterSpan> span;
      if (json != nullptr) span.emplace(*json);
      int iters = 0;
      do {
        path.run();
        ++iters;
      } while (timer.ElapsedSeconds() < min_sec || iters < 3);
      const double wall_ms = timer.ElapsedMillis() / iters;
      const double rows_per_sec = fact_rows / (wall_ms / 1e3);
      if (uncached_rows_per_sec == 0.0) uncached_rows_per_sec = rows_per_sec;
      table.AddRow({path.name, Format("%d", iters), Format("%.3f", wall_ms),
                    Format("%.3g", rows_per_sec),
                    Format("%.2fx", rows_per_sec / uncached_rows_per_sec)});
      if (json != nullptr) {
        const double rows = fact_rows * iters;
        json->Add(std::string("micro_engine/pm_repeat/") + qname, path.name,
                  rows_per_sec, wall_ms, span->CyclesPerRow(rows),
                  span->InstructionsPerRow(rows));
      }
    }
    table.Print();
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// Workload comparison (the PR-7 acceptance measurement): a 16-query shared-
// predicate SSB workload — the paper's four scalar counting queries Qc1–Qc4,
// four instances each at different ε, the shape of a dashboard refresh —
// answered two ways: one warm Answer call per query (16 fact sweeps) vs one
// AnswerBatch call (cross-query predicate CSE, ONE shared fact sweep).
// Distribution-identical noise either way; the batch buys pure throughput.
// ---------------------------------------------------------------------------

void RunWorkloadComparison(bench::JsonBenchWriter* json) {
  const double sf = bench_util::EnvDouble("DPSTARJ_MICRO_SF", 0.05);
  const double min_sec = SharedMinSec();
  const storage::Catalog& catalog = ComparisonCatalog();
  query::Binder binder(&catalog);

  std::vector<query::BoundQuery> base;
  for (const char* qname : {"Qc1", "Qc2", "Qc3", "Qc4"}) {
    auto q = ssb::GetQuery(qname);
    DPSTARJ_CHECK(q.ok(), "query");
    auto bound = binder.Bind(*q);
    DPSTARJ_CHECK(bound.ok(), "bind");
    base.push_back(std::move(*bound));
  }
  std::vector<core::BatchQueryRef> batch;
  for (int rep = 0; rep < 4; ++rep) {
    for (size_t i = 0; i < base.size(); ++i) {
      batch.push_back({&base[i], 0.25 + 0.05 * rep});
    }
  }
  const double fact_rows = static_cast<double>(base[0].fact->num_rows());
  const double batch_queries = static_cast<double>(batch.size());

  std::printf("== workload: %zu-query shared-predicate SSB batch "
              "(sf=%.3g, %.0f fact rows) ==\n",
              batch.size(), sf, fact_rows);
  bench_util::TablePrinter table(
      {"path", "iters", "ms/workload", "query-rows/sec", "speedup"});

  Rng rng(17);
  core::PredicateMechanism pm;

  struct PathConfig {
    std::string name;
    std::function<void()> run;
  };
  std::vector<PathConfig> paths;
  paths.push_back({"sequential warm", [&]() {
                     for (const core::BatchQueryRef& ref : batch) {
                       auto r = pm.Answer(*ref.query, ref.epsilon, &rng);
                       DPSTARJ_CHECK(r.ok(), "answer");
                     }
                   }});
  exec::WorkloadExecStats last_stats;
  paths.push_back({"shared-scan batch", [&]() {
                     exec::WorkloadExecStats stats;
                     auto results = pm.AnswerBatch(batch, &rng, nullptr, &stats);
                     DPSTARJ_CHECK(results.size() == batch.size(), "batch size");
                     for (const auto& r : results) {
                       DPSTARJ_CHECK(r.ok(), "batch answer");
                     }
                     last_stats = stats;
                   }});

  double sequential_rows_per_sec = 0.0;
  for (const PathConfig& path : paths) {
    path.run();  // warm-up: compiles and caches every per-query plan
    Timer timer;
    std::optional<bench::CounterSpan> span;
    if (json != nullptr) span.emplace(*json);
    int iters = 0;
    do {
      path.run();
      ++iters;
    } while (timer.ElapsedSeconds() < min_sec || iters < 3);
    const double wall_ms = timer.ElapsedMillis() / iters;
    // Work answered per second: every query logically covers the fact table,
    // so the shared scan's advantage shows up as more query-rows/sec.
    const double rows_per_sec = fact_rows * batch_queries / (wall_ms / 1e3);
    if (sequential_rows_per_sec == 0.0) sequential_rows_per_sec = rows_per_sec;
    table.AddRow({path.name, Format("%d", iters), Format("%.2f", wall_ms),
                  Format("%.3g", rows_per_sec),
                  Format("%.2fx", rows_per_sec / sequential_rows_per_sec)});
    if (json != nullptr) {
      // Both paths run on the same host within one process; the batch row
      // carries its speedup over the sequential row measured just before it.
      std::string config = path.name;
      if (rows_per_sec != sequential_rows_per_sec) {
        config += Format(" speedup=%.2fx vs sequential warm (same host)",
                         rows_per_sec / sequential_rows_per_sec);
      }
      const double rows = fact_rows * batch_queries * iters;
      json->Add("micro_engine/workload/ssb_qc16", config, rows_per_sec,
                wall_ms, span->CyclesPerRow(rows),
                span->InstructionsPerRow(rows));
    }
  }
  table.Print();
  std::printf("workload CSE: %d queries, %d fact sweeps, %d predicate refs "
              "-> %d bitmap builds, %d shared dim slots\n\n",
              static_cast<int>(last_stats.queries),
              static_cast<int>(last_stats.scans),
              static_cast<int>(last_stats.predicate_refs),
              static_cast<int>(last_stats.predicate_nodes),
              static_cast<int>(last_stats.shared_dim_slots));
}

// ---------------------------------------------------------------------------
// DataCube comparison: the other full fact scan. Build: legacy hash-probing
// row loop vs the fused dense-LUT morsel scan at 1/2/4 threads. Evaluate:
// the box sweep over the predicate hyper-rectangle.
// ---------------------------------------------------------------------------

void RunCubeComparison(bench::JsonBenchWriter* json) {
  const double sf = bench_util::EnvDouble("DPSTARJ_MICRO_SF", 0.05);
  const double min_sec = SharedMinSec();
  const storage::Catalog& catalog = ComparisonCatalog();
  query::Binder binder(&catalog);

  auto q = ssb::GetQuery("Qc3");
  DPSTARJ_CHECK(q.ok(), "query");
  auto bound = binder.Bind(*q);
  DPSTARJ_CHECK(bound.ok(), "bind");
  const double fact_rows = static_cast<double>(bound->fact->num_rows());

  std::printf("== DataCube build: Qc3 (sf=%.3g, %.0f fact rows) ==\n", sf,
              fact_rows);
  bench_util::TablePrinter table(
      {"pipeline", "iters", "ms/build", "rows/sec", "speedup"});

  struct CubeConfig {
    std::string name;
    exec::CubeOptions options;
    int threads = 1;
  };
  std::vector<CubeConfig> configs;
  {
    exec::CubeOptions legacy;
    legacy.force_legacy = true;
    configs.push_back({"legacy (hash probes)", legacy, 1});
  }
  for (int threads : {1, 2, 4}) {
    exec::CubeOptions options;
    options.threads = threads;
    configs.push_back(
        {"vectorized t=" + std::to_string(threads), options, threads});
  }

  double legacy_rows_per_sec = 0.0;
  double reference_total = 0.0;
  bool have_reference = false;
  for (const CubeConfig& config : configs) {
    auto warm = exec::DataCube::BuildFromQueryPredicates(*bound, config.options);
    DPSTARJ_CHECK(warm.ok(), "cube build");
    if (!have_reference) {
      reference_total = warm->total();
      have_reference = true;
    } else {
      double drift = std::abs(warm->total() - reference_total) /
                     std::max(1.0, std::abs(reference_total));
      DPSTARJ_CHECK(drift < 1e-9, "cube builds disagree on the total");
    }
    Timer timer;
    std::optional<bench::CounterSpan> span;
    if (json != nullptr) span.emplace(*json);
    int iters = 0;
    do {
      auto cube = exec::DataCube::BuildFromQueryPredicates(*bound, config.options);
      DPSTARJ_CHECK(cube.ok(), "cube build");
      ++iters;
    } while (timer.ElapsedSeconds() < min_sec || iters < 3);
    const double wall_ms = timer.ElapsedMillis() / iters;
    const double rows_per_sec = fact_rows / (wall_ms / 1e3);
    if (legacy_rows_per_sec == 0.0) legacy_rows_per_sec = rows_per_sec;
    table.AddRow({config.name, Format("%d", iters), Format("%.3f", wall_ms),
                  Format("%.3g", rows_per_sec),
                  Format("%.2fx", rows_per_sec / legacy_rows_per_sec)});
    if (json != nullptr) {
      const double rows = fact_rows * iters;
      json->Add("micro_engine/cube_build/Qc3", config.name, rows_per_sec,
                wall_ms, span->CyclesPerRow(rows),
                span->InstructionsPerRow(rows));
    }
  }
  table.Print();

  // Evaluate: repeated predicate evaluation against the prebuilt cube.
  auto cube = exec::DataCube::BuildFromQueryPredicates(*bound);
  DPSTARJ_CHECK(cube.ok(), "cube build");
  auto preds = bound->Predicates();
  Timer timer;
  std::optional<bench::CounterSpan> span;
  if (json != nullptr) span.emplace(*json);
  int iters = 0;
  do {
    auto r = cube->Evaluate(preds);
    DPSTARJ_CHECK(r.ok(), "evaluate");
    ++iters;
  } while (timer.ElapsedSeconds() < min_sec || iters < 1000);
  const double wall_ms = timer.ElapsedMillis() / iters;
  const double cells_per_sec =
      static_cast<double>(cube->num_cells()) / (wall_ms / 1e3);
  std::printf("cube evaluate (box sweep): %.4f ms/eval over %lld cells\n\n",
              wall_ms, static_cast<long long>(cube->num_cells()));
  if (json != nullptr) {
    // "rows" for the eval loop are swept cube cells, matching cells_per_sec.
    const double cells = static_cast<double>(cube->num_cells()) * iters;
    json->Add("micro_engine/cube_eval/Qc3", "box-sweep", cells_per_sec, wall_ms,
              span->CyclesPerRow(cells), span->InstructionsPerRow(cells));
  }
}

// ---------------------------------------------------------------------------
// Ingest comparison (the PR-10 acceptance measurement): after an append batch
// lands on a live fact table, a cached grouped ScanPlan is stale. The
// PlanCache extends it over the tail (ScanPlan::ExtendFrom) instead of
// recompiling the full table (ScanPlan::Compile) — this harness measures both
// on the same grown table, after checking the two scaffolds are identical.
// Runs last: it appends to the shared comparison catalog's Lineorder.
// ---------------------------------------------------------------------------

void RunIngestComparison(bench::JsonBenchWriter* json) {
  const double sf = bench_util::EnvDouble("DPSTARJ_MICRO_SF", 0.05);
  const double min_sec = SharedMinSec();
  const storage::Catalog& catalog = ComparisonCatalog();
  query::Binder binder(&catalog);

  // The same grouped drill-down as the executor comparison: SUM(revenue) by
  // year × brand, full fact scan — the scaffold shape ingest must maintain.
  query::StarJoinQuery scan;
  scan.name = "QgScan";
  scan.fact_table = "Lineorder";
  scan.joined_tables = {"Date", "Part"};
  scan.aggregate = query::AggregateKind::kSum;
  scan.measure_terms = {{"revenue", 1.0}};
  scan.group_by = {{"Date", "year"}, {"Part", "brand"}};
  auto bound = binder.Bind(scan);
  DPSTARJ_CHECK(bound.ok(), "bind");

  auto fact = catalog.GetTable("Lineorder");
  DPSTARJ_CHECK(fact.ok(), "fact table");
  const int64_t base_rows = (*fact)->num_rows();
  auto old_plan = exec::ScanPlan::Compile(*bound);
  DPSTARJ_CHECK(old_plan.ok(), "compile");

  // Append a ~1% tail of recycled rows (valid FKs by construction — they are
  // existing rows), the shape of one ingest batch on a live table.
  const int64_t tail = std::max<int64_t>(int64_t{512}, base_rows / 100);
  for (int64_t i = 0; i < tail; ++i) {
    Status appended = (*fact)->AppendRow((*fact)->GetRow(i % base_rows));
    DPSTARJ_CHECK(appended.ok(), "append");
  }
  const double fact_rows = static_cast<double>((*fact)->num_rows());

  // Self-check: the extension must reproduce a fresh compile bit for bit.
  DPSTARJ_CHECK(exec::ScanPlan::IsAppendExtension(*old_plan, *bound),
                "append precondition");
  auto fresh = exec::ScanPlan::Compile(*bound);
  DPSTARJ_CHECK(fresh.ok(), "fresh compile");
  auto extended = exec::ScanPlan::ExtendFrom(*old_plan, *bound);
  DPSTARJ_CHECK(extended.ok(), "extend");
  DPSTARJ_CHECK(extended->codes == fresh->codes &&
                    extended->weights == fresh->weights &&
                    extended->run_offsets == fresh->run_offsets &&
                    extended->sorted_dim_row == fresh->sorted_dim_row &&
                    extended->sorted_weights == fresh->sorted_weights &&
                    extended->group_labels == fresh->group_labels,
                "extended plan diverges from fresh compile");

  std::printf("== ingest plan maintenance: QgScan "
              "(sf=%.3g, %.0f fact rows, +%lld tail) ==\n",
              sf, fact_rows, static_cast<long long>(tail));
  bench_util::TablePrinter table(
      {"path", "iters", "ms/batch", "rows/sec", "speedup"});

  struct PathConfig {
    std::string name;
    std::function<void()> run;
  };
  std::vector<PathConfig> paths;
  paths.push_back({"recompile (full table)", [&]() {
                     auto p = exec::ScanPlan::Compile(*bound);
                     DPSTARJ_CHECK(p.ok(), "compile");
                     benchmark::DoNotOptimize(p->codes.data());
                   }});
  paths.push_back({"extend (tail splice)", [&]() {
                     auto p = exec::ScanPlan::ExtendFrom(*old_plan, *bound);
                     DPSTARJ_CHECK(p.ok(), "extend");
                     benchmark::DoNotOptimize(p->codes.data());
                   }});

  double recompile_rows_per_sec = 0.0;
  for (const PathConfig& path : paths) {
    path.run();  // warm-up
    Timer timer;
    std::optional<bench::CounterSpan> span;
    if (json != nullptr) span.emplace(*json);
    int iters = 0;
    do {
      path.run();
      ++iters;
    } while (timer.ElapsedSeconds() < min_sec || iters < 3);
    const double wall_ms = timer.ElapsedMillis() / iters;
    // Both paths deliver a plan covering the whole grown table, so work
    // delivered per second is total fact rows either way; the extension's
    // advantage is that it only touches the tail to deliver them.
    const double rows_per_sec = fact_rows / (wall_ms / 1e3);
    if (recompile_rows_per_sec == 0.0) recompile_rows_per_sec = rows_per_sec;
    table.AddRow({path.name, Format("%d", iters), Format("%.3f", wall_ms),
                  Format("%.3g", rows_per_sec),
                  Format("%.2fx", rows_per_sec / recompile_rows_per_sec)});
    if (json != nullptr) {
      const double rows = fact_rows * iters;
      json->Add("micro_engine/ingest/QgScan", path.name, rows_per_sec, wall_ms,
                span->CyclesPerRow(rows), span->InstructionsPerRow(rows));
    }
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonBenchWriter::ConsumeJsonFlag(&argc, argv);
  bool compare_only = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare-only") == 0) {
      compare_only = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;

  bench::JsonBenchWriter json(json_path);
  RunEngineComparison(&json);
  RunPlanCacheComparison(&json);
  RunWorkloadComparison(&json);
  RunCubeComparison(&json);
  RunIngestComparison(&json);  // last: appends to the comparison catalog
  json.Flush();
  if (compare_only) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
