// Engine-level micro benchmarks (google-benchmark): star-join executor
// throughput, data-cube evaluation, PMA perturbation, R2T race, and k-star
// index counting. These are not paper experiments; they track the substrate's
// performance so regressions in the join/cube paths are visible.

#include <benchmark/benchmark.h>

#include "baselines/r2t.h"
#include "common/random.h"
#include "core/pma.h"
#include "core/predicate_mechanism.h"
#include "exec/data_cube.h"
#include "exec/star_join_executor.h"
#include "graph/generator.h"
#include "graph/kstar.h"
#include "query/binder.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

namespace {

using namespace dpstarj;

// Shared SSB instance (built once, smallest useful size).
const storage::Catalog& SharedCatalog() {
  static storage::Catalog* catalog = [] {
    ssb::SsbOptions options;
    options.scale_factor = 0.01;
    auto c = ssb::GenerateSsb(options);
    DPSTARJ_CHECK(c.ok(), "ssb generation");
    return new storage::Catalog(std::move(*c));
  }();
  return *catalog;
}

const query::BoundQuery& SharedBoundQc3() {
  static query::BoundQuery* bound = [] {
    query::Binder binder(&SharedCatalog());
    auto q = ssb::GetQuery("Qc3");
    DPSTARJ_CHECK(q.ok(), "query");
    auto b = binder.Bind(*q);
    DPSTARJ_CHECK(b.ok(), "bind");
    return new query::BoundQuery(std::move(*b));
  }();
  return *bound;
}

void BM_StarJoinExecute(benchmark::State& state) {
  exec::StarJoinExecutor executor;
  const auto& bound = SharedBoundQc3();
  for (auto _ : state) {
    auto r = executor.Execute(bound);
    DPSTARJ_CHECK(r.ok(), "execute");
    benchmark::DoNotOptimize(r->scalar);
  }
  state.SetItemsProcessed(state.iterations() * bound.fact->num_rows());
}
BENCHMARK(BM_StarJoinExecute);

void BM_DataCubeBuild(benchmark::State& state) {
  const auto& bound = SharedBoundQc3();
  for (auto _ : state) {
    auto cube = exec::DataCube::BuildFromQueryPredicates(bound);
    DPSTARJ_CHECK(cube.ok(), "cube");
    benchmark::DoNotOptimize(cube->total());
  }
  state.SetItemsProcessed(state.iterations() * bound.fact->num_rows());
}
BENCHMARK(BM_DataCubeBuild);

void BM_DataCubeEvaluate(benchmark::State& state) {
  const auto& bound = SharedBoundQc3();
  auto cube = exec::DataCube::BuildFromQueryPredicates(bound);
  DPSTARJ_CHECK(cube.ok(), "cube");
  auto preds = bound.Predicates();
  for (auto _ : state) {
    auto r = cube->Evaluate(preds);
    DPSTARJ_CHECK(r.ok(), "evaluate");
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_DataCubeEvaluate);

void BM_PmaPerturbRange(benchmark::State& state) {
  Rng rng(1);
  query::BoundPredicate pred;
  pred.domain = storage::AttributeDomain::IntRange(0, state.range(0) - 1);
  pred.kind = query::PredicateKind::kRange;
  pred.lo_index = state.range(0) / 4;
  pred.hi_index = 3 * state.range(0) / 4;
  for (auto _ : state) {
    auto r = core::PerturbPredicate(pred, 0.5, &rng);
    DPSTARJ_CHECK(r.ok(), "pma");
    benchmark::DoNotOptimize(r->lo_index);
  }
}
BENCHMARK(BM_PmaPerturbRange)->Arg(7)->Arg(366)->Arg(144000);

void BM_PredicateMechanismAnswer(benchmark::State& state) {
  Rng rng(2);
  core::PredicateMechanism pm;
  const auto& bound = SharedBoundQc3();
  auto cube = exec::DataCube::BuildFromQueryPredicates(bound);
  DPSTARJ_CHECK(cube.ok(), "cube");
  for (auto _ : state) {
    auto r = pm.AnswerWithCube(bound, *cube, 0.5, &rng);
    DPSTARJ_CHECK(r.ok(), "pm");
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_PredicateMechanismAnswer);

void BM_R2tRace(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> contributions(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < contributions.size(); ++i) {
    contributions[i] = 1.0 + static_cast<double>(i % 17);
  }
  for (auto _ : state) {
    auto r = baselines::R2tRace(contributions, 1e6, 0.5, 0.1, &rng);
    DPSTARJ_CHECK(r.ok(), "race");
    benchmark::DoNotOptimize(*r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_R2tRace)->Arg(1000)->Arg(100000);

void BM_KStarIndexBuild(benchmark::State& state) {
  graph::GeneratorOptions options;
  options.num_nodes = state.range(0);
  options.num_edges = state.range(0) * 5;
  options.seed = 4;
  auto g = graph::GeneratePowerLawGraph(options);
  DPSTARJ_CHECK(g.ok(), "graph");
  for (auto _ : state) {
    graph::KStarIndex index(*g, 2);
    benchmark::DoNotOptimize(index.total());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KStarIndexBuild)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
