// Table 1 — Relative error (%) of PM, R2T, LS on the nine SSB queries by
// varying ε ∈ {0.1, 0.2, 0.5, 0.8, 1}.
//
// Matches the paper's layout: one block per ε, columns Qc1..Qc4, Qs2..Qs4,
// Qg2, Qg4; "n/a" marks mechanism/query combinations the original systems do
// not support (LS: COUNT only; R2T: no GROUP BY). The privacy scenario is
// (0,1)-private with the first predicate dimension private.

#include <cstdio>

#include "bench_common.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

int main() {
  double sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  std::printf("== Table 1: relative error (%%) on SSB queries (SF=%.3f, %d runs) ==\n\n",
              sf, runs);

  ssb::SsbOptions options;
  options.scale_factor = sf;
  auto catalog = ssb::GenerateSsb(options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }

  // Prepare all nine queries once.
  std::vector<std::string> names = ssb::AllQueryNames();
  std::vector<bench::QueryBench> prepared;
  for (const auto& name : names) {
    auto q = ssb::GetQuery(name);
    if (!q.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), q.status().ToString().c_str());
      return 1;
    }
    auto b = bench::QueryBench::Prepare(&*catalog, *q);
    if (!b.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), b.status().ToString().c_str());
      return 1;
    }
    prepared.push_back(std::move(*b));
  }

  Rng rng(2023);
  for (double eps : {0.1, 0.2, 0.5, 0.8, 1.0}) {
    std::printf("epsilon = %.1f\n", eps);
    std::vector<std::string> headers = {"mechanism"};
    headers.insert(headers.end(), names.begin(), names.end());
    bench_util::TablePrinter table(headers);

    std::vector<std::string> pm_row = {"PM"};
    std::vector<std::string> r2t_row = {"R2T"};
    std::vector<std::string> ls_row = {"LS"};
    for (const auto& b : prepared) {
      pm_row.push_back(b.PmError(eps, runs, &rng).Cell());
      r2t_row.push_back(b.R2tError(eps, runs, &rng).MedianCell());
      ls_row.push_back(b.LsError(eps, runs, &rng).Cell());
    }
    table.AddRow(pm_row);
    table.AddRow(r2t_row);
    table.AddRow(ls_row);
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "(paper shape: PM lowest everywhere and the only mechanism covering the\n"
      " GROUP BY columns; LS count-only; errors fall as epsilon grows)\n");
  return 0;
}
