// Figure 6 — Error level of PM, R2T, LS for different GS_Q ∈ {1e5..1e8} on
// counting queries Qc1..Qc4.
//
// GS_Q is realized two ways, matching what each mechanism is sensitive to:
//   * R2T receives GS_Q as its global-sensitivity bound (the log(GS_Q)
//     factors in Eq. (9) grow);
//   * the generated instance plants a heavy customer whose fan-out grows
//     proportionally with GS_Q (capped at half the fact table), which drives
//     LS's local-sensitivity bound;
//   * PM ignores both — its sensitivity is the predicate domain size.

#include <cstdio>

#include "bench_common.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

int main() {
  double sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const double kEpsilon = 0.5;
  const std::vector<double> kGs = {1e5, 1e6, 1e7, 1e8};
  const std::vector<std::string> kQueries = {"Qc1", "Qc2", "Qc3", "Qc4"};

  std::printf(
      "== Figure 6: error level vs GS_Q (SF=%.3f, eps=%.1f, %d runs) ==\n\n", sf,
      kEpsilon, runs);

  Rng rng(606);
  for (const auto& name : kQueries) {
    std::vector<std::string> err_pm, err_r2t, err_ls;
    for (double gs : kGs) {
      ssb::SsbOptions options;
      options.scale_factor = sf;
      // Plant degree ∝ GS_Q (scaled into the instance; the ratio between the
      // x-axis points is what matters for the trend).
      int64_t fact_rows = ssb::SsbSizes::ForScaleFactor(sf).lineorder;
      options.planted_heavy_degree =
          std::min<int64_t>(static_cast<int64_t>(gs / 1e4), fact_rows / 2);
      auto catalog = ssb::GenerateSsb(options);
      if (!catalog.ok()) {
        std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
        return 1;
      }
      auto q = ssb::GetQuery(name);
      auto b = bench::QueryBench::Prepare(&*catalog, *q);
      if (!b.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(), b.status().ToString().c_str());
        return 1;
      }
      err_pm.push_back(b->PmError(kEpsilon, runs, &rng).Cell());
      err_r2t.push_back(b->R2tError(kEpsilon, runs, &rng, gs).Cell());
      err_ls.push_back(b->LsError(kEpsilon, runs, &rng).Cell());
    }
    std::printf("%s  error level (%%) vs GS_Q:\n", name.c_str());
    std::printf("  %s\n", bench_util::FormatSeries("PM ", kGs, err_pm).c_str());
    std::printf("  %s\n", bench_util::FormatSeries("R2T", kGs, err_r2t).c_str());
    std::printf("  %s\n\n", bench_util::FormatSeries("LS ", kGs, err_ls).c_str());
  }
  std::printf(
      "(paper shape: PM insensitive to GS_Q; R2T and LS errors climb rapidly\n"
      " as GS_Q grows)\n");
  return 0;
}
