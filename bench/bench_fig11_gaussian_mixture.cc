// Figure 11 — Error level of PM, R2T, LS for mixtures of Gaussian
// distributions with different skew parameters on Qc3 (top) and Qs3
// (bottom), varying ε ∈ {0.1, 0.2, 0.5, 0.8, 1}.
//
// Three mixtures of increasing skew stand in for the paper's GM_{μ,σ}
// grid (the exact parameter labels are garbled in the source PDF):
//   GM-mild    : N(0.5, 0.20)                    — near-uniform hump
//   GM-bimodal : ½N(0.25, 0.10) + ½N(0.75, 0.10) — two balanced modes
//   GM-skewed  : 0.9N(0.2, 0.05) + 0.1N(0.8, 0.05) — strongly lopsided

#include <cstdio>

#include "bench_common.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

int main() {
  double sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const std::vector<double> kEps = {0.1, 0.2, 0.5, 0.8, 1.0};

  std::printf(
      "== Figure 11: error level under Gaussian-mixture skew (SF=%.3f, %d runs) "
      "==\n\n",
      sf, runs);

  struct Mixture {
    const char* label;
    ssb::DistributionSpec spec;
  };
  Mixture mixtures[] = {
      {"GM-mild", ssb::DistributionSpec::GaussianMixture({1.0}, {0.5}, {0.20})},
      {"GM-bimodal", ssb::DistributionSpec::GaussianMixture({0.5, 0.5}, {0.25, 0.75},
                                                            {0.10, 0.10})},
      {"GM-skewed", ssb::DistributionSpec::GaussianMixture({0.9, 0.1}, {0.2, 0.8},
                                                           {0.05, 0.05})},
  };

  Rng rng(1111);
  for (const auto& name : {std::string("Qc3"), std::string("Qs3")}) {
    std::printf("%s:\n", name.c_str());
    for (const auto& mixture : mixtures) {
      ssb::SsbOptions options;
      options.scale_factor = sf;
      options.attribute_distribution = mixture.spec;
      options.fanout_distribution = mixture.spec;
      options.value_distribution = mixture.spec;
      auto catalog = ssb::GenerateSsb(options);
      if (!catalog.ok()) {
        std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
        return 1;
      }
      auto q = ssb::GetQuery(name);
      auto b = bench::QueryBench::Prepare(&*catalog, *q);
      if (!b.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(), b.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> pm_cells, r2t_cells, ls_cells;
      for (double eps : kEps) {
        pm_cells.push_back(b->PmError(eps, runs, &rng).Cell());
        r2t_cells.push_back(b->R2tError(eps, runs, &rng).MedianCell());
        ls_cells.push_back(b->LsError(eps, runs, &rng).Cell());
      }
      std::printf("  %s:\n", mixture.label);
      std::printf("    %s\n", bench_util::FormatSeries("PM ", kEps, pm_cells).c_str());
      std::printf("    %s\n",
                  bench_util::FormatSeries("R2T", kEps, r2t_cells).c_str());
      std::printf("    %s\n", bench_util::FormatSeries("LS ", kEps, ls_cells).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "(paper shape: skewed mixtures hurt PM more on COUNT than on SUM —\n"
      " count answers track the data distribution directly)\n");
  return 0;
}
