// Figure 8 — Error level of PM, R2T, LS for different predicate domain
// sizes: the five two-dimension counting queries with domain combinations
// {5×7, 5×10², 250×10², 5×366, 250×366}.

#include <cstdio>

#include "bench_common.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

int main() {
  double sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const double kEpsilon = 0.5;

  std::printf(
      "== Figure 8: error level vs predicate domain size (SF=%.3f, eps=%.1f, "
      "%d runs) ==\n\n",
      sf, kEpsilon, runs);

  ssb::SsbOptions options;
  options.scale_factor = sf;
  auto catalog = ssb::GenerateSsb(options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  Rng rng(808);
  bench_util::TablePrinter table(
      {"domain sizes", "PM err %", "R2T err %", "LS err %"});
  for (const auto& variant : ssb::DomainSizeQueries()) {
    auto b = bench::QueryBench::Prepare(&*catalog, variant.query);
    if (!b.ok()) {
      std::fprintf(stderr, "%s: %s\n", variant.label.c_str(),
                   b.status().ToString().c_str());
      return 1;
    }
    table.AddRow({variant.label, b->PmError(kEpsilon, runs, &rng).Cell(),
                  b->R2tError(kEpsilon, runs, &rng).MedianCell(),
                  b->LsError(kEpsilon, runs, &rng).Cell()});
  }
  table.Print();
  std::printf(
      "\n(paper shape: PM's error rises mildly with the domain product —\n"
      " perturbed predicates stay inside the domain — and remains orders of\n"
      " magnitude below R2T and LS)\n");
  return 0;
}
