// Shared helpers for the table/figure reproduction binaries: one-call error
// cells for the three mechanisms on an SSB-style bound query.
//
// Environment knobs (see bench_util/experiment.h):
//   DPSTARJ_SF, DPSTARJ_RUNS, DPSTARJ_GRAPH_SCALE, DPSTARJ_TIME_LIMIT_S.

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/local_sensitivity.h"
#include "baselines/r2t.h"
#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "common/cpu.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exec/kernels/kernels.h"
#include "obs/prof/counters.h"
#include "core/predicate_mechanism.h"
#include "exec/contribution_index.h"
#include "exec/data_cube.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"

namespace dpstarj::bench {

/// \brief Prepared state for answering one query with all three mechanisms.
///
/// The privacy scenario for the output-perturbation baselines is (0,1)-
/// private. The private relation defaults to Customer when the query joins it
/// with a predicate (the paper's motivating example — Example 1.3), otherwise
/// the first predicate-bearing dimension; `private_spec` overrides it (it may
/// be a "Table.column" entity spec, see exec::BuildContributionIndex).
/// Contributions and the data cube are built once; noise runs are cheap.
class QueryBench {
 public:
  static Result<QueryBench> Prepare(const storage::Catalog* catalog,
                                    const query::StarJoinQuery& q,
                                    std::string private_spec = "") {
    QueryBench b;
    query::Binder binder(catalog);
    DPSTARJ_ASSIGN_OR_RETURN(b.bound_, binder.Bind(q));
    // Ground truth via the executor (works for GROUP BY too).
    exec::StarJoinExecutor executor;
    DPSTARJ_ASSIGN_OR_RETURN(b.truth_, executor.Execute(b.bound_));
    // Cube fast path for scalar PM runs.
    if (b.bound_.group_key_layout.empty()) {
      DPSTARJ_ASSIGN_OR_RETURN(auto cube,
                               exec::DataCube::BuildFromQueryPredicates(b.bound_));
      b.cube_ = std::make_shared<exec::DataCube>(std::move(cube));
    }
    // Private relation for the baselines.
    b.private_table_ = std::move(private_spec);
    if (b.private_table_.empty()) {
      for (const auto& d : b.bound_.dims) {
        if (d.predicates.empty()) continue;
        if (b.private_table_.empty()) b.private_table_ = d.table;
        if (d.table == "Customer") b.private_table_ = d.table;
      }
    }
    if (!b.private_table_.empty() && b.bound_.group_key_layout.empty()) {
      auto idx = exec::BuildContributionIndex(b.bound_, {b.private_table_});
      if (idx.ok()) {
        b.contributions_ =
            std::make_shared<exec::ContributionIndex>(std::move(*idx));
      }
    }
    return b;
  }

  const query::BoundQuery& bound() const { return bound_; }
  const exec::QueryResult& truth() const { return truth_; }
  double truth_total() const { return truth_.Total(); }

  /// Mean relative error (%) of PM over `runs` draws. GROUP BY queries use
  /// the executor path and the total-aggregate metric.
  bench_util::RunStats PmError(double epsilon, int runs, Rng* rng) const {
    core::PredicateMechanism pm;
    return bench_util::Repeat(runs, [&]() -> Result<double> {
      if (cube_ != nullptr) {
        DPSTARJ_ASSIGN_OR_RETURN(double est,
                                 pm.AnswerWithCube(bound_, *cube_, epsilon, rng));
        return RelativeErrorPercent(est, truth_.scalar);
      }
      DPSTARJ_ASSIGN_OR_RETURN(exec::QueryResult est, pm.Answer(bound_, epsilon, rng));
      return est.TotalRelativeErrorPercent(truth_);
    });
  }

  /// Mean relative error (%) of R2T (scalar queries only).
  bench_util::RunStats R2tError(double epsilon, int runs, Rng* rng,
                                double gs_q = 0.0) const {
    if (!bound_.group_key_layout.empty()) {
      bench_util::RunStats s;
      s.not_supported = true;  // "a future work of [7]"
      return s;
    }
    if (contributions_ == nullptr) {
      bench_util::RunStats s;
      s.error = Status::Internal("no contribution index");
      return s;
    }
    double gs = gs_q > 0 ? gs_q : DefaultGs();
    return bench_util::Repeat(runs, [&]() -> Result<double> {
      DPSTARJ_ASSIGN_OR_RETURN(
          double est, baselines::R2tRace(*contributions_, gs, epsilon,
                                         /*alpha=*/0.1, rng));
      return RelativeErrorPercent(est, truth_.scalar);
    });
  }

  /// Mean relative error (%) of LS (COUNT scalar queries only).
  bench_util::RunStats LsError(double epsilon, int runs, Rng* rng) const {
    return bench_util::Repeat(runs, [&]() -> Result<double> {
      dp::PrivacyScenario scenario = dp::PrivacyScenario::Dimensions({private_table_});
      DPSTARJ_ASSIGN_OR_RETURN(
          double est,
          baselines::AnswerWithLocalSensitivity(bound_, scenario, epsilon, rng));
      return RelativeErrorPercent(est, truth_.scalar);
    });
  }

  /// Wall-clock of one full mechanism run including the join work (for the
  /// running-time panels of Figures 4/5). Mechanism: 0 = PM, 1 = R2T, 2 = LS.
  Result<double> TimeOneRun(int mechanism, double epsilon, Rng* rng) const {
    Timer timer;
    dp::PrivacyScenario scenario = dp::PrivacyScenario::Dimensions({private_table_});
    switch (mechanism) {
      case 0: {
        core::PredicateMechanism pm;
        DPSTARJ_RETURN_NOT_OK(pm.Answer(bound_, epsilon, rng).status());
        break;
      }
      case 1:
        DPSTARJ_RETURN_NOT_OK(
            baselines::AnswerWithR2t(bound_, scenario, epsilon, rng).status());
        break;
      case 2:
        DPSTARJ_RETURN_NOT_OK(
            baselines::AnswerWithLocalSensitivity(bound_, scenario, epsilon, rng)
                .status());
        break;
      default:
        return Status::InvalidArgument("unknown mechanism");
    }
    return timer.ElapsedSeconds();
  }

 private:
  double DefaultGs() const { return static_cast<double>(bound_.fact->num_rows()); }

  query::BoundQuery bound_;
  exec::QueryResult truth_;
  std::shared_ptr<exec::DataCube> cube_;
  std::shared_ptr<exec::ContributionIndex> contributions_;
  std::string private_table_;
};

/// \brief Machine-readable bench output: when constructed with a non-empty
/// path, the destructor writes `{"host": {...}, "records": [...]}` — each
/// record is `{"bench", "config", "rows_per_sec", "wall_ms",
/// "cycles_per_row", "instr_per_row"}`, and `host` carries the detected
/// topology (cores, ISA the engine dispatched to, cache geometry) plus a
/// `perf_counters` flag saying whether the cycle/instruction columns are
/// real hardware counts or zeros from a host that denies perf_event_open.
/// This is the format tools/check_bench.py and the checked-in BENCH_*.json
/// baselines use.
///
/// Construct the writer at the top of main(): the inherit=1 process counters
/// open in its constructor and only cover threads spawned afterwards, so it
/// must exist before the first query warms the morsel pool.
class JsonBenchWriter {
 public:
  /// \brief Extracts `--json <path>` or `--json=<path>` from argv, removing
  /// the flag so later parsers (e.g. google-benchmark) never see it. Returns
  /// "" when absent.
  static std::string ConsumeJsonFlag(int* argc, char** argv) {
    std::string path;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json" && i + 1 < *argc) {
        path = argv[++i];
        continue;
      }
      if (arg.rfind("--json=", 0) == 0) {
        path = arg.substr(7);
        continue;
      }
      argv[out++] = argv[i];
    }
    *argc = out;
    return path;
  }

  explicit JsonBenchWriter(std::string path) : path_(std::move(path)) {}
  ~JsonBenchWriter() { Flush(); }

  void Add(const std::string& bench, const std::string& config,
           double rows_per_sec, double wall_ms, double cycles_per_row = 0.0,
           double instr_per_row = 0.0) {
    records_.push_back(
        {bench, config, rows_per_sec, wall_ms, cycles_per_row, instr_per_row});
  }

  /// Process-wide cycle/instruction counters for CounterSpan; zeros (and
  /// available() == false) on hosts without PMU access.
  const obs::prof::ProcessCounters& counters() const { return counters_; }

  /// Writes the file; called by the destructor, idempotent.
  void Flush() {
    if (path_.empty() || written_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench json to '%s'\n", path_.c_str());
      return;
    }
    const CpuInfo& cpu = HostCpu();
    std::fprintf(f,
                 "{\n"
                 "  \"host\": {\"cores\": %d, \"isa\": \"%s\", "
                 "\"cache_line_bytes\": %d, \"l1d_bytes\": %lld, "
                 "\"l2_bytes\": %lld, \"perf_counters\": %s},\n"
                 "  \"records\": [\n",
                 cpu.cores, exec::kernels::ActiveKernels().name,
                 cpu.cache_line_bytes, static_cast<long long>(cpu.l1d_bytes),
                 static_cast<long long>(cpu.l2_bytes),
                 counters_.available() ? "true" : "false");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"bench\": \"%s\", \"config\": \"%s\", "
                   "\"rows_per_sec\": %.1f, \"wall_ms\": %.3f, "
                   "\"cycles_per_row\": %.3f, \"instr_per_row\": %.3f}%s\n",
                   r.bench.c_str(), r.config.c_str(), r.rows_per_sec, r.wall_ms,
                   r.cycles_per_row, r.instr_per_row,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    written_ = true;
  }

  bool enabled() const { return !path_.empty(); }

 private:
  struct Record {
    std::string bench;
    std::string config;  // must not contain JSON-special characters
    double rows_per_sec;
    double wall_ms;
    double cycles_per_row;
    double instr_per_row;
  };
  std::string path_;
  std::vector<Record> records_;
  obs::prof::ProcessCounters counters_;
  bool written_ = false;
};

/// \brief Delta of the writer's process-wide counters over a measured region:
/// snapshot at construction, divide by a row count at the end. All-zero on
/// hosts where the counters are unavailable — callers need no special case,
/// the columns just stay 0 and host.perf_counters says why.
class CounterSpan {
 public:
  explicit CounterSpan(const JsonBenchWriter& json)
      : counters_(&json.counters()), start_(counters_->Read()) {}

  double CyclesPerRow(double rows) const {
    if (rows <= 0) return 0.0;
    return static_cast<double>(counters_->Read().cycles - start_.cycles) / rows;
  }
  double InstructionsPerRow(double rows) const {
    if (rows <= 0) return 0.0;
    return static_cast<double>(counters_->Read().instructions -
                               start_.instructions) /
           rows;
  }

 private:
  const obs::prof::ProcessCounters* counters_;
  obs::prof::ProcessCounters::Reading start_;
};

/// Default SSB scale factor for benches (DPSTARJ_SF).
inline double BenchScaleFactor() { return bench_util::EnvDouble("DPSTARJ_SF", 0.1); }
/// Default graph scale for Table 2 (DPSTARJ_GRAPH_SCALE).
inline double BenchGraphScale() {
  return bench_util::EnvDouble("DPSTARJ_GRAPH_SCALE", 0.1);
}
/// Default baseline time limit in seconds (DPSTARJ_TIME_LIMIT_S).
inline double BenchTimeLimit() {
  return bench_util::EnvDouble("DPSTARJ_TIME_LIMIT_S", 5.0);
}

}  // namespace dpstarj::bench
