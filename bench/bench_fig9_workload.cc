// Figure 9 — Error level of PM (independent per-query answering) and WD
// (Workload Decomposition) on the workloads W1 and W2 for ε ∈
// {0.1, 0.2, 0.5, 0.8, 1}.

#include <cstdio>

#include "bench_common.h"
#include "core/workload_mechanism.h"
#include "ssb/ssb_generator.h"
#include "ssb/workloads.h"

using namespace dpstarj;

namespace {

Result<double> MeanWorkloadError(const std::vector<double>& est,
                                 const std::vector<double>& truth) {
  if (est.size() != truth.size()) return Status::Internal("size mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += RelativeErrorPercent(est[i], truth[i]);
  }
  return acc / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  double sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const std::vector<double> kEps = {0.1, 0.2, 0.5, 0.8, 1.0};

  std::printf("== Figure 9: PM vs WD on workloads (SF=%.3f, %d runs) ==\n\n", sf,
              runs);

  ssb::SsbOptions options;
  options.scale_factor = sf;
  auto catalog = ssb::GenerateSsb(options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  auto attributes = ssb::WorkloadAttributes();
  // Build the cube once through a predicate-free base query.
  query::StarJoinQuery base;
  base.fact_table = ssb::kLineorder;
  for (const auto& a : attributes) base.joined_tables.push_back(a.table);
  query::Binder binder(&*catalog);
  auto bound = binder.Bind(base);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  auto cube = exec::DataCube::Build(*bound, attributes);
  if (!cube.ok()) {
    std::fprintf(stderr, "cube: %s\n", cube.status().ToString().c_str());
    return 1;
  }

  Rng rng(909);
  for (const char* which : {"W1", "W2"}) {
    auto workload = std::string(which) == "W1" ? ssb::WorkloadW1() : ssb::WorkloadW2();
    if (!workload.ok()) {
      std::fprintf(stderr, "%s: %s\n", which, workload.status().ToString().c_str());
      return 1;
    }
    auto truth = core::TrueWorkloadAnswers(*cube, *workload, attributes);
    if (!truth.ok()) {
      std::fprintf(stderr, "truth: %s\n", truth.status().ToString().c_str());
      return 1;
    }

    std::vector<std::string> pm_cells, wd_cells;
    for (double eps : kEps) {
      auto pm_stats = bench_util::Repeat(runs, [&]() -> Result<double> {
        DPSTARJ_ASSIGN_OR_RETURN(
            auto answers,
            core::AnswerWorkloadPerQuery(*cube, *workload, attributes, eps, &rng));
        return MeanWorkloadError(answers, *truth);
      });
      auto wd_stats = bench_util::Repeat(runs, [&]() -> Result<double> {
        DPSTARJ_ASSIGN_OR_RETURN(auto answers,
                                 core::AnswerWorkloadWithDecomposition(
                                     *cube, *workload, attributes, eps, &rng));
        return MeanWorkloadError(answers, *truth);
      });
      pm_cells.push_back(pm_stats.Cell());
      wd_cells.push_back(wd_stats.Cell());
    }
    std::printf("%s  mean error over %d queries (%%):\n", which,
                workload->size());
    std::printf("  %s\n", bench_util::FormatSeries("PM", kEps, pm_cells).c_str());
    std::printf("  %s\n\n", bench_util::FormatSeries("WD", kEps, wd_cells).c_str());
  }
  std::printf("(paper shape: WD below PM at every epsilon, especially on W1)\n");
  return 0;
}
