// Figure 5 — Running time (s) and error level of PM and R2T for different
// data scales on the SUM queries Qs2..Qs4 (LS does not support SUM).

#include <cstdio>

#include "bench_common.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace dpstarj;

int main() {
  double base_sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const double kEpsilon = 0.5;
  const std::vector<double> kScales = {0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> kQueries = {"Qs2", "Qs3", "Qs4"};

  std::printf(
      "== Figure 5: error level and running time vs data scale (SUM)"
      " (base SF=%.3f, eps=%.1f, %d runs) ==\n\n",
      base_sf, kEpsilon, runs);

  Rng rng(505);
  for (const auto& name : kQueries) {
    std::vector<std::string> err_pm, err_r2t, t_pm, t_r2t;
    for (double rel : kScales) {
      ssb::SsbOptions options;
      options.scale_factor = base_sf * rel;
      auto catalog = ssb::GenerateSsb(options);
      if (!catalog.ok()) {
        std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
        return 1;
      }
      auto q = ssb::GetQuery(name);
      auto b = bench::QueryBench::Prepare(&*catalog, *q);
      if (!b.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(), b.status().ToString().c_str());
        return 1;
      }
      err_pm.push_back(b->PmError(kEpsilon, runs, &rng).Cell());
      err_r2t.push_back(b->R2tError(kEpsilon, runs, &rng).MedianCell());
      auto time_cell = [&](int mech) {
        auto t = b->TimeOneRun(mech, kEpsilon, &rng);
        return t.ok() ? Format("%.3f", *t) : std::string("n/a");
      };
      t_pm.push_back(time_cell(0));
      t_r2t.push_back(time_cell(1));
    }
    std::printf("%s  error level (%%):\n", name.c_str());
    std::printf("  %s\n", bench_util::FormatSeries("PM ", kScales, err_pm).c_str());
    std::printf("  %s\n", bench_util::FormatSeries("R2T", kScales, err_r2t).c_str());
    std::printf("%s  running time (s):\n", name.c_str());
    std::printf("  %s\n", bench_util::FormatSeries("PM ", kScales, t_pm).c_str());
    std::printf("  %s\n\n", bench_util::FormatSeries("R2T", kScales, t_r2t).c_str());
  }
  std::printf(
      "(paper shape: R2T stuck near 80%% error on SUM — truncation bias\n"
      " dominates; PM an order of magnitude lower)\n");
  return 0;
}
