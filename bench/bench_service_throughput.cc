// Throughput of the concurrent DP query service: queries/sec vs worker-thread
// count on a cache-miss workload (every query distinct — each pays a full
// bind + Predicate Mechanism run), followed by a cache-replay workload that
// reports hit-rate and ε saved.
//
//   $ ./bench_service_throughput
//
// Environment knobs:
//   DPSTARJ_SERVICE_ROWS     fact-table rows        (default 200000)
//   DPSTARJ_SERVICE_QUERIES  queries per data point (default 192)
//   DPSTARJ_SERVICE_THREADS  max pool size          (default 8)
//
// Scaling is bounded by the hardware: on a single-core host qps is flat in
// the thread count (the pool still serializes cleanly — that is the test);
// with ≥4 cores the miss workload shows the ≥2× speedup from 1→4 workers.

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "service/query_service.h"
#include "storage/catalog.h"

using namespace dpstarj;

namespace {

// A synthetic two-dimension star schema sized so one query is a few ms of
// bind + join + mechanism work — enough for thread scaling to be visible.
storage::Catalog MakeBenchCatalog(int64_t fact_rows) {
  using storage::AttributeDomain;
  using storage::Field;
  using storage::Value;
  using storage::ValueType;

  constexpr int64_t kDimRows = 1000;
  storage::Schema dim_schema({Field("dk", ValueType::kInt64),
                              Field("bucket", ValueType::kInt64,
                                    AttributeDomain::IntRange(1, kDimRows))});
  auto dim = *storage::Table::Create("Dim", dim_schema, "dk");
  for (int64_t i = 0; i < kDimRows; ++i) {
    DPSTARJ_CHECK(dim->AppendRow({Value(i + 1), Value(i + 1)}).ok(), "bench dim");
  }

  storage::Schema fact_schema(
      {Field("dk", ValueType::kInt64), Field("amount", ValueType::kDouble)});
  auto fact = *storage::Table::Create("Fact", fact_schema);
  for (int64_t i = 0; i < fact_rows; ++i) {
    DPSTARJ_CHECK(
        fact->AppendRow({Value(i % kDimRows + 1), Value(double(i % 97))}).ok(),
        "bench fact");
  }

  storage::Catalog catalog;
  DPSTARJ_CHECK(catalog.AddTable(dim).ok(), "bench");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "bench");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Fact", "dk", "Dim", "dk"}).ok(), "bench");
  return catalog;
}

std::string DistinctQuery(int i) {
  // Vary both ends of the range so every query canonicalizes differently.
  int lo = i % 400 + 1;
  int hi = lo + 100 + i % 37;
  return Format(
      "SELECT count(*) FROM Fact, Dim WHERE Fact.dk = Dim.dk "
      "AND Dim.bucket BETWEEN %d AND %d",
      lo, hi);
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
};

// Submits `queries` through a fresh pool of `threads` workers and waits for
// every answer. The submitting side runs on one thread; with a bounded queue
// the pool's workers are the throughput bottleneck by design.
RunResult RunWorkload(const storage::Catalog* catalog, int threads,
                      const std::vector<std::string>& queries, double epsilon,
                      service::ServiceStats* stats_out = nullptr) {
  service::ServiceOptions opts;
  opts.num_engines = threads;
  opts.queue_capacity = 64;
  opts.default_tenant_budget = 1e9;  // accounting on, never the bottleneck
  service::QueryService svc(catalog, opts);

  Timer timer;
  std::vector<std::future<Result<exec::QueryResult>>> futures;
  futures.reserve(queries.size());
  for (const auto& sql : queries) {
    futures.push_back(svc.Submit(sql, epsilon, "bench"));
  }
  for (auto& f : futures) {
    auto r = f.get();
    DPSTARJ_CHECK(r.ok(), r.status().message().c_str());
  }
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.qps = static_cast<double>(queries.size()) / result.seconds;
  if (stats_out != nullptr) *stats_out = svc.Stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBenchWriter json(bench::JsonBenchWriter::ConsumeJsonFlag(&argc, argv));
  const int64_t fact_rows = bench_util::EnvInt("DPSTARJ_SERVICE_ROWS", 200000);
  const int num_queries = bench_util::EnvInt("DPSTARJ_SERVICE_QUERIES", 192);
  const int max_threads = bench_util::EnvInt("DPSTARJ_SERVICE_THREADS", 8);
  const double kEpsilon = 0.5;

  std::printf(
      "== Service throughput: queries/sec vs pool size "
      "(fact rows=%lld, queries=%d, eps=%.1f, hardware threads=%u) ==\n\n",
      static_cast<long long>(fact_rows), num_queries, kEpsilon,
      std::thread::hardware_concurrency());

  storage::Catalog catalog = MakeBenchCatalog(fact_rows);

  // --- cache-miss workload: every query distinct, every answer paid for ----
  std::vector<std::string> miss_queries;
  miss_queries.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) miss_queries.push_back(DistinctQuery(i));

  bench_util::TablePrinter table({"threads", "seconds", "queries/sec", "speedup"});
  double base_qps = 0.0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    RunResult r = RunWorkload(&catalog, threads, miss_queries, kEpsilon);
    if (threads == 1) base_qps = r.qps;
    table.AddRow({Format("%d", threads), Format("%.3f", r.seconds),
                  Format("%.1f", r.qps), Format("%.2fx", r.qps / base_qps)});
    json.Add("service_throughput/miss",
             Format("threads=%d", threads), r.qps,
             r.seconds * 1e3);
  }
  std::printf("cache-miss workload (all queries distinct):\n");
  table.Print();

  // --- cache-replay workload: few distinct queries, many submissions -------
  std::vector<std::string> hit_queries;
  hit_queries.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    hit_queries.push_back(DistinctQuery(i % 8));  // 8 distinct → ~96% hits
  }
  service::ServiceStats stats;
  RunResult r = RunWorkload(&catalog, max_threads, hit_queries, kEpsilon, &stats);
  std::printf("\ncache-replay workload (8 distinct queries, %d submissions):\n",
              num_queries);
  std::printf("  %.1f queries/sec in %.3f s\n", r.qps, r.seconds);
  std::printf("  cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              100.0 * stats.cache.HitRate());
  std::printf("  privacy budget saved by replays: eps = %.4g (of %.4g requested)\n",
              stats.cache.epsilon_saved, kEpsilon * num_queries);
  json.Add("service_throughput/replay",
           Format("threads=%d", max_threads), r.qps, r.seconds * 1e3);
  return 0;
}
