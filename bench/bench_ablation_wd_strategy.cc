// Ablation — Workload Decomposition strategy choice (DESIGN.md §4): identity
// vs hierarchical vs auto on the paper's W1 (point-heavy) and W2 (cumulative)
// workloads.

#include <cstdio>

#include "bench_common.h"
#include "core/workload_mechanism.h"
#include "ssb/ssb_generator.h"
#include "ssb/workloads.h"

using namespace dpstarj;

int main() {
  double sf = bench::BenchScaleFactor();
  int runs = bench_util::DefaultRuns();
  const std::vector<double> kEps = {0.1, 0.5, 1.0};

  std::printf(
      "== Ablation: WD strategy — identity vs hierarchical vs auto"
      " (SF=%.3f, %d runs) ==\n\n",
      sf, runs);

  ssb::SsbOptions options;
  options.scale_factor = sf;
  auto catalog = ssb::GenerateSsb(options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "gen: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  auto attributes = ssb::WorkloadAttributes();
  query::StarJoinQuery base;
  base.fact_table = ssb::kLineorder;
  for (const auto& a : attributes) base.joined_tables.push_back(a.table);
  query::Binder binder(&*catalog);
  auto bound = binder.Bind(base);
  auto cube = exec::DataCube::Build(*bound, attributes);
  if (!cube.ok()) {
    std::fprintf(stderr, "cube: %s\n", cube.status().ToString().c_str());
    return 1;
  }

  Rng rng(1313);
  for (const char* which : {"W1", "W2"}) {
    auto workload = std::string(which) == "W1" ? ssb::WorkloadW1() : ssb::WorkloadW2();
    auto truth = core::TrueWorkloadAnswers(*cube, *workload, attributes);
    if (!truth.ok()) {
      std::fprintf(stderr, "truth: %s\n", truth.status().ToString().c_str());
      return 1;
    }
    bench_util::TablePrinter table({std::string(which) + " strategy",
                                    "eps=0.1 err %", "eps=0.5 err %",
                                    "eps=1 err %"});
    struct Mode {
      const char* label;
      core::WorkloadStrategyKind kind;
    };
    for (Mode mode : {Mode{"identity", core::WorkloadStrategyKind::kIdentity},
                      Mode{"hierarchical", core::WorkloadStrategyKind::kHierarchical},
                      Mode{"auto", core::WorkloadStrategyKind::kAuto}}) {
      std::vector<std::string> row = {mode.label};
      for (double eps : kEps) {
        auto stats = bench_util::Repeat(runs, [&]() -> Result<double> {
          core::WorkloadMechanismOptions opts;
          opts.strategy = mode.kind;
          DPSTARJ_ASSIGN_OR_RETURN(
              auto answers, core::AnswerWorkloadWithDecomposition(
                                *cube, *workload, attributes, eps, &rng, opts));
          double acc = 0.0;
          for (size_t i = 0; i < truth->size(); ++i) {
            acc += RelativeErrorPercent(answers[i], (*truth)[i]);
          }
          return acc / static_cast<double>(truth->size());
        });
        row.push_back(stats.Cell());
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
