// Throughput of the HTTP front door: queries/sec over the wire vs concurrent
// client connections, against an in-process epoll server backed by the full
// QueryService stack (ledger admission, answer cache, engine pool). Five
// scenarios:
//   * cache-miss (every query distinct — full bind + Predicate Mechanism per
//     request) and cache-replay (8 distinct queries — wire and dispatch
//     overhead dominate), mirroring bench_service_throughput;
//   * workload batches: the same distinct queries once as sequential
//     /v1/query traffic and once as /v1/workload batches of 16 (one shared
//     fact sweep per batch) — reported as queries/sec for both;
//   * hot-tenant: a capped hot tenant saturates the service while a quiet
//     tenant runs the same sequential workload it first ran solo — reported
//     as the quiet tenant's p50 under fire vs its solo p50 (the fairness
//     acceptance: within 2x), plus the hot tenant's tenant-limited 429s;
//   * slow-client: a connection that sends half a request line and stalls —
//     reported as the time until the server reaps it (≈ the configured
//     header deadline), while a fast client keeps being served.
//
//   $ ./bench_net_throughput [--json BENCH_net.json]
//
// Environment knobs:
//   DPSTARJ_NET_ROWS     fact-table rows            (default 100000)
//   DPSTARJ_NET_QUERIES  queries per data point     (default 1024)
//   DPSTARJ_NET_CONNS    max client connections     (default 8)
//   DPSTARJ_NET_ENGINES  service engine pool size   (default 4)
//
// Clients retry on 429 (the TrySubmit queue-full signal) with a short
// backoff; the retry count is reported so saturation is visible.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "storage/catalog.h"

using namespace dpstarj;

namespace {

// Same synthetic two-dimension star schema as bench_service_throughput: one
// query is a few ms of bind + join + mechanism work.
storage::Catalog MakeBenchCatalog(int64_t fact_rows) {
  using storage::AttributeDomain;
  using storage::Field;
  using storage::Value;
  using storage::ValueType;

  constexpr int64_t kDimRows = 1000;
  storage::Schema dim_schema({Field("dk", ValueType::kInt64),
                              Field("bucket", ValueType::kInt64,
                                    AttributeDomain::IntRange(1, kDimRows))});
  auto dim = *storage::Table::Create("Dim", dim_schema, "dk");
  for (int64_t i = 0; i < kDimRows; ++i) {
    DPSTARJ_CHECK(dim->AppendRow({Value(i + 1), Value(i + 1)}).ok(), "bench dim");
  }

  storage::Schema fact_schema(
      {Field("dk", ValueType::kInt64), Field("amount", ValueType::kDouble)});
  auto fact = *storage::Table::Create("Fact", fact_schema);
  for (int64_t i = 0; i < fact_rows; ++i) {
    DPSTARJ_CHECK(
        fact->AppendRow({Value(i % kDimRows + 1), Value(double(i % 97))}).ok(),
        "bench fact");
  }

  storage::Catalog catalog;
  DPSTARJ_CHECK(catalog.AddTable(dim).ok(), "bench");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "bench");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Fact", "dk", "Dim", "dk"}).ok(), "bench");
  return catalog;
}

// Unlike bench_service_throughput, one service lives across every data
// point, so miss-workload queries must be distinct across the whole sweep —
// `n` is a global counter, not a per-point index.
std::string DistinctQuery(int n) {
  int lo = n % 797 + 1;
  int hi = lo + 50 + (n / 797) % 149 + n % 37;
  return Format(
      "SELECT count(*) FROM Fact, Dim WHERE Fact.dk = Dim.dk "
      "AND Dim.bucket BETWEEN %d AND %d",
      lo, hi);
}

std::string QueryBody(const std::string& sql, double epsilon,
                      const std::string& tenant) {
  net::Json body = net::Json::Object();
  body.Set("sql", net::Json::Str(sql));
  body.Set("epsilon", net::Json::Number(epsilon));
  body.Set("tenant", net::Json::Str(tenant));
  return body.Dump();
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  uint64_t retries_429 = 0;
};

// Sequentially runs `queries` for one tenant over one connection, returning
// per-request wall latencies (ms). Retries 429s (they should not happen for
// the quiet tenant — fair dispatch is exactly what this measures).
std::vector<double> RunSequential(const std::string& host, uint16_t port,
                                  const std::vector<std::string>& bodies) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(bodies.size());
  net::Client client(host, port);
  for (const std::string& body : bodies) {
    Timer timer;
    for (;;) {
      auto r = client.Post("/v1/query", body);
      DPSTARJ_CHECK(r.ok(), "sequential client failed");
      if (r->status == 429) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      DPSTARJ_CHECK(r->status == 200, r->body.c_str());
      break;
    }
    latencies_ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  return latencies_ms;
}

// `connections` client threads split `bodies` round-robin, each over its own
// keep-alive connection. Every request must eventually succeed; 429s are
// retried with a 1 ms backoff.
RunResult RunWorkload(const std::string& host, uint16_t port, int connections,
                      const std::vector<std::string>& bodies,
                      const std::string& path = "/v1/query") {
  std::atomic<uint64_t> retries{0};
  std::atomic<bool> failed{false};
  Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      net::Client client(host, port);
      for (size_t i = static_cast<size_t>(c); i < bodies.size();
           i += static_cast<size_t>(connections)) {
        for (;;) {
          auto r = client.Post(path, bodies[i]);
          if (!r.ok()) {
            std::fprintf(stderr, "client: %s\n", r.status().ToString().c_str());
            failed.store(true);
            return;
          }
          if (r->status == 429) {
            retries.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
          }
          if (r->status != 200) {
            std::fprintf(stderr, "client: HTTP %d %s\n", r->status,
                         r->body.c_str());
            failed.store(true);
            return;
          }
          break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  DPSTARJ_CHECK(!failed.load(), "bench workload had failing requests");
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.qps = static_cast<double>(bodies.size()) / result.seconds;
  result.retries_429 = retries.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBenchWriter json(bench::JsonBenchWriter::ConsumeJsonFlag(&argc, argv));
  const int64_t fact_rows = bench_util::EnvInt("DPSTARJ_NET_ROWS", 100000);
  const int num_queries = bench_util::EnvInt("DPSTARJ_NET_QUERIES", 1024);
  const int max_conns = bench_util::EnvInt("DPSTARJ_NET_CONNS", 8);
  const int engines = bench_util::EnvInt("DPSTARJ_NET_ENGINES", 4);
  const double kEpsilon = 0.5;

  std::printf(
      "== HTTP front-door throughput: queries/sec vs client connections "
      "(fact rows=%lld, queries=%d, engines=%d, hardware threads=%u) ==\n\n",
      static_cast<long long>(fact_rows), num_queries, engines,
      std::thread::hardware_concurrency());

  storage::Catalog catalog = MakeBenchCatalog(fact_rows);
  // A shared registry so the server-side latency histograms (the numbers a
  // production scrape would see) can be diffed around a workload.
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  service::ServiceOptions service_options;
  service_options.num_engines = engines;
  service_options.queue_capacity = 256;
  service_options.default_tenant_budget = 1e9;
  service_options.metrics = metrics;
  service::QueryService service(&catalog, service_options);

  net::ServerOptions server_options;  // ephemeral port, localhost
  server_options.handler_threads = max_conns;
  server_options.metrics = metrics.get();
  // A short header deadline so the slow-client scenario's reap is visible in
  // bench time; honest clients send whole requests in one write.
  server_options.header_timeout_ms = 750;
  net::HttpServer server(net::MakeServiceRouter(&service), server_options);
  Status started = server.Start();
  DPSTARJ_CHECK(started.ok(), started.ToString().c_str());

  // --- cache-miss workload: every query distinct ---------------------------
  bench_util::TablePrinter table(
      {"conns", "seconds", "queries/sec", "speedup", "429 retries"});
  double base_qps = 0.0;
  int query_counter = 0;
  for (int conns = 1; conns <= max_conns; conns *= 2) {
    std::vector<std::string> miss_bodies;
    miss_bodies.reserve(static_cast<size_t>(num_queries));
    for (int i = 0; i < num_queries; ++i) {
      miss_bodies.push_back(
          QueryBody(DistinctQuery(query_counter++), kEpsilon, "bench"));
    }
    RunResult r = RunWorkload(server.host(), server.port(), conns, miss_bodies);
    if (conns == 1) base_qps = r.qps;
    table.AddRow({Format("%d", conns), Format("%.3f", r.seconds),
                  Format("%.1f", r.qps), Format("%.2fx", r.qps / base_qps),
                  Format("%llu", static_cast<unsigned long long>(r.retries_429))});
    json.Add("net_throughput/miss",
             Format("conns=%d", conns), r.qps,
             r.seconds * 1e3);
  }
  std::printf("cache-miss workload (all queries distinct, over the wire):\n");
  table.Print();

  // --- cache-replay workload: wire + dispatch overhead dominates -----------
  std::vector<std::string> hit_bodies;
  hit_bodies.reserve(static_cast<size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    hit_bodies.push_back(QueryBody(DistinctQuery(i % 8), kEpsilon, "bench"));
  }
  // Bracket the run with snapshots of the server-side duration histogram:
  // the diff isolates this workload's requests from the sweep above.
  const obs::Histogram* ok_hist = metrics->FindHistogram(
      "dpstarj_query_duration_seconds", {{"outcome", "ok"}});
  DPSTARJ_CHECK(ok_hist != nullptr, "query duration histogram missing");
  obs::HistogramSnapshot before = ok_hist->Snapshot();
  RunResult r = RunWorkload(server.host(), server.port(), max_conns, hit_bodies);
  obs::HistogramSnapshot replay_snap = ok_hist->Snapshot();
  for (size_t i = 0; i < replay_snap.counts.size(); ++i) {
    replay_snap.counts[i] -= before.counts[i];
  }
  replay_snap.count -= before.count;
  replay_snap.sum -= before.sum;
  service::ServiceStats stats = service.Stats();
  std::printf("\ncache-replay workload (8 distinct queries, %d requests, "
              "%d connections):\n",
              num_queries, max_conns);
  std::printf("  %.1f queries/sec in %.3f s (%llu retries on 429)\n", r.qps,
              r.seconds, static_cast<unsigned long long>(r.retries_429));
  std::printf("  cache: %llu hits / %llu misses (%.1f%% hit rate), "
              "eps saved %.4g\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              100.0 * stats.cache.HitRate(), stats.cache.epsilon_saved);
  json.Add("net_throughput/replay",
           Format("conns=%d", max_conns), r.qps,
           r.seconds * 1e3);

  // Server-side latency quantiles for the replay workload, straight from the
  // histogram the /metrics endpoint exposes (bucket-interpolated, so accuracy
  // is bucket-bounded — the same numbers a production scrape would compute).
  {
    const double p50_ms = replay_snap.Quantile(0.50) * 1e3;
    const double p99_ms = replay_snap.Quantile(0.99) * 1e3;
    std::printf("  server-side (from /metrics histogram, %llu requests): "
                "p50 %.3f ms, p99 %.3f ms, mean %.3f ms\n",
                static_cast<unsigned long long>(replay_snap.count), p50_ms,
                p99_ms, replay_snap.Mean() * 1e3);
    json.Add("net_throughput/replay_server_p50",
             Format("conns=%d", max_conns), 1e3 / std::max(p50_ms, 1e-9),
             p50_ms);
    json.Add("net_throughput/replay_server_p99",
             Format("conns=%d", max_conns), 1e3 / std::max(p99_ms, 1e-9),
             p99_ms);
    // The endpoint itself serves under bench load and carries the series.
    net::Client scraper(server.host(), server.port());
    auto scrape = scraper.Get("/metrics");
    DPSTARJ_CHECK(scrape.ok() && scrape->status == 200, "/metrics scrape");
    DPSTARJ_CHECK(scrape->body.find("dpstarj_query_duration_seconds_bucket") !=
                      std::string::npos,
                  "scrape missing duration histogram");
  }

  // --- workload batches: /v1/workload vs equivalent sequential traffic ----
  // The same distinct cache-missing queries, answered twice: one /v1/query
  // request per query, then regrouped into /v1/workload batches of 16 (one
  // admission decision + ONE shared fact sweep per batch). Distinct ε per
  // pass keeps the answer cache from replaying across passes; the delta is
  // the shared scan plus the saved per-request round trips.
  {
    const int batch_size = 16;
    const int num_batches = std::max(4, num_queries / batch_size / 4);
    const int total_queries = num_batches * batch_size;
    std::vector<std::string> single_bodies;
    std::vector<std::string> batch_bodies;
    single_bodies.reserve(static_cast<size_t>(total_queries));
    batch_bodies.reserve(static_cast<size_t>(num_batches));
    for (int b = 0; b < num_batches; ++b) {
      net::Json body = net::Json::Object();
      body.Set("tenant", net::Json::Str("bench"));
      net::Json entries = net::Json::Array();
      for (int i = 0; i < batch_size; ++i) {
        std::string sql = DistinctQuery(query_counter++);
        single_bodies.push_back(QueryBody(sql, kEpsilon, "bench"));
        net::Json entry = net::Json::Object();
        entry.Set("sql", net::Json::Str(sql));
        entry.Set("epsilon", net::Json::Number(kEpsilon + 0.02));
        entries.Append(std::move(entry));
      }
      body.Set("queries", std::move(entries));
      batch_bodies.push_back(body.Dump());
    }
    RunResult seq = RunWorkload(server.host(), server.port(), max_conns,
                                single_bodies, "/v1/query");
    RunResult bat = RunWorkload(server.host(), server.port(), max_conns,
                                batch_bodies, "/v1/workload");
    const double batch_qps = static_cast<double>(total_queries) / bat.seconds;
    std::printf("\nworkload batches (%d queries as %d batches of %d, "
                "%d connections):\n",
                total_queries, num_batches, batch_size, max_conns);
    std::printf("  sequential /v1/query: %.1f queries/sec in %.3f s; "
                "/v1/workload: %.1f queries/sec in %.3f s (%.2fx)\n",
                seq.qps, seq.seconds, batch_qps, bat.seconds,
                batch_qps / seq.qps);
    json.Add("net_throughput/workload_sequential",
             Format("conns=%d batch=%d", max_conns, batch_size), seq.qps, seq.seconds * 1e3);
    json.Add("net_throughput/workload_batch",
             Format("conns=%d batch=%d speedup=%.2f", max_conns, batch_size,
                    batch_qps / seq.qps),
             batch_qps, bat.seconds * 1e3);
  }

  // --- hot-tenant scenario: quiet tenant p50 solo vs under fire -----------
  // The hot tenant is capped at 2 in-flight queries via the wire protocol
  // (the global queue therefore never fills); the quiet tenant runs the same
  // sequential workload twice — alone, then during the storm. Fair dispatch
  // should keep its p50 within 2x of solo.
  {
    // The hot tenant gets a real admission contract via the wire protocol:
    // 100 queries/sec sustained (burst 4) and at most 2 in flight. The storm
    // below tries to exceed both; the 429s it earns are the rate limiter
    // working, and the quiet tenant's p50 is the fairness it buys.
    net::Client admin(server.host(), server.port());
    auto reg = admin.Post("/v1/tenants",
                          "{\"tenant\":\"hot\",\"epsilon\":1e9,"
                          "\"rate_qps\":100,\"burst\":4,\"max_in_flight\":2}");
    DPSTARJ_CHECK(reg.ok() && reg->status == 201, "hot tenant registration");

    const int quiet_queries = std::max(16, num_queries / 8);
    std::vector<std::string> quiet_bodies;
    quiet_bodies.reserve(static_cast<size_t>(quiet_queries));
    for (int i = 0; i < quiet_queries; ++i) {
      quiet_bodies.push_back(
          QueryBody(DistinctQuery(query_counter++), kEpsilon, "quiet"));
    }
    double solo_p50 =
        Median(RunSequential(server.host(), server.port(), quiet_bodies));

    std::atomic<bool> storm_over{false};
    std::atomic<uint64_t> hot_ok{0}, hot_limited{0};
    const int hot_threads = std::max(2, max_conns / 2);
    std::vector<std::thread> storm;
    // The storm draws from the same global counter space (wrapped well below
    // DistinctQuery's domain bound).
    std::atomic<int> hot_counter{query_counter};
    for (int t = 0; t < hot_threads; ++t) {
      storm.emplace_back([&] {
        net::Client client(server.host(), server.port());
        while (!storm_over.load()) {
          std::string body = QueryBody(
              DistinctQuery(hot_counter.fetch_add(1) % 90000), kEpsilon, "hot");
          auto r = client.Post("/v1/query", body);
          DPSTARJ_CHECK(r.ok(), "hot client failed");
          if (r->status == 200) {
            hot_ok.fetch_add(1);
          } else if (r->status == 429) {
            hot_limited.fetch_add(1);
            // A grudging backoff (far below the Retry-After hint): keeps the
            // storm relentless while not burning the host's cores on a
            // spin of refusals — client CPU is not what this measures.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          } else {
            DPSTARJ_CHECK(false, r->body.c_str());
          }
        }
      });
    }
    // Fresh distinct queries for the contended pass: same SQL counter range
    // as the solo pass would continue into, but a different ε — the answer
    // cache keys on (canonical query, ε), so neither the solo pass nor the
    // racing hot tenant can have pre-paid these (no replay shortcut).
    std::vector<std::string> contended_bodies;
    contended_bodies.reserve(static_cast<size_t>(quiet_queries));
    for (int i = 0; i < quiet_queries; ++i) {
      contended_bodies.push_back(
          QueryBody(DistinctQuery(query_counter++), kEpsilon + 0.01, "quiet"));
    }
    double hot_p50 =
        Median(RunSequential(server.host(), server.port(), contended_bodies));
    storm_over.store(true);
    for (auto& t : storm) t.join();

    std::printf("\nhot-tenant scenario (%d hot threads vs rate 100/s, burst 4, "
                "2 in-flight; quiet tenant sequential):\n",
                hot_threads);
    std::printf("  quiet p50 solo %.2f ms, under fire %.2f ms (%.2fx); "
                "hot: %llu answered, %llu tenant-limited 429s\n",
                solo_p50, hot_p50, hot_p50 / solo_p50,
                static_cast<unsigned long long>(hot_ok.load()),
                static_cast<unsigned long long>(hot_limited.load()));
    json.Add("net_throughput/hot_tenant_quiet_p50",
             Format("solo_ms=%.2f ratio=%.2f", solo_p50, hot_p50 / solo_p50),
             1e3 / std::max(hot_p50, 1e-9), hot_p50);
  }

  // --- slow-client scenario: time to reap a stalled half request ----------
  {
    Timer timer;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, server.host().c_str(), &addr.sin_addr);
    DPSTARJ_CHECK(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
        "slow client connect");
    DPSTARJ_CHECK(::send(fd, "GET /heal", 9, MSG_NOSIGNAL) == 9, "slow send");
    // A fast client keeps being served while the loris waits to be reaped.
    net::Client fast(server.host(), server.port());
    uint64_t fast_ok = 0;
    char buf[1024];
    for (;;) {
      auto r = fast.Get("/healthz");
      DPSTARJ_CHECK(r.ok() && r->status == 200, "fast client during loris");
      ++fast_ok;
      // Poll the loris socket without blocking the fast loop.
      ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) break;                      // EOF: reaped
      if (n < 0 && errno != EAGAIN) break;    // reset also counts as reaped
      if (n > 0) continue;                    // the best-effort 408 arrived
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ::close(fd);
    double reap_ms = timer.ElapsedSeconds() * 1e3;
    std::printf("\nslow-client scenario (header deadline %d ms):\n",
                server_options.header_timeout_ms);
    std::printf("  stalled connection reaped after %.0f ms; fast client "
                "answered %llu times meanwhile\n",
                reap_ms, static_cast<unsigned long long>(fast_ok));
    json.Add("net_throughput/slow_client_reap",
             Format("header_timeout_ms=%d", server_options.header_timeout_ms),
             1e3 / std::max(reap_ms, 1e-9), reap_ms);
  }

  net::ServerStats net_stats = server.GetStats();
  std::printf("  server: %llu connections, %llu requests, "
              "timeouts %llu hdr / %llu body / %llu idle / %llu write\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.requests_handled),
              static_cast<unsigned long long>(net_stats.timeouts_header),
              static_cast<unsigned long long>(net_stats.timeouts_body),
              static_cast<unsigned long long>(net_stats.timeouts_idle),
              static_cast<unsigned long long>(net_stats.timeouts_write));
  server.Stop();
  return 0;
}
