// Throughput of the HTTP front door: queries/sec over the wire vs concurrent
// client connections, against an in-process epoll server backed by the full
// QueryService stack (ledger admission, answer cache, engine pool). Two
// workloads, mirroring bench_service_throughput: cache-miss (every query
// distinct — full bind + Predicate Mechanism per request) and cache-replay
// (8 distinct queries — the wire and dispatch overhead dominate).
//
//   $ ./bench_net_throughput [--json BENCH_net.json]
//
// Environment knobs:
//   DPSTARJ_NET_ROWS     fact-table rows            (default 100000)
//   DPSTARJ_NET_QUERIES  queries per data point     (default 1024)
//   DPSTARJ_NET_CONNS    max client connections     (default 8)
//   DPSTARJ_NET_ENGINES  service engine pool size   (default 4)
//
// Clients retry on 429 (the TrySubmit queue-full signal) with a short
// backoff; the retry count is reported so saturation is visible.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/http_server.h"
#include "net/service_api.h"
#include "service/query_service.h"
#include "storage/catalog.h"

using namespace dpstarj;

namespace {

// Same synthetic two-dimension star schema as bench_service_throughput: one
// query is a few ms of bind + join + mechanism work.
storage::Catalog MakeBenchCatalog(int64_t fact_rows) {
  using storage::AttributeDomain;
  using storage::Field;
  using storage::Value;
  using storage::ValueType;

  constexpr int64_t kDimRows = 1000;
  storage::Schema dim_schema({Field("dk", ValueType::kInt64),
                              Field("bucket", ValueType::kInt64,
                                    AttributeDomain::IntRange(1, kDimRows))});
  auto dim = *storage::Table::Create("Dim", dim_schema, "dk");
  for (int64_t i = 0; i < kDimRows; ++i) {
    DPSTARJ_CHECK(dim->AppendRow({Value(i + 1), Value(i + 1)}).ok(), "bench dim");
  }

  storage::Schema fact_schema(
      {Field("dk", ValueType::kInt64), Field("amount", ValueType::kDouble)});
  auto fact = *storage::Table::Create("Fact", fact_schema);
  for (int64_t i = 0; i < fact_rows; ++i) {
    DPSTARJ_CHECK(
        fact->AppendRow({Value(i % kDimRows + 1), Value(double(i % 97))}).ok(),
        "bench fact");
  }

  storage::Catalog catalog;
  DPSTARJ_CHECK(catalog.AddTable(dim).ok(), "bench");
  DPSTARJ_CHECK(catalog.AddTable(fact).ok(), "bench");
  DPSTARJ_CHECK(catalog.AddForeignKey({"Fact", "dk", "Dim", "dk"}).ok(), "bench");
  return catalog;
}

// Unlike bench_service_throughput, one service lives across every data
// point, so miss-workload queries must be distinct across the whole sweep —
// `n` is a global counter, not a per-point index.
std::string DistinctQuery(int n) {
  int lo = n % 797 + 1;
  int hi = lo + 50 + (n / 797) % 149 + n % 37;
  return Format(
      "SELECT count(*) FROM Fact, Dim WHERE Fact.dk = Dim.dk "
      "AND Dim.bucket BETWEEN %d AND %d",
      lo, hi);
}

std::string QueryBody(const std::string& sql, double epsilon,
                      const std::string& tenant) {
  net::Json body = net::Json::Object();
  body.Set("sql", net::Json::Str(sql));
  body.Set("epsilon", net::Json::Number(epsilon));
  body.Set("tenant", net::Json::Str(tenant));
  return body.Dump();
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  uint64_t retries_429 = 0;
};

using bench_util::HostScalingNote;

// `connections` client threads split `bodies` round-robin, each over its own
// keep-alive connection. Every request must eventually succeed; 429s are
// retried with a 1 ms backoff.
RunResult RunWorkload(const std::string& host, uint16_t port, int connections,
                      const std::vector<std::string>& bodies) {
  std::atomic<uint64_t> retries{0};
  std::atomic<bool> failed{false};
  Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      net::Client client(host, port);
      for (size_t i = static_cast<size_t>(c); i < bodies.size();
           i += static_cast<size_t>(connections)) {
        for (;;) {
          auto r = client.Post("/v1/query", bodies[i]);
          if (!r.ok()) {
            std::fprintf(stderr, "client: %s\n", r.status().ToString().c_str());
            failed.store(true);
            return;
          }
          if (r->status == 429) {
            retries.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
          }
          if (r->status != 200) {
            std::fprintf(stderr, "client: HTTP %d %s\n", r->status,
                         r->body.c_str());
            failed.store(true);
            return;
          }
          break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  DPSTARJ_CHECK(!failed.load(), "bench workload had failing requests");
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.qps = static_cast<double>(bodies.size()) / result.seconds;
  result.retries_429 = retries.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBenchWriter json(bench::JsonBenchWriter::ConsumeJsonFlag(&argc, argv));
  const int64_t fact_rows = bench_util::EnvInt("DPSTARJ_NET_ROWS", 100000);
  const int num_queries = bench_util::EnvInt("DPSTARJ_NET_QUERIES", 1024);
  const int max_conns = bench_util::EnvInt("DPSTARJ_NET_CONNS", 8);
  const int engines = bench_util::EnvInt("DPSTARJ_NET_ENGINES", 4);
  const double kEpsilon = 0.5;

  std::printf(
      "== HTTP front-door throughput: queries/sec vs client connections "
      "(fact rows=%lld, queries=%d, engines=%d, hardware threads=%u) ==\n\n",
      static_cast<long long>(fact_rows), num_queries, engines,
      std::thread::hardware_concurrency());

  storage::Catalog catalog = MakeBenchCatalog(fact_rows);
  service::ServiceOptions service_options;
  service_options.num_engines = engines;
  service_options.queue_capacity = 256;
  service_options.default_tenant_budget = 1e9;
  service::QueryService service(&catalog, service_options);

  net::ServerOptions server_options;  // ephemeral port, localhost
  server_options.handler_threads = max_conns;
  net::HttpServer server(net::MakeServiceRouter(&service), server_options);
  Status started = server.Start();
  DPSTARJ_CHECK(started.ok(), started.ToString().c_str());

  // --- cache-miss workload: every query distinct ---------------------------
  bench_util::TablePrinter table(
      {"conns", "seconds", "queries/sec", "speedup", "429 retries"});
  double base_qps = 0.0;
  int query_counter = 0;
  for (int conns = 1; conns <= max_conns; conns *= 2) {
    std::vector<std::string> miss_bodies;
    miss_bodies.reserve(static_cast<size_t>(num_queries));
    for (int i = 0; i < num_queries; ++i) {
      miss_bodies.push_back(
          QueryBody(DistinctQuery(query_counter++), kEpsilon, "bench"));
    }
    RunResult r = RunWorkload(server.host(), server.port(), conns, miss_bodies);
    if (conns == 1) base_qps = r.qps;
    table.AddRow({Format("%d", conns), Format("%.3f", r.seconds),
                  Format("%.1f", r.qps), Format("%.2fx", r.qps / base_qps),
                  Format("%llu", static_cast<unsigned long long>(r.retries_429))});
    json.Add("net_throughput/miss",
             Format("conns=%d", conns) + HostScalingNote(conns), r.qps,
             r.seconds * 1e3);
  }
  std::printf("cache-miss workload (all queries distinct, over the wire):\n");
  table.Print();

  // --- cache-replay workload: wire + dispatch overhead dominates -----------
  std::vector<std::string> hit_bodies;
  hit_bodies.reserve(static_cast<size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    hit_bodies.push_back(QueryBody(DistinctQuery(i % 8), kEpsilon, "bench"));
  }
  RunResult r = RunWorkload(server.host(), server.port(), max_conns, hit_bodies);
  service::ServiceStats stats = service.Stats();
  std::printf("\ncache-replay workload (8 distinct queries, %d requests, "
              "%d connections):\n",
              num_queries, max_conns);
  std::printf("  %.1f queries/sec in %.3f s (%llu retries on 429)\n", r.qps,
              r.seconds, static_cast<unsigned long long>(r.retries_429));
  std::printf("  cache: %llu hits / %llu misses (%.1f%% hit rate), "
              "eps saved %.4g\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              100.0 * stats.cache.HitRate(), stats.cache.epsilon_saved);
  json.Add("net_throughput/replay",
           Format("conns=%d", max_conns) + HostScalingNote(max_conns), r.qps,
           r.seconds * 1e3);

  net::ServerStats net_stats = server.GetStats();
  std::printf("  server: %llu connections, %llu requests\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.requests_handled));
  server.Stop();
  return 0;
}
