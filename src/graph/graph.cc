#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace dpstarj::graph {

namespace {
uint64_t EdgeKey(int64_t u, int64_t v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}
}  // namespace

Result<Graph> Graph::FromEdges(int64_t num_nodes,
                               std::vector<std::pair<int64_t, int64_t>> edges) {
  if (num_nodes < 0) return Status::InvalidArgument("num_nodes must be >= 0");
  if (num_nodes > (int64_t{1} << 31)) {
    return Status::InvalidArgument("graphs beyond 2^31 nodes are not supported");
  }
  Graph g;
  g.num_nodes_ = num_nodes;
  g.degrees_.assign(static_cast<size_t>(num_nodes), 0);
  g.adjacency_.assign(static_cast<size_t>(num_nodes), {});
  std::unordered_set<uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (auto& [a, b] : edges) {
    if (a < 0 || a >= num_nodes || b < 0 || b >= num_nodes) {
      return Status::InvalidArgument(
          Format("edge (%lld, %lld) out of range", static_cast<long long>(a),
                 static_cast<long long>(b)));
    }
    if (a == b) {
      return Status::InvalidArgument(
          Format("self-loop at node %lld", static_cast<long long>(a)));
    }
    int64_t u = std::min(a, b);
    int64_t v = std::max(a, b);
    if (!seen.insert(EdgeKey(u, v)).second) {
      return Status::InvalidArgument(
          Format("duplicate edge (%lld, %lld)", static_cast<long long>(u),
                 static_cast<long long>(v)));
    }
    g.edges_.emplace_back(u, v);
    ++g.degrees_[static_cast<size_t>(u)];
    ++g.degrees_[static_cast<size_t>(v)];
    g.adjacency_[static_cast<size_t>(u)].push_back(v);
    g.adjacency_[static_cast<size_t>(v)].push_back(u);
  }
  for (auto& adj : g.adjacency_) std::sort(adj.begin(), adj.end());
  return g;
}

int64_t Graph::max_degree() const {
  int64_t m = 0;
  for (int64_t d : degrees_) m = std::max(m, d);
  return m;
}

int64_t Graph::DegreePercentile(double q) const {
  if (degrees_.empty()) return 0;
  std::vector<int64_t> sorted = degrees_;
  std::sort(sorted.begin(), sorted.end());
  double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(pos)];
}

Graph Graph::TruncateDegrees(int64_t cap) const {
  std::vector<std::pair<int64_t, int64_t>> kept;
  kept.reserve(edges_.size());
  for (const auto& [u, v] : edges_) {
    if (degrees_[static_cast<size_t>(u)] <= cap &&
        degrees_[static_cast<size_t>(v)] <= cap) {
      kept.emplace_back(u, v);
    }
  }
  auto g = FromEdges(num_nodes_, std::move(kept));
  DPSTARJ_CHECK(g.ok(), "truncation of a valid graph cannot fail");
  return std::move(g).ValueOrDie();
}

Result<std::shared_ptr<storage::Table>> Graph::ToEdgeTable(
    const std::string& name) const {
  storage::Schema schema;
  DPSTARJ_RETURN_NOT_OK(schema.AddField(
      storage::Field("from_id", storage::ValueType::kInt64,
                     storage::AttributeDomain::IntRange(0, std::max<int64_t>(
                                                               num_nodes_ - 1, 0)))));
  DPSTARJ_RETURN_NOT_OK(schema.AddField(storage::Field("to_id",
                                                       storage::ValueType::kInt64)));
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> table,
                           storage::Table::Create(name, std::move(schema)));
  table->Reserve(num_edges() * 2);
  auto* from = table->mutable_column(0);
  auto* to = table->mutable_column(1);
  for (const auto& [u, v] : edges_) {
    from->AppendInt64(u);
    to->AppendInt64(v);
    from->AppendInt64(v);
    to->AppendInt64(u);
  }
  DPSTARJ_RETURN_NOT_OK(table->FinishBulkAppend(num_edges() * 2));
  return table;
}

}  // namespace dpstarj::graph
