#include "graph/kstar.h"

#include <algorithm>

#include "common/math_util.h"

namespace dpstarj::graph {

KStarIndex::KStarIndex(const Graph& g, int k) : k_(k) {
  DPSTARJ_CHECK(k >= 1, "k must be >= 1");
  prefix_.assign(static_cast<size_t>(g.num_nodes()) + 1, 0.0);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    prefix_[static_cast<size_t>(v) + 1] =
        prefix_[static_cast<size_t>(v)] +
        BinomialCoefficient(g.degrees()[static_cast<size_t>(v)], k);
  }
}

double KStarIndex::CountRange(int64_t lo, int64_t hi) const {
  int64_t n = num_nodes();
  lo = std::max<int64_t>(lo, 0);
  hi = std::min<int64_t>(hi, n - 1);
  if (lo > hi) return 0.0;
  return prefix_[static_cast<size_t>(hi) + 1] - prefix_[static_cast<size_t>(lo)];
}

double KStarIndex::total() const { return prefix_.back(); }

namespace {

/// Counts the k-subsets of `adj` by explicit nested enumeration, charging one
/// unit of work per enumerated tuple (the database cost model). Returns false
/// when the deadline expires mid-enumeration.
bool EnumerateCenter(const std::vector<int64_t>& adj, int k, const Deadline& deadline,
                     double* count, int64_t* steps) {
  int64_t d = static_cast<int64_t>(adj.size());
  constexpr int64_t kDeadlinePollMask = (1 << 16) - 1;
  if (k == 1) {
    *count += static_cast<double>(d);
    *steps += d;
    return !deadline.Expired();
  }
  if (k == 2) {
    for (int64_t i = 0; i < d; ++i) {
      for (int64_t j = i + 1; j < d; ++j) {
        *count += 1.0;
        if ((++*steps & kDeadlinePollMask) == 0 && deadline.Expired()) return false;
      }
    }
    return true;
  }
  if (k == 3) {
    for (int64_t i = 0; i < d; ++i) {
      for (int64_t j = i + 1; j < d; ++j) {
        for (int64_t l = j + 1; l < d; ++l) {
          *count += 1.0;
          if ((++*steps & kDeadlinePollMask) == 0 && deadline.Expired()) return false;
        }
      }
    }
    return true;
  }
  // k >= 4: recursive combination walk (depth ≤ k).
  bool alive = true;
  auto rec = [&](auto&& self, int64_t start, int depth) -> void {
    if (!alive) return;
    if (depth == k) {
      *count += 1.0;
      if ((++*steps & kDeadlinePollMask) == 0 && deadline.Expired()) alive = false;
      return;
    }
    for (int64_t i = start; i < d && alive; ++i) {
      self(self, i + 1, depth + 1);
    }
  };
  rec(rec, 0, 0);
  return alive;
}

}  // namespace

Result<double> EnumerateKStars(const Graph& g, const KStarQuery& q,
                               const Deadline& deadline,
                               std::vector<double>* contributions) {
  if (q.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (contributions != nullptr) contributions->clear();
  int64_t lo = std::max<int64_t>(q.lo, 0);
  int64_t hi = std::min<int64_t>(q.hi, g.num_nodes() - 1);
  double total = 0.0;
  int64_t steps = 0;
  for (int64_t v = lo; v <= hi; ++v) {
    double count = 0.0;
    if (!EnumerateCenter(g.adjacency()[static_cast<size_t>(v)], q.k, deadline, &count,
                         &steps)) {
      return Status::TimeLimit("k-star enumeration exceeded the time limit");
    }
    if (count > 0.0 && contributions != nullptr) contributions->push_back(count);
    total += count;
  }
  return total;
}

}  // namespace dpstarj::graph
