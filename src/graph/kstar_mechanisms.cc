#include "graph/kstar_mechanisms.h"

#include <cmath>

#include "baselines/r2t.h"
#include "common/math_util.h"
#include "core/pma.h"
#include "dp/mechanism.h"
#include "dp/sensitivity.h"

namespace dpstarj::graph {

Result<KStarAnswer> AnswerKStarWithPm(const Graph& g, const KStarIndex& index,
                                      const KStarQuery& q, double epsilon, Rng* rng,
                                      const KStarPmOptions& options) {
  if (index.num_nodes() != g.num_nodes() || index.k() != q.k) {
    return Status::InvalidArgument("index does not match graph/query");
  }
  Timer timer;
  // The node-range predicate over the node-id domain [0, n).
  query::BoundPredicate pred;
  pred.table = "Edge";
  pred.column = "from_id";
  pred.column_index = -1;
  pred.domain = storage::AttributeDomain::IntRange(0, g.num_nodes() - 1);
  pred.kind = (q.lo == q.hi) ? query::PredicateKind::kPoint
                             : query::PredicateKind::kRange;
  pred.lo_index = std::max<int64_t>(q.lo, 0);
  pred.hi_index = std::min<int64_t>(q.hi, g.num_nodes() - 1);
  if (pred.lo_index > pred.hi_index) {
    return Status::InvalidArgument("empty node range");
  }

  core::PmaOptions pma;
  pma.max_range_retries = options.max_range_retries;
  // The appendix's k-star query ranges over the whole node-id domain. Under
  // the width-preserving (shared-shift) reading a full-width interval has a
  // single feasible placement — the release would be deterministic and hence
  // not differentially private — so the k-star mechanisms use the verbatim
  // independent-endpoint perturbation of Algorithm 2 (DESIGN.md §4).
  pma.range_mode = core::PmaRangeMode::kIndependentEndpoints;
  DPSTARJ_ASSIGN_OR_RETURN(query::BoundPredicate noisy,
                           core::PerturbPredicate(pred, epsilon, rng, pma));

  KStarAnswer out;
  out.estimate = index.CountRange(noisy.lo_index, noisy.hi_index);
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<KStarAnswer> AnswerKStarWithR2t(const Graph& g, const KStarQuery& q,
                                       double epsilon, Rng* rng,
                                       const KStarR2tOptions& options) {
  Timer timer;
  Deadline deadline(options.time_limit_s);

  // Per-center contributions by explicit enumeration (the dominating cost,
  // standing in for the per-trial LP truncations of the original).
  std::vector<double> contributions;
  DPSTARJ_ASSIGN_OR_RETURN(double total,
                           EnumerateKStars(g, q, deadline, &contributions));
  (void)total;

  double gs = options.gs_q;
  if (gs <= 0.0) {
    gs = BinomialCoefficient(g.num_nodes() - 1, q.k);
    gs = std::min(gs, 1e15);  // keep the trial count meaningful
  }
  DPSTARJ_ASSIGN_OR_RETURN(
      double estimate,
      baselines::R2tRace(contributions, gs, epsilon, options.alpha, rng,
                         /*info=*/nullptr, &deadline));
  KStarAnswer out;
  out.estimate = estimate;
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<KStarAnswer> AnswerKStarWithTm(const Graph& g, const KStarQuery& q,
                                      double epsilon, Rng* rng,
                                      const KStarTmOptions& options) {
  Timer timer;
  Deadline deadline(options.time_limit_s);

  // Default cap: the 99.9th degree percentile. Naive truncation must keep the
  // heavy tail mostly intact (heavy nodes own almost all k-stars, so a low
  // cap biases the answer by ~100%); the price is a large smooth sensitivity,
  // which is exactly the noise-dominated regime of the paper's TM column.
  int64_t cap =
      options.degree_cap > 0 ? options.degree_cap : g.DegreePercentile(0.999);
  if (cap < 1) cap = 1;

  // Naive truncation, then the truncated self-join (enumeration cost).
  Graph truncated = g.TruncateDegrees(cap);
  if (deadline.Expired()) {
    return Status::TimeLimit("TM truncation exceeded the time limit");
  }
  DPSTARJ_ASSIGN_OR_RETURN(double truncated_count,
                           EnumerateKStars(truncated, q, deadline, nullptr));

  // Smooth sensitivity of the truncated k-star count on the degree-capped
  // instance, at the Cauchy mechanism's β.
  double beta = dp::CauchyMechanism::Beta(epsilon, options.gamma);
  DPSTARJ_ASSIGN_OR_RETURN(
      double smooth,
      dp::KStarSmoothSensitivity(truncated.degrees(), q.k, cap, beta));

  DPSTARJ_ASSIGN_OR_RETURN(
      double estimate,
      dp::CauchyMechanism::Release(truncated_count, smooth, epsilon, rng,
                                   options.gamma));
  KStarAnswer out;
  out.estimate = estimate;
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace dpstarj::graph
