// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Graph substrate for the k-star counting experiments (paper §6, Table 2).
// The paper evaluates on SNAP's Deezer and Amazon networks; this module holds
// the in-memory graph, degree indexes, naive truncation (for the TM
// baseline), and conversion to an Edge relation (from_id, to_id) matching the
// appendix's k-star SQL.

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace dpstarj::graph {

/// \brief An undirected simple graph with dense node ids [0, n).
class Graph {
 public:
  /// Builds from an edge list; self-loops and duplicate edges (in either
  /// orientation) are rejected.
  static Result<Graph> FromEdges(int64_t num_nodes,
                                 std::vector<std::pair<int64_t, int64_t>> edges);

  /// Number of nodes n.
  int64_t num_nodes() const { return num_nodes_; }
  /// Number of undirected edges.
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  /// Degree sequence (size n).
  const std::vector<int64_t>& degrees() const { return degrees_; }
  /// Sorted adjacency lists.
  const std::vector<std::vector<int64_t>>& adjacency() const { return adjacency_; }
  /// The edge list (u < v for every edge).
  const std::vector<std::pair<int64_t, int64_t>>& edges() const { return edges_; }
  /// Maximum degree.
  int64_t max_degree() const;
  /// The q-th degree percentile (q in [0,1]); e.g. 0.99 for the TM cap.
  int64_t DegreePercentile(double q) const;

  /// \brief Naive truncation (Kasiviswanathan et al.): removes every node of
  /// degree > cap together with all its edges; node ids are preserved.
  Graph TruncateDegrees(int64_t cap) const;

  /// \brief Materializes the Edge relation of the appendix SQL: columns
  /// (from_id, to_id), one row per *directed* edge (both orientations), so
  /// "R1.from_id = R2.from_id AND R1.to_id < R2.to_id" enumerates 2-stars.
  Result<std::shared_ptr<storage::Table>> ToEdgeTable(const std::string& name) const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<std::pair<int64_t, int64_t>> edges_;
  std::vector<int64_t> degrees_;
  std::vector<std::vector<int64_t>> adjacency_;
};

}  // namespace dpstarj::graph
