// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// k-star counting (paper §6 / appendix A.2): a k-star is a center node with k
// distinct neighbors; the appendix SQL counts k-stars whose center falls in a
// node-id range. Two evaluation paths:
//   * KStarIndex — closed form Σ_{v in range} C(deg(v), k) with prefix sums,
//     O(1) per range query. This is what PM uses after perturbing the range;
//   * EnumerateKStars — explicit self-join-style enumeration (what a database
//     executing the appendix SQL does). Deliberately O(Σ C(deg, k)) with
//     cooperative deadlines: the R2T/TM baselines pay this cost, reproducing
//     the paper's "Over time limit" rows on 3-stars.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/timer.h"
#include "graph/graph.h"

namespace dpstarj::graph {

/// \brief A k-star counting query: count k-stars centered in [lo, hi].
struct KStarQuery {
  int k = 2;
  int64_t lo = 0;   ///< inclusive node-id range start
  int64_t hi = 0;   ///< inclusive node-id range end
};

/// \brief Prefix-summed Σ C(deg(v), k): O(n) build, O(1) range count.
class KStarIndex {
 public:
  /// Builds the index for the given k (k ≥ 1).
  KStarIndex(const Graph& g, int k);

  /// Number of k-stars with center id in [lo, hi] (clamped to [0, n)).
  double CountRange(int64_t lo, int64_t hi) const;

  /// All k-stars in the graph.
  double total() const;

  int k() const { return k_; }
  int64_t num_nodes() const { return static_cast<int64_t>(prefix_.size()) - 1; }

 private:
  int k_;
  std::vector<double> prefix_;  // prefix_[i] = Σ_{v<i} C(deg v, k)
};

/// \brief Per-center k-star counts by explicit neighbor-tuple enumeration —
/// the cost model of a database running the appendix's self-join SQL. Returns
/// TimeLimit when the deadline expires (the contributions vector is partial).
///
/// `contributions` (optional) receives C(deg v, k) per center v in [lo, hi]
/// with non-zero count — exactly the per-individual contributions R2T's race
/// needs under node privacy.
Result<double> EnumerateKStars(const Graph& g, const KStarQuery& q,
                               const Deadline& deadline,
                               std::vector<double>* contributions = nullptr);

}  // namespace dpstarj::graph
