// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The three DP k-star mechanisms of Table 2:
//   * PM  — the Predicate Mechanism: the node-range predicate of the appendix
//     SQL ("from_id BETWEEN lo AND hi") is perturbed by PMA over the node-id
//     domain, then the noisy range is answered from the KStarIndex. Cost:
//     O(1) after the index — this is why PM's times in Table 2 are flat.
//   * R2T — Race-to-the-Top under node privacy: per-center contributions are
//     obtained by enumerating the self-join (the LP-truncation cost model of
//     Dong et al.), then raced. Honors a wall-clock limit.
//   * TM  — naive truncation + smooth sensitivity (Kasiviswanathan et al.):
//     truncate nodes above a degree cap, enumerate the truncated self-join,
//     release with Cauchy noise calibrated to the k-star smooth sensitivity.

#pragma once

#include "common/random.h"
#include "common/result.h"
#include "graph/kstar.h"

namespace dpstarj::graph {

/// \brief Result of one mechanism run: the estimate and its wall-clock cost.
struct KStarAnswer {
  double estimate = 0.0;
  double seconds = 0.0;
};

/// \brief PM options.
struct KStarPmOptions {
  int max_range_retries = 64;  ///< PMA resampling bound
};

/// \brief Answers a k-star query with the Predicate Mechanism at budget ε.
/// `index` must be built over the same graph with the same k.
Result<KStarAnswer> AnswerKStarWithPm(const Graph& g, const KStarIndex& index,
                                      const KStarQuery& q, double epsilon, Rng* rng,
                                      const KStarPmOptions& options = {});

/// \brief R2T options for k-star.
struct KStarR2tOptions {
  double alpha = 0.1;
  /// Global-sensitivity bound; 0 selects C(n-1, k) (capped) as in Dong et al.
  double gs_q = 0.0;
  /// Wall-clock limit in seconds (0 = unlimited). Exceeding it returns
  /// Status::TimeLimit — Table 2's "Over time limit".
  double time_limit_s = 0.0;
};

/// \brief Answers a k-star query with R2T under node privacy.
Result<KStarAnswer> AnswerKStarWithR2t(const Graph& g, const KStarQuery& q,
                                       double epsilon, Rng* rng,
                                       const KStarR2tOptions& options = {});

/// \brief TM options.
struct KStarTmOptions {
  /// Degree cap for naive truncation; 0 selects the 99.9th degree percentile.
  int64_t degree_cap = 0;
  /// Cauchy tail exponent (γ = 4 per the paper).
  double gamma = 4.0;
  /// Wall-clock limit in seconds (0 = unlimited).
  double time_limit_s = 0.0;
};

/// \brief Answers a k-star query with naive truncation + smooth sensitivity.
Result<KStarAnswer> AnswerKStarWithTm(const Graph& g, const KStarQuery& q,
                                      double epsilon, Rng* rng,
                                      const KStarTmOptions& options = {});

}  // namespace dpstarj::graph
