// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Synthetic graph generators. The paper's Table 2 uses SNAP's Deezer
// (144k nodes / 847k edges, social) and Amazon (335k / 926k, co-purchase)
// networks, which are not redistributable inside this repository; we
// synthesize Chung–Lu power-law graphs with matching node/edge counts and
// heavy-tailed degree sequences (DESIGN.md §3 documents the substitution —
// k-star counts and their sensitivities depend only on the degree sequence).

#pragma once

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace dpstarj::graph {

/// \brief Parameters for the Chung–Lu power-law generator.
struct GeneratorOptions {
  int64_t num_nodes = 10000;
  int64_t num_edges = 50000;
  /// Power-law exponent of the target degree distribution (2 < γ ≤ 3.5
  /// covers most social/co-purchase networks).
  double exponent = 2.5;
  /// Random seed.
  uint64_t seed = 42;
  /// When true, node ids are shuffled so degree is independent of id order
  /// (node-range predicates then select representative subpopulations).
  bool shuffle_ids = true;
};

/// \brief Generates a simple power-law graph with approximately
/// `num_edges` edges (duplicates/self-loops are rejected and resampled; the
/// final count can fall slightly short on dense corners).
Result<Graph> GeneratePowerLawGraph(const GeneratorOptions& options);

/// \brief Deezer-like social network: 144k nodes / 847k edges at scale 1.
/// `scale` shrinks both proportionally (benches default to scale ≪ 1).
Result<Graph> GenerateDeezerLike(double scale, uint64_t seed);

/// \brief Amazon-like co-purchase network: 335k nodes / 926k edges at scale 1.
Result<Graph> GenerateAmazonLike(double scale, uint64_t seed);

}  // namespace dpstarj::graph
