#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/random.h"

namespace dpstarj::graph {

Result<Graph> GeneratePowerLawGraph(const GeneratorOptions& options) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("need at least 2 nodes");
  }
  if (options.num_edges < 1) {
    return Status::InvalidArgument("need at least 1 edge");
  }
  if (options.exponent <= 1.0) {
    return Status::InvalidArgument("exponent must exceed 1");
  }
  int64_t n = options.num_nodes;
  double max_simple = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  if (static_cast<double>(options.num_edges) > 0.5 * max_simple) {
    return Status::InvalidArgument("edge count too dense for a simple graph");
  }

  Rng rng(options.seed);

  // Chung–Lu weights: w_i ∝ i^{-1/(γ-1)} yields degree tail P(d) ~ d^{-γ}.
  std::vector<double> weights(static_cast<size_t>(n));
  double alpha = 1.0 / (options.exponent - 1.0);
  for (int64_t i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] = std::pow(static_cast<double>(i + 1), -alpha);
  }
  std::vector<double> cdf = BuildCdf(weights);

  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(static_cast<size_t>(options.num_edges));
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(options.num_edges) * 2);

  int64_t attempts_left = options.num_edges * 50;
  while (static_cast<int64_t>(edges.size()) < options.num_edges && attempts_left-- > 0) {
    int64_t u = static_cast<int64_t>(rng.DiscreteFromCdf(cdf));
    int64_t v = static_cast<int64_t>(rng.DiscreteFromCdf(cdf));
    if (u == v) continue;
    int64_t a = std::min(u, v);
    int64_t b = std::max(u, v);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
    if (!seen.insert(key).second) continue;
    edges.emplace_back(a, b);
  }

  if (options.shuffle_ids) {
    std::vector<int64_t> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    for (auto& [a, b] : edges) {
      a = perm[static_cast<size_t>(a)];
      b = perm[static_cast<size_t>(b)];
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Result<Graph> GenerateDeezerLike(double scale, uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  GeneratorOptions o;
  o.num_nodes = std::max<int64_t>(64, static_cast<int64_t>(144000 * scale));
  o.num_edges = std::max<int64_t>(64, static_cast<int64_t>(847000 * scale));
  o.exponent = 2.6;  // social networks: moderately heavy tail
  o.seed = seed;
  return GeneratePowerLawGraph(o);
}

Result<Graph> GenerateAmazonLike(double scale, uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  GeneratorOptions o;
  o.num_nodes = std::max<int64_t>(64, static_cast<int64_t>(335000 * scale));
  o.num_edges = std::max<int64_t>(64, static_cast<int64_t>(926000 * scale));
  o.exponent = 3.0;  // co-purchase networks: lighter tail, sparser
  o.seed = seed;
  return GeneratePowerLawGraph(o);
}

}  // namespace dpstarj::graph
