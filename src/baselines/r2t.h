// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// R2T — Race-to-the-Top (Dong et al., SIGMOD 2022), the state-of-the-art
// truncation mechanism for queries with foreign-key constraints, implemented
// per Eq. (9) of the paper:
//
//   for τ⁽ʲ⁾ = 2ʲ, j = 1..⌈log₂ GS_Q⌉:
//     Q̂(D, τ⁽ʲ⁾) = Q(D, τ⁽ʲ⁾) + Lap(log₂(GS_Q)·τ⁽ʲ⁾/ε)
//                  − log₂(GS_Q)·ln(log₂(GS_Q)/α)·τ⁽ʲ⁾/ε
//   output max( max_j Q̂(D, τ⁽ʲ⁾), Q(D, 0) )
//
// Q(D, τ) truncates each private individual's contribution at τ
// (Σ min(cᵢ, τ)); the penalty term makes overshooting unlikely (≤ α), so the
// race "to the top" picks the largest safe estimate. The utility bound
// Q(D) − 4·log(GS)·ln(log(GS)/α)·τ*/ε ≤ Q̂(D) w.p. ≥ 1−α is exercised in the
// tests.

#pragma once

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/timer.h"
#include "dp/neighboring.h"
#include "exec/contribution_index.h"
#include "query/binder.h"

namespace dpstarj::baselines {

/// \brief Options for R2T.
struct R2tOptions {
  /// Failure-probability knob α in the penalty term.
  double alpha = 0.1;
  /// Upper bound GS_Q on the query's global sensitivity; 0 selects the
  /// default (fact-table cardinality for COUNT, cardinality × max |measure|
  /// for SUM). Figure 6 varies this explicitly.
  double gs_q = 0.0;
  /// Cooperative wall-clock limit in seconds (0 = unlimited); exceeded runs
  /// return Status::TimeLimit, reproducing the paper's "Over time limit".
  double time_limit_s = 0.0;
};

/// \brief Diagnostics for tests and benches.
struct R2tInfo {
  double gs_q = 0.0;
  int num_trials = 0;
  double winning_tau = 0.0;
};

/// \brief The core race, reusable by the k-star variant: given per-individual
/// contributions, runs the geometric truncation race and returns the winner.
/// Sorts the contributions once (O(n log n)), then each τ rung is O(log n).
Result<double> R2tRace(const std::vector<double>& contributions, double gs_q,
                       double epsilon, double alpha, Rng* rng,
                       R2tInfo* info = nullptr, const Deadline* deadline = nullptr);

/// \brief Same race over a prebuilt ContributionIndex, reusing the sorted
/// truncation ladder BuildContributionIndex already prepared (no re-sort).
Result<double> R2tRace(const exec::ContributionIndex& index, double gs_q,
                       double epsilon, double alpha, Rng* rng,
                       R2tInfo* info = nullptr, const Deadline* deadline = nullptr);

/// \brief Answers a scalar COUNT/SUM star-join query with R2T under the given
/// privacy scenario. GROUP BY returns NotSupported ("a future work of [7]",
/// Table 1 footnote).
Result<double> AnswerWithR2t(const query::BoundQuery& q,
                             const dp::PrivacyScenario& scenario, double epsilon,
                             Rng* rng, const R2tOptions& options = {},
                             R2tInfo* info = nullptr);

}  // namespace dpstarj::baselines
