#include "baselines/r2t.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "exec/contribution_index.h"

namespace dpstarj::baselines {

namespace {

// The race proper, over a prepared truncation ladder: each rung of the
// geometric τ ladder costs O(log n).
Result<double> RaceOverLadder(const exec::TruncatedTotals& ladder, double gs_q,
                              double epsilon, double alpha, Rng* rng,
                              R2tInfo* info, const Deadline* deadline) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (alpha <= 0.0 || alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0,1)");
  }
  if (gs_q < 2.0) gs_q = 2.0;  // at least one trial
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");

  int trials = CeilLog2(gs_q);
  double log_gs = static_cast<double>(trials);
  double penalty_factor = log_gs * std::log(log_gs / alpha) / epsilon;

  double best = 0.0;  // Q(D, 0) = 0
  double best_tau = 0.0;
  double tau = 1.0;
  for (int j = 1; j <= trials; ++j) {
    if (deadline != nullptr && deadline->Expired()) {
      return Status::TimeLimit("R2T race exceeded the time limit");
    }
    tau *= 2.0;  // τ⁽ʲ⁾ = 2ʲ
    double truncated = ladder.At(tau);
    double noise = rng->Laplace(log_gs * tau / epsilon);
    double noisy = truncated + noise - penalty_factor * tau;
    if (noisy > best) {
      best = noisy;
      best_tau = tau;
    }
  }
  if (info != nullptr) {
    info->gs_q = gs_q;
    info->num_trials = trials;
    info->winning_tau = best_tau;
  }
  return best;
}

}  // namespace

Result<double> R2tRace(const std::vector<double>& contributions, double gs_q,
                       double epsilon, double alpha, Rng* rng, R2tInfo* info,
                       const Deadline* deadline) {
  // One O(n log n) sort; the rungs are then O(log n) each.
  exec::TruncatedTotals ladder(contributions);
  return RaceOverLadder(ladder, gs_q, epsilon, alpha, rng, info, deadline);
}

Result<double> R2tRace(const exec::ContributionIndex& index, double gs_q,
                       double epsilon, double alpha, Rng* rng, R2tInfo* info,
                       const Deadline* deadline) {
  if (index.truncation_ladder().size() == index.contributions.size()) {
    return RaceOverLadder(index.truncation_ladder(), gs_q, epsilon, alpha, rng,
                          info, deadline);
  }
  // Hand-assembled index without a prepared ladder.
  return R2tRace(index.contributions, gs_q, epsilon, alpha, rng, info, deadline);
}

Result<double> AnswerWithR2t(const query::BoundQuery& q,
                             const dp::PrivacyScenario& scenario, double epsilon,
                             Rng* rng, const R2tOptions& options, R2tInfo* info) {
  DPSTARJ_RETURN_NOT_OK(scenario.Validate(q.query));
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported(
        "R2T does not support GROUP BY star-join queries (future work of Dong et "
        "al.)");
  }

  Deadline deadline(options.time_limit_s);
  DPSTARJ_ASSIGN_OR_RETURN(
      exec::ContributionIndex index,
      exec::BuildContributionIndex(q, scenario.PrivateTables()));
  if (deadline.Expired()) {
    return Status::TimeLimit("R2T contribution analysis exceeded the time limit");
  }

  double gs = options.gs_q;
  if (gs <= 0.0) {
    gs = static_cast<double>(q.fact->num_rows());
    if (q.query.aggregate == query::AggregateKind::kSum) {
      double max_w = 1.0;
      for (int64_t r = 0; r < q.fact->num_rows(); ++r) {
        double w = 0.0;
        for (const auto& [col, coeff] : q.measure_cols) {
          w += coeff * q.fact->column(col).GetNumeric(r);
        }
        max_w = std::max(max_w, std::abs(w));
      }
      gs *= max_w;
    }
  }
  return R2tRace(index, gs, epsilon, options.alpha, rng, info, &deadline);
}

}  // namespace dpstarj::baselines
