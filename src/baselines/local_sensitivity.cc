#include "baselines/local_sensitivity.h"

#include <cmath>

#include "dp/mechanism.h"
#include "exec/contribution_index.h"
#include "exec/star_join_executor.h"

namespace dpstarj::baselines {

double SmoothUpperBound(double local_sensitivity, double beta) {
  DPSTARJ_CHECK(beta > 0.0, "beta must be positive");
  double ls = std::max(0.0, local_sensitivity);
  // f(t) = e^{-βt}(ls + t); f'(t*) = 0 at t* = 1/β − ls.
  if (ls >= 1.0 / beta) return ls;
  return std::exp(beta * ls - 1.0) / beta;
}

Result<double> AnswerWithLocalSensitivity(const query::BoundQuery& q,
                                          const dp::PrivacyScenario& scenario,
                                          double epsilon, Rng* rng,
                                          const LocalSensitivityOptions& options,
                                          LocalSensitivityInfo* info) {
  DPSTARJ_RETURN_NOT_OK(scenario.Validate(q.query));
  if (q.query.aggregate != query::AggregateKind::kCount) {
    return Status::NotSupported(
        "the local-sensitivity baseline supports COUNT star-join queries only");
  }
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported(
        "the local-sensitivity baseline does not support GROUP BY");
  }

  DPSTARJ_ASSIGN_OR_RETURN(
      exec::ContributionIndex index,
      exec::BuildContributionIndex(q, scenario.PrivateTables()));

  // The local-sensitivity upper bound follows Tao et al.'s degree-based
  // bounds: the largest *join fan-out* of a private individual, independent
  // of the filter predicates (a neighboring instance may toggle which tuples
  // satisfy them). Computed on a predicate-free copy of the plan.
  query::BoundQuery unfiltered = q;
  for (auto& d : unfiltered.dims) d.predicates.clear();
  DPSTARJ_ASSIGN_OR_RETURN(
      exec::ContributionIndex fanout,
      exec::BuildContributionIndex(unfiltered, scenario.PrivateTables()));

  double beta = dp::CauchyMechanism::Beta(epsilon, options.gamma);
  double ls = fanout.max_contribution;
  double smooth = SmoothUpperBound(ls, beta);
  if (info != nullptr) {
    info->local_sensitivity = ls;
    info->smooth_sensitivity = smooth;
  }
  return dp::CauchyMechanism::Release(index.total, smooth, epsilon, rng,
                                      options.gamma);
}

}  // namespace dpstarj::baselines
