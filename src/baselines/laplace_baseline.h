// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// LM — the plain Laplace mechanism (paper §4, data-independent output
// perturbation). Only applicable in the (1,0)-private scenario: when just the
// fact table is sensitive, neighbors differ in one fact row, so the global
// sensitivity of COUNT is 1 and of SUM is a declared per-row weight bound.
// With any private dimension table the global sensitivity is unbounded and
// this mechanism correctly refuses to run.

#pragma once

#include "common/random.h"
#include "common/result.h"
#include "dp/neighboring.h"
#include "query/binder.h"

namespace dpstarj::baselines {

/// \brief Options for the Laplace baseline.
struct LaplaceBaselineOptions {
  /// Global per-row weight bound for SUM queries (|w(t)| ≤ bound). COUNT
  /// ignores it (bound = 1).
  double sum_weight_bound = 1.0;
};

/// \brief Answers a scalar star-join query with output Laplace noise.
///
/// Fails with NotSupported when the scenario involves a private dimension
/// table (unbounded global sensitivity — the paper's motivating observation).
Result<double> AnswerWithLaplaceBaseline(const query::BoundQuery& q,
                                         const dp::PrivacyScenario& scenario,
                                         double epsilon, Rng* rng,
                                         const LaplaceBaselineOptions& options = {});

}  // namespace dpstarj::baselines
