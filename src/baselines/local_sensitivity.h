// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// LS — the local-sensitivity baseline (Tao et al. 2020, as deployed in the
// paper's §4/§6): a two-phase, data-dependent output perturbation.
//
//   1. compute an upper bound L̂S_Q(D) on the local sensitivity of the
//      star-join query: the largest total weight any private individual
//      contributes to the result (exec::ContributionIndex);
//   2. smooth it — we use the closed-form smooth upper bound
//      SS = max_t e^{-βt}(L̂S + t) (each unit of instance distance can raise
//      the heaviest contribution by ≥ 1), which equals L̂S when L̂S ≥ 1/β and
//      e^{β·L̂S − 1}/β otherwise — and release through the general Cauchy
//      mechanism (γ = 4, β = ε/(2(γ+1))), giving pure ε-DP with the
//      (10·L̂S/ε)² noise level quoted in the paper.
//
// Like the original, this supports COUNT star-join queries only (Table 1
// prints "Not supported" for SUM/GROUP BY), and — as the paper stresses in
// §2 — the smoothing step has no sound answer under foreign-key cascades;
// this bound underestimates dimension-side deletions exactly the way the
// original does.

#pragma once

#include "common/random.h"
#include "common/result.h"
#include "dp/neighboring.h"
#include "query/binder.h"

namespace dpstarj::baselines {

/// \brief Options for the LS baseline.
struct LocalSensitivityOptions {
  /// Tail exponent of the general Cauchy distribution (paper: γ = 4).
  double gamma = 4.0;
};

/// \brief Diagnostics for tests and benches.
struct LocalSensitivityInfo {
  double local_sensitivity = 0.0;   ///< L̂S_Q(D)
  double smooth_sensitivity = 0.0;  ///< the released smooth bound
};

/// \brief Answers a COUNT star-join query with Cauchy noise calibrated to a
/// smooth upper bound of the local sensitivity. SUM/GROUP BY return
/// NotSupported (matching the original's scope).
Result<double> AnswerWithLocalSensitivity(const query::BoundQuery& q,
                                          const dp::PrivacyScenario& scenario,
                                          double epsilon, Rng* rng,
                                          const LocalSensitivityOptions& options = {},
                                          LocalSensitivityInfo* info = nullptr);

/// \brief The closed-form smooth upper bound max_t e^{-βt}(ls + t).
double SmoothUpperBound(double local_sensitivity, double beta);

}  // namespace dpstarj::baselines
