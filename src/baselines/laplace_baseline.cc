#include "baselines/laplace_baseline.h"

#include "dp/mechanism.h"
#include "exec/star_join_executor.h"

namespace dpstarj::baselines {

Result<double> AnswerWithLaplaceBaseline(const query::BoundQuery& q,
                                         const dp::PrivacyScenario& scenario,
                                         double epsilon, Rng* rng,
                                         const LaplaceBaselineOptions& options) {
  DPSTARJ_RETURN_NOT_OK(scenario.Validate(q.query));
  if (scenario.b() > 0) {
    return Status::NotSupported(
        "the Laplace mechanism requires bounded global sensitivity; with a "
        "private dimension table a single tuple owns unboundedly many fact rows "
        "((" +
        scenario.ToString() + ") scenario)");
  }
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported("Laplace baseline does not support GROUP BY");
  }

  exec::StarJoinExecutor executor;
  DPSTARJ_ASSIGN_OR_RETURN(exec::QueryResult truth, executor.Execute(q));

  double sensitivity = 1.0;
  if (q.query.aggregate == query::AggregateKind::kSum) {
    if (options.sum_weight_bound <= 0.0) {
      return Status::InvalidArgument("sum_weight_bound must be positive");
    }
    sensitivity = options.sum_weight_bound;
  }
  return dp::LaplaceMechanism::Release(truth.scalar, sensitivity, epsilon, rng);
}

}  // namespace dpstarj::baselines
