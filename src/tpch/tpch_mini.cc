#include "tpch/tpch_mini.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "ssb/ssb_schema.h"

namespace dpstarj::tpch {

namespace {

using storage::AttributeDomain;
using storage::Field;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

Result<std::shared_ptr<Table>> GenerateRegion() {
  Schema schema({
      Field("regionkey", ValueType::kInt64),
      Field("name", ValueType::kString,
            AttributeDomain::Categorical(ssb::Regions())),
  });
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                           Table::Create(kRegion, std::move(schema), "regionkey"));
  for (size_t i = 0; i < ssb::Regions().size(); ++i) {
    DPSTARJ_RETURN_NOT_OK(t->AppendRow(
        {Value(static_cast<int64_t>(i + 1)), Value(ssb::Regions()[i])}));
  }
  return t;
}

Result<std::shared_ptr<Table>> GenerateNation() {
  Schema schema({
      Field("nationkey", ValueType::kInt64),
      Field("name", ValueType::kString,
            AttributeDomain::Categorical(ssb::Nations())),
      Field("regionkey", ValueType::kInt64),
  });
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                           Table::Create(kNation, std::move(schema), "nationkey"));
  for (size_t i = 0; i < ssb::Nations().size(); ++i) {
    int64_t region = static_cast<int64_t>(i) / ssb::kNationsPerRegion + 1;
    DPSTARJ_RETURN_NOT_OK(t->AppendRow({Value(static_cast<int64_t>(i + 1)),
                                        Value(ssb::Nations()[i]), Value(region)}));
  }
  return t;
}

Result<std::shared_ptr<Table>> GenerateCustomer(int64_t rows, Rng* rng) {
  Schema schema({
      Field("custkey", ValueType::kInt64),
      Field("nationkey", ValueType::kInt64),
      Field("mktsegment", ValueType::kString,
            AttributeDomain::Categorical({"AUTOMOBILE", "BUILDING", "FURNITURE",
                                          "HOUSEHOLD", "MACHINERY"})),
  });
  static const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "HOUSEHOLD", "MACHINERY"};
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                           Table::Create(kCustomer, std::move(schema), "custkey"));
  t->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    DPSTARJ_RETURN_NOT_OK(t->AppendRow(
        {Value(i + 1), Value(rng->UniformInt(1, 25)),
         Value(kSegments[rng->UniformInt(0, 4)])}));
  }
  return t;
}

Result<std::shared_ptr<Table>> GenerateOrders(int64_t rows, int64_t customers,
                                              Rng* rng) {
  Schema schema({
      Field("orderkey", ValueType::kInt64),
      Field("custkey", ValueType::kInt64),
      Field("orderyear", ValueType::kInt64,
            AttributeDomain::IntRange(ssb::kYearLo, ssb::kYearHi)),
      Field("orderpriority", ValueType::kString,
            AttributeDomain::Categorical({"1-URGENT", "2-HIGH", "3-MEDIUM",
                                          "4-NOT SPECIFIED", "5-LOW"})),
  });
  static const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                           Table::Create(kOrders, std::move(schema), "orderkey"));
  t->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    DPSTARJ_RETURN_NOT_OK(t->AppendRow(
        {Value(i + 1), Value(rng->UniformInt(1, customers)),
         Value(rng->UniformInt(ssb::kYearLo, ssb::kYearHi)),
         Value(kPriorities[rng->UniformInt(0, 4)])}));
  }
  return t;
}

Result<std::shared_ptr<Table>> GenerateLineitem(int64_t rows, int64_t orders,
                                                Rng* rng) {
  Schema schema({
      Field("lineid", ValueType::kInt64),
      Field("orderkey", ValueType::kInt64),
      Field("quantity", ValueType::kInt64, AttributeDomain::IntRange(1, 50)),
      Field("extendedprice", ValueType::kDouble),
  });
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                           Table::Create(kLineitem, std::move(schema)));
  t->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    DPSTARJ_RETURN_NOT_OK(t->AppendRow(
        {Value(i + 1), Value(rng->UniformInt(1, orders)),
         Value(rng->UniformInt(1, 50)), Value(rng->Uniform(100.0, 10000.0))}));
  }
  return t;
}

}  // namespace

Result<storage::Catalog> GenerateTpchMini(const TpchOptions& options) {
  if (options.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  Rng rng(options.seed);
  int64_t customers =
      std::max<int64_t>(1, static_cast<int64_t>(150000.0 * options.scale_factor));
  int64_t orders =
      std::max<int64_t>(1, static_cast<int64_t>(1500000.0 * options.scale_factor));
  int64_t lineitems =
      std::max<int64_t>(1, static_cast<int64_t>(6000000.0 * options.scale_factor));

  storage::Catalog catalog;
  DPSTARJ_ASSIGN_OR_RETURN(auto region, GenerateRegion());
  DPSTARJ_ASSIGN_OR_RETURN(auto nation, GenerateNation());
  DPSTARJ_ASSIGN_OR_RETURN(auto customer, GenerateCustomer(customers, &rng));
  DPSTARJ_ASSIGN_OR_RETURN(auto order_table, GenerateOrders(orders, customers, &rng));
  DPSTARJ_ASSIGN_OR_RETURN(auto lineitem, GenerateLineitem(lineitems, orders, &rng));

  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(region)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(nation)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(customer)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(order_table)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(lineitem)));

  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kLineitem, "orderkey", kOrders, "orderkey"}));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kOrders, "custkey", kCustomer, "custkey"}));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kCustomer, "nationkey", kNation, "nationkey"}));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kNation, "regionkey", kRegion, "regionkey"}));
  return catalog;
}

query::StarJoinQuery QueryQtc() {
  query::StarJoinQuery q;
  q.name = "Qtc";
  q.fact_table = kLineitem;
  q.aggregate = query::AggregateKind::kCount;
  q.joined_tables = {kOrders, kCustomer, kNation, kRegion};
  q.predicates.push_back(
      query::Predicate::Point(kRegion, "name", storage::Value("ASIA")));
  q.predicates.push_back(query::Predicate::Range(
      kOrders, "orderyear", storage::Value(int64_t{1993}),
      storage::Value(int64_t{1995})));
  return q;
}

query::StarJoinQuery QueryQts() {
  query::StarJoinQuery q = QueryQtc();
  q.name = "Qts";
  q.aggregate = query::AggregateKind::kSum;
  q.measure_terms = {{"extendedprice", 1.0}};
  return q;
}

}  // namespace dpstarj::tpch
