// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// A miniature TPC-H subset for the snowflake experiment (paper Figure 10).
// The schema keeps exactly the chain the snowflake queries touch:
//
//   Lineitem → Orders → Customer → Nation → Region
//
// i.e. a two-level (plus geography) snowflake rather than SSB's star. The
// paper's Qtc (count) and Qts (sum) place predicates on Region.name (reached
// through three hops) and Orders.orderyear; PM answers them after
// core::FlattenedSnowflake turns the chain into a star.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "query/star_query.h"
#include "storage/catalog.h"

namespace dpstarj::tpch {

/// Table names.
inline constexpr const char* kLineitem = "Lineitem";
inline constexpr const char* kOrders = "Orders";
inline constexpr const char* kCustomer = "Customer";
inline constexpr const char* kNation = "Nation";
inline constexpr const char* kRegion = "Region";

/// \brief Generator configuration. Sizes at scale 1 follow TPC-H: Lineitem
/// 6M, Orders 1.5M, Customer 150k, Nation 25, Region 5.
struct TpchOptions {
  double scale_factor = 0.01;
  uint64_t seed = 11;
};

/// \brief Generates the snowflake catalog with all hierarchy foreign keys
/// registered (passes Catalog::ValidateIntegrity).
Result<storage::Catalog> GenerateTpchMini(const TpchOptions& options);

/// Qtc — snowflake counting query: Region.name = 'ASIA' AND
/// Orders.orderyear BETWEEN 1993 AND 1995.
query::StarJoinQuery QueryQtc();

/// Qts — the SUM(extendedprice) twin of Qtc.
query::StarJoinQuery QueryQts();

}  // namespace dpstarj::tpch
