#include "net/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_name.h"
#include "net/json.h"

namespace dpstarj::net {

namespace {

constexpr int kEpollBatch = 64;
/// How long WriteAll waits for a congested peer before giving up on it.
constexpr int kWritePollTimeoutMs = 10'000;

// Error-body `code` values are the library StatusCode names (the wire
// contract documented in service_api.h), including for errors raised below
// the router — clients switch on one vocabulary.
const char* ParseErrorCodeName(int http_status) {
  switch (http_status) {
    case 413:
    case 431:
      return "OutOfRange";
    case 501:
    case 505:
      return "NotSupported";
    default:
      return "InvalidArgument";
  }
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

HttpServer::HttpServer(Router router, ServerOptions options)
    : router_(std::move(router)), options_(std::move(options)) {
  if (options_.handler_threads <= 0) options_.handler_threads = 1;
  if (options_.max_connections <= 0) options_.max_connections = 1;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics;
    m_connections_accepted_ =
        reg->GetCounter("dpstarj_http_connections_total",
                        "Connections by accept outcome", {{"result", "accepted"}});
    m_connections_rejected_ =
        reg->GetCounter("dpstarj_http_connections_total",
                        "Connections by accept outcome", {{"result", "rejected"}});
    m_requests_handled_ = reg->GetCounter("dpstarj_http_requests_total",
                                          "Requests answered by the router");
    m_bad_requests_ = reg->GetCounter("dpstarj_http_bad_requests_total",
                                      "Parse failures answered 4xx/5xx");
    m_timeouts_header_ =
        reg->GetCounter("dpstarj_http_timeouts_total",
                        "Connections reaped by deadline, by kind",
                        {{"kind", "header"}});
    m_timeouts_body_ = reg->GetCounter("dpstarj_http_timeouts_total",
                                       "Connections reaped by deadline, by kind",
                                       {{"kind", "body"}});
    m_timeouts_idle_ = reg->GetCounter("dpstarj_http_timeouts_total",
                                       "Connections reaped by deadline, by kind",
                                       {{"kind", "idle"}});
    m_timeouts_write_ = reg->GetCounter("dpstarj_http_timeouts_total",
                                        "Connections reaped by deadline, by kind",
                                        {{"kind", "write"}});
  }
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_.exchange(true)) return Status::Internal("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(Format("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        Format("bad bind address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IoError(Format("bind %s:%u: %s", options_.host.c_str(),
                                       options_.port, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status st = Status::IoError(Format("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Resolve an ephemeral port request.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Status::IoError(Format("epoll/eventfd: %s", std::strerror(errno)));
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0 ||
      (ev.data.fd = wake_fd_,
       ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0)) {
    Status st = Status::IoError(Format("epoll_ctl: %s", std::strerror(errno)));
    Stop();
    return st;
  }

  event_thread_ = std::thread([this] {
    common::SetCurrentThreadName("dpsj-epoll");
    EventLoop();
  });
  event_thread_id_.store(event_thread_.get_id());
  handler_threads_.reserve(static_cast<size_t>(options_.handler_threads));
  for (int i = 0; i < options_.handler_threads; ++i) {
    handler_threads_.emplace_back([this, i] {
      common::SetCurrentThreadName("dpsj-http-", i);
      HandlerLoop();
    });
  }
  DPSTARJ_LOG(kInfo) << "http server listening on " << options_.host << ":"
                     << port_;
  return Status::OK();
}

void HttpServer::Wake() {
  if (wake_fd_ >= 0) {
    uint64_t n = 1;
    (void)!::write(wake_fd_, &n, sizeof(n));
  }
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!started_.load() || stopped_) return;
  stopped_ = true;
  draining_.store(true);

  auto wake = [this] { Wake(); };
  // Phase 1: stop accepting (the event loop closes the listen socket) and let
  // in-flight requests finish — their responses carry "Connection: close".
  wake();
  if (event_thread_.joinable()) {
    std::unique_lock<std::mutex> lock(handler_mu_);
    drain_cv_.wait(lock, [this] {
      return handler_queue_.empty() && handlers_busy_ == 0;
    });
  }
  // Phase 2: tear down the threads. The event thread is joined FIRST, so the
  // handler queue is final when the handler threads are told to exit — a
  // request the event loop was dispatching right as the drain wait passed is
  // still answered (with "Connection: close"), never dropped.
  stop_.store(true);
  wake();
  if (event_thread_.joinable()) event_thread_.join();
  handlers_exit_.store(true);
  handler_cv_.notify_all();
  for (auto& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [fd, conn] : connections_) ::close(fd);
    connections_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

int HttpServer::connection_count() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return static_cast<int>(connections_.size());
}

ServerStats HttpServer::GetStats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_rejected = connections_rejected_.load();
  s.requests_handled = requests_handled_.load();
  s.bad_requests = bad_requests_.load();
  s.timeouts_header = timeouts_header_.load();
  s.timeouts_body = timeouts_body_.load();
  s.timeouts_idle = timeouts_idle_.load();
  s.timeouts_write = timeouts_write_.load();
  return s;
}

int HttpServer::TimeoutForPhase(Connection::Phase phase) const {
  switch (phase) {
    case Connection::Phase::kHeader:
      return options_.header_timeout_ms;
    case Connection::Phase::kBody:
      return options_.body_timeout_ms;
    case Connection::Phase::kIdle:
      return options_.idle_timeout_ms;
    case Connection::Phase::kHandling:
      return 0;
  }
  return 0;
}

void HttpServer::SetDeadline(Connection* conn, Connection::Phase phase) {
  conn->phase = phase;
  // The fresh gen invalidates every entry already in the heap for this
  // connection; with a zero timeout that is the whole job (pure cancel).
  // Gens are drawn from a server-wide counter: a per-connection counter
  // would restart at 1 for a new connection on a recycled fd number, and a
  // stale heap entry (fd, 1) from the fd's previous life could then reap the
  // newcomer before its real deadline.
  const uint64_t gen =
      deadline_gen_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  conn->deadline_gen.store(gen, std::memory_order_release);
  const int timeout_ms = TimeoutForPhase(phase);
  if (timeout_ms <= 0) {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    heap_gens_.erase(conn->fd);
    return;
  }
  DeadlineEntry entry;
  entry.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(timeout_ms);
  entry.fd = conn->fd;
  entry.gen = gen;
  bool new_earliest = false;
  {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    new_earliest =
        deadlines_.empty() || entry.deadline < deadlines_.top().deadline;
    deadlines_.push(entry);
    heap_gens_[conn->fd] = gen;
    // Superseded entries removed only at expiry would accumulate with
    // request rate; compact once they clearly dominate the live set.
    if (deadlines_.size() > 1024 && deadlines_.size() > 4 * heap_gens_.size()) {
      CompactDeadlinesLocked();
    }
  }
  // A push from a handler thread may shorten the next expiry below what the
  // event loop is currently sleeping for — kick it to recompute, but only
  // when this entry actually became the earliest: the loop's sleep bound is
  // never later than the previous heap top, so a later entry needs no wake
  // (and the typical post-response idle push would otherwise pay one eventfd
  // write plus a spurious wakeup per request). Pushes from the event thread
  // itself happen before its next ReapExpiredDeadlines.
  if (new_earliest && std::this_thread::get_id() != event_thread_id_.load()) {
    Wake();
  }
}

void HttpServer::CompactDeadlinesLocked() {
  std::vector<DeadlineEntry> live;
  live.reserve(heap_gens_.size());
  while (!deadlines_.empty()) {
    const DeadlineEntry& entry = deadlines_.top();
    auto it = heap_gens_.find(entry.fd);
    if (it != heap_gens_.end() && it->second == entry.gen) {
      live.push_back(entry);
    }
    deadlines_.pop();
  }
  deadlines_ = decltype(deadlines_)(std::greater<DeadlineEntry>(),
                                    std::move(live));
}

int HttpServer::ReapExpiredDeadlines() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<DeadlineEntry> due;
  int timeout_ms = -1;
  {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    while (!deadlines_.empty() && deadlines_.top().deadline <= now) {
      due.push_back(deadlines_.top());
      deadlines_.pop();
    }
    if (!deadlines_.empty()) {
      // Round up so epoll_wait never returns before the deadline and spins.
      auto delta = deadlines_.top().deadline - now;
      timeout_ms = static_cast<int>(
                       std::chrono::duration_cast<std::chrono::milliseconds>(delta)
                           .count()) +
                   1;
    }
  }
  for (const DeadlineEntry& entry : due) ReapConnection(entry);
  return timeout_ms;
}

void HttpServer::ReapConnection(const DeadlineEntry& entry) {
  // Claim the connection under the table lock: once its entry is moved out,
  // no other thread can destroy it (destruction requires conn_mu_), and any
  // concurrent CloseConnection no-ops on the missing entry. The gen pre-check
  // is lock-free on conn->mu so a handler blocked in a long write — whose gen
  // is always stale, kHandling bumps it at dispatch — never stalls the event
  // loop here.
  std::unique_ptr<Connection> owned;
  Connection::Phase phase;
  {
    std::lock_guard<std::mutex> table_lock(conn_mu_);
    auto it = connections_.find(entry.fd);
    if (it == connections_.end()) return;  // already closed
    Connection* conn = it->second.get();
    if (conn->deadline_gen.load(std::memory_order_acquire) != entry.gen) {
      return;  // superseded: the connection made progress
    }
    owned = std::move(it->second);
    connections_.erase(it);
    // A matching gen means no handler owns the connection; at worst one is in
    // the microseconds between scheduling this very deadline and releasing
    // mu (its re-arm tail). Wait that out so the fd is not closed under it.
    std::lock_guard<std::mutex> lock(owned->mu);
    phase = owned->phase;
  }
  switch (phase) {
    case Connection::Phase::kHeader:
    case Connection::Phase::kBody: {
      const bool header = phase == Connection::Phase::kHeader;
      (header ? timeouts_header_ : timeouts_body_).fetch_add(1);
      obs::Counter* twin = header ? m_timeouts_header_ : m_timeouts_body_;
      if (twin != nullptr) twin->Inc();
      // Best-effort 408 — one non-blocking send; a peer too slow to read a
      // request is likely too slow to read this, and that must not stall us.
      HttpResponse timeout = HttpResponse::MakeJson(
          408, Format("{\"error\":{\"code\":\"TimeLimit\",\"message\":"
                      "\"%s read deadline exceeded\"}}",
                      header ? "header" : "body"));
      std::string wire = SerializeResponse(timeout, /*keep_alive=*/false);
      (void)!::send(owned->fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      if (options_.access_log != nullptr) {
        // A reaped request may have a parsed request line (body expiry always
        // does); attribute what is known, with no trace — the request never
        // reached a handler.
        obs::AccessLogEntry entry;
        entry.method = owned->parser.request().method;
        entry.path = owned->parser.request().path;
        entry.status = 408;
        entry.total_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - owned->read_start)
                .count());
        options_.access_log->Write(entry);
      }
      break;
    }
    case Connection::Phase::kIdle:
      timeouts_idle_.fetch_add(1);
      if (m_timeouts_idle_ != nullptr) m_timeouts_idle_->Inc();
      break;
    case Connection::Phase::kHandling:
      break;  // unreachable: dispatch bumps the gen
  }
  {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    heap_gens_.erase(owned->fd);
  }
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, owned->fd, nullptr);
  ::close(owned->fd);
}

void HttpServer::EventLoop() {
  epoll_event events[kEpollBatch];
  while (!stop_.load()) {
    // The wait is bounded by the earliest connection deadline; expired ones
    // are reaped before sleeping again.
    int timeout_ms = ReapExpiredDeadlines();
    int n = ::epoll_wait(epoll_fd_, events, kEpollBatch, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      DPSTARJ_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n && !stop_.load(); ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        if (draining_.load() && listen_fd_ >= 0) {
          (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      ConnectionReady(fd);
    }
  }
}

void HttpServer::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DPSTARJ_LOG(kWarning) << "accept: " << std::strerror(errno);
      return;
    }
    SetNoDelay(fd);
    if (draining_.load() || connection_count() >= options_.max_connections) {
      // Over the cap (or shutting down): shed the connection with a best-
      // effort 503 — never let it consume parser/handler resources.
      connections_rejected_.fetch_add(1);
      if (m_connections_rejected_ != nullptr) m_connections_rejected_->Inc();
      HttpResponse busy = HttpResponse::MakeJson(
          503,
          "{\"error\":{\"code\":\"Unavailable\","
          "\"message\":\"connection limit reached\"}}");
      std::string wire = SerializeResponse(busy, /*keep_alive=*/false);
      (void)!::write(fd, wire.data(), wire.size());
      ::close(fd);
      if (options_.access_log != nullptr) {
        // Shed before a single byte was read: nothing to attribute but the
        // refusal itself.
        obs::AccessLogEntry entry;
        entry.status = 503;
        options_.access_log->Write(entry);
      }
      continue;
    }
    connections_accepted_.fetch_add(1);
    if (m_connections_accepted_ != nullptr) m_connections_accepted_->Inc();
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn = connections_
                 .emplace(fd, std::make_unique<Connection>(fd, options_.limits))
                 .first->second.get();
    }
    bool armed = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      // The header clock starts at accept: a client that connects and sends
      // nothing (or drips) is exactly what the deadline is for.
      conn->read_start = std::chrono::steady_clock::now();
      SetDeadline(conn, Connection::Phase::kHeader);
      armed = ArmRead(fd, /*add=*/true);
    }
    if (!armed) CloseConnection(fd, conn);
  }
}

HttpServer::Connection* HttpServer::LookupConnection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  auto it = connections_.find(fd);
  return it == connections_.end() ? nullptr : it->second.get();
}

bool HttpServer::ArmRead(int fd, bool add) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &ev) != 0) {
    DPSTARJ_LOG(kWarning) << "epoll_ctl arm: " << std::strerror(errno);
    return false;
  }
  return true;
}

void HttpServer::CloseConnection(int fd, Connection* conn) {
  // Remove the table entry BEFORE closing the fd: the moment close() returns,
  // accept4 on the event thread may hand the same fd number back, and its
  // fresh Connection must not collide with (or be destroyed by) this one.
  // `conn` is compared, never dereferenced — see the header comment.
  std::unique_ptr<Connection> owned;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = connections_.find(fd);
    if (it != connections_.end() && it->second.get() == conn) {
      owned = std::move(it->second);
      connections_.erase(it);
    }
  }
  if (owned == nullptr) return;  // already closed by another path
  {
    // Un-endorse any pending deadline entry: without this, a closed
    // connection's entry stays "live" to CompactDeadlinesLocked for its full
    // nominal timeout, and under connection churn the heap's dead population
    // both grows and defers the compaction trigger.
    std::lock_guard<std::mutex> lock(deadline_mu_);
    heap_gens_.erase(fd);
  }
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
}

void HttpServer::ConnectionReady(int fd) {
  Connection* conn = LookupConnection(fd);
  if (conn == nullptr) return;  // raced with a close

  bool should_close = false;
  bool dispatch = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    // First bytes of a keep-alive connection's next request: restart the
    // read clock — the idle wait is the client's time, not read time.
    if (conn->phase == Connection::Phase::kIdle) {
      conn->read_start = std::chrono::steady_clock::now();
    }
    char buf[8192];
    bool peer_gone = false;
    HttpRequestParser::Progress progress = HttpRequestParser::Progress::kNeedMore;
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        progress = conn->parser.Feed(buf, static_cast<size_t>(n));
        if (progress != HttpRequestParser::Progress::kNeedMore) break;
        continue;
      }
      if (n == 0) {
        peer_gone = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_gone = true;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    const auto elapsed_us = [&] {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - conn->read_start)
              .count());
    };
    if (progress == HttpRequestParser::Progress::kComplete) {
      // The request finished in this read burst; whichever read phase it was
      // in absorbs the elapsed time (headers+body arriving together is all
      // header-read — body_read stays 0).
      if (conn->phase == Connection::Phase::kBody) {
        conn->body_read_us += elapsed_us();
      } else {
        conn->header_read_us += elapsed_us();
      }
      conn->read_start = now;
    }
    if (progress == HttpRequestParser::Progress::kNeedMore) {
      if (!peer_gone) {
        // Advance the deadline phase on transitions only: kIdle→kHeader when
        // the next request's first bytes arrive, kHeader→kBody when the
        // header block completes. Within a phase the deadline stays anchored
        // — partial progress never buys a slow client more time.
        Connection::Phase want =
            conn->parser.in_body()
                ? Connection::Phase::kBody
                : (conn->parser.has_buffered_input() ? Connection::Phase::kHeader
                                                     : conn->phase);
        if (want != conn->phase) {
          if (want == Connection::Phase::kBody) {
            // Header block complete: bank the header-read span and restart
            // the clock for the body bytes still owed.
            conn->header_read_us += elapsed_us();
            conn->read_start = now;
          }
          SetDeadline(conn, want);
        }
      }
      should_close = peer_gone || !ArmRead(fd, /*add=*/false);
    } else {
      // Complete request or parse error: hand the connection to a handler
      // thread. The event loop never runs the router — a slow DP answer must
      // not delay other connections' accepts and reads. No deadline while a
      // handler owns the connection (the DP answer may legitimately block).
      SetDeadline(conn, Connection::Phase::kHandling);
      dispatch = true;
    }
  }
  if (should_close) {
    CloseConnection(fd, conn);
  } else if (dispatch) {
    EnqueueHandler(conn);
  }
}

void HttpServer::EnqueueHandler(Connection* conn) {
  {
    std::lock_guard<std::mutex> lock(handler_mu_);
    handler_queue_.push_back(conn);
  }
  handler_cv_.notify_one();
}

void HttpServer::HandlerLoop() {
  for (;;) {
    Connection* conn = nullptr;
    {
      std::unique_lock<std::mutex> lock(handler_mu_);
      handler_cv_.wait(lock, [this] {
        return handlers_exit_.load() || !handler_queue_.empty();
      });
      if (handler_queue_.empty()) {
        if (handlers_exit_.load()) return;
        continue;
      }
      conn = handler_queue_.front();
      handler_queue_.pop_front();
      ++handlers_busy_;
    }
    // Queued work is answered even when stop_ is already set: draining_
    // forces "Connection: close", and Stop() joins the event thread before
    // releasing the handlers, so this loop always drains to empty.
    HandleRequest(conn);
    {
      std::lock_guard<std::mutex> lock(handler_mu_);
      --handlers_busy_;
      if (handler_queue_.empty() && handlers_busy_ == 0) drain_cv_.notify_all();
    }
  }
}

void HttpServer::HandleRequest(Connection* conn) {
  // Serve every request already buffered on this connection (pipelining),
  // then re-arm it for fresh bytes. The connection mutex is held across the
  // whole exchange — uncontended under the ONESHOT discipline — and released
  // before a close, which destroys the Connection. The fd is captured under
  // the mutex: after release, a reaper that claimed the connection during
  // the re-arm tail may destroy it, and the close below must not touch it.
  bool should_close = false;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    fd = conn->fd;
    for (;;) {
      if (conn->parser.in_error()) {
        bad_requests_.fetch_add(1);
        if (m_bad_requests_ != nullptr) m_bad_requests_->Inc();
        HttpResponse r = HttpResponse::MakeJson(
            conn->parser.error_status(),
            Format("{\"error\":{\"code\":\"%s\",\"message\":\"%s\"}}",
                   ParseErrorCodeName(conn->parser.error_status()),
                   JsonEscape(conn->parser.error()).c_str()));
        (void)WriteAll(conn->fd, SerializeResponse(r, /*keep_alive=*/false));
        if (options_.access_log != nullptr) {
          // Whatever the parser managed to extract before failing (possibly
          // empty method/path) is still the best attribution available.
          obs::AccessLogEntry entry;
          entry.method = conn->parser.request().method;
          entry.path = conn->parser.request().path;
          entry.status = r.status;
          entry.total_us = conn->header_read_us + conn->body_read_us;
          options_.access_log->Write(entry);
        }
        should_close = true;
        break;
      }
      if (!conn->parser.is_complete()) {
        // Back to the read phases: idle when nothing of the next request has
        // arrived, header/body when pipelined bytes already carry part of it.
        Connection::Phase next =
            conn->parser.in_body()
                ? Connection::Phase::kBody
                : (conn->parser.has_buffered_input() ? Connection::Phase::kHeader
                                                     : Connection::Phase::kIdle);
        SetDeadline(conn, next);
        should_close = !ArmRead(conn->fd, /*add=*/false);
        if (should_close) {
          // Cancel the deadline just scheduled: a reaper that has not yet
          // passed its gen check must not race this thread to the close. (A
          // reaper already past the check — parked on this mutex — wins the
          // connection instead; the fd-keyed CloseConnection below then
          // degrades to a no-op rather than touching the freed Connection.)
          SetDeadline(conn, Connection::Phase::kHandling);
        }
        break;
      }
      HttpRequest& request = conn->parser.request();
      // Hand the banked socket-read times to the handler (its trace records
      // them as the header_read/body_read stages) and clear them: pipelined
      // follow-ups were read as part of an earlier request's burst, so they
      // report 0 rather than double-billing.
      request.header_read_us = conn->header_read_us;
      request.body_read_us = conn->body_read_us;
      conn->header_read_us = 0;
      conn->body_read_us = 0;
      const bool keep_alive = request.keep_alive && !draining_.load();
      const auto handle_start = std::chrono::steady_clock::now();
      HttpResponse response = router_.Dispatch(request);
      requests_handled_.fetch_add(1);
      if (m_requests_handled_ != nullptr) m_requests_handled_->Inc();
      if (response.trace != nullptr) {
        response.headers.push_back({"X-DPStarJ-Trace-Id", response.trace->id()});
      }
      std::string wire = SerializeResponse(response, keep_alive);
      const bool write_ok = WriteAll(conn->fd, wire);
      const uint64_t handle_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - handle_start)
              .count());
      const uint64_t total_us =
          request.header_read_us + request.body_read_us + handle_us;
      if (options_.access_log != nullptr) {
        obs::AccessLogEntry entry;
        entry.method = request.method;
        entry.path = request.path;
        entry.status = response.status;
        entry.tenant = response.tenant;
        entry.total_us = total_us;
        entry.trace = response.trace.get();
        options_.access_log->Write(entry);
      }
      if (options_.slow_query_ms > 0 &&
          total_us >= static_cast<uint64_t>(options_.slow_query_ms) * 1000) {
        // Name the dominant stage inline: the operator triaging the log
        // should not need to fetch the trace by id just to learn where the
        // time went.
        std::string dominant;
        if (response.trace != nullptr && total_us > 0) {
          uint64_t max_ns = 0;
          obs::Stage max_stage = obs::Stage::kHeaderRead;
          for (int s = 0; s < obs::kStageCount; ++s) {
            const auto stage = static_cast<obs::Stage>(s);
            if (response.trace->stage_ns(stage) > max_ns) {
              max_ns = response.trace->stage_ns(stage);
              max_stage = stage;
            }
          }
          if (max_ns > 0) {
            dominant = Format(" dominant_stage=%s (%.0f%%)",
                              obs::StageName(max_stage),
                              100.0 * static_cast<double>(max_ns / 1000) /
                                  static_cast<double>(total_us));
          }
        }
        DPSTARJ_LOG(kWarning)
            << "slow request: " << request.method << " " << request.path
            << " -> " << response.status << " in " << total_us << " us"
            << dominant
            << (response.trace != nullptr ? " trace=" + response.trace->id()
                                          : std::string());
      }
      if (!write_ok || !keep_alive) {
        should_close = true;
        break;
      }
      conn->parser.Reset();
      (void)conn->parser.Pump();
    }
  }
  if (should_close) CloseConnection(fd, conn);
}

bool HttpServer::WriteAll(int fd, const std::string& data) {
  // Two bounds: the zero-progress window (kWritePollTimeoutMs) catches a
  // peer that stops reading entirely, and the total write budget
  // (write_timeout_ms, 0 = unbounded) catches one that keeps the window
  // alive by draining a byte at a time — either way a handler thread is
  // released instead of pinned.
  const bool bounded = options_.write_timeout_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(bounded ? options_.write_timeout_ms : 0);
  size_t sent = 0;
  while (sent < data.size()) {
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      timeouts_write_.fetch_add(1);
      if (m_timeouts_write_ != nullptr) m_timeouts_write_->Inc();
      return false;
    }
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = kWritePollTimeoutMs;
      if (bounded) {
        const long long left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        wait_ms = static_cast<int>(std::max<long long>(
            0, std::min<long long>(wait_ms, left + 1)));
      }
      pollfd pfd{fd, POLLOUT, 0};
      int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0 && wait_ms >= kWritePollTimeoutMs) {
        return false;  // zero progress for the whole window: peer gone/stuck
      }
      continue;  // progress possible, or the budget check above fires next
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace dpstarj::net
