#include "net/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/json.h"

namespace dpstarj::net {

namespace {

constexpr int kEpollBatch = 64;
/// How long WriteAll waits for a congested peer before giving up on it.
constexpr int kWritePollTimeoutMs = 10'000;

// Error-body `code` values are the library StatusCode names (the wire
// contract documented in service_api.h), including for errors raised below
// the router — clients switch on one vocabulary.
const char* ParseErrorCodeName(int http_status) {
  switch (http_status) {
    case 413:
    case 431:
      return "OutOfRange";
    case 501:
    case 505:
      return "NotSupported";
    default:
      return "InvalidArgument";
  }
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

HttpServer::HttpServer(Router router, ServerOptions options)
    : router_(std::move(router)), options_(std::move(options)) {
  if (options_.handler_threads <= 0) options_.handler_threads = 1;
  if (options_.max_connections <= 0) options_.max_connections = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_.exchange(true)) return Status::Internal("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(Format("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        Format("bad bind address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IoError(Format("bind %s:%u: %s", options_.host.c_str(),
                                       options_.port, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status st = Status::IoError(Format("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Resolve an ephemeral port request.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Status::IoError(Format("epoll/eventfd: %s", std::strerror(errno)));
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0 ||
      (ev.data.fd = wake_fd_,
       ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0)) {
    Status st = Status::IoError(Format("epoll_ctl: %s", std::strerror(errno)));
    Stop();
    return st;
  }

  event_thread_ = std::thread([this] { EventLoop(); });
  handler_threads_.reserve(static_cast<size_t>(options_.handler_threads));
  for (int i = 0; i < options_.handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  DPSTARJ_LOG(kInfo) << "http server listening on " << options_.host << ":"
                     << port_;
  return Status::OK();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!started_.load() || stopped_) return;
  stopped_ = true;
  draining_.store(true);

  auto wake = [this] {
    if (wake_fd_ >= 0) {
      uint64_t n = 1;
      (void)!::write(wake_fd_, &n, sizeof(n));
    }
  };
  // Phase 1: stop accepting (the event loop closes the listen socket) and let
  // in-flight requests finish — their responses carry "Connection: close".
  wake();
  if (event_thread_.joinable()) {
    std::unique_lock<std::mutex> lock(handler_mu_);
    drain_cv_.wait(lock, [this] {
      return handler_queue_.empty() && handlers_busy_ == 0;
    });
  }
  // Phase 2: tear down the threads. The event thread is joined FIRST, so the
  // handler queue is final when the handler threads are told to exit — a
  // request the event loop was dispatching right as the drain wait passed is
  // still answered (with "Connection: close"), never dropped.
  stop_.store(true);
  wake();
  if (event_thread_.joinable()) event_thread_.join();
  handlers_exit_.store(true);
  handler_cv_.notify_all();
  for (auto& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [fd, conn] : connections_) ::close(fd);
    connections_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

int HttpServer::connection_count() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return static_cast<int>(connections_.size());
}

ServerStats HttpServer::GetStats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_rejected = connections_rejected_.load();
  s.requests_handled = requests_handled_.load();
  s.bad_requests = bad_requests_.load();
  return s;
}

void HttpServer::EventLoop() {
  epoll_event events[kEpollBatch];
  while (!stop_.load()) {
    int n = ::epoll_wait(epoll_fd_, events, kEpollBatch, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      DPSTARJ_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n && !stop_.load(); ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        if (draining_.load() && listen_fd_ >= 0) {
          (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      ConnectionReady(fd);
    }
  }
}

void HttpServer::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DPSTARJ_LOG(kWarning) << "accept: " << std::strerror(errno);
      return;
    }
    SetNoDelay(fd);
    if (draining_.load() || connection_count() >= options_.max_connections) {
      // Over the cap (or shutting down): shed the connection with a best-
      // effort 503 — never let it consume parser/handler resources.
      connections_rejected_.fetch_add(1);
      HttpResponse busy = HttpResponse::MakeJson(
          503,
          "{\"error\":{\"code\":\"Unavailable\","
          "\"message\":\"connection limit reached\"}}");
      std::string wire = SerializeResponse(busy, /*keep_alive=*/false);
      (void)!::write(fd, wire.data(), wire.size());
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1);
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn = connections_
                 .emplace(fd, std::make_unique<Connection>(fd, options_.limits))
                 .first->second.get();
    }
    if (!ArmRead(fd, /*add=*/true)) CloseConnection(conn);
  }
}

HttpServer::Connection* HttpServer::LookupConnection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  auto it = connections_.find(fd);
  return it == connections_.end() ? nullptr : it->second.get();
}

bool HttpServer::ArmRead(int fd, bool add) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &ev) != 0) {
    DPSTARJ_LOG(kWarning) << "epoll_ctl arm: " << std::strerror(errno);
    return false;
  }
  return true;
}

void HttpServer::CloseConnection(Connection* conn) {
  // Remove the table entry BEFORE closing the fd: the moment close() returns,
  // accept4 on the event thread may hand the same fd number back, and its
  // fresh Connection must not collide with (or be destroyed by) this one.
  const int fd = conn->fd;
  std::unique_ptr<Connection> owned;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = connections_.find(fd);
    if (it != connections_.end() && it->second.get() == conn) {
      owned = std::move(it->second);
      connections_.erase(it);
    }
  }
  if (owned == nullptr) return;  // already closed by another path
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
}

void HttpServer::ConnectionReady(int fd) {
  Connection* conn = LookupConnection(fd);
  if (conn == nullptr) return;  // raced with a close

  bool should_close = false;
  bool dispatch = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    char buf[8192];
    bool peer_gone = false;
    HttpRequestParser::Progress progress = HttpRequestParser::Progress::kNeedMore;
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        progress = conn->parser.Feed(buf, static_cast<size_t>(n));
        if (progress != HttpRequestParser::Progress::kNeedMore) break;
        continue;
      }
      if (n == 0) {
        peer_gone = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_gone = true;
      break;
    }
    if (progress == HttpRequestParser::Progress::kNeedMore) {
      should_close = peer_gone || !ArmRead(fd, /*add=*/false);
    } else {
      // Complete request or parse error: hand the connection to a handler
      // thread. The event loop never runs the router — a slow DP answer must
      // not delay other connections' accepts and reads.
      dispatch = true;
    }
  }
  if (should_close) {
    CloseConnection(conn);
  } else if (dispatch) {
    EnqueueHandler(conn);
  }
}

void HttpServer::EnqueueHandler(Connection* conn) {
  {
    std::lock_guard<std::mutex> lock(handler_mu_);
    handler_queue_.push_back(conn);
  }
  handler_cv_.notify_one();
}

void HttpServer::HandlerLoop() {
  for (;;) {
    Connection* conn = nullptr;
    {
      std::unique_lock<std::mutex> lock(handler_mu_);
      handler_cv_.wait(lock, [this] {
        return handlers_exit_.load() || !handler_queue_.empty();
      });
      if (handler_queue_.empty()) {
        if (handlers_exit_.load()) return;
        continue;
      }
      conn = handler_queue_.front();
      handler_queue_.pop_front();
      ++handlers_busy_;
    }
    // Queued work is answered even when stop_ is already set: draining_
    // forces "Connection: close", and Stop() joins the event thread before
    // releasing the handlers, so this loop always drains to empty.
    HandleRequest(conn);
    {
      std::lock_guard<std::mutex> lock(handler_mu_);
      --handlers_busy_;
      if (handler_queue_.empty() && handlers_busy_ == 0) drain_cv_.notify_all();
    }
  }
}

void HttpServer::HandleRequest(Connection* conn) {
  // Serve every request already buffered on this connection (pipelining),
  // then re-arm it for fresh bytes. The connection mutex is held across the
  // whole exchange — uncontended under the ONESHOT discipline — and released
  // before a close, which destroys the Connection.
  bool should_close = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    for (;;) {
      if (conn->parser.in_error()) {
        bad_requests_.fetch_add(1);
        HttpResponse r = HttpResponse::MakeJson(
            conn->parser.error_status(),
            Format("{\"error\":{\"code\":\"%s\",\"message\":\"%s\"}}",
                   ParseErrorCodeName(conn->parser.error_status()),
                   JsonEscape(conn->parser.error()).c_str()));
        (void)WriteAll(conn->fd, SerializeResponse(r, /*keep_alive=*/false));
        should_close = true;
        break;
      }
      if (!conn->parser.is_complete()) {
        should_close = !ArmRead(conn->fd, /*add=*/false);
        break;
      }
      HttpRequest& request = conn->parser.request();
      const bool keep_alive = request.keep_alive && !draining_.load();
      HttpResponse response = router_.Dispatch(request);
      requests_handled_.fetch_add(1);
      std::string wire = SerializeResponse(response, keep_alive);
      if (!WriteAll(conn->fd, wire) || !keep_alive) {
        should_close = true;
        break;
      }
      conn->parser.Reset();
      (void)conn->parser.Pump();
    }
  }
  if (should_close) CloseConnection(conn);
}

bool HttpServer::WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      int ready = ::poll(&pfd, 1, kWritePollTimeoutMs);
      if (ready <= 0) return false;  // peer too slow or gone
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace dpstarj::net
