// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Dependency-free HTTP/1.1 plumbing shared by the server and the client:
// request/response message types, incremental parsers with hard size bounds
// (a malicious peer can never make the service buffer unbounded input), wire
// serializers, and a small method+path router with `<param>` capture
// segments.
//
// Scope is deliberately the subset the DP-starJ protocol needs: 'Content-
// Length'-framed bodies (no chunked transfer encoding), no multipart, no
// compression. Unsupported framing is refused with a clear status code, never
// mis-parsed.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"

namespace dpstarj::net {

/// \brief One HTTP header (name matching is case-insensitive per RFC 9110).
struct HttpHeader {
  std::string name;
  std::string value;
};

/// \brief A parsed HTTP request.
struct HttpRequest {
  std::string method;  ///< upper-cased, e.g. "GET"
  std::string target;  ///< the raw request target, e.g. "/v1/stats?x=1"
  std::string path;    ///< target without the query string
  std::string query;   ///< raw query string ("" when absent)
  std::vector<HttpHeader> headers;
  std::string body;
  /// Keep-alive resolved from the HTTP version and Connection header.
  bool keep_alive = true;
  /// `<param>` captures filled in by Router::Dispatch.
  std::map<std::string, std::string> path_params;
  /// \name Server-measured socket read times, in microseconds.
  /// Filled by HttpServer from its connection phase transitions; 0 for
  /// pipelined requests whose bytes were already buffered. Handlers copy
  /// them into the request's obs::Trace (kHeaderRead / kBodyRead).
  /// @{
  uint64_t header_read_us = 0;
  uint64_t body_read_us = 0;
  /// @}

  /// Case-insensitive header lookup; "" when absent.
  std::string_view FindHeader(std::string_view name) const;
};

/// \brief An HTTP response under construction or parsed from the wire.
struct HttpResponse {
  int status = 200;
  std::vector<HttpHeader> headers;  ///< extra headers (Content-* are implied)
  std::string body;
  std::string content_type = "application/json";
  /// Optional per-request trace attached by the handler. A server that finds
  /// one appends the X-DPStarJ-Trace-Id header, folds the stage spans into
  /// its access log line, and feeds the slow-query log from it.
  std::shared_ptr<obs::Trace> trace;
  /// Tenant attribution for the access log (handlers that resolved one).
  std::string tenant;

  /// JSON-body response.
  static HttpResponse MakeJson(int status, std::string body);
  /// text/plain response.
  static HttpResponse MakeText(int status, std::string body);

  /// Case-insensitive header lookup; "" when absent.
  std::string_view FindHeader(std::string_view name) const;
};

/// The standard reason phrase for a status code ("Unknown" otherwise).
const char* HttpReasonPhrase(int status);

/// Serializes a response, emitting Content-Length/Content-Type/Connection.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Serializes a request with Host/Content-Length (and Content-Type when a
/// body is present).
std::string SerializeRequest(const std::string& method, const std::string& target,
                             const std::string& host, const std::string& body,
                             const std::string& content_type, bool keep_alive);

/// \brief Input bounds enforced while parsing (before any allocation grows
/// past them).
struct ParserLimits {
  size_t max_header_bytes = 16 * 1024;       ///< request line + headers
  size_t max_body_bytes = 1 * 1024 * 1024;   ///< Content-Length cap
};

/// \brief Incremental HTTP/1.1 request parser (one connection's inbound side).
///
/// Feed() consumes raw bytes; once it reports kComplete, request() holds the
/// message and Reset() re-arms the parser for the next request on the same
/// connection, preserving already-buffered pipelined bytes. On kError,
/// error_status() is the HTTP status the server should answer with before
/// closing (400/413/431/501/505).
class HttpRequestParser {
 public:
  enum class Progress { kNeedMore, kComplete, kError };

  explicit HttpRequestParser(ParserLimits limits = {});

  /// Consumes `n` bytes; cheap to call with partial input.
  Progress Feed(const char* data, size_t n);
  /// Re-examines buffered bytes without new input (pipelined requests).
  Progress Pump();

  /// The parsed request; valid after kComplete until the next Reset/Feed.
  HttpRequest& request() { return request_; }

  /// HTTP status code to respond with after kError.
  int error_status() const { return error_status_; }
  /// Human-readable parse error after kError.
  const std::string& error() const { return error_; }

  /// True after a Feed/Pump reported kError.
  bool in_error() const { return state_ == State::kError; }
  /// True after a Feed/Pump reported kComplete (until Reset()).
  bool is_complete() const { return state_ == State::kComplete; }
  /// True while the header block is complete and body bytes are still owed —
  /// the server switches from its header-read to its body-read deadline here.
  bool in_body() const { return state_ == State::kBody; }

  /// Discards the completed request and re-arms for the next one.
  void Reset();

  /// True when buffered bytes remain after the completed request (pipelining).
  bool has_buffered_input() const { return !buffer_.empty(); }

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  Progress Fail(int status, std::string why);
  Progress ParseHeaders();

  ParserLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;       ///< unconsumed input
  size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_;
};

/// \brief Incremental HTTP/1.1 response parser (the client's inbound side).
/// Only 'Content-Length'-framed bodies are supported — which is what the
/// dpstarj server always emits.
class HttpResponseParser {
 public:
  enum class Progress { kNeedMore, kComplete, kError };

  explicit HttpResponseParser(size_t max_body_bytes = 8 * 1024 * 1024);

  Progress Feed(const char* data, size_t n);

  HttpResponse& response() { return response_; }
  const std::string& error() const { return error_; }
  /// Keep-alive as resolved from the status line + Connection header.
  bool keep_alive() const { return keep_alive_; }

  void Reset();

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  Progress Fail(std::string why);
  Progress Pump();

  size_t max_body_bytes_;
  State state_ = State::kHeaders;
  std::string buffer_;
  size_t body_expected_ = 0;
  bool keep_alive_ = true;
  HttpResponse response_;
  std::string error_;
};

/// \brief Method + path-pattern routing table.
///
/// Patterns are literal segments or `<name>` captures, e.g.
/// "/v1/tenants/<tenant>" matches "/v1/tenants/acme" and stores
/// path_params["tenant"] = "acme". Dispatch answers 404 for an unknown path
/// and 405 (with Allow) for a known path with the wrong method.
class Router {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Registers a route. Later registrations win on exact duplicates.
  void Handle(std::string method, std::string pattern, Handler handler);

  /// Matches and invokes the handler, filling request.path_params.
  HttpResponse Dispatch(HttpRequest& request) const;

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  ///< "<name>" marks a capture
    Handler handler;
  };

  static bool MatchSegments(const std::vector<std::string>& pattern,
                            const std::vector<std::string>& path,
                            std::map<std::string, std::string>* params);

  std::vector<Route> routes_;
};

}  // namespace dpstarj::net
