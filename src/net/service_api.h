// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// service_api — the wire protocol of the DP-starJ front door: a Router over
// a service::QueryService. All bodies are JSON. The normative reference —
// every endpoint, schema, and status code — is docs/wire-protocol.md; the
// sketch:
//
//   POST /v1/query          {"sql", "epsilon", "tenant"}
//       200 {"scalar": x} or {"grouped": true, "groups": [{"key","value"},…]}
//       400/403/404/429/…   {"error": {"code", "message"}}; both 429 flavors
//                           carry Retry-After, and the per-tenant one is
//                           marked X-DPStarJ-Tenant-Limited: 1 (see below)
//   POST /v1/workload       {"tenant", "queries": [{"sql","epsilon"},…]} —
//                           one admission + ledger decision for the whole
//                           batch (tokens = query count, ε = total), answered
//                           with ONE shared fact sweep (cross-query predicate
//                           CSE). 200 carries per-query outcomes (partial
//                           failure stays in the body), the shared-scan CSE
//                           receipts and the batch's stage timings; batch-
//                           level refusals use /v1/query's status mapping
//   POST /v1/ingest         {"table", "rows": [[cell,…],…]} — appends fact
//                           rows as one atomic batch; cells are numbers or
//                           strings matched against the table schema. 200
//                           {"table","appended","rows_total","version"} with
//                           `version` the table's new mutation epoch: every
//                           answer computed after it is a FRESH DP release
//                           (fresh noise, fresh ε spend), cached plans are
//                           extended in place instead of recompiled. 400 on
//                           malformed rows (all-or-nothing: nothing is
//                           appended), 404 for an unknown table, 413 past
//                           the body cap
//   POST /v1/tenants        {"tenant", "epsilon"[, "rate_qps", "burst",
//                           "max_in_flight"]} → 201 (409 when it exists);
//                           the optional fields override the tenant's fair-
//                           admission limits
//   GET  /v1/tenants/<t>    ledger account (ε position + admission counters)
//                           merged with the tenant's rate/in-flight stats,
//                           one consistent snapshot per source
//   GET  /v1/stats          ServiceStats: query counters + answer-cache and
//                           plan-cache accounting + tenant-limited counters
//   GET  /v1/trace/stats    per-stage latency aggregates (count, mean,
//                           p50/p90/p99 seconds) distilled from the
//                           dpstarj_stage_duration_seconds histograms, plus
//                           the per-outcome query-duration aggregates
//   GET  /metrics           Prometheus text exposition (version 0.0.4) of the
//                           process registry; scrape-time gauges (per-tenant ε
//                           position, queue depth, cache hit ratios, worker
//                           busy time, uptime) are refreshed inside the
//                           handler
//   GET  /v1/profile        ?seconds=N&hz=H — blocks for the window, answers
//                           200 text/plain flamegraph-collapsed folded stacks
//                           of wherever the process burned CPU (plus
//                           X-DPStarJ-Profile-Samples/-Dropped headers);
//                           400 on bad parameters, 409 while another capture
//                           is live. Zero cost when not in use.
//   GET  /healthz           {"status":"ok"} — liveness, no service state
//
// Every /v1/query response (success or refusal) carries X-DPStarJ-Trace-Id;
// the same id appears in the server's access log, which holds the request's
// per-stage timings.
//
// Error bodies carry the library StatusCode name as `code`, so clients can
// switch on one vocabulary. Three refusals matter most:
//   BudgetExhausted → 403  a DP verdict; retrying is pointless,
//   Unavailable     → 429  global queue pressure; anyone's retry may succeed,
//   RateLimited     → 429  + X-DPStarJ-Tenant-Limited: 1 — THIS tenant is
//                          over its own rate limit or in-flight cap; only its
//                          own backoff helps, other tenants are unaffected.

#pragma once

#include "common/result.h"
#include "net/http.h"
#include "net/json.h"
#include "service/query_service.h"

namespace dpstarj::net {

/// Marks a 429 as per-tenant (value "1") rather than global queue pressure.
inline constexpr char kTenantLimitedHeader[] = "X-DPStarJ-Tenant-Limited";

/// \brief Protocol tuning.
struct ApiOptions {
  /// Value of the Retry-After header on *overload* (global) 429 responses,
  /// in seconds. Tenant-limited 429s compute their own hint from the
  /// tenant's token bucket.
  int retry_after_seconds = 1;
};

/// The HTTP status the wire protocol maps a library error to.
int HttpStatusForError(const Status& status);

/// Renders a non-OK Status as the protocol's error body.
Json ErrorToJson(const Status& status);

/// Renders a noisy answer as the protocol's result body.
Json QueryResultToJson(const exec::QueryResult& result);

/// Renders the service counters (incl. answer/plan-cache) for /v1/stats.
Json ServiceStatsToJson(const service::ServiceStats& stats);

/// \brief Builds the routing table over `service` (which must outlive the
/// returned Router and any server running it). The telemetry endpoints and
/// the per-request histograms live in service->metrics() — pass the same
/// registry to ServerOptions::metrics so the HTTP layer's counters land on
/// the same /metrics page.
Router MakeServiceRouter(service::QueryService* service, ApiOptions options = {});

}  // namespace dpstarj::net
