// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// service_api — the wire protocol of the DP-starJ front door: a Router over
// a service::QueryService. All bodies are JSON.
//
//   POST /v1/query          {"sql", "epsilon", "tenant"}
//       200 {"scalar": x} or {"grouped": true, "groups": [{"key","value"},…]}
//       400/403/404/429/…   {"error": {"code", "message"}}; 429 carries a
//                           Retry-After header (full work queue — the
//                           QueryService::TrySubmit admission path)
//   POST /v1/tenants        {"tenant", "epsilon"} → 201 (409 when it exists)
//   GET  /v1/tenants/<t>    {"tenant","total","spent","remaining"} from the
//                           ledger, one consistent snapshot
//   GET  /v1/stats          ServiceStats: query counters + answer-cache and
//                           plan-cache accounting
//   GET  /healthz           {"status":"ok"} — liveness, no service state
//
// Error bodies carry the library StatusCode name as `code`, so clients can
// distinguish "budget exhausted" (a DP verdict — retrying is pointless) from
// "queue full" (an overload verdict — retrying is exactly right).

#pragma once

#include "common/result.h"
#include "net/http.h"
#include "net/json.h"
#include "service/query_service.h"

namespace dpstarj::net {

/// \brief Protocol tuning.
struct ApiOptions {
  /// Value of the Retry-After header on 429 responses, in seconds.
  int retry_after_seconds = 1;
};

/// The HTTP status the wire protocol maps a library error to.
int HttpStatusForError(const Status& status);

/// Renders a non-OK Status as the protocol's error body.
Json ErrorToJson(const Status& status);

/// Renders a noisy answer as the protocol's result body.
Json QueryResultToJson(const exec::QueryResult& result);

/// Renders the service counters (incl. answer/plan-cache) for /v1/stats.
Json ServiceStatsToJson(const service::ServiceStats& stats);

/// \brief Builds the routing table over `service` (which must outlive the
/// returned Router and any server running it).
Router MakeServiceRouter(service::QueryService* service, ApiOptions options = {});

}  // namespace dpstarj::net
