// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// HttpServer — a dependency-free epoll HTTP/1.1 server, the front door the
// DP-starJ query service speaks through (src/net/service_api.h wires the
// routes). The design keeps the accept loop non-blocking no matter what the
// handlers do:
//
//   * one event-loop thread owns the listen socket and epoll set; connection
//     sockets are registered EPOLLONESHOT, so a connection is touched by
//     exactly one thread at a time;
//   * a pool of handler threads runs the Router on fully-parsed requests and
//     writes the response; the handler queue never exceeds the connection cap
//     (one in-flight request per connection), so it is naturally bounded;
//   * per-connection parsers enforce hard header/body byte limits, and the
//     connection count is capped — excess accepts are answered 503 + close;
//   * Stop() drains gracefully: the listen socket closes first, in-flight
//     requests finish (their responses say "Connection: close"), then idle
//     keep-alive connections are torn down and the threads joined.
//
// Handlers may block (the DP answer path does — a noisy star join takes
// milliseconds); only the sizing of `handler_threads` is affected, never the
// accept loop's responsiveness.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/http.h"

namespace dpstarj::net {

/// \brief Server configuration.
struct ServerOptions {
  /// Bind address; the default serves localhost only.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Threads running request handlers (and their blocking DP answers).
  int handler_threads = 4;
  /// Open-connection cap; accepts beyond it are answered 503 and closed.
  int max_connections = 1024;
  /// Per-request input bounds (header bytes, body bytes).
  ParserLimits limits;
};

/// \brief Monotonic server counters, as returned by GetStats().
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over max_connections (503)
  uint64_t requests_handled = 0;
  uint64_t bad_requests = 0;          ///< parse failures answered 4xx/5xx
};

/// \brief The epoll HTTP server. Construct with a Router, Start(), Stop().
class HttpServer {
 public:
  HttpServer(Router router, ServerOptions options = {});
  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the event loop + handler threads. IoError on
  /// socket/bind/listen failure (e.g. port in use).
  Status Start();

  /// \brief Graceful shutdown: stop accepting, finish in-flight requests,
  /// close every connection, join all threads. Idempotent.
  void Stop();

  /// The bound port (resolves option `port == 0` after Start()).
  uint16_t port() const { return port_; }
  /// The bound address.
  const std::string& host() const { return options_.host; }

  /// Open connections right now.
  int connection_count() const;
  /// A snapshot of the counters.
  ServerStats GetStats() const;

 private:
  /// One connection's state; owned by the connection table, borrowed by
  /// exactly one thread at a time (EPOLLONESHOT discipline). The mutex makes
  /// that handoff a memory-model edge: epoll_ctl/epoll_wait alone publish
  /// nothing, so the event loop and the handler threads lock `mu` around
  /// every parser access. It is uncontended by construction — ONESHOT means
  /// nobody waits on it — it only orders the handoffs.
  struct Connection {
    explicit Connection(int fd, ParserLimits limits) : fd(fd), parser(limits) {}
    const int fd;
    std::mutex mu;
    HttpRequestParser parser;
  };

  void EventLoop();
  void HandlerLoop();

  /// Accepts until EAGAIN; each new fd is registered EPOLLIN|EPOLLONESHOT.
  void AcceptReady();
  /// Reads until EAGAIN and advances the parser; dispatches or re-arms.
  void ConnectionReady(int fd);

  /// Runs the router on a complete request and writes the response. Returns
  /// with the connection either re-armed (keep-alive) or closed.
  void HandleRequest(Connection* conn);

  /// Blocking full write with poll()-based readiness; false on peer error.
  bool WriteAll(int fd, const std::string& data);

  /// Registers (add) or re-arms (mod) EPOLLIN|ONESHOT; false on failure
  /// (the caller must close the connection).
  bool ArmRead(int fd, bool add);
  Connection* LookupConnection(int fd);
  void CloseConnection(Connection* conn);
  void EnqueueHandler(Connection* conn);

  Router router_;
  ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd that interrupts epoll_wait for Stop()

  std::thread event_thread_;
  std::vector<std::thread> handler_threads_;

  /// Connection table; the unique_ptrs pin Connection addresses so handler
  /// threads can hold raw pointers while the table mutates.
  mutable std::mutex conn_mu_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  std::mutex handler_mu_;
  std::condition_variable handler_cv_;
  std::condition_variable drain_cv_;
  std::deque<Connection*> handler_queue_;
  int handlers_busy_ = 0;

  /// Serializes Stop() (user call vs destructor).
  std::mutex stop_mu_;
  bool stopped_ = false;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};  ///< Stop() begun: no new accepts/keep-alive
  std::atomic<bool> stop_{false};      ///< event thread must exit
  /// Handler threads may exit (set only after the event thread is joined, so
  /// the queue is final and everything in it still gets answered).
  std::atomic<bool> handlers_exit_{false};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_handled_{0};
  std::atomic<uint64_t> bad_requests_{0};
};

}  // namespace dpstarj::net
