// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// HttpServer — a dependency-free epoll HTTP/1.1 server, the front door the
// DP-starJ query service speaks through (src/net/service_api.h wires the
// routes). The design keeps the accept loop non-blocking no matter what the
// handlers do:
//
//   * one event-loop thread owns the listen socket and epoll set; connection
//     sockets are registered EPOLLONESHOT, so a connection is touched by
//     exactly one thread at a time;
//   * a pool of handler threads runs the Router on fully-parsed requests and
//     writes the response; the handler queue never exceeds the connection cap
//     (one in-flight request per connection), so it is naturally bounded;
//   * per-connection parsers enforce hard header/body byte limits, and the
//     connection count is capped — excess accepts are answered 503 + close;
//   * per-connection deadlines bound a connection's *time* footprint the way
//     the parser limits bound its bytes: separate header-read, body-read and
//     keep-alive-idle deadlines live in a min-heap serviced by the epoll
//     loop (its wait timeout is the next expiry), so a slow-loris client
//     dripping one header byte per second is reaped with 408 at the header
//     deadline instead of pinning a connection slot forever; the write side
//     is bounded too — each response has a total write budget, so a peer
//     draining one byte per poll window cannot pin a handler thread;
//   * Stop() drains gracefully: the listen socket closes first, in-flight
//     requests finish (their responses say "Connection: close"), then idle
//     keep-alive connections are torn down and the threads joined.
//
// Handlers may block (the DP answer path does — a noisy star join takes
// milliseconds); only the sizing of `handler_threads` is affected, never the
// accept loop's responsiveness.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/http.h"
#include "obs/access_log.h"
#include "obs/metrics.h"

namespace dpstarj::net {

/// \brief Server configuration.
struct ServerOptions {
  /// Bind address; the default serves localhost only.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Threads running request handlers (and their blocking DP answers).
  int handler_threads = 4;
  /// Open-connection cap; accepts beyond it are answered 503 and closed.
  int max_connections = 1024;
  /// Per-request input bounds (header bytes, body bytes).
  ParserLimits limits;
  /// \name Connection deadlines, in milliseconds (0 disables one).
  /// The deadline is anchored at the phase transition and never extended by
  /// partial progress — dripping bytes does not buy a slow client time.
  /// @{
  /// Accept (or first byte after keep-alive idle) → complete header block.
  /// Expiry answers 408 and closes (the slow-loris bound).
  int header_timeout_ms = 10'000;
  /// Header block complete → full body received. Expiry answers 408 + close.
  int body_timeout_ms = 30'000;
  /// Response written → first byte of the next request on a keep-alive
  /// connection. Expiry closes silently (nothing was in flight to answer).
  int idle_timeout_ms = 60'000;
  /// Total budget for writing one response. Enforced inside the handler's
  /// blocking write (not the deadline heap): without it, a peer that reads
  /// one byte per zero-progress window pins a handler thread indefinitely —
  /// the write-side twin of the slow-loris read problem. Expiry closes the
  /// connection mid-response.
  int write_timeout_ms = 30'000;
  /// @}
  /// When set, the server's connection/request/timeout counters are also
  /// published here (names under dpstarj_http_*), so one /metrics scrape
  /// covers the transport next to the service. Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, one JSON line per finished exchange — responses the router
  /// produced, reaped 408s, and 503 sheds alike (see obs/access_log.h).
  std::shared_ptr<obs::AccessLog> access_log;
  /// When > 0, any request whose server-side wall time reaches this many
  /// milliseconds is logged at WARN with its trace id and stage breakdown.
  int slow_query_ms = 0;
};

/// \brief Monotonic server counters, as returned by GetStats().
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over max_connections (503)
  uint64_t requests_handled = 0;
  uint64_t bad_requests = 0;          ///< parse failures answered 4xx/5xx
  uint64_t timeouts_header = 0;       ///< reaped at the header deadline (408)
  uint64_t timeouts_body = 0;         ///< reaped at the body deadline (408)
  uint64_t timeouts_idle = 0;         ///< keep-alive idle expiry (silent close)
  uint64_t timeouts_write = 0;        ///< response write budget exceeded (closed)
};

/// \brief The epoll HTTP server. Construct with a Router, Start(), Stop().
class HttpServer {
 public:
  HttpServer(Router router, ServerOptions options = {});
  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the event loop + handler threads. IoError on
  /// socket/bind/listen failure (e.g. port in use).
  Status Start();

  /// \brief Graceful shutdown: stop accepting, finish in-flight requests,
  /// close every connection, join all threads. Idempotent.
  void Stop();

  /// The bound port (resolves option `port == 0` after Start()).
  uint16_t port() const { return port_; }
  /// The bound address.
  const std::string& host() const { return options_.host; }

  /// Open connections right now.
  int connection_count() const;
  /// A snapshot of the counters.
  ServerStats GetStats() const;

 private:
  /// One connection's state; owned by the connection table, borrowed by
  /// exactly one thread at a time (EPOLLONESHOT discipline). The mutex makes
  /// that handoff a memory-model edge: epoll_ctl/epoll_wait alone publish
  /// nothing, so the event loop and the handler threads lock `mu` around
  /// every parser access. It is uncontended by construction — ONESHOT means
  /// nobody waits on it — it only orders the handoffs.
  struct Connection {
    /// Which deadline currently governs the connection.
    enum class Phase {
      kHeader,    ///< waiting for a complete header block
      kBody,      ///< headers done, body bytes owed
      kIdle,      ///< keep-alive, no request in progress
      kHandling,  ///< owned by a handler thread — no deadline
    };

    explicit Connection(int fd, ParserLimits limits) : fd(fd), parser(limits) {}
    const int fd;
    std::mutex mu;
    HttpRequestParser parser;
    /// Guarded by mu (the reaper reads it under mu before closing).
    Phase phase = Phase::kHeader;
    /// \name Request read timing (guarded by mu).
    /// `read_start` anchors the current read phase (reset when a new
    /// request's first bytes arrive); the *_us fields accumulate the finished
    /// request's socket-read times and are copied into HttpRequest — then
    /// zeroed — at dispatch, so pipelined followers report 0.
    /// @{
    std::chrono::steady_clock::time_point read_start{};
    uint64_t header_read_us = 0;
    uint64_t body_read_us = 0;
    /// @}
    /// Which heap entry is current: SetDeadline stores a fresh server-wide
    /// serial here, so superseded entries are recognized and skipped when
    /// they surface (lazy deletion). Server-wide — not per-connection — so a
    /// stale entry can never match a NEW connection that reused the same fd
    /// number (and would otherwise start from the same small gen values).
    /// Atomic so the reaper can pre-check without conn->mu — a handler deep
    /// in a blocking write always has a stale gen, and the reaper must not
    /// wait on it. 0 = no deadline ever scheduled.
    std::atomic<uint64_t> deadline_gen{0};
  };

  /// One pending expiry in the deadline min-heap.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point deadline;
    int fd = -1;
    uint64_t gen = 0;
    bool operator>(const DeadlineEntry& other) const {
      return deadline > other.deadline;
    }
  };

  void EventLoop();
  void HandlerLoop();

  /// Interrupts epoll_wait (deadline pushed off-loop, or Stop()).
  void Wake();

  /// \brief Moves `conn` into `phase` and schedules its expiry (cancelling
  /// any previous deadline via the gen bump). Phases with a zero timeout —
  /// kHandling always — only cancel. Requires conn->mu held.
  void SetDeadline(Connection* conn, Connection::Phase phase);
  /// The configured timeout of a phase (0 = none).
  int TimeoutForPhase(Connection::Phase phase) const;

  /// \brief Pops due deadlines, reaps the connections they still govern, and
  /// returns the epoll timeout until the next expiry (-1 when none pending).
  /// Runs on the event thread.
  int ReapExpiredDeadlines();
  /// Rebuilds the heap keeping only each fd's newest entry (per heap_gens_).
  /// Requires deadline_mu_ held; called when stale entries dominate.
  void CompactDeadlinesLocked();
  /// Reaps one expired entry if its gen is still current: 408 for header/
  /// body expiry (best-effort), silent close for idle.
  void ReapConnection(const DeadlineEntry& entry);

  /// Accepts until EAGAIN; each new fd is registered EPOLLIN|EPOLLONESHOT.
  void AcceptReady();
  /// Reads until EAGAIN and advances the parser; dispatches or re-arms.
  void ConnectionReady(int fd);

  /// Runs the router on a complete request and writes the response. Returns
  /// with the connection either re-armed (keep-alive) or closed.
  void HandleRequest(Connection* conn);

  /// Blocking full write with poll()-based readiness; false on peer error.
  bool WriteAll(int fd, const std::string& data);

  /// Registers (add) or re-arms (mod) EPOLLIN|ONESHOT; false on failure
  /// (the caller must close the connection).
  bool ArmRead(int fd, bool add);
  Connection* LookupConnection(int fd);
  /// \brief Closes `fd` iff the table still maps it to `conn`. Deliberately
  /// never dereferences `conn` (pointer identity only): a handler thread may
  /// reach here after the deadline reaper has already claimed and destroyed
  /// the Connection, and this must degrade to a no-op, not a use-after-free.
  void CloseConnection(int fd, Connection* conn);
  void EnqueueHandler(Connection* conn);

  Router router_;
  ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd that interrupts epoll_wait for Stop()

  std::thread event_thread_;
  /// Stored (atomically) right after the event thread spawns: SetDeadline
  /// compares the running thread against this instead of
  /// event_thread_.get_id() — the std::thread object is mutated by Stop()'s
  /// join() concurrently with late handler-side deadline pushes, and
  /// std::thread members are not synchronized. Atomic because the event
  /// thread itself may read it (via AcceptReady → SetDeadline) before
  /// Start()'s store lands; the default id then compares unequal, costing
  /// at most one spurious self-wake.
  std::atomic<std::thread::id> event_thread_id_{};
  std::vector<std::thread> handler_threads_;

  /// Connection table; the unique_ptrs pin Connection addresses so handler
  /// threads can hold raw pointers while the table mutates.
  mutable std::mutex conn_mu_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  /// Deadline min-heap (lazy deletion: superseded entries are skipped when
  /// popped). Guarded by its own mutex — handler threads push idle deadlines
  /// while the event thread pops. Lock order is conn_mu_ → conn->mu →
  /// deadline_mu_, acyclic by construction.
  std::mutex deadline_mu_;
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;
  /// fd → gen of its newest pushed entry (erased on cancel). Lazy deletion
  /// alone would let superseded entries pile up for their full nominal
  /// timeout — at high request rates that is hundreds of thousands of dead
  /// 60s-idle entries — so when the heap far outgrows this map (the live
  /// population), CompactDeadlinesLocked() drops everything superseded.
  /// Bounded by peak concurrent fd numbers (the kernel recycles them).
  std::unordered_map<int, uint64_t> heap_gens_;
  /// Source of the server-wide unique gens stamped into connections/entries.
  std::atomic<uint64_t> deadline_gen_counter_{0};

  std::mutex handler_mu_;
  std::condition_variable handler_cv_;
  std::condition_variable drain_cv_;
  std::deque<Connection*> handler_queue_;
  int handlers_busy_ = 0;

  /// Serializes Stop() (user call vs destructor).
  std::mutex stop_mu_;
  bool stopped_ = false;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};  ///< Stop() begun: no new accepts/keep-alive
  std::atomic<bool> stop_{false};      ///< event thread must exit
  /// Handler threads may exit (set only after the event thread is joined, so
  /// the queue is final and everything in it still gets answered).
  std::atomic<bool> handlers_exit_{false};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_handled_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> timeouts_header_{0};
  std::atomic<uint64_t> timeouts_body_{0};
  std::atomic<uint64_t> timeouts_idle_{0};
  std::atomic<uint64_t> timeouts_write_{0};

  /// Registry twins of the counters above (null without options_.metrics):
  /// the atomics stay authoritative for GetStats(), the registry children
  /// feed /metrics — both are bumped at the same sites.
  obs::Counter* m_connections_accepted_ = nullptr;
  obs::Counter* m_connections_rejected_ = nullptr;
  obs::Counter* m_requests_handled_ = nullptr;
  obs::Counter* m_bad_requests_ = nullptr;
  obs::Counter* m_timeouts_header_ = nullptr;
  obs::Counter* m_timeouts_body_ = nullptr;
  obs::Counter* m_timeouts_idle_ = nullptr;
  obs::Counter* m_timeouts_write_ = nullptr;
};

}  // namespace dpstarj::net
