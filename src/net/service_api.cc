#include "net/service_api.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/string_util.h"

namespace dpstarj::net {

namespace {

HttpResponse JsonResponse(int status, const Json& body) {
  return HttpResponse::MakeJson(status, body.Dump());
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForError(status), ErrorToJson(status));
}

}  // namespace

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kBudgetExhausted:
      // The request was understood and refused on privacy-accounting grounds:
      // a client-side condition no retry will fix.
      return 403;
    case StatusCode::kUnavailable:
      return 429;
    case StatusCode::kRateLimited:
      // Same HTTP status as global overload, but the response is additionally
      // marked X-DPStarJ-Tenant-Limited: 1 — the caller itself is over its
      // limits; other tenants are unaffected.
      return 429;
    case StatusCode::kNotSupported:
      return 501;
    case StatusCode::kTimeLimit:
      return 504;
    case StatusCode::kInternal:
    case StatusCode::kIoError:
      return 500;
  }
  return 500;
}

Json ErrorToJson(const Status& status) {
  Json err = Json::Object();
  err.Set("code", Json::Str(StatusCodeToString(status.code())));
  err.Set("message", Json::Str(status.message()));
  Json body = Json::Object();
  body.Set("error", std::move(err));
  return body;
}

Json QueryResultToJson(const exec::QueryResult& result) {
  Json body = Json::Object();
  body.Set("grouped", Json::Bool(result.grouped));
  if (result.grouped) {
    Json groups = Json::Array();
    for (const auto& [key, value] : result.groups) {
      Json row = Json::Object();
      row.Set("key", Json::Str(key));
      row.Set("value", Json::Number(value));
      groups.Append(std::move(row));
    }
    body.Set("groups", std::move(groups));
    body.Set("total", Json::Number(result.Total()));
  } else {
    body.Set("scalar", Json::Number(result.scalar));
  }
  return body;
}

Json ServiceStatsToJson(const service::ServiceStats& stats) {
  Json body = Json::Object();
  body.Set("submitted", Json::Number(static_cast<double>(stats.submitted)));
  body.Set("completed", Json::Number(static_cast<double>(stats.completed)));
  body.Set("failed", Json::Number(static_cast<double>(stats.failed)));
  body.Set("rejected_budget",
           Json::Number(static_cast<double>(stats.rejected_budget)));
  body.Set("rejected_overload",
           Json::Number(static_cast<double>(stats.rejected_overload)));
  body.Set("rejected_tenant_limited",
           Json::Number(static_cast<double>(stats.rejected_tenant_limited)));
  body.Set("tenant_rate_limited",
           Json::Number(static_cast<double>(stats.tenant_rate_limited)));
  body.Set("tenant_capped",
           Json::Number(static_cast<double>(stats.tenant_capped)));

  Json cache = Json::Object();
  cache.Set("hits", Json::Number(static_cast<double>(stats.cache.hits)));
  cache.Set("misses", Json::Number(static_cast<double>(stats.cache.misses)));
  cache.Set("insertions",
            Json::Number(static_cast<double>(stats.cache.insertions)));
  cache.Set("evictions", Json::Number(static_cast<double>(stats.cache.evictions)));
  cache.Set("epsilon_saved", Json::Number(stats.cache.epsilon_saved));
  cache.Set("hit_rate", Json::Number(stats.cache.HitRate()));
  body.Set("answer_cache", std::move(cache));

  Json plans = Json::Object();
  plans.Set("hits", Json::Number(static_cast<double>(stats.plan_cache.hits)));
  plans.Set("misses", Json::Number(static_cast<double>(stats.plan_cache.misses)));
  plans.Set("invalidations",
            Json::Number(static_cast<double>(stats.plan_cache.invalidations)));
  plans.Set("evictions",
            Json::Number(static_cast<double>(stats.plan_cache.evictions)));
  plans.Set("hit_rate", Json::Number(stats.plan_cache.HitRate()));
  body.Set("plan_cache", std::move(plans));
  return body;
}

Router MakeServiceRouter(service::QueryService* service, ApiOptions options) {
  DPSTARJ_CHECK(service != nullptr, "service must not be null");
  Router router;

  router.Handle("GET", "/healthz", [](const HttpRequest&) {
    return HttpResponse::MakeJson(200, "{\"status\":\"ok\"}");
  });

  router.Handle("GET", "/v1/stats", [service](const HttpRequest&) {
    return JsonResponse(200, ServiceStatsToJson(service->Stats()));
  });

  router.Handle("POST", "/v1/tenants", [service](const HttpRequest& req) {
    auto body = Json::Parse(req.body);
    if (!body.ok()) return ErrorResponse(body.status());
    if (!body->is_object()) {
      return ErrorResponse(Status::InvalidArgument("body must be a JSON object"));
    }
    auto tenant = body->GetString("tenant");
    if (!tenant.ok()) return ErrorResponse(tenant.status());
    auto epsilon = body->GetNumber("epsilon");
    if (!epsilon.ok()) return ErrorResponse(epsilon.status());
    // Optional per-tenant admission overrides; absent fields keep the
    // service defaults, explicit zeros disable that knob for the tenant.
    service::TenantLimits limits = service->admission().LimitsFor(*tenant);
    bool has_limits = false;
    if (body->Find("rate_qps") != nullptr) {
      auto rate = body->GetNumber("rate_qps");
      if (!rate.ok()) return ErrorResponse(rate.status());
      if (!std::isfinite(*rate) || *rate < 0.0) {
        return ErrorResponse(
            Status::InvalidArgument("rate_qps must be finite and >= 0"));
      }
      limits.rate_qps = *rate;
      has_limits = true;
    }
    if (body->Find("burst") != nullptr) {
      auto burst = body->GetNumber("burst");
      if (!burst.ok()) return ErrorResponse(burst.status());
      if (!std::isfinite(*burst) || *burst < 0.0) {
        return ErrorResponse(
            Status::InvalidArgument("burst must be finite and >= 0"));
      }
      limits.burst = *burst;
      has_limits = true;
    }
    if (body->Find("max_in_flight") != nullptr) {
      auto cap = body->GetNumber("max_in_flight");
      if (!cap.ok()) return ErrorResponse(cap.status());
      // Range-check BEFORE any int conversion: this value is attacker-
      // supplied, and static_cast of an out-of-int-range double is UB.
      if (!std::isfinite(*cap) || *cap < 0.0 || *cap > 1e9 ||
          *cap != std::floor(*cap)) {
        return ErrorResponse(Status::InvalidArgument(
            "max_in_flight must be an integer in [0, 1e9]"));
      }
      limits.max_in_flight = static_cast<int>(*cap);
      has_limits = true;
    }
    // Validate the overrides before registering, so a bad request leaves no
    // half-registered tenant behind.
    Status st = service->RegisterTenant(*tenant, *epsilon);
    double total = *epsilon;
    int http_status = 201;
    if (!st.ok()) {
      // Budgets are append-only — an existing tenant cannot re-register and
      // `epsilon` is never re-minted. But a request carrying admission
      // overrides is an operator throttling a LIVE tenant; refusing it with
      // 409 (and silently dropping the limits) would leave no wire path to
      // contain an abusive tenant after registration. Apply the limits to
      // the existing account and answer 200.
      if (st.code() != StatusCode::kAlreadyExists || !has_limits) {
        return ErrorResponse(st);
      }
      auto account = service->ledger().Account(*tenant);
      if (!account.ok()) return ErrorResponse(account.status());
      total = account->total;  // the budget stays what it was
      http_status = 200;
    }
    if (has_limits) service->SetTenantLimits(*tenant, limits);
    Json out = Json::Object();
    out.Set("tenant", Json::Str(*tenant));
    out.Set("total", Json::Number(total));
    if (has_limits) {
      out.Set("rate_qps", Json::Number(limits.rate_qps));
      out.Set("burst", Json::Number(limits.burst));
      out.Set("max_in_flight",
              Json::Number(static_cast<double>(limits.max_in_flight)));
    }
    return JsonResponse(http_status, out);
  });

  router.Handle("GET", "/v1/tenants/<tenant>", [service](const HttpRequest& req) {
    const std::string& tenant = req.path_params.at("tenant");
    auto account = service->ledger().Account(tenant);
    if (!account.ok()) return ErrorResponse(account.status());
    Json out = Json::Object();
    out.Set("tenant", Json::Str(account->tenant));
    out.Set("total", Json::Number(account->total));
    out.Set("spent", Json::Number(account->spent));
    out.Set("remaining", Json::Number(account->remaining));
    out.Set("spends", Json::Number(static_cast<double>(account->spends)));
    out.Set("refunds", Json::Number(static_cast<double>(account->refunds)));
    out.Set("budget_refusals",
            Json::Number(static_cast<double>(account->refusals)));
    // The fair-admission side of the account (its own lock, so a snapshot
    // consistent per source, not across the two).
    service::TenantAdmissionStats admission =
        service->admission().TenantStats(tenant);
    Json adm = Json::Object();
    adm.Set("admitted", Json::Number(static_cast<double>(admission.admitted)));
    adm.Set("rate_limited",
            Json::Number(static_cast<double>(admission.rate_limited)));
    adm.Set("capped", Json::Number(static_cast<double>(admission.capped)));
    adm.Set("in_flight", Json::Number(static_cast<double>(admission.in_flight)));
    out.Set("admission", std::move(adm));
    return JsonResponse(200, out);
  });

  router.Handle("POST", "/v1/query", [service, options](const HttpRequest& req) {
    auto body = Json::Parse(req.body);
    if (!body.ok()) return ErrorResponse(body.status());
    if (!body->is_object()) {
      return ErrorResponse(Status::InvalidArgument("body must be a JSON object"));
    }
    auto sql = body->GetString("sql");
    if (!sql.ok()) return ErrorResponse(sql.status());
    auto epsilon = body->GetNumber("epsilon");
    if (!epsilon.ok()) return ErrorResponse(epsilon.status());
    auto tenant = body->GetString("tenant");
    if (!tenant.ok()) return ErrorResponse(tenant.status());

    // Non-blocking admission: a full work queue answers 429 immediately —
    // the handler thread must not park on the pool's backpressure while the
    // client holds a connection open.
    auto answer = service->TrySubmit(*sql, *epsilon, *tenant).get();
    if (!answer.ok()) {
      HttpResponse resp = ErrorResponse(answer.status());
      if (resp.status == 429) {
        int retry_after = options.retry_after_seconds;
        if (answer.status().code() == StatusCode::kRateLimited) {
          // Tenant-limited, not global pressure: mark it so clients (and
          // dashboards) can tell "I am over my limit" from "the service is
          // busy", and derive Retry-After from the tenant's own bucket.
          resp.headers.push_back({kTenantLimitedHeader, "1"});
          // Clamp before the cast: a wire-settable rate like 1e-300 makes
          // the hint astronomically large, and casting an out-of-int-range
          // double is UB. An hour is as honest as any larger number.
          double hint =
              std::min(service->admission().RetryAfterSeconds(*tenant), 3600.0);
          retry_after = std::max(1, static_cast<int>(std::ceil(hint)));
        }
        resp.headers.push_back({"Retry-After", Format("%d", retry_after)});
      }
      return resp;
    }
    return JsonResponse(200, QueryResultToJson(*answer));
  });

  return router;
}

}  // namespace dpstarj::net
