#include "net/service_api.h"

#include <utility>

#include "common/string_util.h"

namespace dpstarj::net {

namespace {

HttpResponse JsonResponse(int status, const Json& body) {
  return HttpResponse::MakeJson(status, body.Dump());
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForError(status), ErrorToJson(status));
}

}  // namespace

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kBudgetExhausted:
      // The request was understood and refused on privacy-accounting grounds:
      // a client-side condition no retry will fix.
      return 403;
    case StatusCode::kUnavailable:
      return 429;
    case StatusCode::kNotSupported:
      return 501;
    case StatusCode::kTimeLimit:
      return 504;
    case StatusCode::kInternal:
    case StatusCode::kIoError:
      return 500;
  }
  return 500;
}

Json ErrorToJson(const Status& status) {
  Json err = Json::Object();
  err.Set("code", Json::Str(StatusCodeToString(status.code())));
  err.Set("message", Json::Str(status.message()));
  Json body = Json::Object();
  body.Set("error", std::move(err));
  return body;
}

Json QueryResultToJson(const exec::QueryResult& result) {
  Json body = Json::Object();
  body.Set("grouped", Json::Bool(result.grouped));
  if (result.grouped) {
    Json groups = Json::Array();
    for (const auto& [key, value] : result.groups) {
      Json row = Json::Object();
      row.Set("key", Json::Str(key));
      row.Set("value", Json::Number(value));
      groups.Append(std::move(row));
    }
    body.Set("groups", std::move(groups));
    body.Set("total", Json::Number(result.Total()));
  } else {
    body.Set("scalar", Json::Number(result.scalar));
  }
  return body;
}

Json ServiceStatsToJson(const service::ServiceStats& stats) {
  Json body = Json::Object();
  body.Set("submitted", Json::Number(static_cast<double>(stats.submitted)));
  body.Set("completed", Json::Number(static_cast<double>(stats.completed)));
  body.Set("failed", Json::Number(static_cast<double>(stats.failed)));
  body.Set("rejected_budget",
           Json::Number(static_cast<double>(stats.rejected_budget)));
  body.Set("rejected_overload",
           Json::Number(static_cast<double>(stats.rejected_overload)));

  Json cache = Json::Object();
  cache.Set("hits", Json::Number(static_cast<double>(stats.cache.hits)));
  cache.Set("misses", Json::Number(static_cast<double>(stats.cache.misses)));
  cache.Set("insertions",
            Json::Number(static_cast<double>(stats.cache.insertions)));
  cache.Set("evictions", Json::Number(static_cast<double>(stats.cache.evictions)));
  cache.Set("epsilon_saved", Json::Number(stats.cache.epsilon_saved));
  cache.Set("hit_rate", Json::Number(stats.cache.HitRate()));
  body.Set("answer_cache", std::move(cache));

  Json plans = Json::Object();
  plans.Set("hits", Json::Number(static_cast<double>(stats.plan_cache.hits)));
  plans.Set("misses", Json::Number(static_cast<double>(stats.plan_cache.misses)));
  plans.Set("invalidations",
            Json::Number(static_cast<double>(stats.plan_cache.invalidations)));
  plans.Set("evictions",
            Json::Number(static_cast<double>(stats.plan_cache.evictions)));
  plans.Set("hit_rate", Json::Number(stats.plan_cache.HitRate()));
  body.Set("plan_cache", std::move(plans));
  return body;
}

Router MakeServiceRouter(service::QueryService* service, ApiOptions options) {
  DPSTARJ_CHECK(service != nullptr, "service must not be null");
  Router router;

  router.Handle("GET", "/healthz", [](const HttpRequest&) {
    return HttpResponse::MakeJson(200, "{\"status\":\"ok\"}");
  });

  router.Handle("GET", "/v1/stats", [service](const HttpRequest&) {
    return JsonResponse(200, ServiceStatsToJson(service->Stats()));
  });

  router.Handle("POST", "/v1/tenants", [service](const HttpRequest& req) {
    auto body = Json::Parse(req.body);
    if (!body.ok()) return ErrorResponse(body.status());
    if (!body->is_object()) {
      return ErrorResponse(Status::InvalidArgument("body must be a JSON object"));
    }
    auto tenant = body->GetString("tenant");
    if (!tenant.ok()) return ErrorResponse(tenant.status());
    auto epsilon = body->GetNumber("epsilon");
    if (!epsilon.ok()) return ErrorResponse(epsilon.status());
    Status st = service->RegisterTenant(*tenant, *epsilon);
    if (!st.ok()) return ErrorResponse(st);
    Json out = Json::Object();
    out.Set("tenant", Json::Str(*tenant));
    out.Set("total", Json::Number(*epsilon));
    return JsonResponse(201, out);
  });

  router.Handle("GET", "/v1/tenants/<tenant>", [service](const HttpRequest& req) {
    const std::string& tenant = req.path_params.at("tenant");
    auto account = service->ledger().Account(tenant);
    if (!account.ok()) return ErrorResponse(account.status());
    Json out = Json::Object();
    out.Set("tenant", Json::Str(account->tenant));
    out.Set("total", Json::Number(account->total));
    out.Set("spent", Json::Number(account->spent));
    out.Set("remaining", Json::Number(account->remaining));
    return JsonResponse(200, out);
  });

  router.Handle("POST", "/v1/query", [service, options](const HttpRequest& req) {
    auto body = Json::Parse(req.body);
    if (!body.ok()) return ErrorResponse(body.status());
    if (!body->is_object()) {
      return ErrorResponse(Status::InvalidArgument("body must be a JSON object"));
    }
    auto sql = body->GetString("sql");
    if (!sql.ok()) return ErrorResponse(sql.status());
    auto epsilon = body->GetNumber("epsilon");
    if (!epsilon.ok()) return ErrorResponse(epsilon.status());
    auto tenant = body->GetString("tenant");
    if (!tenant.ok()) return ErrorResponse(tenant.status());

    // Non-blocking admission: a full work queue answers 429 immediately —
    // the handler thread must not park on the pool's backpressure while the
    // client holds a connection open.
    auto answer = service->TrySubmit(*sql, *epsilon, *tenant).get();
    if (!answer.ok()) {
      HttpResponse resp = ErrorResponse(answer.status());
      if (resp.status == 429) {
        resp.headers.push_back(
            {"Retry-After", Format("%d", options.retry_after_seconds)});
      }
      return resp;
    }
    return JsonResponse(200, QueryResultToJson(*answer));
  });

  return router;
}

}  // namespace dpstarj::net
