#include "net/service_api.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/build_info.h"
#include "common/cpu.h"
#include "common/string_util.h"
#include "exec/kernels/kernels.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/prof/sampler.h"
#include "obs/trace.h"

namespace dpstarj::net {

namespace {

HttpResponse JsonResponse(int status, const Json& body) {
  return HttpResponse::MakeJson(status, body.Dump());
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForError(status), ErrorToJson(status));
}

/// Telemetry handles of one answer route (/v1/query, /v1/workload), resolved
/// once against the service registry and shared by the handler closures.
/// `name`/`help` select the route's end-to-end duration family.
struct ApiTelemetry {
  ApiTelemetry(obs::MetricsRegistry* reg, const char* name, const char* help)
      : stage_metrics(reg) {
    ok = reg->GetHistogram(name, help, {{"outcome", "ok"}});
    budget_exhausted =
        reg->GetHistogram(name, help, {{"outcome", "budget_exhausted"}});
    tenant_limited =
        reg->GetHistogram(name, help, {{"outcome", "tenant_limited"}});
    overload = reg->GetHistogram(name, help, {{"outcome", "overload"}});
    bad_request = reg->GetHistogram(name, help, {{"outcome", "bad_request"}});
    not_found = reg->GetHistogram(name, help, {{"outcome", "not_found"}});
    error = reg->GetHistogram(name, help, {{"outcome", "error"}});
  }

  obs::Histogram* DurationFor(int status, bool is_tenant_limited) {
    switch (status) {
      case 200:
        return ok;
      case 403:
        return budget_exhausted;
      case 429:
        return is_tenant_limited ? tenant_limited : overload;
      case 400:
        return bad_request;
      case 404:
        return not_found;
      default:
        return error;
    }
  }

  obs::StageMetrics stage_metrics;
  obs::Histogram* ok;
  obs::Histogram* budget_exhausted;
  obs::Histogram* tenant_limited;
  obs::Histogram* overload;
  obs::Histogram* bad_request;
  obs::Histogram* not_found;
  obs::Histogram* error;
};

/// Seals a /v1/query response: folds the trace into the stage histograms,
/// observes the end-to-end duration under its outcome label, and attaches the
/// trace + tenant so the server can emit the trace-id header and access-log
/// line. Every return path of the query route funnels through here.
HttpResponse FinishTraced(ApiTelemetry* api, std::shared_ptr<obs::Trace> trace,
                          std::string tenant, HttpResponse resp) {
  api->stage_metrics.ObserveTrace(*trace);
  // ElapsedNs starts at handler entry; the socket-read spans happened before
  // the trace existed, so they are added back for the end-to-end number.
  const double seconds =
      static_cast<double>(trace->ElapsedNs() +
                          trace->stage_ns(obs::Stage::kHeaderRead) +
                          trace->stage_ns(obs::Stage::kBodyRead)) *
      1e-9;
  const bool is_tenant_limited = !resp.FindHeader(kTenantLimitedHeader).empty();
  api->DurationFor(resp.status, is_tenant_limited)->Observe(seconds);
  resp.tenant = std::move(tenant);
  resp.trace = std::move(trace);
  return resp;
}

/// Decorates a 429 refusal with its Retry-After hint. A tenant-limited
/// refusal (RateLimited) is additionally marked X-DPStarJ-Tenant-Limited: 1 —
/// the caller itself is over its limits, other tenants are unaffected — and
/// its hint comes from the tenant's own token bucket; a global-overload 429
/// uses the configured constant. No-op on any other status.
void AttachRetryAfter(service::QueryService* service, const ApiOptions& options,
                      const Status& status, const std::string& tenant,
                      HttpResponse* resp) {
  if (resp->status != 429) return;
  int retry_after = options.retry_after_seconds;
  if (status.code() == StatusCode::kRateLimited) {
    resp->headers.push_back({kTenantLimitedHeader, "1"});
    // Clamp before the cast: a wire-settable rate like 1e-300 makes the hint
    // astronomically large, and casting an out-of-int-range double is UB. An
    // hour is as honest as any larger number.
    double hint =
        std::min(service->admission().RetryAfterSeconds(tenant), 3600.0);
    retry_after = std::max(1, static_cast<int>(std::ceil(hint)));
  }
  resp->headers.push_back({"Retry-After", Format("%d", retry_after)});
}

/// The raw value of `key` in a query string ("a=1&b=2"), or "" when absent.
/// No %-decoding: every parameter this API reads is a plain number.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return std::string();
}

/// Parses a finite double out of `text` entirely (trailing junk rejected).
bool ParseFullDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// Decodes one /v1/ingest cell. JSON strings map to string values; numbers
/// map to int64 when integral and exactly representable (key and int64
/// columns must not arrive as lossy doubles — 2^53 is the last double whose
/// neighbours are all representable), otherwise double. The storage layer
/// then coerces int64 ↔ double per column, so "42" works for a measure
/// column and "42.0" does not silently truncate for a key column. Booleans,
/// nulls, and nested containers have no column type and are rejected.
Result<storage::Value> DecodeIngestCell(const Json& cell) {
  if (cell.is_string()) return storage::Value(cell.AsString());
  if (cell.is_number()) {
    const double v = cell.AsNumber();
    if (v == std::floor(v) && std::abs(v) <= 9007199254740992.0) {
      return storage::Value(static_cast<int64_t>(v));
    }
    return storage::Value(v);
  }
  return Status::InvalidArgument("ingest cells must be numbers or strings");
}

/// Exports the busy/idle accounting of one worker pool as scrape-time gauges.
void ExportWorkerGauges(obs::MetricsRegistry* reg, const char* pool,
                        size_t index, uint64_t busy_ns, uint64_t tasks) {
  const obs::Labels labels = {{"pool", pool}, {"worker", Format("%zu", index)}};
  reg->GetGauge("dpstarj_worker_busy_seconds",
                "Lifetime busy time per pool worker (everything else the "
                "worker was idle on its queue)",
                labels)
      ->Set(static_cast<double>(busy_ns) * 1e-9);
  reg->GetGauge("dpstarj_worker_tasks",
                "Lifetime tasks (jobs or morsel roles) executed per pool worker",
                labels)
      ->Set(static_cast<double>(tasks));
}

}  // namespace

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kBudgetExhausted:
      // The request was understood and refused on privacy-accounting grounds:
      // a client-side condition no retry will fix.
      return 403;
    case StatusCode::kUnavailable:
      return 429;
    case StatusCode::kRateLimited:
      // Same HTTP status as global overload, but the response is additionally
      // marked X-DPStarJ-Tenant-Limited: 1 — the caller itself is over its
      // limits; other tenants are unaffected.
      return 429;
    case StatusCode::kNotSupported:
      return 501;
    case StatusCode::kTimeLimit:
      return 504;
    case StatusCode::kInternal:
    case StatusCode::kIoError:
      return 500;
  }
  return 500;
}

Json ErrorToJson(const Status& status) {
  Json err = Json::Object();
  err.Set("code", Json::Str(StatusCodeToString(status.code())));
  err.Set("message", Json::Str(status.message()));
  Json body = Json::Object();
  body.Set("error", std::move(err));
  return body;
}

Json QueryResultToJson(const exec::QueryResult& result) {
  Json body = Json::Object();
  body.Set("grouped", Json::Bool(result.grouped));
  // The fact-table epoch the answer was computed (or replayed) at, so
  // clients of a live table can tell which version of the data they saw.
  body.Set("epoch", Json::Number(static_cast<double>(result.epoch)));
  if (result.grouped) {
    Json groups = Json::Array();
    for (const auto& [key, value] : result.groups) {
      Json row = Json::Object();
      row.Set("key", Json::Str(key));
      row.Set("value", Json::Number(value));
      groups.Append(std::move(row));
    }
    body.Set("groups", std::move(groups));
    body.Set("total", Json::Number(result.Total()));
  } else {
    body.Set("scalar", Json::Number(result.scalar));
  }
  return body;
}

Json ServiceStatsToJson(const service::ServiceStats& stats) {
  Json body = Json::Object();
  body.Set("submitted", Json::Number(static_cast<double>(stats.submitted)));
  body.Set("completed", Json::Number(static_cast<double>(stats.completed)));
  body.Set("failed", Json::Number(static_cast<double>(stats.failed)));
  body.Set("rejected_budget",
           Json::Number(static_cast<double>(stats.rejected_budget)));
  body.Set("rejected_overload",
           Json::Number(static_cast<double>(stats.rejected_overload)));
  body.Set("rejected_tenant_limited",
           Json::Number(static_cast<double>(stats.rejected_tenant_limited)));
  body.Set("tenant_rate_limited",
           Json::Number(static_cast<double>(stats.tenant_rate_limited)));
  body.Set("tenant_capped",
           Json::Number(static_cast<double>(stats.tenant_capped)));
  body.Set("workload_batches",
           Json::Number(static_cast<double>(stats.workload_batches)));
  body.Set("workload_queries_fresh",
           Json::Number(static_cast<double>(stats.workload_queries_fresh)));
  body.Set("workload_queries_cached",
           Json::Number(static_cast<double>(stats.workload_queries_cached)));
  body.Set("workload_queries_failed",
           Json::Number(static_cast<double>(stats.workload_queries_failed)));
  body.Set("workload_cache_skips",
           Json::Number(static_cast<double>(stats.workload_cache_skips)));
  body.Set("ingest_batches",
           Json::Number(static_cast<double>(stats.ingest_batches)));
  body.Set("ingest_rows", Json::Number(static_cast<double>(stats.ingest_rows)));

  Json cache = Json::Object();
  cache.Set("hits", Json::Number(static_cast<double>(stats.cache.hits)));
  cache.Set("misses", Json::Number(static_cast<double>(stats.cache.misses)));
  cache.Set("insertions",
            Json::Number(static_cast<double>(stats.cache.insertions)));
  cache.Set("evictions", Json::Number(static_cast<double>(stats.cache.evictions)));
  cache.Set("epsilon_saved", Json::Number(stats.cache.epsilon_saved));
  cache.Set("hit_rate", Json::Number(stats.cache.HitRate()));
  body.Set("answer_cache", std::move(cache));

  Json plans = Json::Object();
  plans.Set("hits", Json::Number(static_cast<double>(stats.plan_cache.hits)));
  plans.Set("misses", Json::Number(static_cast<double>(stats.plan_cache.misses)));
  plans.Set("extends",
            Json::Number(static_cast<double>(stats.plan_cache.extends)));
  plans.Set("invalidations",
            Json::Number(static_cast<double>(stats.plan_cache.invalidations)));
  plans.Set("invalidated_append", Json::Number(static_cast<double>(
                                      stats.plan_cache.invalidated_append)));
  plans.Set("invalidated_identity", Json::Number(static_cast<double>(
                                        stats.plan_cache.invalidated_identity)));
  plans.Set("evictions",
            Json::Number(static_cast<double>(stats.plan_cache.evictions)));
  plans.Set("hit_rate", Json::Number(stats.plan_cache.HitRate()));
  body.Set("plan_cache", std::move(plans));
  return body;
}

Router MakeServiceRouter(service::QueryService* service, ApiOptions options) {
  DPSTARJ_CHECK(service != nullptr, "service must not be null");
  auto api = std::make_shared<ApiTelemetry>(
      service->metrics(), "dpstarj_query_duration_seconds",
      "End-to-end /v1/query latency by outcome");
  auto workload_api = std::make_shared<ApiTelemetry>(
      service->metrics(), "dpstarj_workload_duration_seconds",
      "End-to-end /v1/workload latency by outcome");
  auto ingest_api = std::make_shared<ApiTelemetry>(
      service->metrics(), "dpstarj_ingest_api_duration_seconds",
      "End-to-end /v1/ingest latency by outcome");
  // Anchor the uptime clock at router construction (≈ process start), and
  // publish the static build identity once — the labels carry the values, the
  // gauge itself is the conventional constant 1.
  common::ProcessUptimeSeconds();
  {
    const common::BuildInfo& build = common::GetBuildInfo();
    service->metrics()
        ->GetGauge("dpstarj_build_info",
                   "Build identity; the value is always 1, the labels carry "
                   "the information",
                   {{"isa", exec::kernels::ActiveKernels().name},
                    {"compiler", build.compiler},
                    {"build_type", build.build_type}})
        ->Set(1.0);
  }
  obs::Counter* profile_ok = service->metrics()->GetCounter(
      "dpstarj_profile_captures_total", "Profile captures by outcome",
      {{"outcome", "ok"}});
  obs::Counter* profile_rejected = service->metrics()->GetCounter(
      "dpstarj_profile_captures_total", "Profile captures by outcome",
      {{"outcome", "rejected"}});
  obs::Counter* profile_samples = service->metrics()->GetCounter(
      "dpstarj_profile_samples_total",
      "Stack samples aggregated across all profile captures");
  Router router;

  router.Handle("GET", "/healthz", [](const HttpRequest&) {
    return HttpResponse::MakeJson(200, "{\"status\":\"ok\"}");
  });

  router.Handle("GET", "/v1/stats", [service](const HttpRequest&) {
    Json body = ServiceStatsToJson(service->Stats());
    // Runtime identity: which kernel table dispatch picked, how stage
    // counters are being sourced, and how long the process has been up.
    body.Set("kernel_isa", Json::Str(exec::kernels::ActiveKernels().name));
    body.Set("profiler_mode",
             Json::Str(obs::prof::CounterModeName(obs::prof::ActiveCounterMode())));
    body.Set("uptime_seconds", Json::Number(common::ProcessUptimeSeconds()));
    return JsonResponse(200, body);
  });

  router.Handle("GET", "/metrics", [service](const HttpRequest&) {
    obs::MetricsRegistry* reg = service->metrics();
    // Scrape-time gauges: state that lives behind its own locks/atomics is
    // mirrored into the registry here, so the page is current without adding
    // a second counter to the hot path.
    for (const service::TenantAccount& acct : service->ledger().Snapshot()) {
      reg->GetGauge("dpstarj_tenant_epsilon_total",
                    "Tenant lifetime privacy budget", {{"tenant", acct.tenant}})
          ->Set(acct.total);
      reg->GetGauge("dpstarj_tenant_epsilon_spent",
                    "Privacy budget spent so far", {{"tenant", acct.tenant}})
          ->Set(acct.spent);
      reg->GetGauge("dpstarj_tenant_epsilon_remaining",
                    "Privacy budget still available", {{"tenant", acct.tenant}})
          ->Set(acct.remaining);
    }
    reg->GetGauge("dpstarj_queue_depth", "Jobs waiting in the engine pool queue")
        ->Set(static_cast<double>(service->queue_depth()));
    const service::ServiceStats stats = service->Stats();
    reg->GetGauge("dpstarj_answer_cache_hit_ratio",
                  "Answer-cache hits / lookups")
        ->Set(stats.cache.HitRate());
    reg->GetGauge("dpstarj_answer_cache_epsilon_saved",
                  "Total privacy budget saved by cache replays")
        ->Set(stats.cache.epsilon_saved);
    reg->GetGauge("dpstarj_plan_cache_hit_ratio", "Plan-cache hits / lookups")
        ->Set(stats.plan_cache.HitRate());
    reg->GetGauge("dpstarj_plan_extends",
                  "Append-stale cached plans revalidated by incremental "
                  "tail extension instead of a recompile")
        ->Set(static_cast<double>(stats.plan_cache.extends));
    reg->GetGauge("dpstarj_plan_recompiles",
                  "Plan-cache lookups that compiled a fresh plan")
        ->Set(static_cast<double>(stats.plan_cache.misses));
    reg->GetGauge("dpstarj_admission_rate_limited",
                  "Lifetime submissions refused by tenant token buckets")
        ->Set(static_cast<double>(stats.tenant_rate_limited));
    reg->GetGauge("dpstarj_admission_capped",
                  "Lifetime submissions refused by tenant in-flight caps")
        ->Set(static_cast<double>(stats.tenant_capped));
    reg->GetGauge("dpstarj_process_uptime_seconds",
                  "Seconds since process start")
        ->Set(common::ProcessUptimeSeconds());
    {
      const auto engine = service->worker_stats();
      for (size_t i = 0; i < engine.size(); ++i) {
        ExportWorkerGauges(reg, "engine", i, engine[i].busy_ns, engine[i].jobs);
      }
      const auto morsel = exec::MorselPool::Shared().worker_stats();
      for (size_t i = 0; i < morsel.size(); ++i) {
        ExportWorkerGauges(reg, "morsel", i, morsel[i].busy_ns, morsel[i].roles);
      }
    }
    HttpResponse resp;
    resp.status = 200;
    resp.body = reg->RenderPrometheus();
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return resp;
  });

  router.Handle("GET", "/v1/trace/stats", [service](const HttpRequest&) {
    obs::MetricsRegistry* reg = service->metrics();
    // Distills each histogram family into {child-label: count/mean/quantiles}.
    auto render_family = [reg](const std::string& family,
                               const std::string& label_key) {
      Json out = Json::Object();
      for (const auto& [labels, hist] : reg->HistogramChildren(family)) {
        std::string key;
        for (const auto& [k, v] : labels) {
          if (k == label_key) key = v;
        }
        if (key.empty()) continue;
        obs::HistogramSnapshot snap = hist->Snapshot();
        Json entry = Json::Object();
        entry.Set("count", Json::Number(static_cast<double>(snap.count)));
        entry.Set("mean_seconds", Json::Number(snap.Mean()));
        entry.Set("p50_seconds", Json::Number(snap.Quantile(0.50)));
        entry.Set("p90_seconds", Json::Number(snap.Quantile(0.90)));
        entry.Set("p99_seconds", Json::Number(snap.Quantile(0.99)));
        out.Set(key, std::move(entry));
      }
      return out;
    };
    // The per-stage hardware-counter totals, folded from finished traces by
    // StageMetrics. All-zero hardware series with profiler_mode ==
    // "thread_cputime" means "no PMU access", not "no cycles burned".
    Json counters = Json::Object();
    for (int s = 0; s < obs::kStageCount; ++s) {
      const char* stage = obs::StageName(static_cast<obs::Stage>(s));
      const obs::Labels labels = {{"stage", stage}};
      auto value = [reg, &labels](const char* family) -> double {
        const obs::Counter* c = reg->FindCounter(family, labels);
        return c == nullptr ? 0.0 : static_cast<double>(c->Value());
      };
      Json entry = Json::Object();
      entry.Set("cycles", Json::Number(value("dpstarj_stage_cycles_total")));
      entry.Set("instructions",
                Json::Number(value("dpstarj_stage_instructions_total")));
      entry.Set("llc_misses",
                Json::Number(value("dpstarj_stage_llc_misses_total")));
      entry.Set("branch_misses",
                Json::Number(value("dpstarj_stage_branch_misses_total")));
      entry.Set("task_clock_ns",
                Json::Number(value("dpstarj_stage_task_clock_ns_total")));
      counters.Set(stage, std::move(entry));
    }
    Json body = Json::Object();
    body.Set("stages", render_family("dpstarj_stage_duration_seconds", "stage"));
    body.Set("query", render_family("dpstarj_query_duration_seconds", "outcome"));
    body.Set("stage_counters", std::move(counters));
    body.Set("profiler_mode",
             Json::Str(obs::prof::CounterModeName(obs::prof::ActiveCounterMode())));
    return JsonResponse(200, body);
  });

  router.Handle("GET", "/v1/profile",
                [profile_ok, profile_rejected,
                 profile_samples](const HttpRequest& req) {
    // Defaults: a 1-second window at 99 Hz — enough for a quick look, prime
    // so the sampling does not alias against millisecond-periodic work.
    double seconds = 1.0;
    double hz = 99.0;
    const std::string seconds_text = QueryParam(req.query, "seconds");
    if (!seconds_text.empty() && !ParseFullDouble(seconds_text, &seconds)) {
      profile_rejected->Inc();
      return ErrorResponse(Status::InvalidArgument("seconds must be a number"));
    }
    const std::string hz_text = QueryParam(req.query, "hz");
    if (!hz_text.empty() &&
        (!ParseFullDouble(hz_text, &hz) || hz != std::floor(hz))) {
      profile_rejected->Inc();
      return ErrorResponse(Status::InvalidArgument("hz must be an integer"));
    }
    if (hz < 1.0 || hz > 1000.0) {
      // Range-check before the int cast (attacker-supplied value).
      profile_rejected->Inc();
      return ErrorResponse(Status::InvalidArgument("hz must be in [1, 1000]"));
    }
    // Blocks this handler thread for the capture window; the sampler rejects
    // a second concurrent capture with AlreadyExists → 409, so at most one
    // handler thread is ever parked here.
    auto profile =
        obs::prof::Sampler::Global().Run(seconds, static_cast<int>(hz));
    if (!profile.ok()) {
      profile_rejected->Inc();
      return ErrorResponse(profile.status());
    }
    profile_ok->Inc();
    profile_samples->Inc(profile->samples);
    HttpResponse resp;
    resp.status = 200;
    resp.body = std::move(profile->folded);
    resp.content_type = "text/plain; charset=utf-8";
    resp.headers.push_back(
        {"X-DPStarJ-Profile-Samples", Format("%llu", static_cast<unsigned long long>(
                                                         profile->samples))});
    resp.headers.push_back(
        {"X-DPStarJ-Profile-Dropped", Format("%llu", static_cast<unsigned long long>(
                                                         profile->dropped))});
    return resp;
  });

  router.Handle("POST", "/v1/tenants", [service](const HttpRequest& req) {
    auto body = Json::Parse(req.body);
    if (!body.ok()) return ErrorResponse(body.status());
    if (!body->is_object()) {
      return ErrorResponse(Status::InvalidArgument("body must be a JSON object"));
    }
    auto tenant = body->GetString("tenant");
    if (!tenant.ok()) return ErrorResponse(tenant.status());
    auto epsilon = body->GetNumber("epsilon");
    if (!epsilon.ok()) return ErrorResponse(epsilon.status());
    // Optional per-tenant admission overrides; absent fields keep the
    // service defaults, explicit zeros disable that knob for the tenant.
    service::TenantLimits limits = service->admission().LimitsFor(*tenant);
    bool has_limits = false;
    if (body->Find("rate_qps") != nullptr) {
      auto rate = body->GetNumber("rate_qps");
      if (!rate.ok()) return ErrorResponse(rate.status());
      if (!std::isfinite(*rate) || *rate < 0.0) {
        return ErrorResponse(
            Status::InvalidArgument("rate_qps must be finite and >= 0"));
      }
      limits.rate_qps = *rate;
      has_limits = true;
    }
    if (body->Find("burst") != nullptr) {
      auto burst = body->GetNumber("burst");
      if (!burst.ok()) return ErrorResponse(burst.status());
      if (!std::isfinite(*burst) || *burst < 0.0) {
        return ErrorResponse(
            Status::InvalidArgument("burst must be finite and >= 0"));
      }
      limits.burst = *burst;
      has_limits = true;
    }
    if (body->Find("max_in_flight") != nullptr) {
      auto cap = body->GetNumber("max_in_flight");
      if (!cap.ok()) return ErrorResponse(cap.status());
      // Range-check BEFORE any int conversion: this value is attacker-
      // supplied, and static_cast of an out-of-int-range double is UB.
      if (!std::isfinite(*cap) || *cap < 0.0 || *cap > 1e9 ||
          *cap != std::floor(*cap)) {
        return ErrorResponse(Status::InvalidArgument(
            "max_in_flight must be an integer in [0, 1e9]"));
      }
      limits.max_in_flight = static_cast<int>(*cap);
      has_limits = true;
    }
    // Validate the overrides before registering, so a bad request leaves no
    // half-registered tenant behind.
    Status st = service->RegisterTenant(*tenant, *epsilon);
    double total = *epsilon;
    int http_status = 201;
    if (!st.ok()) {
      // Budgets are append-only — an existing tenant cannot re-register and
      // `epsilon` is never re-minted. But a request carrying admission
      // overrides is an operator throttling a LIVE tenant; refusing it with
      // 409 (and silently dropping the limits) would leave no wire path to
      // contain an abusive tenant after registration. Apply the limits to
      // the existing account and answer 200.
      if (st.code() != StatusCode::kAlreadyExists || !has_limits) {
        return ErrorResponse(st);
      }
      auto account = service->ledger().Account(*tenant);
      if (!account.ok()) return ErrorResponse(account.status());
      total = account->total;  // the budget stays what it was
      http_status = 200;
    }
    if (has_limits) service->SetTenantLimits(*tenant, limits);
    Json out = Json::Object();
    out.Set("tenant", Json::Str(*tenant));
    out.Set("total", Json::Number(total));
    if (has_limits) {
      out.Set("rate_qps", Json::Number(limits.rate_qps));
      out.Set("burst", Json::Number(limits.burst));
      out.Set("max_in_flight",
              Json::Number(static_cast<double>(limits.max_in_flight)));
    }
    return JsonResponse(http_status, out);
  });

  router.Handle("GET", "/v1/tenants/<tenant>", [service](const HttpRequest& req) {
    const std::string& tenant = req.path_params.at("tenant");
    auto account = service->ledger().Account(tenant);
    if (!account.ok()) return ErrorResponse(account.status());
    Json out = Json::Object();
    out.Set("tenant", Json::Str(account->tenant));
    out.Set("total", Json::Number(account->total));
    out.Set("spent", Json::Number(account->spent));
    out.Set("remaining", Json::Number(account->remaining));
    out.Set("spends", Json::Number(static_cast<double>(account->spends)));
    out.Set("refunds", Json::Number(static_cast<double>(account->refunds)));
    out.Set("budget_refusals",
            Json::Number(static_cast<double>(account->refusals)));
    // The fair-admission side of the account (its own lock, so a snapshot
    // consistent per source, not across the two).
    service::TenantAdmissionStats admission =
        service->admission().TenantStats(tenant);
    Json adm = Json::Object();
    adm.Set("admitted", Json::Number(static_cast<double>(admission.admitted)));
    adm.Set("rate_limited",
            Json::Number(static_cast<double>(admission.rate_limited)));
    adm.Set("capped", Json::Number(static_cast<double>(admission.capped)));
    adm.Set("in_flight", Json::Number(static_cast<double>(admission.in_flight)));
    out.Set("admission", std::move(adm));
    return JsonResponse(200, out);
  });

  router.Handle("POST", "/v1/query",
                [service, options, api](const HttpRequest& req) {
    // One trace per query request, alive until the server has written the
    // access-log line (the response holds the owning reference). The server-
    // measured socket-read times become its first two stages.
    auto trace = std::make_shared<obs::Trace>();
    trace->Record(obs::Stage::kHeaderRead, req.header_read_us * 1000);
    trace->Record(obs::Stage::kBodyRead, req.body_read_us * 1000);
    auto fail = [&](const Status& st, std::string tenant = "") {
      return FinishTraced(api.get(), trace, std::move(tenant),
                          ErrorResponse(st));
    };
    auto body = Json::Parse(req.body);
    if (!body.ok()) return fail(body.status());
    if (!body->is_object()) {
      return fail(Status::InvalidArgument("body must be a JSON object"));
    }
    auto sql = body->GetString("sql");
    if (!sql.ok()) return fail(sql.status());
    auto epsilon = body->GetNumber("epsilon");
    if (!epsilon.ok()) return fail(epsilon.status());
    auto tenant = body->GetString("tenant");
    if (!tenant.ok()) return fail(tenant.status());

    // Non-blocking admission: a full work queue answers 429 immediately —
    // the handler thread must not park on the pool's backpressure while the
    // client holds a connection open. The trace pointer stays valid for the
    // worker because this thread holds the shared_ptr across .get().
    auto answer =
        service->TrySubmit(*sql, *epsilon, *tenant, trace.get()).get();
    if (!answer.ok()) {
      HttpResponse resp = ErrorResponse(answer.status());
      AttachRetryAfter(service, options, answer.status(), *tenant, &resp);
      return FinishTraced(api.get(), trace, *tenant, std::move(resp));
    }
    HttpResponse resp = [&] {
      obs::ScopedStage encode(trace.get(), obs::Stage::kEncode);
      return JsonResponse(200, QueryResultToJson(*answer));
    }();
    return FinishTraced(api.get(), trace, *tenant, std::move(resp));
  });

  router.Handle("POST", "/v1/workload",
                [service, options, workload_api](const HttpRequest& req) {
    auto trace = std::make_shared<obs::Trace>();
    trace->Record(obs::Stage::kHeaderRead, req.header_read_us * 1000);
    trace->Record(obs::Stage::kBodyRead, req.body_read_us * 1000);
    auto fail = [&](const Status& st, std::string tenant = "") {
      return FinishTraced(workload_api.get(), trace, std::move(tenant),
                          ErrorResponse(st));
    };
    auto body = Json::Parse(req.body);
    if (!body.ok()) return fail(body.status());
    if (!body->is_object()) {
      return fail(Status::InvalidArgument("body must be a JSON object"));
    }
    auto tenant = body->GetString("tenant");
    if (!tenant.ok()) return fail(tenant.status());
    const Json* queries = body->Find("queries");
    if (queries == nullptr || !queries->is_array()) {
      return fail(
          Status::InvalidArgument("'queries' must be a non-empty array"),
          *tenant);
    }
    std::vector<service::WorkloadQuerySpec> specs;
    specs.reserve(queries->items().size());
    for (const Json& q : queries->items()) {
      if (!q.is_object()) {
        return fail(Status::InvalidArgument(
                        "each workload query must be a JSON object"),
                    *tenant);
      }
      auto sql = q.GetString("sql");
      if (!sql.ok()) return fail(sql.status(), *tenant);
      auto epsilon = q.GetNumber("epsilon");
      if (!epsilon.ok()) return fail(epsilon.status(), *tenant);
      specs.push_back({std::move(*sql), *epsilon});
    }
    // One admission + one ledger decision for the whole batch, one pool job,
    // one shared fact sweep. Batch-level refusals (tenant-limited, budget,
    // overload) answer like /v1/query's; per-query failures land in the
    // 200 body's per-query entries instead.
    auto outcome =
        service->SubmitWorkload(specs, *tenant, trace.get()).get();
    if (!outcome.ok()) {
      HttpResponse resp = ErrorResponse(outcome.status());
      AttachRetryAfter(service, options, outcome.status(), *tenant, &resp);
      return FinishTraced(workload_api.get(), trace, *tenant, std::move(resp));
    }
    HttpResponse resp = [&] {
      obs::ScopedStage encode(trace.get(), obs::Stage::kEncode);
      Json out = Json::Object();
      out.Set("tenant", Json::Str(*tenant));
      Json results = Json::Array();
      for (const service::WorkloadQueryOutcome& qo : outcome->queries) {
        if (qo.status.ok()) {
          Json entry = QueryResultToJson(qo.result);
          entry.Set("ok", Json::Bool(true));
          entry.Set("cached", Json::Bool(qo.cached));
          results.Append(std::move(entry));
        } else {
          Json entry = ErrorToJson(qo.status);
          entry.Set("ok", Json::Bool(false));
          results.Append(std::move(entry));
        }
      }
      out.Set("queries", std::move(results));
      Json ex = Json::Object();
      ex.Set("queries",
             Json::Number(static_cast<double>(outcome->exec.queries)));
      ex.Set("scans", Json::Number(static_cast<double>(outcome->exec.scans)));
      ex.Set("predicate_refs",
             Json::Number(static_cast<double>(outcome->exec.predicate_refs)));
      ex.Set("predicate_nodes",
             Json::Number(static_cast<double>(outcome->exec.predicate_nodes)));
      ex.Set("shared_dim_slots", Json::Number(static_cast<double>(
                                     outcome->exec.shared_dim_slots)));
      out.Set("exec", std::move(ex));
      // The batch's accumulated stage spans so far (the encode stage is
      // still open and reports its pre-encode value).
      Json stages = Json::Object();
      for (int s = 0; s < obs::kStageCount; ++s) {
        const auto stage = static_cast<obs::Stage>(s);
        if (!trace->touched(stage)) continue;
        stages.Set(obs::StageName(stage),
                   Json::Number(static_cast<double>(trace->stage_us(stage))));
      }
      out.Set("stage_us", std::move(stages));
      return JsonResponse(200, out);
    }();
    return FinishTraced(workload_api.get(), trace, *tenant, std::move(resp));
  });

  router.Handle("POST", "/v1/ingest",
                [service, ingest_api](const HttpRequest& req) {
    auto trace = std::make_shared<obs::Trace>();
    trace->Record(obs::Stage::kHeaderRead, req.header_read_us * 1000);
    trace->Record(obs::Stage::kBodyRead, req.body_read_us * 1000);
    // Ingest carries no tenant — rows are the dataset, not a privacy spend;
    // the access-log tenant field stays empty like the ops endpoints'.
    auto fail = [&](const Status& st) {
      return FinishTraced(ingest_api.get(), trace, "", ErrorResponse(st));
    };
    auto body = Json::Parse(req.body);
    if (!body.ok()) return fail(body.status());
    if (!body->is_object()) {
      return fail(Status::InvalidArgument("body must be a JSON object"));
    }
    auto table = body->GetString("table");
    if (!table.ok()) return fail(table.status());
    const Json* rows_json = body->Find("rows");
    if (rows_json == nullptr || !rows_json->is_array()) {
      return fail(
          Status::InvalidArgument("'rows' must be a non-empty array of rows"));
    }
    std::vector<std::vector<storage::Value>> rows;
    rows.reserve(rows_json->items().size());
    for (const Json& row_json : rows_json->items()) {
      if (!row_json.is_array()) {
        return fail(Status::InvalidArgument(
            "each ingest row must be an array of cells"));
      }
      std::vector<storage::Value> row;
      row.reserve(row_json.items().size());
      for (const Json& cell : row_json.items()) {
        auto value = DecodeIngestCell(cell);
        if (!value.ok()) return fail(value.status());
        row.push_back(std::move(*value));
      }
      rows.push_back(std::move(row));
    }
    auto outcome = service->Ingest(*table, rows, trace.get());
    if (!outcome.ok()) return fail(outcome.status());
    HttpResponse resp = [&] {
      obs::ScopedStage encode(trace.get(), obs::Stage::kEncode);
      Json out = Json::Object();
      out.Set("table", Json::Str(*table));
      out.Set("appended",
              Json::Number(static_cast<double>(outcome->appended)));
      out.Set("rows_total",
              Json::Number(static_cast<double>(outcome->rows_total)));
      out.Set("version",
              Json::Number(static_cast<double>(outcome->version)));
      return JsonResponse(200, out);
    }();
    return FinishTraced(ingest_api.get(), trace, "", std::move(resp));
  });

  return router;
}

}  // namespace dpstarj::net
