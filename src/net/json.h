// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// A minimal, dependency-free JSON value type with a strict parser and a
// deterministic serializer — just enough for the wire protocol of the HTTP
// front door (src/net/service_api.h). Objects preserve insertion order so
// responses serialize the way the handlers built them; numbers are doubles
// (all the protocol carries is ε, counters and noisy aggregates).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace dpstarj::net {

/// \brief One JSON value: null, bool, number, string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructs null.
  Json() = default;

  /// \name Factories, one per JSON type.
  /// @{
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();
  /// @}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; each aborts unless the type matches.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;

  /// Array elements (empty unless is_array()).
  const std::vector<Json>& items() const { return items_; }
  /// Object members in insertion order (empty unless is_object()).
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Appends to an array (aborts unless is_array()).
  void Append(Json v);
  /// Sets an object member, replacing an existing key (aborts unless
  /// is_object()).
  void Set(const std::string& key, Json v);

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  /// \name Typed object-member lookups for protocol decoding: value of `key`
  /// when present with the right type, otherwise the Status explains what is
  /// missing or mistyped.
  /// @{
  Result<std::string> GetString(std::string_view key) const;
  Result<double> GetNumber(std::string_view key) const;
  /// @}

  /// Compact serialization (no whitespace). Strings escape control
  /// characters, quotes and backslashes; non-finite numbers render as null
  /// (JSON has no NaN/Inf).
  std::string Dump() const;

  /// \brief Strict parse of one JSON document (rejects trailing garbage,
  /// unescaped control characters, and nesting deeper than 64 levels).
  static Result<Json> Parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes `s` for inclusion in a JSON string literal (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace dpstarj::net
