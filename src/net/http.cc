#include "net/http.h"

#include <algorithm>

#include "common/string_util.h"
#include "net/json.h"

namespace dpstarj::net {

namespace {

std::string_view FindHeaderIn(const std::vector<HttpHeader>& headers,
                              std::string_view name) {
  for (const auto& h : headers) {
    if (EqualsIgnoreCase(h.name, name)) return h.value;
  }
  return {};
}

// Splits a path on '/', dropping the leading empty segment ("/a/b" → {a, b};
// "/" → {}). Trailing slashes are not significant.
std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    out.emplace_back(path.substr(start, end - start));
    start = end;
  }
  return out;
}

// Percent-decodes one path segment (clients encode special characters in
// request targets, e.g. "team%20a"). Invalid escapes pass through verbatim.
// Decoding happens AFTER the path is split on '/', so an encoded %2F lands
// inside a single captured segment instead of changing the route shape.
std::string PercentDecode(std::string_view s) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && hex(s[i + 1]) >= 0 &&
        hex(s[i + 2]) >= 0) {
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

// Resolves keep-alive from version + Connection header: HTTP/1.1 defaults to
// keep-alive unless "close"; HTTP/1.0 requires an explicit "keep-alive".
bool ResolveKeepAlive(const std::string& version, std::string_view connection) {
  if (EqualsIgnoreCase(connection, "close")) return false;
  if (version == "HTTP/1.0") return EqualsIgnoreCase(connection, "keep-alive");
  return true;
}

}  // namespace

std::string_view HttpRequest::FindHeader(std::string_view name) const {
  return FindHeaderIn(headers, name);
}

std::string_view HttpResponse::FindHeader(std::string_view name) const {
  return FindHeaderIn(headers, name);
}

HttpResponse HttpResponse::MakeJson(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  r.content_type = "application/json";
  return r;
}

HttpResponse HttpResponse::MakeText(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  r.content_type = "text/plain";
  return r;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = Format("HTTP/1.1 %d %s\r\n", response.status,
                           HttpReasonPhrase(response.status));
  out += Format("Content-Length: %zu\r\n", response.body.size());
  if (!response.body.empty() || !response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& h : response.headers) {
    out += h.name + ": " + h.value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const std::string& method, const std::string& target,
                             const std::string& host, const std::string& body,
                             const std::string& content_type, bool keep_alive) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  out += Format("Content-Length: %zu\r\n", body.size());
  if (!body.empty()) out += "Content-Type: " + content_type + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

// ------------------------------------------------------- request parser ----

HttpRequestParser::HttpRequestParser(ParserLimits limits) : limits_(limits) {}

HttpRequestParser::Progress HttpRequestParser::Fail(int status, std::string why) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(why);
  return Progress::kError;
}

HttpRequestParser::Progress HttpRequestParser::Feed(const char* data, size_t n) {
  if (state_ == State::kError) return Progress::kError;
  if (state_ == State::kComplete) return Progress::kComplete;
  buffer_.append(data, n);
  return Pump();
}

HttpRequestParser::Progress HttpRequestParser::Pump() {
  if (state_ == State::kError) return Progress::kError;
  if (state_ == State::kComplete) return Progress::kComplete;
  if (state_ == State::kHeaders) {
    Progress p = ParseHeaders();
    if (p != Progress::kComplete && state_ != State::kBody) return p;
  }
  // kBody: wait for the full Content-Length, then split off the message.
  if (buffer_.size() < body_expected_) return Progress::kNeedMore;
  request_.body = buffer_.substr(0, body_expected_);
  buffer_.erase(0, body_expected_);
  state_ = State::kComplete;
  return Progress::kComplete;
}

HttpRequestParser::Progress HttpRequestParser::ParseHeaders() {
  size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return Fail(431, "request headers exceed the configured limit");
    }
    return Progress::kNeedMore;
  }
  if (header_end > limits_.max_header_bytes) {
    return Fail(431, "request headers exceed the configured limit");
  }
  std::string_view head(buffer_.data(), header_end);
  std::vector<std::string> lines;
  {
    size_t start = 0;
    while (start <= head.size()) {
      size_t eol = head.find("\r\n", start);
      if (eol == std::string_view::npos) eol = head.size();
      lines.emplace_back(head.substr(start, eol - start));
      if (eol == head.size()) break;
      start = eol + 2;
    }
  }
  if (lines.empty() || lines[0].empty()) return Fail(400, "empty request line");

  // Request line: METHOD SP target SP HTTP/x.y
  std::vector<std::string> parts = Split(lines[0], ' ');
  if (parts.size() != 3) return Fail(400, "malformed request line");
  std::string version = parts[2];
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(505, Format("unsupported version '%s'", version.c_str()));
  }
  request_.method = ToUpper(parts[0]);
  request_.target = parts[1];
  size_t q = request_.target.find('?');
  request_.path = request_.target.substr(0, q);
  request_.query =
      q == std::string::npos ? "" : request_.target.substr(q + 1);
  if (request_.path.empty() || request_.path[0] != '/') {
    return Fail(400, "request target must be an absolute path");
  }

  // Header lines: Name ':' OWS value. Whitespace between the name and the
  // colon is rejected per RFC 9112 §5.1 — a proxy that trims it would see a
  // different header than we do (smuggling primitive).
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Fail(400, Format("malformed header line '%s'", line.c_str()));
    }
    HttpHeader h;
    h.name = std::string(Trim(std::string_view(line).substr(0, colon)));
    if (h.name.size() != colon) {
      return Fail(400, "whitespace before ':' in header name");
    }
    h.value = std::string(Trim(std::string_view(line).substr(colon + 1)));
    request_.headers.push_back(std::move(h));
  }
  request_.keep_alive =
      ResolveKeepAlive(version, request_.FindHeader("Connection"));

  // Body framing: Content-Length only. Chunked is refused, not mis-parsed.
  std::string_view te = request_.FindHeader("Transfer-Encoding");
  if (!te.empty() && !EqualsIgnoreCase(te, "identity")) {
    return Fail(501, "chunked transfer encoding is not supported");
  }
  // All Content-Length occurrences must agree (RFC 9110 §8.6): silently
  // picking one of two differing values is the classic CL.CL desync a front
  // proxy preferring the other value would smuggle requests through.
  std::string_view cl;
  bool has_cl = false;
  for (const auto& h : request_.headers) {
    if (!EqualsIgnoreCase(h.name, "Content-Length")) continue;
    if (has_cl && cl != h.value) {
      return Fail(400, "conflicting Content-Length headers");
    }
    has_cl = true;
    cl = h.value;
  }
  body_expected_ = 0;
  if (has_cl) {
    int64_t n = 0;
    if (!ParseInt64(cl, &n) || n < 0) {
      return Fail(400, "invalid Content-Length");
    }
    if (static_cast<size_t>(n) > limits_.max_body_bytes) {
      return Fail(413, "request body exceeds the configured limit");
    }
    body_expected_ = static_cast<size_t>(n);
  }
  buffer_.erase(0, header_end + 4);
  state_ = State::kBody;
  return Progress::kNeedMore;
}

void HttpRequestParser::Reset() {
  // Keep buffer_ — it may already hold the next pipelined request.
  state_ = State::kHeaders;
  body_expected_ = 0;
  request_ = HttpRequest();
  error_status_ = 400;
  error_.clear();
}

// ------------------------------------------------------ response parser ----

HttpResponseParser::HttpResponseParser(size_t max_body_bytes)
    : max_body_bytes_(max_body_bytes) {}

HttpResponseParser::Progress HttpResponseParser::Fail(std::string why) {
  state_ = State::kError;
  error_ = std::move(why);
  return Progress::kError;
}

HttpResponseParser::Progress HttpResponseParser::Feed(const char* data, size_t n) {
  if (state_ == State::kError) return Progress::kError;
  if (state_ == State::kComplete) return Progress::kComplete;
  buffer_.append(data, n);
  return Pump();
}

HttpResponseParser::Progress HttpResponseParser::Pump() {
  if (state_ == State::kHeaders) {
    size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buffer_.size() > 64 * 1024) return Fail("response headers too large");
      return Progress::kNeedMore;
    }
    std::string_view head(buffer_.data(), header_end);
    size_t eol = head.find("\r\n");
    std::string status_line(head.substr(0, eol == std::string_view::npos
                                               ? head.size()
                                               : eol));
    // Status line: HTTP/x.y SP code SP reason.
    std::vector<std::string> parts = Split(status_line, ' ');
    if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/")) {
      return Fail(Format("malformed status line '%s'", status_line.c_str()));
    }
    int64_t code = 0;
    if (!ParseInt64(parts[1], &code) || code < 100 || code > 599) {
      return Fail(Format("bad status code '%s'", parts[1].c_str()));
    }
    response_.status = static_cast<int>(code);
    std::string version = parts[0];

    response_.headers.clear();
    size_t start = eol == std::string_view::npos ? head.size() : eol + 2;
    while (start < head.size()) {
      size_t line_end = head.find("\r\n", start);
      if (line_end == std::string_view::npos) line_end = head.size();
      std::string_view line = head.substr(start, line_end - start);
      start = line_end + 2;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return Fail("malformed response header");
      }
      HttpHeader h;
      h.name = std::string(Trim(line.substr(0, colon)));
      h.value = std::string(Trim(line.substr(colon + 1)));
      response_.headers.push_back(std::move(h));
    }
    keep_alive_ = ResolveKeepAlive(version, response_.FindHeader("Connection"));
    std::string ct(response_.FindHeader("Content-Type"));
    if (!ct.empty()) response_.content_type = ct;

    std::string_view cl = response_.FindHeader("Content-Length");
    if (cl.empty()) {
      return Fail("response without Content-Length is not supported");
    }
    int64_t n = 0;
    if (!ParseInt64(cl, &n) || n < 0) return Fail("invalid Content-Length");
    if (static_cast<size_t>(n) > max_body_bytes_) {
      return Fail("response body exceeds the configured limit");
    }
    body_expected_ = static_cast<size_t>(n);
    buffer_.erase(0, header_end + 4);
    state_ = State::kBody;
  }
  if (buffer_.size() < body_expected_) return Progress::kNeedMore;
  response_.body = buffer_.substr(0, body_expected_);
  buffer_.erase(0, body_expected_);
  state_ = State::kComplete;
  return Progress::kComplete;
}

void HttpResponseParser::Reset() {
  state_ = State::kHeaders;
  body_expected_ = 0;
  response_ = HttpResponse();
  error_.clear();
}

// ----------------------------------------------------------------- router ----

void Router::Handle(std::string method, std::string pattern, Handler handler) {
  Route route;
  route.method = ToUpper(method);
  route.segments = SplitPath(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool Router::MatchSegments(const std::vector<std::string>& pattern,
                           const std::vector<std::string>& path,
                           std::map<std::string, std::string>* params) {
  if (pattern.size() != path.size()) return false;
  std::map<std::string, std::string> captured;
  for (size_t i = 0; i < pattern.size(); ++i) {
    const std::string& seg = pattern[i];
    if (seg.size() >= 2 && seg.front() == '<' && seg.back() == '>') {
      captured[seg.substr(1, seg.size() - 2)] = PercentDecode(path[i]);
    } else if (seg != path[i]) {
      return false;
    }
  }
  *params = std::move(captured);
  return true;
}

HttpResponse Router::Dispatch(HttpRequest& request) const {
  std::vector<std::string> path = SplitPath(request.path);
  std::vector<std::string> allowed;
  // Last registration wins, so scan newest-first.
  for (auto it = routes_.rbegin(); it != routes_.rend(); ++it) {
    std::map<std::string, std::string> params;
    if (!MatchSegments(it->segments, path, &params)) continue;
    if (it->method != request.method) {
      if (std::find(allowed.begin(), allowed.end(), it->method) == allowed.end()) {
        allowed.push_back(it->method);
      }
      continue;
    }
    request.path_params = std::move(params);
    return it->handler(request);
  }
  if (!allowed.empty()) {
    std::sort(allowed.begin(), allowed.end());
    HttpResponse r = HttpResponse::MakeJson(
        405, Format("{\"error\":{\"code\":\"MethodNotAllowed\","
                    "\"message\":\"method %s not allowed\"}}",
                    request.method.c_str()));
    r.headers.push_back({"Allow", Join(allowed, ", ")});
    return r;
  }
  return HttpResponse::MakeJson(
      404, Format("{\"error\":{\"code\":\"NotFound\",\"message\":"
                  "\"no route for %s\"}}",
                  JsonEscape(request.path).c_str()));
}

}  // namespace dpstarj::net
