// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Client — a minimal blocking HTTP/1.1 client for the dpstarj wire protocol:
// one TCP connection, kept alive across requests. A connection the server
// closed between calls is detected (pre-send peek) and replaced before the
// request is transmitted; after transmission only idempotent GETs are ever
// resent — a failed POST may already have executed (and spent ε) server-side.
// Used by the end-to-end tests, the network bench's load generator, and the
// `dpstarj-server --selfcheck` smoke path.
//
// Not thread-safe: one Client per thread (each holds its own connection —
// that is what makes a multi-connection load generator multi-connection).

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/http.h"
#include "net/json.h"

namespace dpstarj::net {

/// \brief Client configuration.
struct ClientOptions {
  /// Send/receive timeout per socket operation.
  double timeout_seconds = 30.0;
};

/// \brief A blocking keep-alive HTTP client bound to one host:port.
class Client {
 public:
  Client(std::string host, uint16_t port, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// GET `target`, e.g. Get("/v1/stats").
  Result<HttpResponse> Get(const std::string& target);
  /// POST a JSON body to `target`.
  Result<HttpResponse> Post(const std::string& target, const std::string& body);
  /// Arbitrary method/body round trip.
  Result<HttpResponse> Request(const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               const std::string& content_type);

  /// Parses a response body as JSON (helper for protocol consumers).
  static Result<Json> ParseBody(const HttpResponse& response);

  /// Drops the connection (the next request reconnects).
  void Close();

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  Status Connect();
  /// One attempt on the current connection; IoError invalidates it.
  Result<HttpResponse> RoundTrip(const std::string& wire);

  std::string host_;
  uint16_t port_;
  ClientOptions options_;
  int fd_ = -1;
};

}  // namespace dpstarj::net
