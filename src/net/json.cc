#include "net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace dpstarj::net {

namespace {

constexpr int kMaxDepth = 64;

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  DPSTARJ_CHECK(is_bool(), "Json::AsBool on a non-bool");
  return bool_;
}

double Json::AsNumber() const {
  DPSTARJ_CHECK(is_number(), "Json::AsNumber on a non-number");
  return number_;
}

const std::string& Json::AsString() const {
  DPSTARJ_CHECK(is_string(), "Json::AsString on a non-string");
  return string_;
}

void Json::Append(Json v) {
  DPSTARJ_CHECK(is_array(), "Json::Append on a non-array");
  items_.push_back(std::move(v));
}

void Json::Set(const std::string& key, Json v) {
  DPSTARJ_CHECK(is_object(), "Json::Set on a non-object");
  for (auto& [k, old] : members_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<std::string> Json::GetString(std::string_view key) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(
        Format("missing field '%.*s'", static_cast<int>(key.size()), key.data()));
  }
  if (!v->is_string()) {
    return Status::InvalidArgument(
        Format("field '%.*s' must be a string", static_cast<int>(key.size()),
               key.data()));
  }
  return v->AsString();
}

Result<double> Json::GetNumber(std::string_view key) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(
        Format("missing field '%.*s'", static_cast<int>(key.size()), key.data()));
  }
  if (!v->is_number()) {
    return Status::InvalidArgument(
        Format("field '%.*s' must be a number", static_cast<int>(key.size()),
               key.data()));
  }
  return v->AsNumber();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::Dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber: {
      if (!std::isfinite(number_)) return "null";
      // Integral values (ε totals, counters, COUNT answers) render without a
      // mantissa; everything else round-trips through %.17g.
      double integral_part = 0.0;
      if (std::modf(number_, &integral_part) == 0.0 &&
          std::fabs(number_) < 9.007199254740992e15) {
        return Format("%lld", static_cast<long long>(number_));
      }
      return Format("%.17g", number_);
    }
    case Type::kString:
      return "\"" + JsonEscape(string_) + "\"";
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ",";
        out += items_[i].Dump();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + JsonEscape(members_[i].first) + "\":";
        out += members_[i].second.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    DPSTARJ_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(Format("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsJsonWhitespace(text_[pos_])) ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      DPSTARJ_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json::Bool(true);
    if (ConsumeLiteral("false")) return Json::Bool(false);
    if (ConsumeLiteral("null")) return Json::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(Format("unexpected character '%c'", c));
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      DPSTARJ_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      DPSTARJ_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      DPSTARJ_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // UTF-8-encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — group labels are plain ASCII anyway).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error(Format("invalid escape '\\%c'", esc));
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error(Format("invalid number '%s'", token.c_str()));
    }
    return Json::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace dpstarj::net
