#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace dpstarj::net {

Client::Client(std::string host, uint16_t port, ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Connect() {
  if (fd_ >= 0) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(Format("socket: %s", std::strerror(errno)));

  timeval tv{};
  tv.tv_sec = static_cast<time_t>(options_.timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (options_.timeout_seconds - std::floor(options_.timeout_seconds)) * 1e6);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(Format("bad address '%s'", host_.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IoError(Format("connect %s:%u: %s", host_.c_str(), port_,
                                       std::strerror(errno)));
    ::close(fd);
    return st;
  }
  fd_ = fd;
  return Status::OK();
}

Result<HttpResponse> Client::RoundTrip(const std::string& wire) {
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = Status::IoError(Format("send: %s", std::strerror(errno)));
    Close();
    return st;
  }
  HttpResponseParser parser;
  char buf[8192];
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      switch (parser.Feed(buf, static_cast<size_t>(n))) {
        case HttpResponseParser::Progress::kComplete: {
          if (!parser.keep_alive()) Close();
          return std::move(parser.response());
        }
        case HttpResponseParser::Progress::kError: {
          Status st = Status::IoError("bad response: " + parser.error());
          Close();
          return st;
        }
        case HttpResponseParser::Progress::kNeedMore:
          continue;
      }
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = n == 0 ? Status::IoError("connection closed mid-response")
                       : Status::IoError(Format("recv: %s", std::strerror(errno)));
    Close();
    return st;
  }
}

Result<HttpResponse> Client::Request(const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type) {
  // Reap a kept-alive connection the server has since closed BEFORE sending:
  // a non-blocking peek that sees EOF (or an error) proves the request was
  // never transmitted, so reconnecting here is safe even for POST. This is
  // the only stale-connection recovery a non-idempotent request gets — a
  // failure AFTER the request was sent may mean the server executed it (and
  // spent the tenant's ε), so resending could double-charge.
  if (fd_ >= 0) {
    char peek = 0;
    ssize_t n = ::recv(fd_, &peek, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0 ||
        (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      Close();
    }
  }
  const bool had_connection = fd_ >= 0;
  DPSTARJ_RETURN_NOT_OK(Connect());
  std::string wire =
      SerializeRequest(method, target, Format("%s:%u", host_.c_str(), port_),
                       body, content_type, /*keep_alive=*/true);
  Result<HttpResponse> r = RoundTrip(wire);
  if (!r.ok() && had_connection && method == "GET") {
    // Idempotent request on a connection that raced with a server-side
    // close: one resend covers it without hiding real failures.
    DPSTARJ_RETURN_NOT_OK(Connect());
    return RoundTrip(wire);
  }
  return r;
}

Result<HttpResponse> Client::Get(const std::string& target) {
  return Request("GET", target, "", "application/json");
}

Result<HttpResponse> Client::Post(const std::string& target,
                                  const std::string& body) {
  return Request("POST", target, body, "application/json");
}

Result<Json> Client::ParseBody(const HttpResponse& response) {
  return Json::Parse(response.body);
}

}  // namespace dpstarj::net
