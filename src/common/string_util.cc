#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <ctime>

namespace dpstarj {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string UtcTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  return Format("%04d-%02d-%02dT%02d:%02d:%02d.%06ldZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<long>(micros));
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; use strtod.
  std::string tmp(s);
  char* end = nullptr;
  *out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size();
}

}  // namespace dpstarj
