// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Exception-free error handling in the style of RocksDB / Apache Arrow:
// fallible operations return a Status (or a Result<T>, see result.h), and the
// caller is expected to check it. The library never throws.

#pragma once

#include <string>
#include <utility>

namespace dpstarj {

/// \brief Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotSupported = 5,
  kInternal = 6,
  kBudgetExhausted = 7,
  kTimeLimit = 8,
  kIoError = 9,
  kParseError = 10,
  kUnavailable = 11,
  kRateLimited = 12,
};

/// \brief Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// message. Status is cheap to copy for OK (no allocation) and carries a
/// std::string otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status TimeLimit(std::string msg) {
    return Status(StatusCode::kTimeLimit, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status RateLimited(std::string msg) {
    return Status(StatusCode::kRateLimited, std::move(msg));
  }
  /// @}

  /// Returns true iff the status is OK.
  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  /// Returns the status code.
  StatusCode code() const noexcept { return code_; }
  /// Returns the error message ("" for OK).
  const std::string& message() const noexcept { return msg_; }
  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const noexcept {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Propagates a non-OK Status to the caller.
#define DPSTARJ_RETURN_NOT_OK(expr)         \
  do {                                      \
    ::dpstarj::Status _st = (expr);         \
    if (!_st.ok()) return _st;              \
  } while (0)

/// \brief Aborts the process with a message if `cond` is false. For invariant
/// violations that indicate a bug in the library itself, never for user error.
#define DPSTARJ_CHECK(cond, msg)                              \
  do {                                                        \
    if (!(cond)) ::dpstarj::internal::FatalCheck(#cond, msg,  \
                                                 __FILE__, __LINE__); \
  } while (0)

namespace internal {
[[noreturn]] void FatalCheck(const char* expr, const char* msg, const char* file,
                             int line);
}  // namespace internal

}  // namespace dpstarj
