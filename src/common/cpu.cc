#include "common/cpu.h"

#include <algorithm>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

namespace dpstarj {

namespace {

int64_t SysconfBytes(int name, int64_t fallback) {
#ifdef __unix__
  long v = sysconf(name);
  return v > 0 ? static_cast<int64_t>(v) : fallback;
#else
  (void)name;
  return fallback;
#endif
}

CpuInfo Detect() {
  CpuInfo info;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports reads CPUID once per process; the kernel layer
  // (exec/kernels) never emits AVX2 outside target-attributed functions, so
  // this is the only gate a non-AVX2 host needs.
  info.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
  info.cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  info.cache_line_bytes = static_cast<int>(
      SysconfBytes(_SC_LEVEL1_DCACHE_LINESIZE, 64));
#endif
#ifdef _SC_LEVEL1_DCACHE_SIZE
  info.l1d_bytes = SysconfBytes(_SC_LEVEL1_DCACHE_SIZE, 0);
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
  info.l2_bytes = SysconfBytes(_SC_LEVEL2_CACHE_SIZE, 0);
#endif
  if (info.cache_line_bytes <= 0) info.cache_line_bytes = 64;
  return info;
}

}  // namespace

const CpuInfo& HostCpu() {
  static const CpuInfo info = Detect();
  return info;
}

}  // namespace dpstarj
