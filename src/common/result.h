// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Result<T>: a value-or-Status, the exception-free analogue of arrow::Result.

#pragma once

#include <optional>
#include <utility>

#include "common/status.h"

namespace dpstarj {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Typical use:
/// \code
///   Result<Table> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status (implicit so `return st;` works).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    DPSTARJ_CHECK(!status_.ok(), "Result constructed from OK status without value");
  }

  /// Returns true iff a value is present.
  bool ok() const noexcept { return value_.has_value(); }

  /// Returns the status (OK when a value is present).
  const Status& status() const noexcept { return status_; }

  /// Returns the value; aborts if not ok(). Use after checking ok().
  const T& ValueOrDie() const& {
    DPSTARJ_CHECK(ok(), status_.message().c_str());
    return *value_;
  }
  T& ValueOrDie() & {
    DPSTARJ_CHECK(ok(), status_.message().c_str());
    return *value_;
  }
  T&& ValueOrDie() && {
    DPSTARJ_CHECK(ok(), status_.message().c_str());
    return std::move(*value_);
  }

  /// Returns the value or `alt` when an error is held.
  T ValueOr(T alt) const& { return ok() ? *value_ : std::move(alt); }

  /// Dereference sugar: `r->field`, `*r` (must be ok()).
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

#define DPSTARJ_INTERNAL_CONCAT_IMPL(a, b) a##b
#define DPSTARJ_INTERNAL_CONCAT(a, b) DPSTARJ_INTERNAL_CONCAT_IMPL(a, b)

/// \brief Propagates the error of a Result expression, otherwise assigns the
/// value to `lhs` (which may be a declaration, visible after the macro).
#define DPSTARJ_ASSIGN_OR_RETURN(lhs, expr)                                   \
  auto DPSTARJ_INTERNAL_CONCAT(_dpstarj_res_, __LINE__) = (expr);             \
  if (!DPSTARJ_INTERNAL_CONCAT(_dpstarj_res_, __LINE__).ok()) {               \
    return DPSTARJ_INTERNAL_CONCAT(_dpstarj_res_, __LINE__).status();         \
  }                                                                           \
  lhs = std::move(DPSTARJ_INTERNAL_CONCAT(_dpstarj_res_, __LINE__)).ValueOrDie()

}  // namespace dpstarj
