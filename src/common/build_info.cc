#include "common/build_info.h"

#include <chrono>

namespace dpstarj::common {

namespace {

#if defined(__clang__)
constexpr const char* kCompiler = "clang " __VERSION__;
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc " __VERSION__;
#else
constexpr const char* kCompiler = __VERSION__;
#endif

#if defined(DPSTARJ_BUILD_TYPE)
constexpr const char* kBuildType = DPSTARJ_BUILD_TYPE;
#else
constexpr const char* kBuildType = "unknown";
#endif

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{kCompiler, kBuildType};
  return info;
}

double ProcessUptimeSeconds() {
  static const auto anchor = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       anchor)
      .count();
}

}  // namespace dpstarj::common
