// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Static build identity (compiler, build type) for the dpstarj_build_info
// metric and /v1/stats, plus the process uptime anchor behind
// dpstarj_process_uptime_seconds.

#pragma once

namespace dpstarj::common {

struct BuildInfo {
  const char* compiler;    ///< e.g. "GNU 13.2.0" (from __VERSION__)
  const char* build_type;  ///< CMAKE_BUILD_TYPE, or "unknown" outside CMake
};

const BuildInfo& GetBuildInfo();

/// \brief Seconds since the anchor was first touched. Call once early in
/// process startup (the service router constructor does) so "uptime" means
/// time since boot rather than time since the first scrape.
double ProcessUptimeSeconds();

}  // namespace dpstarj::common
