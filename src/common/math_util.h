// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Small numeric helpers shared by the sensitivity computations and the
// experiment harness.

#pragma once

#include <cstdint>
#include <vector>

namespace dpstarj {

/// \brief C(n, k) saturating at kBinomialCap to avoid overflow; returns 0 for
/// k > n or negative inputs. Used by the k-star counting formulas where
/// Σ C(deg, k) may be astronomically large.
double BinomialCoefficient(int64_t n, int64_t k);

/// Saturation bound for BinomialCoefficient (still exact below it).
inline constexpr double kBinomialCap = 1e300;

/// \brief ⌈log2(x)⌉ for x ≥ 1 (0 for x ≤ 1). Used by R2T's geometric race.
int CeilLog2(double x);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);
/// Clamps v into [lo, hi] (integer overload).
int64_t ClampInt(int64_t v, int64_t lo, int64_t hi);

/// Arithmetic mean (0 for empty input).
double Mean(const std::vector<double>& xs);
/// Population standard deviation (0 for size < 2).
double StdDev(const std::vector<double>& xs);
/// Median (0 for empty input); copies and sorts.
double Median(std::vector<double> xs);

/// \brief Relative error in percent: 100·|estimate − truth| / max(|truth|, 1).
/// The max(...) guard keeps empty-result queries well-defined, matching the
/// convention of the R2T evaluation code the paper compares against.
double RelativeErrorPercent(double estimate, double truth);

}  // namespace dpstarj
