#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace dpstarj {

Rng Rng::Fork() { return Rng(engine_()); }

double Rng::Uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DPSTARJ_CHECK(lo <= hi, "UniformInt requires lo <= hi");
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Laplace(double scale) {
  DPSTARJ_CHECK(scale >= 0.0, "Laplace scale must be non-negative");
  if (scale == 0.0) return 0.0;
  // Inverse CDF: u ~ U(-1/2, 1/2); x = -b * sgn(u) * ln(1 - 2|u|).
  double u = Uniform01() - 0.5;
  double sign = (u < 0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double Rng::Cauchy(double scale) {
  DPSTARJ_CHECK(scale >= 0.0, "Cauchy scale must be non-negative");
  if (scale == 0.0) return 0.0;
  return std::cauchy_distribution<double>(0.0, scale)(engine_);
}

double Rng::GeneralCauchy(double gamma, double scale) {
  DPSTARJ_CHECK(gamma >= 2.0, "GeneralCauchy requires gamma >= 2");
  DPSTARJ_CHECK(scale >= 0.0, "GeneralCauchy scale must be non-negative");
  if (scale == 0.0) return 0.0;
  // Rejection sampling with standard Cauchy envelope:
  // target f(z) ∝ 1/(1+|z|^γ); envelope g(z) ∝ 1/(1+z²).
  // ratio f/g = (1+z²)/(1+|z|^γ) ≤ M with M ≤ 2 for γ ≥ 2.
  for (int iter = 0; iter < 10000; ++iter) {
    double z = std::cauchy_distribution<double>(0.0, 1.0)(engine_);
    double accept = (1.0 + z * z) / (1.0 + std::pow(std::abs(z), gamma)) / 2.0;
    if (Uniform01() < accept) return z * scale;
  }
  // Unreachable in practice (acceptance prob is Θ(1)); fall back to center.
  return 0.0;
}

double Rng::Exponential(double lambda) {
  DPSTARJ_CHECK(lambda > 0.0, "Exponential rate must be positive");
  return std::exponential_distribution<double>(lambda)(engine_);
}

double Rng::Gamma(double shape, double scale) {
  DPSTARJ_CHECK(shape > 0.0 && scale > 0.0, "Gamma parameters must be positive");
  return std::gamma_distribution<double>(shape, scale)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  DPSTARJ_CHECK(stddev >= 0.0, "Gaussian stddev must be non-negative");
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::GaussianMixture(const std::vector<double>& weights,
                            const std::vector<double>& means,
                            const std::vector<double>& stddevs) {
  DPSTARJ_CHECK(weights.size() == means.size() && means.size() == stddevs.size(),
                "GaussianMixture component vectors must have equal size");
  DPSTARJ_CHECK(!weights.empty(), "GaussianMixture needs at least one component");
  std::vector<double> cdf = BuildCdf(weights);
  DPSTARJ_CHECK(!cdf.empty(), "GaussianMixture weights must have positive mass");
  size_t i = DiscreteFromCdf(cdf);
  return Gaussian(means[i], stddevs[i]);
}

int64_t Rng::TwoSidedGeometric(double alpha) {
  DPSTARJ_CHECK(alpha > 0.0 && alpha < 1.0, "TwoSidedGeometric alpha in (0,1)");
  // Difference of two one-sided geometrics is symmetric geometric.
  std::geometric_distribution<int64_t> g(1.0 - alpha);
  return g(engine_) - g(engine_);
}

bool Rng::Bernoulli(double p) {
  DPSTARJ_CHECK(p >= 0.0 && p <= 1.0, "Bernoulli p in [0,1]");
  return Uniform01() < p;
}

size_t Rng::DiscreteFromCdf(const std::vector<double>& cdf) {
  DPSTARJ_CHECK(!cdf.empty() && cdf.back() > 0.0, "DiscreteFromCdf needs mass");
  double u = Uniform01() * cdf.back();
  auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) --it;
  return static_cast<size_t>(it - cdf.begin());
}

std::vector<double> BuildCdf(const std::vector<double>& weights) {
  std::vector<double> cdf;
  cdf.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += std::max(0.0, w);
    cdf.push_back(acc);
  }
  if (cdf.empty() || cdf.back() <= 0.0) return {};
  return cdf;
}

}  // namespace dpstarj
