#include "common/thread_name.h"

#include <cstdio>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace dpstarj::common {

void SetCurrentThreadName(const char* name) {
#if defined(__linux__)
  char truncated[16];  // TASK_COMM_LEN: 15 chars + NUL; snprintf truncates
  std::snprintf(truncated, sizeof(truncated), "%s", name);
  (void)prctl(PR_SET_NAME, reinterpret_cast<unsigned long>(truncated), 0, 0, 0);
#else
  (void)name;
#endif
}

void SetCurrentThreadName(const char* prefix, int index) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%d", prefix, index);
  SetCurrentThreadName(name);
}

}  // namespace dpstarj::common
