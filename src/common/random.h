// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Seeded random number generation and the noise distributions used by the DP
// mechanisms (Laplace, general Cauchy) plus the data-skew distributions used
// by the benchmark generators (exponential, gamma, Gaussian mixture).

#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dpstarj {

/// \brief A seedable random engine with the samplers the library needs.
///
/// All randomness in dpstarj flows through this class so that experiments are
/// reproducible given a seed. The engine is mt19937_64. Not thread-safe; use
/// one Rng per thread (see Fork()).
class Rng {
 public:
  /// Constructs with a fixed default seed (reproducible runs).
  Rng() : engine_(kDefaultSeed) {}
  /// Constructs with the given seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Default seed used by the no-arg constructor.
  static constexpr uint64_t kDefaultSeed = 0x5bd1e995u;

  /// Returns a new Rng seeded from this one (for per-thread streams).
  Rng Fork();

  /// Uniform double in [0, 1).
  double Uniform01();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Laplace noise with the given scale b (density ∝ exp(-|x|/b)).
  ///
  /// Variance is 2·b². The Laplace mechanism adds Laplace(sensitivity/ε).
  double Laplace(double scale);

  /// \brief Standard Cauchy noise scaled by `scale` (heavy polynomial tail).
  ///
  /// Used by the LS baseline: noise Cauchy(L̂S/β) with β = ε/(2(γ+1)).
  double Cauchy(double scale);

  /// \brief General Cauchy with parameter gamma: density ∝ 1/(1+|z|^γ).
  ///
  /// Sampled by rejection from the standard Cauchy envelope. γ = 4 gives the
  /// distribution quoted in the paper (§4) with Var = 1 before scaling.
  double GeneralCauchy(double gamma, double scale);

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda);

  /// Gamma with shape k and scale theta.
  double Gamma(double shape, double scale);

  /// Gaussian with the given mean and stddev.
  double Gaussian(double mean, double stddev);

  /// \brief Sample from a mixture of Gaussians: component i has weight
  /// weights[i], mean means[i], stddev stddevs[i]. Weights need not sum to 1.
  double GaussianMixture(const std::vector<double>& weights,
                         const std::vector<double>& means,
                         const std::vector<double>& stddevs);

  /// Geometric (two-sided symmetric geometric a.k.a. discrete Laplace) with
  /// parameter alpha in (0,1): P(k) ∝ alpha^{|k|}.
  int64_t TwoSidedGeometric(double alpha);

  /// Bernoulli with probability p.
  bool Bernoulli(double p);

  /// \brief Samples an index in [0, cdf.size()) from a discrete distribution
  /// given its (non-normalized) cumulative weights. cdf must be non-decreasing
  /// with cdf.back() > 0.
  size_t DiscreteFromCdf(const std::vector<double>& cdf);

  /// Direct access to the engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Builds a cumulative weight vector from raw weights (for
/// Rng::DiscreteFromCdf). Returns an empty vector if weights are empty or all
/// non-positive.
std::vector<double> BuildCdf(const std::vector<double>& weights);

}  // namespace dpstarj
