// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Host CPU topology and ISA detection, probed once at startup and shared by
// the runtime-dispatched kernel layer (exec/kernels), the morsel scheduler
// (L2-sized morsel granularity, worker pinning) and the bench JSON emitters
// (structured host fields instead of hand-written annotations).

#pragma once

#include <cstdint>

namespace dpstarj {

/// \brief What was detected about the host, fixed for the process lifetime.
struct CpuInfo {
  /// CPUID says the host executes AVX2 (and the build can emit it).
  bool avx2 = false;
  /// Hardware threads visible to this process.
  int cores = 1;
  /// Coherence granule; per-worker state is padded to this (exec/parallel.h).
  int cache_line_bytes = 64;
  /// Per-core data cache sizes (0 when the OS does not report one).
  int64_t l1d_bytes = 0;
  int64_t l2_bytes = 0;
};

/// \brief The host description, probed on first call (cheap, thread-safe).
const CpuInfo& HostCpu();

}  // namespace dpstarj
