#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace dpstarj {

double BinomialCoefficient(int64_t n, int64_t k) {
  if (k < 0 || n < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (int64_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
    if (result > kBinomialCap) return kBinomialCap;
  }
  return result;
}

int CeilLog2(double x) {
  if (x <= 1.0) return 0;
  int bits = 0;
  double v = 1.0;
  while (v < x && bits < 1100) {
    v *= 2.0;
    ++bits;
  }
  return bits;
}

double Clamp(double v, double lo, double hi) { return std::min(std::max(v, lo), hi); }

int64_t ClampInt(int64_t v, int64_t lo, int64_t hi) {
  return std::min(std::max(v, lo), hi);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return 0.5 * (lo + hi);
}

double RelativeErrorPercent(double estimate, double truth) {
  double denom = std::max(std::abs(truth), 1.0);
  return 100.0 * std::abs(estimate - truth) / denom;
}

}  // namespace dpstarj
