#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dpstarj {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kTimeLimit:
      return "TimeLimit";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kRateLimited:
      return "RateLimited";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {

void FatalCheck(const char* expr, const char* msg, const char* file, int line) {
  std::fprintf(stderr, "DPSTARJ_CHECK failed at %s:%d: (%s) %s\n", file, line, expr,
               msg);
  std::abort();
}

}  // namespace internal
}  // namespace dpstarj
