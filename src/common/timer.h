// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <chrono>

namespace dpstarj {

/// \brief Simple wall-clock stopwatch used by the experiment harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Cooperative deadline: long-running baselines poll Expired() and bail
/// out with Status::TimeLimit, reproducing the paper's "Over time limit" rows.
class Deadline {
 public:
  /// A deadline `seconds` from now. Non-positive seconds means "no limit".
  explicit Deadline(double seconds) : limit_seconds_(seconds) {}

  /// Returns true if the limit is set and has elapsed.
  bool Expired() const {
    return limit_seconds_ > 0 && timer_.ElapsedSeconds() > limit_seconds_;
  }

  /// The configured limit in seconds (<= 0 means unlimited).
  double limit_seconds() const { return limit_seconds_; }

 private:
  Timer timer_;
  double limit_seconds_;
};

}  // namespace dpstarj
