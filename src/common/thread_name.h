// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Kernel-visible thread names. The sampling profiler (obs/prof/sampler) uses
// the name of the interrupted thread as the root frame of every folded stack,
// so naming the pool/handler threads is what turns a capture into
// "dpsj-eng-0;...;Scan 812" instead of a wall of anonymous stacks. Names also
// show up in /proc/<pid>/task/*/comm, top -H and core dumps.

#pragma once

namespace dpstarj::common {

/// \brief Names the calling thread, truncated to the kernel's 15-character
/// limit. Best-effort no-op off Linux.
void SetCurrentThreadName(const char* name);

/// Names the calling thread "<prefix><index>" (e.g. "dpsj-eng-0").
void SetCurrentThreadName(const char* prefix, int index);

}  // namespace dpstarj::common
