// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dpstarj {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);
/// Upper-cases ASCII.
std::string ToUpper(std::string_view s);

/// True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Current wall-clock time as "2026-08-08T12:00:00.123456Z" (UTC,
/// microsecond precision) — the timestamp format shared by the Logger and
/// the JSON-lines access log.
std::string UtcTimestamp();

/// Parses a signed integer; returns false on any non-numeric content.
bool ParseInt64(std::string_view s, int64_t* out);
/// Parses a double; returns false on any non-numeric content.
bool ParseDouble(std::string_view s, double* out);

}  // namespace dpstarj
