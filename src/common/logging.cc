#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/string_util.h"

namespace dpstarj {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::GetLevel() { return static_cast<LogLevel>(g_level.load()); }

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  // Assemble the whole line first and emit it with one fwrite: stdio stream
  // operations are atomic w.r.t. each other (POSIX), so concurrent
  // LogMessage destructors can't interleave partial lines the way a
  // multi-argument fprintf's internal chunks could on some libcs.
  std::string line;
  line.reserve(48 + msg.size());
  line += UtcTimestamp();
  line += " [dpstarj ";
  line += LevelName(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace dpstarj
