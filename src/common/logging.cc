#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace dpstarj {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::GetLevel() { return static_cast<LogLevel>(g_level.load()); }

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::fprintf(stderr, "[dpstarj %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace dpstarj
