// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <sstream>
#include <string>

namespace dpstarj {

/// \brief Log severities, lowest to highest.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal stderr logger. Controlled by SetLogLevel (default kWarning,
/// so the library is silent in normal operation; benches raise it).
class Logger {
 public:
  /// Sets the global threshold; messages below it are dropped.
  static void SetLevel(LogLevel level);
  /// Returns the global threshold.
  static LogLevel GetLevel();
  /// Emits one line to stderr if `level` passes the threshold.
  static void Log(LogLevel level, const std::string& msg);
};

namespace internal {
/// RAII line builder used by the DPSTARJ_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

/// Usage: DPSTARJ_LOG(kInfo) << "generated " << n << " rows";
#define DPSTARJ_LOG(severity)                                           \
  ::dpstarj::internal::LogMessage(::dpstarj::LogLevel::severity).stream()

}  // namespace dpstarj
