// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Star-join workloads (§5.3): a set of star-join queries answered together.
// For Workload Decomposition each query is viewed as one row of a predicate
// matrix per dimension attribute (one-hot over that attribute's domain).

#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "query/star_query.h"
#include "storage/domain.h"

namespace dpstarj::query {

/// \brief A dimension attribute participating in a workload, with its domain.
struct DimensionAttribute {
  std::string table;
  std::string column;
  storage::AttributeDomain domain;
};

/// \brief A named list of star-join queries sharing a fact table.
struct Workload {
  std::string name;
  std::vector<StarJoinQuery> queries;

  int size() const { return static_cast<int>(queries.size()); }
};

/// \brief One-hot encodes the workload over `attributes` (paper §5.3).
///
/// Returns one l×m_i 0/1 matrix per attribute, where row q is the indicator
/// of query q's predicate on that attribute (all-ones when the query has no
/// predicate there, since an absent predicate selects the full domain).
/// Fails if a query carries a predicate on a table.column not listed in
/// `attributes`, or two predicates on the same attribute.
Result<std::vector<linalg::Matrix>> BuildPredicateMatrices(
    const Workload& workload, const std::vector<DimensionAttribute>& attributes);

/// \brief Inverse of BuildPredicateMatrices for interval rows: builds a
/// workload of counting queries over `fact_table` from per-attribute 0/1
/// matrices whose rows are contiguous intervals (points included).
/// Non-interval rows are rejected (the predicate model is point/range only).
Result<Workload> WorkloadFromMatrices(const std::string& name,
                                      const std::string& fact_table,
                                      const std::vector<DimensionAttribute>& attributes,
                                      const std::vector<linalg::Matrix>& matrices);

}  // namespace dpstarj::query
