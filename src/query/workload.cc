#include "query/workload.h"

#include "common/string_util.h"

namespace dpstarj::query {

Result<std::vector<linalg::Matrix>> BuildPredicateMatrices(
    const Workload& workload, const std::vector<DimensionAttribute>& attributes) {
  int l = workload.size();
  std::vector<linalg::Matrix> out;
  out.reserve(attributes.size());
  for (const auto& attr : attributes) {
    out.emplace_back(l, static_cast<int>(attr.domain.size()));
  }

  for (int q = 0; q < l; ++q) {
    const StarJoinQuery& query = workload.queries[static_cast<size_t>(q)];
    // Default: no predicate on an attribute selects its whole domain.
    for (size_t a = 0; a < attributes.size(); ++a) {
      for (int c = 0; c < out[a].cols(); ++c) out[a].At(q, c) = 1.0;
    }
    std::vector<bool> seen(attributes.size(), false);
    for (const auto& pred : query.predicates) {
      int which = -1;
      for (size_t a = 0; a < attributes.size(); ++a) {
        if (attributes[a].table == pred.table() &&
            attributes[a].column == pred.column()) {
          which = static_cast<int>(a);
          break;
        }
      }
      if (which < 0) {
        return Status::InvalidArgument(
            Format("query %d has predicate on %s.%s which is not a workload attribute",
                   q, pred.table().c_str(), pred.column().c_str()));
      }
      if (seen[static_cast<size_t>(which)]) {
        return Status::InvalidArgument(
            Format("query %d has two predicates on %s.%s", q, pred.table().c_str(),
                   pred.column().c_str()));
      }
      seen[static_cast<size_t>(which)] = true;
      DPSTARJ_ASSIGN_OR_RETURN(
          BoundPredicate bound,
          BindPredicate(pred, attributes[static_cast<size_t>(which)].domain, -1));
      auto& m = out[static_cast<size_t>(which)];
      for (int c = 0; c < m.cols(); ++c) {
        m.At(q, c) = bound.Matches(c) ? 1.0 : 0.0;
      }
    }
  }
  return out;
}

Result<Workload> WorkloadFromMatrices(const std::string& name,
                                      const std::string& fact_table,
                                      const std::vector<DimensionAttribute>& attributes,
                                      const std::vector<linalg::Matrix>& matrices) {
  if (attributes.size() != matrices.size()) {
    return Status::InvalidArgument("attributes/matrices arity mismatch");
  }
  if (matrices.empty()) return Status::InvalidArgument("empty workload spec");
  int l = matrices[0].rows();
  for (size_t a = 0; a < matrices.size(); ++a) {
    if (matrices[a].rows() != l) {
      return Status::InvalidArgument("all predicate matrices must have equal rows");
    }
    if (matrices[a].cols() != static_cast<int>(attributes[a].domain.size())) {
      return Status::InvalidArgument(
          Format("matrix %zu has %d cols but domain size is %lld", a,
                 matrices[a].cols(),
                 static_cast<long long>(attributes[a].domain.size())));
    }
  }

  Workload w;
  w.name = name;
  for (int q = 0; q < l; ++q) {
    StarJoinQuery query;
    query.name = Format("%s[%d]", name.c_str(), q);
    query.fact_table = fact_table;
    query.aggregate = AggregateKind::kCount;
    for (size_t a = 0; a < attributes.size(); ++a) {
      const auto& m = matrices[a];
      // Extract the selected interval; verify contiguity.
      int lo = -1, hi = -1;
      for (int c = 0; c < m.cols(); ++c) {
        double v = m.At(q, c);
        if (v != 0.0 && v != 1.0) {
          return Status::InvalidArgument(
              Format("matrix %zu row %d is not 0/1", a, q));
        }
        if (v == 1.0) {
          if (lo < 0) lo = c;
          hi = c;
        }
      }
      if (lo < 0) {
        return Status::InvalidArgument(
            Format("matrix %zu row %d selects nothing", a, q));
      }
      for (int c = lo; c <= hi; ++c) {
        if (m.At(q, c) != 1.0) {
          return Status::NotSupported(
              Format("matrix %zu row %d is not an interval", a, q));
        }
      }
      query.joined_tables.push_back(attributes[a].table);
      bool full_domain = (lo == 0 && hi == m.cols() - 1);
      if (!full_domain) {
        if (lo == hi) {
          query.predicates.push_back(
              Predicate::PointIndex(attributes[a].table, attributes[a].column, lo));
        } else {
          query.predicates.push_back(Predicate::RangeIndex(
              attributes[a].table, attributes[a].column, lo, hi));
        }
      }
    }
    w.queries.push_back(std::move(query));
  }
  return w;
}

}  // namespace dpstarj::query
