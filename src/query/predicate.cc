#include "query/predicate.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpstarj::query {

Predicate Predicate::Point(std::string table, std::string column, storage::Value v) {
  Predicate p;
  p.kind_ = PredicateKind::kPoint;
  p.table_ = std::move(table);
  p.column_ = std::move(column);
  p.lo_value_ = v;
  p.hi_value_ = std::move(v);
  return p;
}

Predicate Predicate::Range(std::string table, std::string column, storage::Value lo,
                           storage::Value hi) {
  Predicate p;
  p.kind_ = PredicateKind::kRange;
  p.table_ = std::move(table);
  p.column_ = std::move(column);
  p.lo_value_ = std::move(lo);
  p.hi_value_ = std::move(hi);
  return p;
}

Predicate Predicate::AtMost(std::string table, std::string column, storage::Value v,
                            bool strict) {
  Predicate p;
  p.kind_ = PredicateKind::kRange;
  p.table_ = std::move(table);
  p.column_ = std::move(column);
  p.has_lo_ = false;
  p.hi_value_ = std::move(v);
  p.hi_strict_ = strict;
  return p;
}

Predicate Predicate::AtLeast(std::string table, std::string column, storage::Value v,
                             bool strict) {
  Predicate p;
  p.kind_ = PredicateKind::kRange;
  p.table_ = std::move(table);
  p.column_ = std::move(column);
  p.has_hi_ = false;
  p.lo_value_ = std::move(v);
  p.lo_strict_ = strict;
  return p;
}

Predicate Predicate::PointPair(std::string table, std::string column,
                               storage::Value v1, storage::Value v2) {
  Predicate p;
  p.kind_ = PredicateKind::kRange;
  p.table_ = std::move(table);
  p.column_ = std::move(column);
  p.or_pair_ = true;
  p.lo_value_ = std::move(v1);
  p.hi_value_ = std::move(v2);
  return p;
}

Predicate Predicate::PointIndex(std::string table, std::string column, int64_t v) {
  Predicate p;
  p.kind_ = PredicateKind::kPoint;
  p.table_ = std::move(table);
  p.column_ = std::move(column);
  p.index_space_ = true;
  p.lo_index_ = v;
  p.hi_index_ = v;
  return p;
}

Predicate Predicate::RangeIndex(std::string table, std::string column, int64_t lo,
                                int64_t hi) {
  Predicate p;
  p.kind_ = PredicateKind::kRange;
  p.table_ = std::move(table);
  p.column_ = std::move(column);
  p.index_space_ = true;
  p.lo_index_ = lo;
  p.hi_index_ = hi;
  return p;
}

std::string Predicate::ToString() const {
  std::string lhs = table_ + "." + column_;
  if (index_space_) {
    if (kind_ == PredicateKind::kPoint) {
      return Format("%s = #%lld", lhs.c_str(), static_cast<long long>(lo_index_));
    }
    return Format("%s in #[%lld, %lld]", lhs.c_str(),
                  static_cast<long long>(lo_index_), static_cast<long long>(hi_index_));
  }
  if (or_pair_) {
    return Format("(%s = %s OR %s = %s)", lhs.c_str(), lo_value_.ToString().c_str(),
                  lhs.c_str(), hi_value_.ToString().c_str());
  }
  if (kind_ == PredicateKind::kPoint) {
    return Format("%s = %s", lhs.c_str(), lo_value_.ToString().c_str());
  }
  if (!has_lo_) {
    return Format("%s %s %s", lhs.c_str(), hi_strict_ ? "<" : "<=",
                  hi_value_.ToString().c_str());
  }
  if (!has_hi_) {
    return Format("%s %s %s", lhs.c_str(), lo_strict_ ? ">" : ">=",
                  lo_value_.ToString().c_str());
  }
  return Format("%s in [%s, %s]", lhs.c_str(), lo_value_.ToString().c_str(),
                hi_value_.ToString().c_str());
}

std::string BoundPredicate::ToString() const {
  return Format("%s.%s in #[%lld, %lld] of %s", table.c_str(), column.c_str(),
                static_cast<long long>(lo_index), static_cast<long long>(hi_index),
                domain.ToString().c_str());
}

Result<BoundPredicate> BindPredicate(const Predicate& p,
                                     const storage::AttributeDomain& domain,
                                     int column_index) {
  BoundPredicate b;
  b.table = p.table();
  b.column = p.column();
  b.column_index = column_index;
  b.domain = domain;
  b.kind = p.kind();

  if (p.index_space()) {
    if (p.lo_index() < 0 || p.hi_index() >= domain.size() ||
        p.lo_index() > p.hi_index()) {
      return Status::InvalidArgument(
          Format("index-space predicate %s out of domain size %lld",
                 p.ToString().c_str(), static_cast<long long>(domain.size())));
    }
    b.lo_index = p.lo_index();
    b.hi_index = p.hi_index();
    return b;
  }

  if (p.is_or_pair()) {
    DPSTARJ_ASSIGN_OR_RETURN(int64_t i1, domain.IndexOf(p.lo_value()));
    DPSTARJ_ASSIGN_OR_RETURN(int64_t i2, domain.IndexOf(p.hi_value()));
    int64_t lo = std::min(i1, i2);
    int64_t hi = std::max(i1, i2);
    if (hi - lo != 1) {
      return Status::NotSupported(
          Format("OR pair %s: values are not adjacent in the domain "
                 "(indices %lld, %lld); only adjacent disjunctions normalize to a range",
                 p.ToString().c_str(), static_cast<long long>(i1),
                 static_cast<long long>(i2)));
    }
    b.kind = PredicateKind::kRange;
    b.lo_index = lo;
    b.hi_index = hi;
    return b;
  }

  if (p.kind() == PredicateKind::kPoint) {
    DPSTARJ_ASSIGN_OR_RETURN(b.lo_index, domain.IndexOf(p.point_value()));
    b.hi_index = b.lo_index;
    return b;
  }

  // Range with possibly open / strict endpoints.
  if (p.has_lo()) {
    DPSTARJ_ASSIGN_OR_RETURN(b.lo_index, domain.IndexOf(p.lo_value()));
    if (p.lo_strict()) ++b.lo_index;
  } else {
    b.lo_index = 0;
  }
  if (p.has_hi()) {
    DPSTARJ_ASSIGN_OR_RETURN(b.hi_index, domain.IndexOf(p.hi_value()));
    if (p.hi_strict()) --b.hi_index;
  } else {
    b.hi_index = domain.size() - 1;
  }
  if (b.lo_index > b.hi_index) {
    return Status::InvalidArgument(
        Format("empty range in predicate %s", p.ToString().c_str()));
  }
  return b;
}

}  // namespace dpstarj::query
