#include "query/star_query.h"

#include "common/string_util.h"

namespace dpstarj::query {

const char* AggregateKindToString(AggregateKind k) {
  switch (k) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kAvg:
      return "AVG";
  }
  return "?";
}

bool StarJoinQuery::Touches(const std::string& t) const {
  if (t == fact_table) return true;
  for (const auto& d : joined_tables) {
    if (d == t) return true;
  }
  return false;
}

std::string StarJoinQuery::ToString() const {
  std::string out = "SELECT ";
  if (aggregate == AggregateKind::kCount) {
    out += "count(*)";
  } else {
    out += aggregate == AggregateKind::kAvg ? "avg(" : "sum(";
    for (size_t i = 0; i < measure_terms.size(); ++i) {
      const auto& t = measure_terms[i];
      if (i == 0) {
        if (t.coefficient < 0) out += "-";
      } else {
        out += t.coefficient < 0 ? " - " : " + ";
      }
      out += t.column;
    }
    out += ")";
  }
  out += " FROM " + fact_table;
  for (const auto& d : joined_tables) out += ", " + d;
  if (!predicates.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i) out += " AND ";
      out += predicates[i].ToString();
    }
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    std::vector<std::string> keys;
    keys.reserve(group_by.size());
    for (const auto& g : group_by) keys.push_back(g.ToString());
    out += Join(keys, ", ");
  }
  return out;
}

}  // namespace dpstarj::query
