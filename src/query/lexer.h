// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Tokenizer for the restricted star-join SQL dialect (the SELECT template of
// §3.1 and the SSB/TPC-H queries in the paper's appendix).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dpstarj::query {

/// Token categories.
enum class TokenKind : int {
  kIdentifier,   ///< bare word: table/column names and keywords
  kIntLiteral,   ///< 1993
  kNumLiteral,   ///< 3.5
  kStringLiteral,///< 'ASIA' (quotes stripped)
  kSymbol,       ///< one of ( ) , . ; * + - = < > <= >= !=
  kEnd,          ///< end of input
};

/// \brief One token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< identifier text, symbol spelling, or literal body
  int64_t int_value = 0;
  double num_value = 0.0;
  int position = 0;     ///< byte offset in the input

  /// True if this is an identifier equal (case-insensitively) to `kw`.
  bool IsKeyword(const std::string& kw) const;
  /// True if this is the given symbol.
  bool IsSymbol(const std::string& s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// \brief Tokenizes `sql`. Comments are not supported; unterminated strings
/// and unknown characters produce ParseError with the offending offset.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dpstarj::query
