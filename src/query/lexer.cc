#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace dpstarj::query {

bool Token::IsKeyword(const std::string& kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, int pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = pos;
    out.push_back(std::move(t));
  };

  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    int pos = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                                sql[j] == '_' || sql[j] == '#')) {
        ++j;
      }
      push(TokenKind::kIdentifier, sql.substr(i, j - i), pos);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < sql.size() && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                                sql[j] == '.')) {
        if (sql[j] == '.') {
          // "1993." followed by identifier would be odd; only treat as float
          // when a digit follows.
          if (j + 1 < sql.size() && std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
            is_float = true;
          } else {
            break;
          }
        }
        ++j;
      }
      std::string text = sql.substr(i, j - i);
      Token t;
      t.position = pos;
      t.text = text;
      if (is_float) {
        t.kind = TokenKind::kNumLiteral;
        if (!ParseDouble(text, &t.num_value)) {
          return Status::ParseError(Format("bad numeric literal '%s' at %d",
                                           text.c_str(), pos));
        }
      } else {
        t.kind = TokenKind::kIntLiteral;
        if (!ParseInt64(text, &t.int_value)) {
          return Status::ParseError(Format("bad integer literal '%s' at %d",
                                           text.c_str(), pos));
        }
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string body;
      bool closed = false;
      while (j < sql.size()) {
        if (sql[j] == '\'') {
          if (j + 1 < sql.size() && sql[j + 1] == '\'') {  // escaped quote
            body += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        body += sql[j];
        ++j;
      }
      if (!closed) {
        return Status::ParseError(Format("unterminated string literal at %d", pos));
      }
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(body);
      t.position = pos;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Two-char symbols first.
    if (i + 1 < sql.size()) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        push(TokenKind::kSymbol, two == "<>" ? "!=" : two, pos);
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(': case ')': case ',': case '.': case ';': case '*': case '+':
      case '-': case '=': case '<': case '>':
        push(TokenKind::kSymbol, std::string(1, c), pos);
        ++i;
        break;
      default:
        return Status::ParseError(Format("unexpected character '%c' at %d", c, pos));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(sql.size());
  out.push_back(std::move(end));
  return out;
}

}  // namespace dpstarj::query
