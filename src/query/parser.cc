#include "query/parser.h"

#include "common/string_util.h"
#include "query/lexer.h"

namespace dpstarj::query {

namespace {

/// Token-stream cursor with helpers; all Parse* methods return Status and
/// write into the ParsedQuery being built.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Run() {
    ParsedQuery q;
    DPSTARJ_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    DPSTARJ_RETURN_NOT_OK(ParseSelectList(&q));
    DPSTARJ_RETURN_NOT_OK(ExpectKeyword("FROM"));
    DPSTARJ_RETURN_NOT_OK(ParseFromList(&q));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      DPSTARJ_RETURN_NOT_OK(ParseWhere(&q));
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      DPSTARJ_RETURN_NOT_OK(ExpectKeyword("BY"));
      DPSTARJ_RETURN_NOT_OK(ParseColumnRefList(&q.group_by));
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      DPSTARJ_RETURN_NOT_OK(ExpectKeyword("BY"));
      DPSTARJ_RETURN_NOT_OK(ParseColumnRefList(&q.order_by));
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return q;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Err(const std::string& what) const {
    return Status::ParseError(
        Format("%s near position %d (token '%s')", what.c_str(), Peek().position,
               Peek().text.c_str()));
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!Peek().IsKeyword(kw)) return Err("expected " + kw);
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& s) {
    if (!Peek().IsSymbol(s)) return Err("expected '" + s + "'");
    Advance();
    return Status::OK();
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().kind != TokenKind::kIdentifier) return Err("expected Table.column");
    ColumnRef ref;
    ref.table = Advance().text;
    DPSTARJ_RETURN_NOT_OK(ExpectSymbol("."));
    if (Peek().kind != TokenKind::kIdentifier) return Err("expected column name");
    ref.column = Advance().text;
    return ref;
  }

  Status ParseColumnRefList(std::vector<ColumnRef>* out) {
    while (true) {
      DPSTARJ_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      out->push_back(std::move(ref));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseSelectList(ParsedQuery* q) {
    bool have_aggregate = false;
    while (true) {
      if (Peek().IsKeyword("COUNT")) {
        if (have_aggregate) return Err("multiple aggregates are not supported");
        Advance();
        DPSTARJ_RETURN_NOT_OK(ExpectSymbol("("));
        DPSTARJ_RETURN_NOT_OK(ExpectSymbol("*"));
        DPSTARJ_RETURN_NOT_OK(ExpectSymbol(")"));
        q->aggregate = AggregateKind::kCount;
        have_aggregate = true;
      } else if (Peek().IsKeyword("SUM") || Peek().IsKeyword("AVG")) {
        if (have_aggregate) return Err("multiple aggregates are not supported");
        bool is_avg = Peek().IsKeyword("AVG");
        Advance();
        DPSTARJ_RETURN_NOT_OK(ExpectSymbol("("));
        DPSTARJ_RETURN_NOT_OK(ParseMeasureExpr(q));
        DPSTARJ_RETURN_NOT_OK(ExpectSymbol(")"));
        q->aggregate = is_avg ? AggregateKind::kAvg : AggregateKind::kSum;
        have_aggregate = true;
      } else {
        DPSTARJ_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        q->select_columns.push_back(std::move(ref));
      }
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (!have_aggregate) return Err("SELECT list must contain count(*) or sum(...)");
    return Status::OK();
  }

  // col | col + col | col - col ... ; columns may be qualified or bare (bare
  // columns are resolved against the fact table by the binder, which is how
  // SSB writes sum(Lineorder.revenue - Lineorder.supplycost)).
  Status ParseMeasureExpr(ParsedQuery* q) {
    double sign = 1.0;
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) return Err("expected measure column");
      std::string first = Advance().text;
      std::string column = first;
      if (Peek().IsSymbol(".")) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier) return Err("expected column name");
        column = first + "." + Advance().text;
      }
      q->measure_terms.push_back({column, sign});
      if (Peek().IsSymbol("+")) {
        sign = 1.0;
        Advance();
      } else if (Peek().IsSymbol("-")) {
        sign = -1.0;
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status ParseFromList(ParsedQuery* q) {
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) return Err("expected table name");
      q->from_tables.push_back(Advance().text);
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Result<storage::Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return storage::Value(t.int_value);
      case TokenKind::kNumLiteral:
        Advance();
        return storage::Value(t.num_value);
      case TokenKind::kStringLiteral:
        Advance();
        return storage::Value(t.text);
      default:
        return Err("expected literal");
    }
  }

  // One comparison: either a join equality (ref = ref) or a predicate.
  // Writes into q. `out_pred_index` receives the predicate slot or -1.
  Status ParseComparison(ParsedQuery* q, int* out_pred_index) {
    *out_pred_index = -1;
    DPSTARJ_ASSIGN_OR_RETURN(ColumnRef lhs, ParseColumnRef());

    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      DPSTARJ_ASSIGN_OR_RETURN(storage::Value lo, ParseLiteral());
      DPSTARJ_RETURN_NOT_OK(ExpectKeyword("AND"));
      DPSTARJ_ASSIGN_OR_RETURN(storage::Value hi, ParseLiteral());
      q->predicates.push_back(
          Predicate::Range(lhs.table, lhs.column, std::move(lo), std::move(hi)));
      *out_pred_index = static_cast<int>(q->predicates.size()) - 1;
      return Status::OK();
    }

    if (!(Peek().kind == TokenKind::kSymbol)) return Err("expected comparison operator");
    std::string op = Advance().text;
    if (op != "=" && op != "<" && op != "<=" && op != ">" && op != ">=") {
      return Err("unsupported operator '" + op + "'");
    }

    // ref op ref → join equality (only '=' allowed).
    if (Peek().kind == TokenKind::kIdentifier && Peek(1).IsSymbol(".")) {
      DPSTARJ_ASSIGN_OR_RETURN(ColumnRef rhs, ParseColumnRef());
      if (op != "=") return Err("non-equality joins are not supported");
      q->joins.push_back({std::move(lhs), std::move(rhs)});
      return Status::OK();
    }

    DPSTARJ_ASSIGN_OR_RETURN(storage::Value lit, ParseLiteral());
    Predicate p = Predicate::Point("", "", storage::Value());
    if (op == "=") {
      p = Predicate::Point(lhs.table, lhs.column, std::move(lit));
    } else if (op == "<") {
      p = Predicate::AtMost(lhs.table, lhs.column, std::move(lit), /*strict=*/true);
    } else if (op == "<=") {
      p = Predicate::AtMost(lhs.table, lhs.column, std::move(lit), /*strict=*/false);
    } else if (op == ">") {
      p = Predicate::AtLeast(lhs.table, lhs.column, std::move(lit), /*strict=*/true);
    } else {  // ">="
      p = Predicate::AtLeast(lhs.table, lhs.column, std::move(lit), /*strict=*/false);
    }
    q->predicates.push_back(std::move(p));
    *out_pred_index = static_cast<int>(q->predicates.size()) - 1;
    return Status::OK();
  }

  Status ParseWhere(ParsedQuery* q) {
    while (true) {
      int pred_index = -1;
      DPSTARJ_RETURN_NOT_OK(ParseComparison(q, &pred_index));

      // Optional OR chain: only between two point predicates on one attribute
      // (the SSB MFGR#1/MFGR#2 idiom).
      while (Peek().IsKeyword("OR")) {
        Advance();
        if (pred_index < 0) {
          return Err("OR must follow a filter predicate, not a join condition");
        }
        int rhs_index = -1;
        DPSTARJ_RETURN_NOT_OK(ParseComparison(q, &rhs_index));
        if (rhs_index < 0) return Err("OR must join two filter predicates");
        Predicate& a = q->predicates[static_cast<size_t>(pred_index)];
        Predicate& b = q->predicates[static_cast<size_t>(rhs_index)];
        if (a.table() != b.table() || a.column() != b.column()) {
          return Status::NotSupported(
              "OR is only supported between predicates on the same attribute");
        }
        if (a.kind() != PredicateKind::kPoint || b.kind() != PredicateKind::kPoint) {
          return Status::NotSupported(
              "OR is only supported between point predicates");
        }
        Predicate merged = Predicate::PointPair(a.table(), a.column(), a.point_value(),
                                                b.point_value());
        q->predicates[static_cast<size_t>(pred_index)] = std::move(merged);
        q->predicates.erase(q->predicates.begin() + rhs_index);
      }

      if (!Peek().IsKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseStarJoinSql(const std::string& sql) {
  DPSTARJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace dpstarj::query
