// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Canonical cache keys for bound star-join queries. Two submissions that
// request the same distribution over answers — regardless of SQL formatting,
// predicate order, join-list order, or how a range was spelled (`a < 3` vs
// `a <= 2`) — must map to the same key, because the service's AnswerCache
// replays a stored noisy answer for free under DP and a spurious key
// difference silently doubles the privacy spend.
//
// Canonicalization therefore runs on the *bound* query, where predicates have
// been resolved to closed index ranges over their attribute domains and
// tables/columns have been verified against the catalog.

#pragma once

#include <string>

#include "query/binder.h"

namespace dpstarj::query {

/// \brief Deterministic canonical key of a bound star-join query.
///
/// Normalizations applied:
///  * joined dimension tables are sorted (join conjunction is commutative);
///  * predicates are rendered in index space (`Cust.region[0,0]`) and sorted
///    (predicate conjunction is commutative; value-space spellings that bind
///    to the same range collapse);
///  * SUM/AVG measure terms are sorted by their rendered
///    "coefficient*column" form (term addition is commutative);
///  * GROUP BY keys keep their declared order (it fixes the rendered group
///    labels of the answer) while ORDER BY and the display name are dropped
///    (they do not change the answer distribution).
std::string CanonicalKey(const BoundQuery& bound);

/// \brief Canonical key of the (query, ε) pair — what the noisy-answer cache
/// indexes on: a replay is only exchangeable with a fresh draw at the same ε.
std::string CanonicalKey(const BoundQuery& bound, double epsilon);

/// \brief CanonicalKey(bound, epsilon) extended with the mutation epoch of
/// every bound table (fact first, dimensions in bound order). Streaming
/// ingest bumps a table's epoch per accepted batch, so keying the noisy-
/// answer cache on this makes each epoch a fresh DP release: an answer drawn
/// before an append is never replayed after it (and the new epoch's first
/// submission spends budget and draws fresh noise). Table epochs are atomic,
/// so this is safe to call without holding the service's table locks.
std::string CanonicalEpochKey(const BoundQuery& bound, double epsilon);

}  // namespace dpstarj::query
