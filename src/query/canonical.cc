#include "query/canonical.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace dpstarj::query {

std::string CanonicalKey(const BoundQuery& bound) {
  const StarJoinQuery& q = bound.query;
  std::string key = "fact=" + q.fact_table;

  key += ";agg=";
  key += AggregateKindToString(q.aggregate);
  if (!q.measure_terms.empty()) {
    std::vector<std::string> terms;
    terms.reserve(q.measure_terms.size());
    for (const auto& t : q.measure_terms) {
      terms.push_back(Format("%.17g*%s", t.coefficient, t.column.c_str()));
    }
    std::sort(terms.begin(), terms.end());
    key += "(" + Join(terms, "+") + ")";
  }

  std::vector<std::string> dims = q.joined_tables;
  std::sort(dims.begin(), dims.end());
  key += ";join=" + Join(dims, ",");

  std::vector<std::string> preds;
  for (const auto& d : bound.dims) {
    for (const auto& p : d.predicates) {
      preds.push_back(Format("%s.%s[%lld,%lld]", p.table.c_str(), p.column.c_str(),
                             static_cast<long long>(p.lo_index),
                             static_cast<long long>(p.hi_index)));
    }
  }
  std::sort(preds.begin(), preds.end());
  key += ";pred=" + Join(preds, "&");

  if (!q.group_by.empty()) {
    std::vector<std::string> keys;
    keys.reserve(q.group_by.size());
    for (const auto& g : q.group_by) keys.push_back(g.ToString());
    key += ";group=" + Join(keys, ",");
  }
  return key;
}

std::string CanonicalKey(const BoundQuery& bound, double epsilon) {
  return CanonicalKey(bound) + Format(";eps=%.17g", epsilon);
}

std::string CanonicalEpochKey(const BoundQuery& bound, double epsilon) {
  std::string key = CanonicalKey(bound, epsilon);
  key += Format(";epoch=%llu",
                static_cast<unsigned long long>(bound.fact->version()));
  for (const auto& d : bound.dims) {
    key += Format(",%llu", static_cast<unsigned long long>(d.dim->version()));
  }
  return key;
}

}  // namespace dpstarj::query
