#include "query/binder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace dpstarj::query {

int BoundQuery::NumPredicates() const {
  int n = 0;
  for (const auto& d : dims) n += static_cast<int>(d.predicates.size());
  return n;
}

std::vector<const BoundPredicate*> BoundQuery::Predicates() const {
  std::vector<const BoundPredicate*> out;
  for (const auto& d : dims) {
    for (const auto& p : d.predicates) out.push_back(&p);
  }
  return out;
}

Result<StarJoinQuery> Binder::Resolve(const ParsedQuery& parsed) const {
  if (parsed.from_tables.empty()) {
    return Status::InvalidArgument("FROM list is empty");
  }
  for (const auto& t : parsed.from_tables) {
    if (!catalog_->HasTable(t)) {
      return Status::NotFound(Format("unknown table '%s'", t.c_str()));
    }
  }

  // The fact table is the FROM table that references every other FROM table
  // through a registered foreign key.
  std::string fact;
  for (const auto& cand : parsed.from_tables) {
    bool references_all = true;
    for (const auto& other : parsed.from_tables) {
      if (other == cand) continue;
      if (!catalog_->ForeignKeyBetween(cand, other).ok()) {
        references_all = false;
        break;
      }
    }
    if (references_all && parsed.from_tables.size() > 1) {
      fact = cand;
      break;
    }
  }
  if (parsed.from_tables.size() == 1) fact = parsed.from_tables[0];
  if (fact.empty()) {
    return Status::InvalidArgument(
        "no FROM table references all others via foreign keys; not a star join");
  }

  // Every join equality must match a registered foreign key between the fact
  // table and a dimension (in either spelled order).
  for (const auto& j : parsed.joins) {
    const ColumnRef* fside = nullptr;
    const ColumnRef* dside = nullptr;
    if (j.left.table == fact) {
      fside = &j.left;
      dside = &j.right;
    } else if (j.right.table == fact) {
      fside = &j.right;
      dside = &j.left;
    } else {
      return Status::InvalidArgument(
          Format("join '%s' does not involve the fact table '%s'",
                 j.ToString().c_str(), fact.c_str()));
    }
    DPSTARJ_ASSIGN_OR_RETURN(storage::ForeignKey fk,
                             catalog_->ForeignKeyBetween(fact, dside->table));
    if (fk.fact_column != fside->column || fk.dim_column != dside->column) {
      return Status::InvalidArgument(
          Format("join '%s' does not match the registered foreign key %s",
                 j.ToString().c_str(), fk.ToString().c_str()));
    }
  }

  StarJoinQuery q;
  q.fact_table = fact;
  for (const auto& t : parsed.from_tables) {
    if (t != fact) q.joined_tables.push_back(t);
  }
  q.aggregate = parsed.aggregate;
  q.predicates = parsed.predicates;
  q.group_by = parsed.group_by;
  q.order_by = parsed.order_by;

  // Measures: accept "col" or "Fact.col".
  for (const auto& term : parsed.measure_terms) {
    MeasureTerm t = term;
    auto dot = t.column.find('.');
    if (dot != std::string::npos) {
      std::string table = t.column.substr(0, dot);
      if (table != fact) {
        return Status::InvalidArgument(
            Format("measure '%s' must come from the fact table '%s'",
                   t.column.c_str(), fact.c_str()));
      }
      t.column = t.column.substr(dot + 1);
    }
    q.measure_terms.push_back(std::move(t));
  }

  // Bare SELECT columns must reappear in GROUP BY.
  for (const auto& ref : parsed.select_columns) {
    if (std::find(q.group_by.begin(), q.group_by.end(), ref) == q.group_by.end()) {
      return Status::InvalidArgument(
          Format("SELECT column %s is not in GROUP BY", ref.ToString().c_str()));
    }
  }
  return q;
}

Result<BoundQuery> Binder::Bind(const StarJoinQuery& q) const {
  BoundQuery bound;
  bound.query = q;
  DPSTARJ_ASSIGN_OR_RETURN(bound.fact, catalog_->GetTable(q.fact_table));

  // Dimensions: resolve FK columns.
  std::unordered_map<std::string, int> dim_index;
  for (const auto& dname : q.joined_tables) {
    if (dname == q.fact_table) {
      return Status::InvalidArgument("fact table cannot join itself in a star join");
    }
    if (dim_index.count(dname) != 0) {
      return Status::InvalidArgument(Format("table '%s' joined twice", dname.c_str()));
    }
    DimBinding d;
    d.table = dname;
    DPSTARJ_ASSIGN_OR_RETURN(d.dim, catalog_->GetTable(dname));
    DPSTARJ_ASSIGN_OR_RETURN(storage::ForeignKey fk,
                             catalog_->ForeignKeyBetween(q.fact_table, dname));
    DPSTARJ_ASSIGN_OR_RETURN(int ffk, bound.fact->schema().FieldIndex(fk.fact_column));
    DPSTARJ_ASSIGN_OR_RETURN(int dpk, d.dim->schema().FieldIndex(fk.dim_column));
    d.fact_fk_col = ffk;
    d.dim_pk_col = dpk;
    if (bound.fact->schema().field(ffk).type != storage::ValueType::kInt64 ||
        d.dim->schema().field(dpk).type != storage::ValueType::kInt64) {
      return Status::NotSupported(
          Format("join keys must be int64 columns (%s)", fk.ToString().c_str()));
    }
    dim_index.emplace(dname, static_cast<int>(bound.dims.size()));
    bound.dims.push_back(std::move(d));
  }

  // Predicates: at most one per dimension, on attributes with domains.
  for (const auto& p : q.predicates) {
    if (p.table() == q.fact_table) {
      return Status::NotSupported(
          Format("predicate %s is on the fact table; the star-join model places "
                 "predicates on dimension attributes only",
                 p.ToString().c_str()));
    }
    auto it = dim_index.find(p.table());
    if (it == dim_index.end()) {
      return Status::InvalidArgument(
          Format("predicate %s references un-joined table", p.ToString().c_str()));
    }
    DimBinding& d = bound.dims[static_cast<size_t>(it->second)];
    for (const auto& existing : d.predicates) {
      if (existing.column == p.column()) {
        return Status::NotSupported(
            Format("two predicates on attribute %s.%s; the model allows one "
                   "predicate per dimension attribute",
                   p.table().c_str(), p.column().c_str()));
      }
    }
    DPSTARJ_ASSIGN_OR_RETURN(int col, d.dim->schema().FieldIndex(p.column()));
    const storage::Field& field = d.dim->schema().field(col);
    if (!field.domain.has_value()) {
      return Status::InvalidArgument(
          Format("attribute %s.%s has no declared finite domain; DP predicates "
                 "require one",
                 p.table().c_str(), p.column().c_str()));
    }
    DPSTARJ_ASSIGN_OR_RETURN(BoundPredicate bp, BindPredicate(p, *field.domain, col));
    d.predicates.push_back(std::move(bp));
  }

  // Measures.
  if (q.aggregate != AggregateKind::kCount && q.measure_terms.empty()) {
    return Status::InvalidArgument(
        Format("%s query without measure terms", AggregateKindToString(q.aggregate)));
  }
  if (q.aggregate == AggregateKind::kCount && !q.measure_terms.empty()) {
    return Status::InvalidArgument("COUNT query with measure terms");
  }
  for (const auto& term : q.measure_terms) {
    DPSTARJ_ASSIGN_OR_RETURN(int col, bound.fact->schema().FieldIndex(term.column));
    storage::ValueType t = bound.fact->schema().field(col).type;
    if (t == storage::ValueType::kString) {
      return Status::InvalidArgument(
          Format("measure '%s' must be numeric", term.column.c_str()));
    }
    bound.measure_cols.emplace_back(col, term.coefficient);
  }

  // Group-by keys.
  for (const auto& ref : q.group_by) {
    if (ref.table == q.fact_table) {
      DPSTARJ_ASSIGN_OR_RETURN(int col, bound.fact->schema().FieldIndex(ref.column));
      bound.fact_group_by_cols.push_back(col);
      bound.group_key_layout.emplace_back(-1, col);
      continue;
    }
    auto it = dim_index.find(ref.table);
    if (it == dim_index.end()) {
      return Status::InvalidArgument(
          Format("GROUP BY key %s references un-joined table", ref.ToString().c_str()));
    }
    DimBinding& d = bound.dims[static_cast<size_t>(it->second)];
    DPSTARJ_ASSIGN_OR_RETURN(int col, d.dim->schema().FieldIndex(ref.column));
    d.group_by_cols.push_back(col);
    bound.group_key_layout.emplace_back(it->second, col);
  }

  // Order-by keys must be group keys (we only honour ordering on them).
  for (const auto& ref : q.order_by) {
    if (std::find(q.group_by.begin(), q.group_by.end(), ref) == q.group_by.end()) {
      return Status::NotSupported(
          Format("ORDER BY %s must appear in GROUP BY", ref.ToString().c_str()));
    }
  }
  return bound;
}

Result<BoundQuery> Binder::BindSql(const std::string& sql) const {
  DPSTARJ_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseStarJoinSql(sql));
  DPSTARJ_ASSIGN_OR_RETURN(StarJoinQuery q, Resolve(parsed));
  return Bind(q);
}

}  // namespace dpstarj::query
