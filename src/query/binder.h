// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Binding: resolving a StarJoinQuery (or parsed SQL) against a Catalog into
// an executable plan — table handles, foreign-key column indexes, bound
// predicates in domain-index space, measure columns, group-by layout.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "query/parser.h"
#include "query/star_query.h"
#include "storage/catalog.h"

namespace dpstarj::query {

/// \brief One dimension table's role in a bound star-join query.
struct DimBinding {
  std::string table;
  std::shared_ptr<storage::Table> dim;
  int fact_fk_col = -1;  ///< foreign-key column index in the fact table
  int dim_pk_col = -1;   ///< primary-key column index in the dimension table
  /// Filter predicates on this dimension, bound to indexes. Star queries have
  /// at most one per dimension attribute; flattened snowflakes may carry
  /// several (one per absorbed hierarchy level).
  std::vector<BoundPredicate> predicates;
  /// Dimension columns used as GROUP BY keys.
  std::vector<int> group_by_cols;
};

/// \brief A fully resolved star-join query, ready for execution.
struct BoundQuery {
  StarJoinQuery query;  ///< the source query (copied)
  std::shared_ptr<storage::Table> fact;
  std::vector<DimBinding> dims;
  /// SUM measure as (fact column index, coefficient) pairs; empty for COUNT.
  std::vector<std::pair<int, double>> measure_cols;
  /// Fact-table GROUP BY columns.
  std::vector<int> fact_group_by_cols;
  /// Declared group-key order: (dim index into dims, or -1 for fact; column
  /// index within that table).
  std::vector<std::pair<int, int>> group_key_layout;

  /// Number of bound predicates across dimensions.
  int NumPredicates() const;
  /// Pointers to the bound predicates, in dims order.
  std::vector<const BoundPredicate*> Predicates() const;
};

/// \brief Resolves queries against a catalog.
class Binder {
 public:
  /// The catalog must outlive the binder.
  explicit Binder(const storage::Catalog* catalog) : catalog_(catalog) {}

  /// \brief Semantic analysis of parsed SQL: identifies the fact table (the
  /// FROM table referencing all others via registered foreign keys), checks
  /// every join equality against the catalog, resolves measures, and returns
  /// a StarJoinQuery.
  Result<StarJoinQuery> Resolve(const ParsedQuery& parsed) const;

  /// \brief Binds a star-join query: validates tables/joins/predicates/
  /// measures/group keys and produces the executable plan. Join keys must be
  /// int64 columns; predicates require declared attribute domains.
  Result<BoundQuery> Bind(const StarJoinQuery& q) const;

  /// Convenience: parse + resolve + bind.
  Result<BoundQuery> BindSql(const std::string& sql) const;

 private:
  const storage::Catalog* catalog_;
};

}  // namespace dpstarj::query
