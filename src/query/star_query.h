// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The star-join query model (Definition 1.1 / §3.1): a fact table joined to
// dimension tables over foreign keys, filter predicates on dimension
// attributes, an aggregate over the fact table, optional GROUP BY.

#pragma once

#include <string>
#include <vector>

#include "query/predicate.h"

namespace dpstarj::query {

/// COUNT(*), SUM(linear measure expression), or AVG(linear measure
/// expression). Under the Predicate Mechanism AVG costs no extra budget: the
/// same noisy-predicate draw yields both the SUM and the COUNT, and their
/// ratio is post-processing (§3.1 lists AVG in the query template).
enum class AggregateKind : int { kCount = 0, kSum = 1, kAvg = 2 };

/// Returns "COUNT", "SUM" or "AVG".
const char* AggregateKindToString(AggregateKind k);

/// \brief One term of a SUM measure: coefficient · fact_column. SUM(revenue)
/// is a single term; SUM(revenue - supplycost) (SSB Qg4) is two terms with
/// coefficients +1 and -1.
struct MeasureTerm {
  std::string column;
  double coefficient = 1.0;
};

/// \brief A `table.column` reference (group-by / order-by keys).
struct ColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }
  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
};

/// \brief A star-join query.
///
/// Invariants enforced by the binder (see binder.h):
///  * `fact_table` references every table in `joined_tables` via a registered
///    foreign key;
///  * at most one predicate per dimension table (the paper's model — the
///    per-dimension predicate φ_{a_i}), each on an attribute with a declared
///    finite domain;
///  * measures are numeric columns of the fact table;
///  * group-by keys are attributes of joined tables or the fact table.
struct StarJoinQuery {
  /// Display name, e.g. "Qc2". Optional.
  std::string name;
  /// The fact table R0.
  std::string fact_table;
  /// Dimension tables joined by the query (superset of predicate tables).
  std::vector<std::string> joined_tables;
  /// COUNT or SUM.
  AggregateKind aggregate = AggregateKind::kCount;
  /// SUM measure (empty for COUNT).
  std::vector<MeasureTerm> measure_terms;
  /// Per-dimension filter predicates (φ_{a_1} ∧ ... ∧ φ_{a_n}).
  std::vector<Predicate> predicates;
  /// GROUP BY keys (empty for scalar aggregates).
  std::vector<ColumnRef> group_by;
  /// ORDER BY keys; validated but only affects result ordering.
  std::vector<ColumnRef> order_by;

  /// Number of predicate-bearing dimension tables (the `n` in ε_i = ε/n).
  int NumPredicates() const { return static_cast<int>(predicates.size()); }

  /// True if `t` is the fact table or a joined dimension.
  bool Touches(const std::string& t) const;

  /// Debug SQL-ish rendering.
  std::string ToString() const;
};

}  // namespace dpstarj::query
