// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Filter predicates over dimension attributes — the objects the Predicate
// Mechanism perturbs. A predicate is either a point constraint (a = v) or a
// range constraint (a ∈ [l, r]) over a finite ordered domain (paper §3.1).
// SQL comparisons (<, <=, >, >=, BETWEEN, adjacent OR pairs) all normalize to
// these two kinds at bind time.

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/domain.h"
#include "storage/value.h"

namespace dpstarj::query {

/// Point (`a = v`) or range (`a ∈ [l, r]`, both ends inclusive).
enum class PredicateKind : int { kPoint = 0, kRange = 1 };

/// \brief An unbound predicate on `table.column`.
///
/// Addressing modes:
///  * value space — constants are storage::Values resolved against the
///    attribute's declared domain at bind time (the SQL path). Value-space
///    ranges may leave one end open (comparisons like `a < v`), which binds
///    to the corresponding domain boundary;
///  * index space — constants are ordinal positions in [0, m); used by
///    workload matrices (W1/W2) that are specified directly over domains.
class Predicate {
 public:
  /// a = v (value space).
  static Predicate Point(std::string table, std::string column, storage::Value v);
  /// a ∈ [lo, hi] (value space, inclusive).
  static Predicate Range(std::string table, std::string column, storage::Value lo,
                         storage::Value hi);
  /// a < v (strict) or a <= v; the lower end binds to the domain minimum.
  static Predicate AtMost(std::string table, std::string column, storage::Value v,
                          bool strict);
  /// a > v (strict) or a >= v; the upper end binds to the domain maximum.
  static Predicate AtLeast(std::string table, std::string column, storage::Value v,
                           bool strict);
  /// `a = v1 OR a = v2`; valid only if v1 and v2 are adjacent in the domain
  /// (checked at bind time), normalizing to a width-2 range. This is how SSB
  /// Qc4/Qs4/Qg4 express the MFGR#1/MFGR#2 disjunction.
  static Predicate PointPair(std::string table, std::string column, storage::Value v1,
                             storage::Value v2);
  /// a = index `v` (index space).
  static Predicate PointIndex(std::string table, std::string column, int64_t v);
  /// a ∈ [lo, hi] by domain index (index space, inclusive).
  static Predicate RangeIndex(std::string table, std::string column, int64_t lo,
                              int64_t hi);

  PredicateKind kind() const { return kind_; }
  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }
  bool index_space() const { return index_space_; }
  bool is_or_pair() const { return or_pair_; }

  /// Value-space accessors (valid when !index_space()).
  const storage::Value& point_value() const { return lo_value_; }
  const storage::Value& lo_value() const { return lo_value_; }
  const storage::Value& hi_value() const { return hi_value_; }
  bool has_lo() const { return has_lo_; }
  bool has_hi() const { return has_hi_; }
  bool lo_strict() const { return lo_strict_; }
  bool hi_strict() const { return hi_strict_; }

  /// Index-space accessors (valid when index_space()).
  int64_t lo_index() const { return lo_index_; }
  int64_t hi_index() const { return hi_index_; }

  /// Debug rendering, e.g. "Customer.region = 'ASIA'".
  std::string ToString() const;

 private:
  Predicate() = default;

  PredicateKind kind_ = PredicateKind::kPoint;
  std::string table_;
  std::string column_;
  bool index_space_ = false;
  bool or_pair_ = false;
  storage::Value lo_value_;
  storage::Value hi_value_;
  bool has_lo_ = true;
  bool has_hi_ = true;
  bool lo_strict_ = false;
  bool hi_strict_ = false;
  int64_t lo_index_ = 0;
  int64_t hi_index_ = 0;
};

/// \brief A predicate resolved against its attribute's domain: constraints
/// live in index space [0, m). Produced by the binder; consumed by the
/// executor and by PMA (which perturbs lo/hi indices).
struct BoundPredicate {
  std::string table;
  std::string column;
  int column_index = -1;  ///< position of `column` in the dimension table
  storage::AttributeDomain domain;
  PredicateKind kind = PredicateKind::kPoint;
  int64_t lo_index = 0;  ///< inclusive
  int64_t hi_index = 0;  ///< inclusive; == lo_index for points

  /// True iff a cell with this domain index satisfies the constraint.
  bool Matches(int64_t index) const { return index >= lo_index && index <= hi_index; }

  /// Number of selected cells.
  int64_t Width() const { return hi_index - lo_index + 1; }

  /// Debug rendering with resolved indices.
  std::string ToString() const;
};

/// \brief Resolves a predicate against a domain, checking that its constants
/// belong to the domain. `column_index` is the column's position in the
/// dimension table.
Result<BoundPredicate> BindPredicate(const Predicate& p,
                                     const storage::AttributeDomain& domain,
                                     int column_index);

}  // namespace dpstarj::query
