// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Recursive-descent parser for the star-join SQL template (paper §3.1):
//
//   SELECT count(*) | sum(col [± col]) [, Table.col ...]
//   FROM t0, t1, ...
//   WHERE <join-equalities and filter predicates joined by AND,
//          with OR allowed between two point predicates on one attribute>
//   [GROUP BY Table.col, ...]
//   [ORDER BY Table.col, ...] [;]
//
// The parser is purely syntactic: it does not know which table is the fact
// table — the binder (binder.h) resolves that against the Catalog's foreign
// keys. Comparisons <, <=, >, >=, BETWEEN..AND.. normalize to predicates at
// bind time.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "query/star_query.h"

namespace dpstarj::query {

/// \brief An equality between two column references (a join condition).
struct JoinCondition {
  ColumnRef left;
  ColumnRef right;

  std::string ToString() const {
    return left.ToString() + " = " + right.ToString();
  }
};

/// \brief Parser output: the syntactic pieces of one star-join query.
struct ParsedQuery {
  /// FROM list, in order.
  std::vector<std::string> from_tables;
  /// Equalities between column refs.
  std::vector<JoinCondition> joins;
  /// Filter predicates (value-space, unbound).
  std::vector<Predicate> predicates;
  /// COUNT or SUM.
  AggregateKind aggregate = AggregateKind::kCount;
  /// SUM terms.
  std::vector<MeasureTerm> measure_terms;
  /// Bare column refs in the SELECT list (must reappear in GROUP BY).
  std::vector<ColumnRef> select_columns;
  /// GROUP BY keys.
  std::vector<ColumnRef> group_by;
  /// ORDER BY keys.
  std::vector<ColumnRef> order_by;
};

/// \brief Parses one star-join SELECT statement.
Result<ParsedQuery> ParseStarJoinSql(const std::string& sql);

}  // namespace dpstarj::query
