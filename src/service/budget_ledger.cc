#include "service/budget_ledger.h"

#include <cmath>

#include "common/string_util.h"

namespace dpstarj::service {

BudgetLedger::BudgetLedger(std::optional<double> default_tenant_budget)
    : default_budget_(default_tenant_budget) {
  if (default_budget_.has_value()) {
    DPSTARJ_CHECK(*default_budget_ > 0.0, "default tenant budget must be positive");
  }
}

Status BudgetLedger::RegisterTenant(const std::string& tenant, double total_epsilon) {
  if (tenant.empty()) return Status::InvalidArgument("tenant name must be non-empty");
  // Finite is as important as positive: this is reachable from the network
  // (POST /v1/tenants), and a NaN/∞ total (e.g. JSON "1e999" overflowing to
  // +inf) would mint an unbounded privacy budget and break every later
  // remaining/spent comparison.
  if (!std::isfinite(total_epsilon) || total_epsilon <= 0.0) {
    return Status::InvalidArgument("tenant budget must be positive and finite");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (accounts_.find(tenant) != accounts_.end()) {
    return Status::AlreadyExists(Format("tenant '%s' is already registered",
                                        tenant.c_str()));
  }
  accounts_.emplace(tenant, AccountState(total_epsilon));
  return Status::OK();
}

bool BudgetLedger::HasTenant(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return accounts_.find(tenant) != accounts_.end();
}

Result<BudgetLedger::AccountState*> BudgetLedger::FindLocked(
    const std::string& tenant) {
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    if (!default_budget_.has_value()) {
      return Status::NotFound(Format("tenant '%s' is not registered", tenant.c_str()));
    }
    if (tenant.empty()) {
      return Status::InvalidArgument("tenant name must be non-empty");
    }
    it = accounts_.emplace(tenant, AccountState(*default_budget_)).first;
  }
  return &it->second;
}

Status BudgetLedger::Spend(const std::string& tenant, double epsilon) {
  std::lock_guard<std::mutex> lock(mu_);
  DPSTARJ_ASSIGN_OR_RETURN(AccountState * account, FindLocked(tenant));
  Status st = account->budget.Spend(epsilon);
  if (st.ok()) {
    ++account->spends;
  } else if (st.code() == StatusCode::kBudgetExhausted) {
    ++account->refusals;
  }
  return st;
}

Status BudgetLedger::Refund(const std::string& tenant, double epsilon) {
  std::lock_guard<std::mutex> lock(mu_);
  DPSTARJ_ASSIGN_OR_RETURN(AccountState * account, FindLocked(tenant));
  Status st = account->budget.Refund(epsilon);
  if (st.ok()) ++account->refunds;
  return st;
}

Result<double> BudgetLedger::Remaining(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return Status::NotFound(Format("tenant '%s' is not registered", tenant.c_str()));
  }
  return it->second.budget.remaining();
}

Result<double> BudgetLedger::Spent(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return Status::NotFound(Format("tenant '%s' is not registered", tenant.c_str()));
  }
  return it->second.budget.spent();
}

TenantAccount BudgetLedger::MakeAccount(const std::string& tenant,
                                        const AccountState& state) {
  TenantAccount account;
  account.tenant = tenant;
  account.total = state.budget.total();
  account.spent = state.budget.spent();
  account.remaining = state.budget.remaining();
  account.spends = state.spends;
  account.refunds = state.refunds;
  account.refusals = state.refusals;
  return account;
}

Result<TenantAccount> BudgetLedger::Account(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return Status::NotFound(Format("tenant '%s' is not registered", tenant.c_str()));
  }
  return MakeAccount(tenant, it->second);
}

std::vector<TenantAccount> BudgetLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantAccount> out;
  out.reserve(accounts_.size());
  for (const auto& [name, state] : accounts_) {
    out.push_back(MakeAccount(name, state));
  }
  return out;
}

std::string BudgetLedger::ToString() const {
  std::string out;
  for (const auto& acc : Snapshot()) {
    out += Format("%-16s spent %.4g of %.4g (%.4g left)\n", acc.tenant.c_str(),
                  acc.spent, acc.total, acc.remaining);
  }
  return out;
}

}  // namespace dpstarj::service
