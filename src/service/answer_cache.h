// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// AnswerCache — a noisy-answer replay cache. Differential privacy is closed
// under post-processing, so re-releasing a *stored* noisy answer for the same
// (canonical query, ε) costs zero additional privacy budget: the adversary
// learns nothing they did not already learn from the first release. Replay is
// therefore the cheapest accuracy-per-ε win a DP service has, and the cache
// tracks exactly how much ε it saved.
//
// The cache is a mutex-guarded LRU keyed by query::CanonicalKey(bound, ε).
// Keys must include ε: an answer drawn at ε=0.1 is not exchangeable with a
// fresh draw at ε=1.0.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/query_result.h"

namespace dpstarj::service {

/// \brief Thread-safe LRU cache of noisy answers with replay accounting.
class AnswerCache {
 public:
  /// Hit/miss/ε accounting, as returned by GetStats().
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    /// Total privacy budget saved by replays (Σ ε over hits).
    double epsilon_saved = 0.0;

    /// hits / (hits + misses), 0 when empty.
    double HitRate() const {
      uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
    }
  };

  /// A capacity of 0 disables the cache (every lookup misses, inserts drop).
  explicit AnswerCache(size_t capacity);

  /// \brief Returns the stored noisy answer for `key`, bumping it to
  /// most-recently-used, or nullopt on a miss. `epsilon` is the budget the
  /// replay saves; it is added to Stats::epsilon_saved on a hit.
  std::optional<exec::QueryResult> Lookup(const std::string& key, double epsilon);

  /// Stores `answer` under `key`, evicting the least-recently-used entry when
  /// full. Re-inserting an existing key refreshes its recency (the stored
  /// answer is kept: the first release is the one that was paid for).
  void Insert(const std::string& key, const exec::QueryResult& answer);

  /// Drops every entry (stats are preserved).
  void Clear();

  /// Current entry count.
  size_t size() const;
  /// Configured capacity.
  size_t capacity() const { return capacity_; }

  /// A consistent snapshot of the accounting counters.
  Stats GetStats() const;

 private:
  using Entry = std::pair<std::string, exec::QueryResult>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace dpstarj::service
