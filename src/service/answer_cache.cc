#include "service/answer_cache.h"

namespace dpstarj::service {

AnswerCache::AnswerCache(size_t capacity) : capacity_(capacity) {}

std::optional<exec::QueryResult> AnswerCache::Lookup(const std::string& key,
                                                     double epsilon) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  stats_.epsilon_saved += epsilon;
  return it->second->second;
}

void AnswerCache::Insert(const std::string& key, const exec::QueryResult& answer) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Keep the stored answer: replaying the already-paid-for release is the
    // whole point; racing workers that both computed the miss agree to keep
    // the first insert.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, answer);
  index_[key] = lru_.begin();
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

AnswerCache::Stats AnswerCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dpstarj::service
