#include "service/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/string_util.h"

namespace dpstarj::service {

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The bucket capacity actually in force: an unset burst defaults to one
/// second's worth of tokens, and any burst is floored at one whole token —
/// a bucket that can never hold a full token would refuse every admission
/// forever while its Retry-After hint promises otherwise.
double EffectiveBurst(const TenantLimits& limits) {
  if (limits.burst > 0.0) return std::max(1.0, limits.burst);
  return std::max(1.0, limits.rate_qps);
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : defaults_(options.defaults),
      clock_(options.clock ? std::move(options.clock) : SteadyNowSeconds) {}

void AdmissionController::SetTenantLimits(const std::string& tenant,
                                          TenantLimits limits) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  state.override_limits = limits;
  if (state.bucket_primed) {
    // The drained level carries across the update (clamped to the new
    // capacity) — re-priming at full burst would let a throttled tenant
    // reset its own bucket just by re-submitting its limits through
    // POST /v1/tenants. A raised rate refills it quickly anyway.
    state.tokens = std::min(state.tokens, EffectiveBurst(limits));
  }
}

const TenantLimits& AdmissionController::EffectiveLimits(
    const TenantState& state) const {
  return state.override_limits.has_value() ? *state.override_limits : defaults_;
}

TenantLimits AdmissionController::LimitsFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? defaults_ : EffectiveLimits(it->second);
}

void AdmissionController::RefillLocked(TenantState* state,
                                       const TenantLimits& limits,
                                       double now) const {
  const double burst = EffectiveBurst(limits);
  if (!state->bucket_primed) {
    // First touch (or limits changed): a full bucket, so a fresh tenant can
    // burst immediately instead of trickling in from zero.
    state->tokens = burst;
    state->last_refill = now;
    state->bucket_primed = true;
    return;
  }
  const double elapsed = std::max(0.0, now - state->last_refill);
  state->tokens = std::min(burst, state->tokens + elapsed * limits.rate_qps);
  state->last_refill = now;
}

AdmissionDecision AdmissionController::TryAdmit(const std::string& tenant,
                                                int count) {
  const double now = Now();
  // A batch admits all-or-nothing at its full query count; a non-positive
  // count is treated as one so a buggy caller degrades to the single-query
  // contract instead of admitting for free.
  const double need = static_cast<double>(std::max(count, 1));
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  const TenantLimits& limits = EffectiveLimits(state);

  if (limits.rate_qps > 0.0) {
    RefillLocked(&state, limits, now);
    if (state.tokens < need) {
      ++state.rate_limited;
      ++total_rate_limited_;
      AdmissionDecision decision;
      decision.status = Status::RateLimited(
          Format("tenant '%s' is over its rate limit (%.3g queries/sec)",
                 tenant.c_str(), limits.rate_qps));
      decision.denial = AdmissionDenial::kRateLimited;
      // Honest even when the batch exceeds the bucket capacity: the hint
      // then points past any plausible refill, and the caller's only real
      // options are splitting the batch or raising the tenant's burst.
      decision.retry_after_seconds = (need - state.tokens) / limits.rate_qps;
      return decision;
    }
  }
  if (limits.max_in_flight > 0 &&
      state.in_flight + std::max(count, 1) > limits.max_in_flight) {
    ++state.capped;
    ++total_capped_;
    AdmissionDecision decision;
    decision.status = Status::RateLimited(
        Format("tenant '%s' already has %d queries in flight (cap %d)",
               tenant.c_str(), state.in_flight, limits.max_in_flight));
    decision.denial = AdmissionDenial::kInFlightCap;
    // A slot frees when one of the tenant's queries finishes; admission
    // cannot predict when, so hint the smallest honest backoff.
    decision.retry_after_seconds = 1.0;
    return decision;
  }

  // Both checks passed: consume the tokens and the slots atomically (same
  // lock acquisition), so concurrent admissions can never over-admit.
  if (limits.rate_qps > 0.0) state.tokens -= need;
  state.in_flight += std::max(count, 1);
  state.admitted += static_cast<uint64_t>(std::max(count, 1));
  AdmissionDecision decision;
  decision.status = Status::OK();
  return decision;
}

void AdmissionController::Release(const std::string& tenant, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.in_flight = std::max(0, it->second.in_flight - std::max(count, 1));
}

void AdmissionController::ReleaseAndForget(const std::string& tenant,
                                           int count) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  state.in_flight = std::max(0, state.in_flight - std::max(count, 1));
  // Evict the lazily-created state when nothing pins it: no operator
  // override and no other in-flight admission. The caller invokes this for
  // tenants the ledger does not know — without it, every attacker-invented
  // tenant name on POST /v1/query would leave a permanent map entry.
  if (!state.override_limits.has_value() && state.in_flight == 0) {
    tenants_.erase(it);
  }
}

double AdmissionController::RetryAfterSeconds(const std::string& tenant) const {
  const double now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0.0;
  TenantState& state = it->second;
  const TenantLimits& limits = EffectiveLimits(state);
  double hint = 0.0;
  if (limits.rate_qps > 0.0) {
    RefillLocked(&state, limits, now);
    if (state.tokens < 1.0) hint = (1.0 - state.tokens) / limits.rate_qps;
  }
  // Mirror TryAdmit's in-flight hint: while the tenant sits at its cap, a
  // retry needs one of its queries to finish first — never advise sooner
  // than the nominal 1s, even with a full token bucket.
  if (limits.max_in_flight > 0 && state.in_flight >= limits.max_in_flight) {
    hint = std::max(hint, 1.0);
  }
  return hint;
}

TenantAdmissionStats AdmissionController::MakeStats(const std::string& tenant,
                                                    const TenantState& state) {
  TenantAdmissionStats stats;
  stats.tenant = tenant;
  stats.admitted = state.admitted;
  stats.rate_limited = state.rate_limited;
  stats.capped = state.capped;
  stats.in_flight = state.in_flight;
  return stats;
}

TenantAdmissionStats AdmissionController::TenantStats(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantAdmissionStats stats;
    stats.tenant = tenant;
    return stats;
  }
  return MakeStats(tenant, it->second);
}

std::vector<TenantAdmissionStats> AdmissionController::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantAdmissionStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    out.push_back(MakeStats(name, state));
  }
  return out;
}

uint64_t AdmissionController::total_rate_limited() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rate_limited_;
}

uint64_t AdmissionController::total_capped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_capped_;
}

}  // namespace dpstarj::service
