// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// QueryService — the concurrent, multi-tenant front door of DP-starJ. It ties
// together the three service components:
//
//   EnginePool    N worker threads, each with its own DpStarJoin engine and
//                 RNG stream, fed by a bounded MPMC queue (backpressure);
//   BudgetLedger  per-tenant ε accounting with atomic spend/refund — a query
//                 is admitted by spending its ε up front, and the ε flows back
//                 on bind failure or cache replay;
//   AnswerCache   canonicalized-query → noisy-answer LRU: repeated queries
//                 replay the stored noisy result at zero additional ε
//                 (post-processing closure of DP).
//
// Typical use:
//   service::ServiceOptions opts;
//   opts.num_engines = 8;
//   service::QueryService svc(&catalog, opts);
//   svc.RegisterTenant("analytics", /*total_epsilon=*/2.0);
//   auto future = svc.Submit(sql, /*epsilon=*/0.1, "analytics");
//   ... // other submissions, from any thread
//   Result<exec::QueryResult> r = future.get();

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/dp_star_join.h"
#include "exec/plan_cache.h"
#include "exec/query_result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/admission.h"
#include "service/answer_cache.h"
#include "service/budget_ledger.h"
#include "service/engine_pool.h"
#include "storage/catalog.h"

namespace dpstarj::service {

/// \brief Configuration of the query service.
struct ServiceOptions {
  /// Worker threads == engines in the pool.
  int num_engines = 4;
  /// Bound of the work queue; Submit blocks when this many queries are
  /// waiting (admission backpressure).
  size_t queue_capacity = 256;
  /// Entries in the noisy-answer cache; 0 disables replay.
  size_t cache_capacity = 4096;
  /// When set, unknown tenants are auto-registered with this total ε on their
  /// first query; otherwise unregistered tenants are refused (NotFound).
  std::optional<double> default_tenant_budget;
  /// Scan threads each pool engine's executor may use for a single query.
  /// 0 (default) = auto: divide the hardware threads across the pool
  /// (max(1, hardware / num_engines)), so executor-level and pool-level
  /// parallelism compose by splitting the cores instead of oversubscribing
  /// them. Explicit values are clamped to the same bound. The resolved value
  /// overrides `engine.executor.exec_threads`.
  int exec_threads_per_engine = 0;
  /// Entries in the shared compiled-plan cache (see exec/plan_cache.h). All
  /// pool engines share one cache, so whichever engine first answers a query
  /// compiles its ScanPlan and every engine's later noisy executions of that
  /// query (fresh ε spends included — plans are ε-independent scaffolding)
  /// only rebuild predicate bitmaps. 0 disables plan caching.
  size_t plan_cache_capacity = exec::PlanCache::kDefaultCapacity;
  /// Engine configuration (seed, PMA tunables, workload strategy, executor
  /// tuning). The `total_budget` field is ignored — budgets belong to the
  /// ledger — `executor.exec_threads` is overridden as described above, and
  /// `plan_cache` (when null) is replaced by the service's shared cache.
  core::DpStarJoinOptions engine;
  /// Per-tenant fair admission: default token-bucket rate limits and
  /// in-flight caps (zeros disable each knob), overridable per tenant via
  /// SetTenantLimits. See service/admission.h.
  AdmissionOptions admission;
  /// Metrics registry the service's lifecycle counters live in. Pass the
  /// process-wide registry so the HTTP layer's /metrics endpoint exposes the
  /// service series alongside its own; when null the service creates a
  /// private one (reachable via metrics()).
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// \brief Aggregate service counters, as returned by Stats().
///
/// Stats() reads these from the service's MetricsRegistry counters, so this
/// snapshot and a /metrics scrape can never disagree (docs/operations.md
/// documents the field ↔ series mapping).
struct ServiceStats {
  /// Queries that reached a pool worker. Counted as the job's first action
  /// (not at enqueue) so the counter is monotonic — a refused dispatch never
  /// has to roll it back — while still never trailing `completed`.
  uint64_t submitted = 0;
  uint64_t completed = 0;         ///< answered (fresh or replayed)
  uint64_t failed = 0;            ///< admitted but failed (ε refunded)
  uint64_t rejected_budget = 0;   ///< refused at admission (ledger)
  uint64_t rejected_overload = 0; ///< TrySubmit refused on a full queue (429s)
  /// Refused by the tenant's own rate limit or in-flight cap (tenant-limited
  /// 429s — distinct from the global-overload rejected_overload).
  uint64_t rejected_tenant_limited = 0;
  uint64_t tenant_rate_limited = 0;  ///< ...of which: drained token bucket
  uint64_t tenant_capped = 0;        ///< ...of which: in-flight cap
  /// Workload batches that reached a pool worker (one per SubmitWorkload
  /// that dispatched; its queries also count into `submitted`).
  uint64_t workload_batches = 0;
  uint64_t workload_queries_fresh = 0;   ///< answered by the shared scan
  uint64_t workload_queries_cached = 0;  ///< replayed from the answer cache
  uint64_t workload_queries_failed = 0;  ///< per-query failures (ε refunded)
  /// Cache-hit queries excluded from the shared scan before batch formation
  /// (same value as workload_queries_cached; kept as its own series so the
  /// pre-pass satellite is directly observable).
  uint64_t workload_cache_skips = 0;
  /// Ingest batches accepted (one table-epoch bump each).
  uint64_t ingest_batches = 0;
  /// Fact rows appended across all accepted ingest batches.
  uint64_t ingest_rows = 0;
  AnswerCache::Stats cache;       ///< hit/miss/ε-saved accounting
  exec::PlanCache::Stats plan_cache;  ///< compiled-plan reuse accounting

  /// Human-readable one-stop summary.
  std::string ToString() const;
};

/// \brief One query of a workload batch submission.
struct WorkloadQuerySpec {
  std::string sql;
  double epsilon = 0.0;
};

/// \brief Outcome of one workload query. `status` is OK when `result` holds
/// the (noisy) answer; otherwise it carries that query's failure and the
/// query's ε was refunded. `cached` marks answers replayed from the answer
/// cache (also ε-refunded — replay is free under DP).
struct WorkloadQueryOutcome {
  Status status = Status::OK();
  exec::QueryResult result;
  bool cached = false;
};

/// \brief Result of one SubmitWorkload batch: per-query outcomes in
/// submission order, plus the shared-scan CSE receipts (exec.scans is the
/// number of fact sweeps the whole batch cost; exec.queries how many rode
/// them).
struct WorkloadOutcome {
  std::vector<WorkloadQueryOutcome> queries;
  exec::WorkloadExecStats exec;
};

/// \brief Receipt of one accepted ingest batch.
struct IngestOutcome {
  int64_t appended = 0;   ///< rows applied by this batch
  int64_t rows_total = 0; ///< table row count after the batch
  uint64_t version = 0;   ///< table epoch after the batch (bumped once)
};

/// \brief Thread-safe multi-tenant DP query service.
///
/// Lifecycle of one Submit(sql, ε, tenant):
///   0. fair admission — the tenant's token bucket and in-flight cap are
///      checked (refused with RateLimited before any ε is touched; the front
///      door maps it to a tenant-limited 429, distinct from global overload);
///   1. admission — the tenant's ε is spent in the ledger (refused with
///      BudgetExhausted/NotFound before any work is queued; an exhausted
///      tenant still gets cached replays, which cost nothing — a fresh
///      draw is what it can no longer afford);
///   2. a worker binds the SQL against the catalog; a bind failure refunds
///      the ε — the tenant only pays for answers;
///   3. the bound query is canonicalized; a cache hit replays the stored
///      noisy answer and refunds the ε (replay is free under DP);
///   4. a cache miss runs the Predicate Mechanism on the worker's engine and
///      stores the noisy answer for future replays.
///
/// All public methods may be called from any thread.
class QueryService {
 public:
  /// The catalog must outlive the service.
  explicit QueryService(const storage::Catalog* catalog, ServiceOptions options = {});

  /// Drains in-flight queries and stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a tenant with its lifetime privacy budget.
  Status RegisterTenant(const std::string& tenant, double total_epsilon);

  /// \brief Overrides `tenant`'s admission limits (rate, burst, in-flight
  /// cap); zero fields disable that knob for the tenant. Takes effect for the
  /// tenant's next submission.
  void SetTenantLimits(const std::string& tenant, TenantLimits limits);

  /// \brief Asynchronous submission; blocks only when the work queue is full.
  /// The returned future resolves to the noisy answer or the failure status.
  ///
  /// A non-null `trace` records the admission, ledger, queue-wait, bind,
  /// cache-lookup and engine stage spans. The trace must stay alive until the
  /// returned future resolves (the worker writes into it; future.get()
  /// publishes those writes to the caller).
  std::future<Result<exec::QueryResult>> Submit(const std::string& sql,
                                                double epsilon,
                                                const std::string& tenant,
                                                obs::Trace* trace = nullptr);

  /// \brief Non-blocking Submit: identical admission and answer path, but a
  /// full work queue resolves to Unavailable immediately (with the admission
  /// ε refunded) instead of waiting for queue space. This is the overload
  /// signal the HTTP front door (src/net/) maps to 429 + Retry-After, so a
  /// saturated pool sheds load instead of stalling the accept loop.
  std::future<Result<exec::QueryResult>> TrySubmit(const std::string& sql,
                                                   double epsilon,
                                                   const std::string& tenant,
                                                   obs::Trace* trace = nullptr);

  /// \brief Submits a whole workload batch for one tenant: one fair-admission
  /// decision debiting `queries.size()` tokens/slots, one ledger spend sized
  /// to the batch's total ε, one pool job that answers every query with a
  /// single shared fact sweep (cross-query predicate CSE, see
  /// exec/workload_plan.h). Cache-hit queries are peeled off before the scan
  /// and replayed at zero ε; per-query failures refund that query's ε and
  /// surface in its WorkloadQueryOutcome without failing the batch.
  ///
  /// The whole batch is refused (batch-level error in the future) only
  /// before any query runs: invalid arguments, tenant rate limit /
  /// in-flight cap, insufficient total budget, or a full work queue
  /// (non-blocking dispatch, like TrySubmit). The trace, if non-null, must
  /// stay alive until the future resolves.
  std::future<Result<WorkloadOutcome>> SubmitWorkload(
      const std::vector<WorkloadQuerySpec>& queries, const std::string& tenant,
      obs::Trace* trace = nullptr);

  /// Synchronous convenience wrapper: Submit + get.
  Result<exec::QueryResult> Answer(const std::string& sql, double epsilon,
                                   const std::string& tenant);

  /// \brief Appends `rows` to `table_name` as one atomic batch and bumps the
  /// table's epoch once. Runs on the calling thread (not the engine pool)
  /// under the table's exclusive write lock, serialized against every
  /// in-flight scan of that table; queries racing the batch observe either
  /// the old epoch or the new one, never a half-applied batch.
  ///
  /// The whole batch is validated against the schema before the lock is
  /// taken — a bad row refuses the batch with its index in the error and
  /// nothing applied (InvalidArgument; NotFound for unknown tables). Each
  /// accepted batch is a fresh DP release for the table: answer-cache keys
  /// carry the epoch, so post-append queries spend budget and draw fresh
  /// noise (docs/wire-protocol.md §POST /v1/ingest).
  ///
  /// A non-null `trace` records the apply span (obs::Stage::kIngestApply).
  Result<IngestOutcome> Ingest(const std::string& table_name,
                               const std::vector<std::vector<storage::Value>>& rows,
                               obs::Trace* trace = nullptr);

  /// Remaining ε of a tenant; NotFound for unknown tenants.
  Result<double> RemainingBudget(const std::string& tenant) const;

  /// A consistent snapshot of the service counters.
  ServiceStats Stats() const;

  /// The ledger (e.g. for account snapshots).
  const BudgetLedger& ledger() const { return ledger_; }
  /// The per-tenant admission controller (rate limits, in-flight caps).
  const AdmissionController& admission() const { return admission_; }
  /// The noisy-answer cache.
  const AnswerCache& cache() const { return cache_; }
  /// The shared compiled-plan cache (all pool engines point at it).
  const exec::PlanCache& plan_cache() const { return *plan_cache_; }
  /// The registry holding the service counters (never null; the one from
  /// ServiceOptions::metrics or the service's private one).
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  /// Jobs waiting in the pool queue right now (approximate under load) —
  /// exported as the dpstarj_queue_depth gauge at scrape time.
  size_t queue_depth() const { return pool_.queue_depth(); }
  /// Per-engine-worker busy/idle accounting — exported as
  /// dpstarj_worker_busy_seconds{pool="engine",...} at scrape time.
  std::vector<EnginePool::WorkerStats> worker_stats() const {
    return pool_.worker_stats();
  }

  /// Stops accepting queries, drains the queue, joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

 private:
  /// Shared Submit/TrySubmit path; `blocking` selects Dispatch vs TryDispatch.
  std::future<Result<exec::QueryResult>> SubmitInternal(const std::string& sql,
                                                        double epsilon,
                                                        const std::string& tenant,
                                                        bool blocking,
                                                        obs::Trace* trace);

  /// Runs on a pool worker: bind → cache lookup → answer → cache insert, with
  /// the refund protocol described above.
  Result<exec::QueryResult> Execute(core::DpStarJoin& engine, const std::string& sql,
                                    double epsilon, const std::string& tenant,
                                    obs::Trace* trace);

  /// Runs on a pool worker: bind every query, peel cache hits, answer the
  /// rest through the engine's shared-scan batch path, refunding each failed
  /// or replayed query's ε individually.
  Result<WorkloadOutcome> ExecuteWorkload(
      core::DpStarJoin& engine, const std::vector<WorkloadQuerySpec>& queries,
      const std::string& tenant, obs::Trace* trace);

  /// Wraps a synchronously-known failure in a ready future.
  static std::future<Result<exec::QueryResult>> FailedFuture(Status status);

  /// The lazily created lock of one served table (see table_locks_).
  std::shared_mutex* TableLock(const std::string& table_name);

  /// \brief Shared (reader) locks over the named tables, acquired in sorted
  /// name order (duplicates collapsed) so readers and the ingest writer
  /// never deadlock. Holders may scan row data; Ingest takes its table's
  /// lock exclusively. The locks release when the returned vector dies.
  std::vector<std::shared_lock<std::shared_mutex>> LockTablesShared(
      std::vector<std::string> names);

  /// Declared first: the counters below live in it.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  /// The catalog the pool engines bind against (ingest resolves tables here).
  const storage::Catalog* catalog_;
  /// One shared_mutex per served table, created on first touch: queries hold
  /// their tables shared for the scan, Ingest holds its table exclusive for
  /// the append + epoch bump (columns are std::vector — growth reallocates,
  /// so readers must never overlap a writer). The registry map itself is
  /// guarded by table_locks_mu_; the shared_mutexes are heap-allocated so
  /// rehashing never moves a lock somebody holds.
  std::mutex table_locks_mu_;
  std::unordered_map<std::string, std::unique_ptr<std::shared_mutex>>
      table_locks_;
  BudgetLedger ledger_;
  AnswerCache cache_;
  AdmissionController admission_;
  /// Declared before pool_: the engines capture it at construction.
  std::shared_ptr<exec::PlanCache> plan_cache_;
  EnginePool pool_;

  // Lifecycle counters, resolved once from metrics_ at construction. These
  // are the single source of truth: Stats() and /metrics both read them.
  obs::Counter* submitted_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* rejected_budget_;
  obs::Counter* rejected_overload_;
  obs::Counter* rejected_tenant_limited_;
  obs::Counter* workload_batches_;
  obs::Counter* workload_fresh_;
  obs::Counter* workload_cached_;
  obs::Counter* workload_failed_;
  obs::Counter* workload_cache_skips_;
  obs::Counter* ingest_batches_;
  obs::Counter* ingest_rows_;
  obs::Histogram* ingest_duration_;
  obs::Histogram* workload_batch_size_;
  /// Queue depth observed at every dispatch: the saturation distribution the
  /// scrape-time dpstarj_queue_depth gauge (one instant per scrape) misses.
  obs::Histogram* queue_depth_sampled_;
};

}  // namespace dpstarj::service
