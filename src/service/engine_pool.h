// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// EnginePool — a fixed pool of DpStarJoin engines behind a bounded MPMC work
// queue. `DpStarJoin` is documented not thread-safe (it owns one Rng); the
// pool gives each worker thread its own engine with an independent RNG stream
// (forked from the base seed), so N workers answer queries concurrently
// without sharing any mutable mechanism state. Producers block when the queue
// is full — bounded admission is the service's backpressure.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/dp_star_join.h"
#include "exec/query_result.h"
#include "storage/catalog.h"

namespace dpstarj::service {

/// \brief A pool of worker threads, each owning one DpStarJoin engine.
///
/// Work items are callables taking the worker's engine; their return value is
/// delivered through a std::future. Dispatch blocks while the queue is at
/// capacity. Shutdown drains every queued job before joining the workers, so
/// no future is ever abandoned.
class EnginePool {
 public:
  /// The unit of work: runs on a worker thread against that worker's engine.
  using Job = std::function<Result<exec::QueryResult>(core::DpStarJoin&)>;

  /// \brief Creates `num_engines` engines over `catalog`, with worker i's RNG
  /// stream forked deterministically from `engine_options.seed`. The options'
  /// `total_budget` is cleared: budget accounting belongs to the service's
  /// BudgetLedger, not to individual pool engines.
  EnginePool(const storage::Catalog* catalog, int num_engines, size_t queue_capacity,
             core::DpStarJoinOptions engine_options = {});

  /// Drains the queue and joins the workers.
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  /// \brief Enqueues `job`, blocking while the queue is full. Returns the
  /// future of the job's result, or an error without enqueuing when the pool
  /// has been shut down.
  Result<std::future<Result<exec::QueryResult>>> Dispatch(Job job);

  /// \brief Non-blocking Dispatch: never waits for queue space. A full queue
  /// returns Unavailable immediately — the admission signal the network front
  /// door converts into HTTP 429 instead of stalling its accept loop.
  Result<std::future<Result<exec::QueryResult>>> TryDispatch(Job job);

  /// Queued jobs not yet picked up by a worker (approximate under load).
  size_t queue_depth() const;

  /// \brief Stops accepting work, lets the workers drain the queue, and joins
  /// them. Idempotent; also called by the destructor.
  void Shutdown();

  /// Number of engines (== worker threads).
  int num_engines() const { return static_cast<int>(engines_.size()); }
  /// Queue capacity.
  size_t queue_capacity() const { return queue_capacity_; }

 private:
  struct Task {
    Job job;
    std::promise<Result<exec::QueryResult>> promise;
  };

  Result<std::future<Result<exec::QueryResult>>> DispatchInternal(Job job,
                                                                  bool blocking);

  void WorkerLoop(int engine_index);

  const size_t queue_capacity_;
  std::vector<std::unique_ptr<core::DpStarJoin>> engines_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
};

}  // namespace dpstarj::service
