// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// EnginePool — a fixed pool of DpStarJoin engines behind a bounded,
// tenant-fair work queue. `DpStarJoin` is documented not thread-safe (it owns
// one Rng); the pool gives each worker thread its own engine with an
// independent RNG stream (forked from the base seed), so N workers answer
// queries concurrently without sharing any mutable mechanism state.
//
// Dispatch order is fair across tenants: each tenant has its own FIFO
// sub-queue, and workers take the head of the next tenant's queue in
// round-robin order. A tenant that queues 100 jobs therefore delays a
// one-job tenant by at most one job's service time per engine, not by the
// whole backlog — the starvation the single global FIFO of PR 1 allowed.
// Jobs dispatched without a tenant share one anonymous sub-queue (exactly
// the old global-FIFO behavior when every caller does this).
//
// Capacity stays global: producers block (Dispatch) or are refused
// (TryDispatch → Unavailable) when `queue_capacity` jobs are waiting.
// Per-tenant admission caps are the AdmissionController's job
// (service/admission.h) — the pool only orders what was admitted.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/dp_star_join.h"
#include "exec/query_result.h"
#include "storage/catalog.h"

namespace dpstarj::service {

/// \brief A pool of worker threads, each owning one DpStarJoin engine.
///
/// Work items are callables taking the worker's engine; their return value is
/// delivered through a std::future. Dispatch blocks while the queue is at
/// capacity. Shutdown drains every queued job before joining the workers, so
/// no future is ever abandoned.
class EnginePool {
 public:
  /// The unit of work: runs on a worker thread against that worker's engine.
  using Job = std::function<Result<exec::QueryResult>(core::DpStarJoin&)>;

  /// \brief Creates `num_engines` engines over `catalog`, with worker i's RNG
  /// stream forked deterministically from `engine_options.seed`. The options'
  /// `total_budget` is cleared: budget accounting belongs to the service's
  /// BudgetLedger, not to individual pool engines.
  EnginePool(const storage::Catalog* catalog, int num_engines, size_t queue_capacity,
             core::DpStarJoinOptions engine_options = {});

  /// Drains the queue and joins the workers.
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  /// \brief Enqueues `job` on `tenant`'s FIFO sub-queue, blocking while the
  /// global queue is full. Returns the future of the job's result, or an
  /// error without enqueuing when the pool has been shut down.
  Result<std::future<Result<exec::QueryResult>>> Dispatch(
      Job job, const std::string& tenant = std::string());

  /// \brief Non-blocking Dispatch: never waits for queue space. A full queue
  /// returns Unavailable immediately — the admission signal the network front
  /// door converts into HTTP 429 instead of stalling its accept loop.
  Result<std::future<Result<exec::QueryResult>>> TryDispatch(
      Job job, const std::string& tenant = std::string());

  /// Queued jobs not yet picked up by a worker (approximate under load).
  size_t queue_depth() const;

  /// Queued jobs of one tenant (approximate under load).
  size_t queue_depth(const std::string& tenant) const;

  /// \brief Stops accepting work, lets the workers drain the queue, and joins
  /// them. Idempotent; also called by the destructor.
  void Shutdown();

  /// Number of engines (== worker threads).
  int num_engines() const { return static_cast<int>(engines_.size()); }
  /// Queue capacity.
  size_t queue_capacity() const { return queue_capacity_; }

  /// \brief One worker's lifetime utilization snapshot: busy_ns is time spent
  /// executing jobs (everything else the worker was parked on the queue),
  /// jobs the number executed. Worker i is the thread named "dpsj-eng-i".
  struct WorkerStats {
    uint64_t busy_ns = 0;
    uint64_t jobs = 0;
  };

  /// Snapshot of every worker's counters, index-aligned with engines.
  std::vector<WorkerStats> worker_stats() const;

 private:
  struct Task {
    Job job;
    std::promise<Result<exec::QueryResult>> promise;
  };

  // Cache-line-padded so each worker's updates stay on its own line.
  struct alignas(64) WorkerCounters {
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> jobs{0};
  };

  Result<std::future<Result<exec::QueryResult>>> DispatchInternal(
      Job job, const std::string& tenant, bool blocking);

  /// Pops the next task in round-robin tenant order. Requires mu_ held and
  /// queued_total_ > 0.
  Task PopNextLocked();

  void WorkerLoop(int engine_index);

  const size_t queue_capacity_;
  std::vector<std::unique_ptr<core::DpStarJoin>> engines_;
  std::vector<std::thread> workers_;
  /// Sized once in the constructor (before the workers spawn); index-aligned
  /// with workers_.
  std::vector<WorkerCounters> worker_counters_;

  mutable std::mutex mu_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  /// Per-tenant FIFO sub-queues; entries are erased when drained so the map
  /// only holds tenants with waiting work.
  std::map<std::string, std::deque<Task>> tenant_queues_;
  /// Round-robin service order: one entry per non-empty sub-queue.
  std::deque<std::string> active_tenants_;
  size_t queued_total_ = 0;
  bool shutdown_ = false;
};

}  // namespace dpstarj::service
