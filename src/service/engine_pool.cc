#include "service/engine_pool.h"

#include <chrono>
#include <exception>

#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_name.h"

namespace dpstarj::service {

EnginePool::EnginePool(const storage::Catalog* catalog, int num_engines,
                       size_t queue_capacity,
                       core::DpStarJoinOptions engine_options)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  DPSTARJ_CHECK(catalog != nullptr, "catalog must not be null");
  DPSTARJ_CHECK(num_engines > 0, "engine pool needs at least one engine");
  // Budget accounting lives in the service's ledger; a per-engine budget
  // would fragment a tenant's ε across whichever workers its queries land on.
  engine_options.total_budget.reset();
  // Derive one independent RNG stream per engine from the base seed. Each
  // stream is deterministic given (seed, num_engines), but which worker picks
  // up a given query depends on scheduling — end-to-end noise is only
  // reproducible for serialized submissions to a single-engine pool.
  Rng seeder(engine_options.seed);
  engines_.reserve(static_cast<size_t>(num_engines));
  for (int i = 0; i < num_engines; ++i) {
    core::DpStarJoinOptions per_engine = engine_options;
    per_engine.seed = seeder.engine()();
    engines_.push_back(std::make_unique<core::DpStarJoin>(catalog, per_engine));
  }
  worker_counters_ = std::vector<WorkerCounters>(static_cast<size_t>(num_engines));
  workers_.reserve(static_cast<size_t>(num_engines));
  for (int i = 0; i < num_engines; ++i) {
    workers_.emplace_back([this, i] {
      common::SetCurrentThreadName("dpsj-eng-", i);
      WorkerLoop(i);
    });
  }
}

EnginePool::~EnginePool() { Shutdown(); }

Result<std::future<Result<exec::QueryResult>>> EnginePool::Dispatch(
    Job job, const std::string& tenant) {
  return DispatchInternal(std::move(job), tenant, /*blocking=*/true);
}

Result<std::future<Result<exec::QueryResult>>> EnginePool::TryDispatch(
    Job job, const std::string& tenant) {
  return DispatchInternal(std::move(job), tenant, /*blocking=*/false);
}

Result<std::future<Result<exec::QueryResult>>> EnginePool::DispatchInternal(
    Job job, const std::string& tenant, bool blocking) {
  if (!job) return Status::InvalidArgument("job must be callable");
  Task task;
  task.job = std::move(job);
  std::future<Result<exec::QueryResult>> future = task.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (blocking) {
      queue_not_full_.wait(
          lock, [this] { return shutdown_ || queued_total_ < queue_capacity_; });
    }
    if (shutdown_) {
      return Status::Internal("engine pool is shut down");
    }
    if (queued_total_ >= queue_capacity_) {
      return Status::Unavailable(
          Format("work queue full (%zu queued)", queued_total_));
    }
    std::deque<Task>& queue = tenant_queues_[tenant];
    if (queue.empty()) active_tenants_.push_back(tenant);
    queue.push_back(std::move(task));
    ++queued_total_;
  }
  queue_not_empty_.notify_one();
  return future;
}

size_t EnginePool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_total_;
}

size_t EnginePool::queue_depth(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_queues_.find(tenant);
  return it == tenant_queues_.end() ? 0 : it->second.size();
}

std::vector<EnginePool::WorkerStats> EnginePool::worker_stats() const {
  // worker_counters_ is sized before the workers spawn and never resized, so
  // no lock is needed; the loads race benignly with worker updates.
  std::vector<WorkerStats> out(worker_counters_.size());
  for (size_t i = 0; i < worker_counters_.size(); ++i) {
    out[i].busy_ns = worker_counters_[i].busy_ns.load(std::memory_order_relaxed);
    out[i].jobs = worker_counters_[i].jobs.load(std::memory_order_relaxed);
  }
  return out;
}

EnginePool::Task EnginePool::PopNextLocked() {
  // Serve the head of the next tenant's FIFO: the tenant rotates to the back
  // of the round-robin while it still has waiting work, and drops out of the
  // active list (its map entry erased) when drained.
  const std::string tenant = std::move(active_tenants_.front());
  active_tenants_.pop_front();
  auto it = tenant_queues_.find(tenant);
  Task task = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    tenant_queues_.erase(it);
  } else {
    active_tenants_.push_back(tenant);
  }
  --queued_total_;
  return task;
}

void EnginePool::WorkerLoop(int engine_index) {
  core::DpStarJoin& engine = *engines_[static_cast<size_t>(engine_index)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(lock,
                            [this] { return shutdown_ || queued_total_ > 0; });
      if (queued_total_ == 0) return;  // shutdown with a drained queue
      task = PopNextLocked();
    }
    queue_not_full_.notify_one();
    const auto busy_start = std::chrono::steady_clock::now();
    // The library is exception-free by contract, but a job can still throw
    // (std::bad_alloc, user callables). An escape here would std::terminate
    // the whole service; convert to a Status so the future always resolves.
    Result<exec::QueryResult> result = [&]() -> Result<exec::QueryResult> {
      try {
        return task.job(engine);
      } catch (const std::exception& e) {
        return Status::Internal(Format("query job threw: %s", e.what()));
      } catch (...) {
        return Status::Internal("query job threw a non-standard exception");
      }
    }();
    WorkerCounters& counters = worker_counters_[static_cast<size_t>(engine_index)];
    counters.busy_ns.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - busy_start)
                .count()),
        std::memory_order_relaxed);
    counters.jobs.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(std::move(result));
  }
}

void EnginePool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace dpstarj::service
