// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// BudgetLedger — the service's multi-tenant privacy accountant. Each tenant
// (an analyst, an application, a data-sharing agreement) owns an independent
// dp::PrivacyBudget; the ledger serializes spends and refunds under one mutex
// so that concurrent query admissions can never over-draw a tenant, and a
// query that is admitted but later fails (bind error, cancelled work) or is
// answered from the noisy-answer cache can return its ε atomically.
//
// Besides the ε position, each account carries admission counters (spends,
// refunds, budget refusals) so GET /v1/tenants/<t> can show an operator how
// a tenant has been treated — not just what it has left.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dp/budget.h"

namespace dpstarj::service {

/// \brief One tenant's account state, as returned by Snapshot().
struct TenantAccount {
  std::string tenant;
  double total = 0.0;
  double spent = 0.0;
  double remaining = 0.0;
  /// Admission counters (monotonic).
  uint64_t spends = 0;    ///< successful ε spends (query admissions)
  uint64_t refunds = 0;   ///< ε returned (bind failure, cache replay, shed)
  uint64_t refusals = 0;  ///< spends refused with BudgetExhausted
};

/// \brief Thread-safe per-tenant privacy-budget accounting.
///
/// All operations take the ledger mutex; spend-then-refund is the service's
/// admission protocol (spend on Submit, refund on failure or cache replay),
/// which keeps the invariant that the sum of ε across in-flight and completed
/// queries never exceeds a tenant's total — regardless of how many threads
/// submit concurrently.
class BudgetLedger {
 public:
  /// When `default_tenant_budget` is set, an unknown tenant is auto-registered
  /// with that total on its first Spend; otherwise spending as an unknown
  /// tenant is NotFound.
  explicit BudgetLedger(std::optional<double> default_tenant_budget = std::nullopt);

  /// Registers `tenant` with the given total ε. AlreadyExists if registered.
  Status RegisterTenant(const std::string& tenant, double total_epsilon);

  /// True when the tenant has an account.
  bool HasTenant(const std::string& tenant) const;

  /// \brief Atomically consumes `epsilon` from the tenant's account.
  /// BudgetExhausted when it would overdraw; NotFound for unknown tenants
  /// (unless a default budget auto-registers them).
  Status Spend(const std::string& tenant, double epsilon);

  /// \brief Atomically returns `epsilon` to the tenant's account (failed or
  /// cache-replayed query). Never mints budget beyond what was spent.
  Status Refund(const std::string& tenant, double epsilon);

  /// Remaining ε of a tenant; NotFound for unknown tenants.
  Result<double> Remaining(const std::string& tenant) const;

  /// Spent ε of a tenant; NotFound for unknown tenants.
  Result<double> Spent(const std::string& tenant) const;

  /// \brief A consistent snapshot of one tenant's account (ε position and
  /// admission counters read under a single lock acquisition —
  /// Remaining()+Spent() back-to-back can interleave with a concurrent
  /// Spend). NotFound for unknown tenants.
  Result<TenantAccount> Account(const std::string& tenant) const;

  /// A consistent snapshot of every account, sorted by tenant name.
  std::vector<TenantAccount> Snapshot() const;

  /// Human-readable multi-line account table.
  std::string ToString() const;

 private:
  /// One account: the ε budget plus admission counters.
  struct AccountState {
    explicit AccountState(double total) : budget(total) {}
    dp::PrivacyBudget budget;
    uint64_t spends = 0;
    uint64_t refunds = 0;
    uint64_t refusals = 0;
  };

  /// Returns the tenant's account, auto-registering if configured. Requires
  /// mu_ held.
  Result<AccountState*> FindLocked(const std::string& tenant);

  static TenantAccount MakeAccount(const std::string& tenant,
                                   const AccountState& state);

  mutable std::mutex mu_;
  std::optional<double> default_budget_;
  std::map<std::string, AccountState> accounts_;
};

}  // namespace dpstarj::service
