// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// AdmissionController — per-tenant fair admission for the query service. The
// privacy accounting (BudgetLedger) is already per-tenant; this makes the
// *capacity* accounting per-tenant too, so one hot tenant cannot convert the
// shared engine pool into its private executor:
//
//   * a token bucket per tenant bounds its sustained query rate (and burst);
//     a drained bucket refuses with RateLimited — the front door maps it to
//     429 + Retry-After + an "X-DPStarJ-Tenant-Limited: 1" marker, distinct
//     from the global queue-pressure 429;
//   * an in-flight cap per tenant bounds how many of its queries may occupy
//     the pool (queued + executing) at once, so the bounded global work queue
//     is never filled end-to-end by a single tenant.
//
// Defaults come from AdmissionOptions; POST /v1/tenants can override them per
// tenant (SetTenantLimits). A zero default disables that knob for tenants
// without an override. The clock is injectable so tests drive the bucket
// refill deterministically.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace dpstarj::service {

/// \brief Per-tenant admission knobs (0 = that knob is disabled).
struct TenantLimits {
  /// Sustained query rate, tokens per second.
  double rate_qps = 0.0;
  /// Bucket capacity (burst size); defaults to max(1, rate_qps) when 0 while
  /// a rate is set, and is floored at 1 — a bucket that can never hold one
  /// whole token would refuse every admission forever.
  double burst = 0.0;
  /// Max queries queued + executing at once.
  int max_in_flight = 0;
};

/// \brief Controller-wide configuration.
struct AdmissionOptions {
  /// Defaults applied to tenants without a SetTenantLimits override.
  TenantLimits defaults;
  /// Monotonic clock in seconds; tests inject a fake. Null = steady_clock.
  std::function<double()> clock;
};

/// \brief Why an admission was refused (shapes the Retry-After hint).
enum class AdmissionDenial {
  kRateLimited,  ///< token bucket drained — retry after the bucket refills
  kInFlightCap,  ///< too many queries in the pool — retry after one finishes
};

/// \brief One admission verdict.
struct AdmissionDecision {
  Status status;  ///< OK, or RateLimited with a human-readable reason
  std::optional<AdmissionDenial> denial;
  /// Advisory: seconds until a retry can plausibly succeed (0 when admitted).
  double retry_after_seconds = 0.0;
};

/// \brief One tenant's admission counters, as returned by TenantStats().
struct TenantAdmissionStats {
  std::string tenant;
  uint64_t admitted = 0;      ///< queries that passed both checks
  uint64_t rate_limited = 0;  ///< refused by the token bucket
  uint64_t capped = 0;        ///< refused by the in-flight cap
  int in_flight = 0;          ///< currently queued + executing
};

/// \brief Thread-safe per-tenant token buckets + in-flight accounting.
///
/// The admission protocol mirrors the ledger's spend/refund: TryAdmit
/// consumes one token and one in-flight slot atomically; the caller MUST pair
/// every admitted TryAdmit with exactly one Release (when the query reaches a
/// terminal state — answered, failed, or shed by the pool). A refused
/// TryAdmit consumes nothing.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Overrides the default limits for one tenant (replaces any previous
  /// override; zero fields disable that knob for the tenant). A drained
  /// token bucket stays drained across the update — updates change the
  /// contract, they do not refill the bucket.
  void SetTenantLimits(const std::string& tenant, TenantLimits limits);

  /// The limits in force for `tenant` (override or defaults).
  TenantLimits LimitsFor(const std::string& tenant) const;

  /// \brief Admits or refuses `count` queries as one all-or-nothing decision
  /// (a workload batch debits its full query count — otherwise
  /// POST /v1/workload would be a rate-limit bypass paying one token for N
  /// queries). On refusal, `retry_after_seconds` hints when a retry can
  /// succeed: for a drained bucket, the time until `count` tokens refill;
  /// for the in-flight cap, a nominal 1s (a query must finish first, which
  /// admission cannot predict). A batch larger than the tenant's burst or
  /// in-flight cap can never be admitted — callers split it or raise the
  /// limits (docs/operations.md, "Sizing workload batches"). Refusal
  /// counters move by one per decision, not per query.
  AdmissionDecision TryAdmit(const std::string& tenant, int count = 1);

  /// Returns the in-flight slots taken by an admitted TryAdmit (same count).
  void Release(const std::string& tenant, int count = 1);

  /// \brief Release, then evict the tenant's lazily-created state when
  /// nothing pins it (no operator override, no other in-flight admission).
  /// The service calls this instead of Release for tenants the ledger
  /// refused as unknown, so arbitrary tenant names on the public query
  /// endpoint cannot grow the controller's map without bound.
  void ReleaseAndForget(const std::string& tenant, int count = 1);

  /// \brief Advisory seconds until a retry can plausibly succeed: the time
  /// until the bucket holds a full token, floored at 1s while the tenant
  /// sits at its in-flight cap; 0 when unconstrained. This is the wire
  /// path's source of Retry-After hints (the AdmissionDecision fields carry
  /// the same information for callers that hold the decision) — keep the
  /// two consistent when touching either.
  double RetryAfterSeconds(const std::string& tenant) const;

  /// One tenant's counters (zeroed stats for a never-seen tenant).
  TenantAdmissionStats TenantStats(const std::string& tenant) const;

  /// Every tenant that has been admitted, refused, or given an override.
  std::vector<TenantAdmissionStats> Snapshot() const;

  /// Controller-wide totals.
  uint64_t total_rate_limited() const;
  uint64_t total_capped() const;

 private:
  /// Token bucket + counters of one tenant; created lazily on first touch.
  struct TenantState {
    std::optional<TenantLimits> override_limits;
    double tokens = 0.0;       ///< current bucket fill
    double last_refill = 0.0;  ///< clock() of the last refill
    bool bucket_primed = false;
    int in_flight = 0;
    uint64_t admitted = 0;
    uint64_t rate_limited = 0;
    uint64_t capped = 0;
  };

  /// Effective limits of `state` (override or defaults).
  const TenantLimits& EffectiveLimits(const TenantState& state) const;

  static TenantAdmissionStats MakeStats(const std::string& tenant,
                                        const TenantState& state);

  /// Refills `state`'s bucket up to now. Requires mu_ held.
  void RefillLocked(TenantState* state, const TenantLimits& limits,
                    double now) const;

  double Now() const { return clock_(); }

  TenantLimits defaults_;
  std::function<double()> clock_;

  mutable std::mutex mu_;
  mutable std::map<std::string, TenantState> tenants_;
  uint64_t total_rate_limited_ = 0;
  uint64_t total_capped_ = 0;
};

}  // namespace dpstarj::service
